"""Setup shim for environments without the ``wheel`` package.

The project is fully described by ``pyproject.toml``; this file only
enables legacy ``pip install -e . --no-use-pep517`` editable installs on
machines where PEP 660 editable builds are unavailable (no ``wheel``
module, offline build isolation).
"""

from setuptools import setup

setup()
