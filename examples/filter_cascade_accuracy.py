"""Accuracy evaluation of a multi-block filter cascade.

This example reproduces, on a small two-stage system, the central effect
the paper exploits: once quantization noise has been *colored* by a
frequency-selective block, a downstream block no longer sees white noise,
and the PSD-agnostic hierarchical method mis-estimates the output noise
while the proposed PSD method keeps tracking it.

The system is a low-pass FIR followed by a high-pass FIR with barely
overlapping pass-bands (an extreme but legitimate band-pass design), with
every signal quantized to ``d`` fractional bits.

Run with::

    python examples/filter_cascade_accuracy.py
"""

from __future__ import annotations

from repro import AccuracyEvaluator, SfgBuilder
from repro.data.signals import uniform_white_noise
from repro.lti.fir_design import design_fir_highpass, design_fir_lowpass
from repro.utils.tables import TextTable


def build_cascade(fractional_bits: int):
    """Low-pass (cutoff 0.35) then high-pass (cutoff 0.6): colored noise."""
    builder = SfgBuilder("lp-hp-cascade")
    x = builder.input("x", fractional_bits=fractional_bits)
    lowpass = builder.fir("lowpass", design_fir_lowpass(31, 0.35), x,
                          fractional_bits=fractional_bits)
    highpass = builder.fir("highpass", design_fir_highpass(31, 0.6), lowpass,
                           fractional_bits=fractional_bits)
    builder.output("y", highpass)
    return builder.build()


def main() -> None:
    table = TextTable(
        ["d [bits]", "simulated", "PSD est.", "PSD Ed [%]",
         "agnostic est.", "agnostic Ed [%]"],
        title="Colored-noise cascade: proposed PSD method vs PSD-agnostic")

    for fractional_bits in (8, 12, 16, 20):
        graph = build_cascade(fractional_bits)
        evaluator = AccuracyEvaluator(graph, n_psd=1024)
        stimulus = uniform_white_noise(80_000, amplitude=0.9,
                                       seed=fractional_bits)
        comparison = evaluator.compare(stimulus, methods=("psd", "agnostic"),
                                       discard_transient=128)
        psd_report = comparison.reports["psd"]
        agnostic_report = comparison.reports["agnostic"]
        table.add_row(
            fractional_bits,
            comparison.simulation.error_power,
            psd_report.estimate.power,
            round(psd_report.ed_percent, 2),
            agnostic_report.estimate.power,
            round(agnostic_report.ed_percent, 2),
        )

    print(table.render())
    print("\nThe PSD-agnostic column treats the noise entering the high-pass "
          "stage as white and therefore over-estimates how much of it "
          "reaches the output; the proposed method follows the simulation "
          "within a few percent at every word length.")


if __name__ == "__main__":
    main()
