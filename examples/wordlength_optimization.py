"""Word-length refinement driven by the fast PSD accuracy evaluator.

The introduction of the paper motivates fast accuracy evaluation by the
fixed-point refinement loop: each candidate word-length assignment needs
one accuracy evaluation, so the evaluator's speed bounds how much of the
search space can be explored.  This example runs a greedy refinement of a
three-block filter chain under an output-noise budget, using the proposed
PSD method as the evaluation engine, and reports how many evaluations the
search needed — then verifies the final design by simulation.

Run with::

    python examples/wordlength_optimization.py
"""

from __future__ import annotations

from repro import AccuracyEvaluator, SfgBuilder
from repro.data.signals import uniform_white_noise
from repro.lti.fir_design import design_fir_bandpass, design_fir_lowpass
from repro.lti.iir_design import design_iir_filter
from repro.systems.wordlength import WordLengthOptimizer
from repro.utils.tables import TextTable


def build_receiver_chain(initial_bits: int = 16):
    """A small 'receiver' chain: IIR channel filter, gain, band-pass FIR."""
    b, a = design_iir_filter(3, 0.45, "lowpass", "butterworth")
    builder = SfgBuilder("receiver-chain")
    x = builder.input("adc", fractional_bits=initial_bits)
    channel = builder.iir("channel_filter", b, a, x,
                          fractional_bits=initial_bits)
    agc = builder.gain("agc", 0.6, channel, fractional_bits=initial_bits)
    select = builder.fir("band_select", design_fir_bandpass(25, 0.15, 0.4),
                         agc, fractional_bits=initial_bits)
    smooth = builder.fir("smoother", design_fir_lowpass(9, 0.5), select,
                         fractional_bits=initial_bits)
    builder.output("baseband", smooth)
    return builder.build()


def main() -> None:
    noise_budget = 1e-7
    graph = build_receiver_chain()
    optimizer = WordLengthOptimizer(graph, method="psd", n_psd=256,
                                    min_bits=4, max_bits=24)

    uniform = optimizer.uniform_search(noise_budget)
    result = optimizer.optimize(noise_budget)

    print(f"Noise budget: {noise_budget:.1e}")
    print(f"Uniform solution: {list(uniform.values())[0]} bits everywhere "
          f"({sum(uniform.values())} total fractional bits)")
    print(f"Greedy solution:  {result.total_bits} total fractional bits "
          f"after {result.evaluations} analytical evaluations\n")

    table = TextTable(["node", "uniform bits", "optimized bits"])
    for name in result.assignment:
        table.add_row(name, uniform[name], result.assignment[name])
    print(table.render())

    print(f"\nEstimated output noise of the optimized design: "
          f"{result.noise_power:.3e} (budget {noise_budget:.1e})")

    # Verify the optimized configuration by simulation.
    evaluator = AccuracyEvaluator(graph, n_psd=256)
    simulation = evaluator.simulate(
        uniform_white_noise(60_000, amplitude=0.9, seed=1),
        discard_transient=256)
    print(f"Simulated output noise of the optimized design:  "
          f"{simulation.error_power:.3e}")
    status = "meets" if simulation.error_power <= 1.5 * noise_budget else "misses"
    print(f"The optimized design {status} the budget under simulation.")


if __name__ == "__main__":
    main()
