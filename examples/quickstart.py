"""Quick start: estimate the output quantization noise of a small system.

This example builds the smallest interesting fixed-point system — a
quantized input feeding a low-pass FIR filter whose output is re-quantized
— and compares the three analytical accuracy-evaluation methods against a
Monte-Carlo simulation, exactly the workflow of the paper's experiments.

It also shows the library's graph → plan → run pipeline: the mutable
graph is compiled once into a :class:`repro.CompiledPlan` and every
evaluation replays that plan, so re-evaluating the same system (a
word-length sweep, a benchmark loop) costs a fraction of the first call.

Run with::

    python examples/quickstart.py

The bit-true Monte-Carlo half of the comparison is backend-selectable;
force the whole-plan fused simulation backend (see ARCHITECTURE.md,
"Codegen backend") with::

    REPRO_SIMD_BACKEND=codegen python examples/quickstart.py
"""

from __future__ import annotations

import time

from repro import AccuracyEvaluator, SfgBuilder, compile_plan, evaluate_psd
from repro.data.signals import uniform_white_noise
from repro.lti.fir_design import design_fir_lowpass
from repro.utils.tables import TextTable


def build_system(fractional_bits: int = 12):
    """A quantized input, a 16-tap low-pass FIR and a re-quantized output."""
    builder = SfgBuilder("quickstart")
    x = builder.input("x", fractional_bits=fractional_bits)
    taps = design_fir_lowpass(16, cutoff=0.25)
    filtered = builder.fir("lowpass", taps, x, fractional_bits=fractional_bits)
    builder.output("out", filtered)
    return builder.build()


def main() -> None:
    fractional_bits = 12
    graph = build_system(fractional_bits)
    evaluator = AccuracyEvaluator(graph, n_psd=512)

    # Monte-Carlo reference plus the three analytical estimators.
    stimulus = uniform_white_noise(100_000, amplitude=0.9, seed=42)
    comparison = evaluator.compare(
        stimulus,
        methods=("psd", "flat", "agnostic"),
        discard_transient=64,
        metadata={"fractional_bits": fractional_bits},
    )

    print(f"System: {graph.name} with d = {fractional_bits} fractional bits")
    print(f"Simulated output noise power: "
          f"{comparison.simulation.error_power:.4e} "
          f"({comparison.simulation.num_samples} samples)\n")

    table = TextTable(["method", "estimated power", "Ed [%]",
                       "sub-one-bit?", "time [ms]"])
    for name, report in comparison.reports.items():
        table.add_row(
            name,
            report.estimate.power,
            round(report.ed_percent, 3),
            "yes" if report.sub_one_bit else "NO",
            round(1000.0 * (report.estimate.elapsed_seconds or 0.0), 3),
        )
    print(table.render())

    print("\nInterpretation: on a single filter block the flat, PSD-agnostic "
          "and proposed PSD methods coincide (Section IV-B of the paper); "
          "the value of the PSD method appears on multi-block systems — see "
          "the other examples.")

    # ------------------------------------------------------------------
    # Plan reuse: compile once, evaluate many times.
    # ------------------------------------------------------------------
    plan = compile_plan(graph)
    evaluate_psd(plan, 512)          # first call fills the response cache
    start = time.perf_counter()
    for _ in range(50):
        evaluate_psd(plan, 512)
    per_call = (time.perf_counter() - start) / 50
    print(f"\nPlan reuse: 50 repeated estimate('psd') calls on the compiled "
          f"plan run at {1000.0 * per_call:.3f} ms/call — the validated "
          "schedule and the block frequency responses are computed once and "
          "replayed, which is what makes word-length search loops cheap.")


if __name__ == "__main__":
    main()
