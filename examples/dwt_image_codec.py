"""Fixed-point accuracy of the 2-level Daubechies 9/7 image codec (Fig. 3).

The example encodes and decodes a batch of surrogate images with the
bit-true fixed-point codec, measures the reconstruction error caused by
the finite word length, and compares it with the analytical estimates of
the proposed PSD method and the PSD-agnostic method.  It also prints a
coarse view of the 2-D frequency repartition of the error (the Fig. 7
comparison).

Run with::

    python examples/dwt_image_codec.py
"""

from __future__ import annotations

import numpy as np

from repro.data.images import ImageGenerator
from repro.systems.dwt.codec import Dwt97Codec
from repro.utils.tables import TextTable


def ascii_heatmap(grid: np.ndarray, size: int = 16) -> str:
    """Render a 2-D power map as a log-scaled ASCII heat map."""
    blocks = grid.reshape(size, grid.shape[0] // size,
                          size, grid.shape[1] // size).sum(axis=(1, 3))
    with np.errstate(divide="ignore"):
        log_blocks = np.log10(np.maximum(blocks, 1e-30))
    low, high = np.min(log_blocks), np.max(log_blocks)
    span = (high - low) or 1.0
    shades = " .:-=+*#%@"
    lines = []
    for row in log_blocks:
        indices = ((row - low) / span * (len(shades) - 1)).astype(int)
        lines.append("".join(shades[i] for i in indices))
    return "\n".join(lines)


def main() -> None:
    fractional_bits = 12
    codec = Dwt97Codec(fractional_bits=fractional_bits, levels=2)
    images = ImageGenerator(size=64, seed=0).corpus(6)

    result = codec.compare(images, n_psd=512, methods=("psd", "agnostic"))
    print(f"Daubechies 9/7 codec, {codec.levels} levels, "
          f"d = {fractional_bits} fractional bits, "
          f"{len(images)} surrogate images")
    print(f"simulated reconstruction-error power: "
          f"{result['simulated_power']:.4e}\n")

    table = TextTable(["method", "estimated power", "Ed [%]"])
    for name, entry in result["methods"].items():
        table.add_row(name, entry["estimated_power"],
                      round(100.0 * entry["ed"], 2))
    print(table.render())

    # Fig. 7 style comparison: 2-D frequency repartition of the error.
    simulated_map = codec.simulated_error_psd_2d(images[:2])
    estimated_map = codec.estimated_error_psd_2d(n_psd=64)

    print("\nSimulated 2-D error spectrum (log scale, DC at the center):")
    print(ascii_heatmap(simulated_map))
    print("\nEstimated 2-D error spectrum (log scale, DC at the center):")
    print(ascii_heatmap(estimated_map))

    print("\nPer-image error power (fixed-point vs double reference):")
    per_image = TextTable(["image", "error power", "PSNR-style dB"])
    for index, image in enumerate(images):
        power = float(np.mean(codec.error_image(image) ** 2))
        per_image.add_row(index, power, round(-10.0 * np.log10(power), 1))
    print(per_image.render())


if __name__ == "__main__":
    main()
