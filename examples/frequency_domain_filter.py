"""Fixed-point accuracy of the Fig. 2 frequency-domain band-pass filter.

The system chains a 16-tap time-domain FIR with an FFT / coefficient
multiply / inverse-FFT overlap-save stage.  This example

1. runs the bit-true fixed-point implementation and the double-precision
   reference on the same stimulus,
2. measures the output quantization-noise power and spectrum,
3. compares the proposed PSD estimate and the PSD-agnostic estimate
   against the measurement, and
4. prints the noise spectrum so the frequency repartition of the error
   (Section IV-E of the paper) can be inspected.

Run with::

    python examples/frequency_domain_filter.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis.psd_method import evaluate_psd
from repro.data.signals import uniform_white_noise
from repro.systems.freq_filter import FrequencyDomainFilter
from repro.utils.tables import TextTable


def spectrum_bars(psd_values: np.ndarray, buckets: int = 16,
                  width: int = 40) -> list[str]:
    """Render a PSD as coarse ASCII bars (one line per frequency bucket)."""
    half = psd_values[:len(psd_values) // 2]
    grouped = half.reshape(buckets, -1).sum(axis=1)
    peak = float(np.max(grouped)) or 1.0
    lines = []
    for index, value in enumerate(grouped):
        bar = "#" * max(1, int(round(width * value / peak))) if value > 0 else ""
        lines.append(f"  {index / (2 * buckets):4.2f}-"
                     f"{(index + 1) / (2 * buckets):4.2f}  {bar}")
    return lines


def main() -> None:
    fractional_bits = 12
    system = FrequencyDomainFilter(fractional_bits=fractional_bits, n_psd=1024)
    stimulus = uniform_white_noise(200_000, amplitude=0.9, seed=7)

    comparison = system.compare(stimulus, methods=("psd", "agnostic"))
    print(f"Frequency-domain band-pass filter, d = {fractional_bits} bits")
    print(f"simulated output-noise power: "
          f"{comparison.simulation.error_power:.4e}\n")

    table = TextTable(["method", "estimated power", "Ed [%]", "sub-one-bit?"])
    for name, report in comparison.reports.items():
        table.add_row(name, report.estimate.power,
                      round(report.ed_percent, 2),
                      "yes" if report.sub_one_bit else "NO")
    print(table.render())

    # Frequency repartition of the output error (estimated analytically).
    estimated_psd = evaluate_psd(system.graph, 256)
    print("\nEstimated frequency repartition of the output error "
          "(normalized frequency buckets):")
    print("\n".join(spectrum_bars(estimated_psd.values)))

    measured_psd = comparison.simulation.error_psd
    if measured_psd is not None:
        print("\nMeasured frequency repartition (Welch estimate of the "
              "simulated error):")
        print("\n".join(spectrum_bars(measured_psd.values[:256])))


if __name__ == "__main__":
    main()
