"""Complete word-length sizing: range analysis + accuracy analysis.

The paper's introduction splits fixed-point refinement into two problems:
the *integer* part of every word is sized from the signal's dynamic range
(range analysis), the *fractional* part from the accuracy constraint
(noise analysis — the paper's contribution).  This example runs both
halves on one system:

1. interval and affine range analysis determine the integer bits each node
   needs to never overflow (and show where affine arithmetic is tighter);
2. the PSD-driven word-length optimizer determines the fractional bits
   that meet an output-noise budget;
3. the resulting complete formats are validated by simulation (no
   overflow, noise within budget).

Run with::

    python examples/dynamic_range_sizing.py
"""

from __future__ import annotations

import numpy as np

from repro import AccuracyEvaluator, SfgBuilder
from repro.data.signals import uniform_white_noise
from repro.fixedpoint.range_analysis import (
    analyze_ranges,
    integer_bits_for_range,
    simulate_ranges,
)
from repro.lti.fir_design import design_fir_bandpass, design_fir_lowpass
from repro.systems.wordlength import WordLengthOptimizer
from repro.utils.tables import TextTable


def build_equalizer(initial_bits: int = 16):
    """A two-band equalizer: two parallel band filters, weighted and summed."""
    builder = SfgBuilder("equalizer")
    x = builder.input("x", fractional_bits=initial_bits)
    low_band = builder.fir("low_band", design_fir_lowpass(21, 0.3), x,
                           fractional_bits=initial_bits)
    high_band = builder.fir("high_band", design_fir_bandpass(21, 0.4, 0.8), x,
                            fractional_bits=initial_bits)
    low_gain = builder.gain("low_gain", 1.8, low_band,
                            fractional_bits=initial_bits)
    high_gain = builder.gain("high_gain", 0.7, high_band,
                             fractional_bits=initial_bits)
    mix = builder.add("mix", [low_gain, high_gain],
                      fractional_bits=initial_bits)
    builder.output("y", mix)
    return builder.build()


def main() -> None:
    graph = build_equalizer()
    input_range = (-1.0, 1.0)

    # ------------------------------------------------------------------
    # 1. Range analysis -> integer bits.
    # ------------------------------------------------------------------
    interval_ranges = analyze_ranges(graph, {"x": input_range},
                                     method="interval")
    affine_ranges = analyze_ranges(graph, {"x": input_range}, method="affine")
    observed = simulate_ranges(graph,
                               {"x": uniform_white_noise(50_000, seed=3)})

    table = TextTable(["node", "interval bound", "affine bound",
                       "observed peak", "integer bits"],
                      title="Dynamic-range analysis")
    for name in graph.topological_order():
        interval = interval_ranges[name]
        table.add_row(name,
                      round(interval.magnitude, 4),
                      round(affine_ranges[name].magnitude, 4),
                      round(observed[name].magnitude, 4)
                      if name in observed else "-",
                      integer_bits_for_range(interval))
    print(table.render())

    # ------------------------------------------------------------------
    # 2. Accuracy analysis -> fractional bits.
    # ------------------------------------------------------------------
    budget = 5e-8
    optimizer = WordLengthOptimizer(graph, method="psd", n_psd=256,
                                    min_bits=4, max_bits=24)
    result = optimizer.optimize(budget)

    formats = TextTable(["node", "integer bits", "fractional bits",
                         "total bits"],
                        title=f"\nComplete formats for a noise budget of {budget:.0e}")
    for name, frac_bits in result.assignment.items():
        int_bits = integer_bits_for_range(interval_ranges[name])
        formats.add_row(name, int_bits, frac_bits, 1 + int_bits + frac_bits)
    print(formats.render())
    print(f"\nanalytical evaluations used by the search: {result.evaluations}")

    # ------------------------------------------------------------------
    # 3. Validation by simulation.
    # ------------------------------------------------------------------
    evaluator = AccuracyEvaluator(graph, n_psd=256)
    stimulus = uniform_white_noise(60_000, amplitude=1.0, seed=11)
    simulation = evaluator.simulate(stimulus, discard_transient=64)
    peak = max(value.magnitude for value in
               simulate_ranges(graph, {"x": stimulus}).values())
    print(f"\nsimulated output noise: {simulation.error_power:.3e} "
          f"(budget {budget:.0e})")
    print(f"largest observed signal magnitude: {peak:.3f} "
          f"(covered by the derived integer bits: "
          f"{peak <= 2 ** max(integer_bits_for_range(r) for r in interval_ranges.values())})")


if __name__ == "__main__":
    main()
