"""Unit tests for the Butterworth / Chebyshev IIR designs."""

import numpy as np
import pytest

from repro.lti.iir_design import (
    butterworth_prototype,
    chebyshev1_prototype,
    design_iir_filter,
)
from repro.lti.transfer_function import TransferFunction


def _magnitude(b, a, frequency, n=2048):
    response = TransferFunction(b, a).frequency_response(n)
    index = int(round(frequency * n / 2))
    return abs(response[index])


class TestPrototypes:
    def test_butterworth_poles_on_unit_circle(self):
        _, poles, _ = butterworth_prototype(5)
        np.testing.assert_allclose(np.abs(poles), 1.0, atol=1e-12)

    def test_butterworth_poles_in_left_half_plane(self):
        _, poles, _ = butterworth_prototype(6)
        assert np.all(np.real(poles) < 0)

    def test_chebyshev_poles_in_left_half_plane(self):
        _, poles, _ = chebyshev1_prototype(5, ripple_db=1.0)
        assert np.all(np.real(poles) < 0)

    def test_invalid_order_rejected(self):
        with pytest.raises(ValueError):
            butterworth_prototype(0)

    def test_invalid_ripple_rejected(self):
        with pytest.raises(ValueError):
            chebyshev1_prototype(4, ripple_db=0.0)


class TestLowpassDesigns:
    @pytest.mark.parametrize("family", ["butterworth", "chebyshev1"])
    @pytest.mark.parametrize("order", [2, 4, 6])
    def test_stable(self, family, order):
        b, a = design_iir_filter(order, 0.3, "lowpass", family)
        assert TransferFunction(b, a).is_stable()

    def test_butterworth_dc_gain_unity(self):
        b, a = design_iir_filter(4, 0.3, "lowpass", "butterworth")
        assert _magnitude(b, a, 0.0) == pytest.approx(1.0, abs=1e-6)

    def test_butterworth_half_power_at_cutoff(self):
        b, a = design_iir_filter(4, 0.4, "lowpass", "butterworth")
        assert _magnitude(b, a, 0.4) == pytest.approx(1.0 / np.sqrt(2.0),
                                                      abs=0.01)

    def test_stopband_attenuation_grows_with_order(self):
        gains = []
        for order in (2, 4, 6):
            b, a = design_iir_filter(order, 0.3, "lowpass", "butterworth")
            gains.append(_magnitude(b, a, 0.8))
        assert gains[0] > gains[1] > gains[2]

    def test_chebyshev_ripple_bounded(self):
        b, a = design_iir_filter(5, 0.4, "lowpass", "chebyshev1", ripple_db=1.0)
        frequencies = np.linspace(0.01, 0.35, 50)
        gains = [_magnitude(b, a, f) for f in frequencies]
        assert max(gains) <= 1.0 + 1e-3
        assert min(gains) >= 10 ** (-1.0 / 20.0) - 0.02


class TestHighpassDesigns:
    def test_dc_rejection(self):
        b, a = design_iir_filter(4, 0.5, "highpass", "butterworth")
        assert _magnitude(b, a, 0.0) < 1e-6

    def test_nyquist_gain_unity(self):
        b, a = design_iir_filter(4, 0.5, "highpass", "butterworth")
        assert _magnitude(b, a, 1.0 - 1e-3) == pytest.approx(1.0, abs=0.01)

    def test_stable(self):
        b, a = design_iir_filter(6, 0.6, "highpass", "chebyshev1")
        assert TransferFunction(b, a).is_stable()


class TestBandpassDesigns:
    def test_center_gain(self):
        b, a = design_iir_filter(3, (0.3, 0.6), "bandpass", "butterworth")
        center = np.sqrt(0.3 * 0.6)
        assert _magnitude(b, a, center) == pytest.approx(1.0, abs=0.05)

    def test_band_edges_rejected(self):
        b, a = design_iir_filter(3, (0.3, 0.6), "bandpass", "butterworth")
        assert _magnitude(b, a, 0.05) < 0.05
        assert _magnitude(b, a, 0.95) < 0.05

    def test_stable(self):
        b, a = design_iir_filter(4, (0.2, 0.5), "bandpass", "chebyshev1")
        assert TransferFunction(b, a).is_stable()

    def test_digital_order_doubles(self):
        b, a = design_iir_filter(3, (0.3, 0.6), "bandpass", "butterworth")
        assert len(a) - 1 == 6


class TestValidation:
    def test_unknown_family(self):
        with pytest.raises(ValueError):
            design_iir_filter(4, 0.3, "lowpass", "elliptic")

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            design_iir_filter(4, 0.3, "bandstop", "butterworth")

    def test_cutoff_out_of_range(self):
        with pytest.raises(ValueError):
            design_iir_filter(4, 1.2, "lowpass", "butterworth")

    def test_bad_band_edges(self):
        with pytest.raises(ValueError):
            design_iir_filter(4, (0.6, 0.3), "bandpass", "butterworth")
