"""Unit tests for per-source tracked spectra and cross-spectrum helpers."""

import numpy as np
import pytest

from repro.fixedpoint.noise_model import NoiseStats
from repro.lti.fir_design import design_fir_lowpass
from repro.lti.transfer_function import TransferFunction
from repro.psd.cross_spectrum import coherence, cross_power_spectrum
from repro.psd.propagation import TrackedSpectrum, cross_spectrum_contribution
from repro.psd.spectrum import DiscretePsd


class TestTrackedSpectrum:
    def test_single_source_matches_discrete_psd(self):
        stats = NoiseStats(mean=0.1, variance=1.0)
        tracked = TrackedSpectrum.from_source("s", stats, 64)
        psd = tracked.to_psd()
        reference = DiscretePsd.white(stats, 64)
        assert psd.variance == pytest.approx(reference.variance)
        assert psd.mean == pytest.approx(reference.mean)

    def test_filtering_matches_discrete_psd(self):
        stats = NoiseStats(mean=0.0, variance=1.0)
        taps = design_fir_lowpass(31, 0.3)
        response = TransferFunction.fir(taps).frequency_response(128)
        tracked = TrackedSpectrum.from_source("s", stats, 128).filtered(response)
        reference = DiscretePsd.white(stats, 128).filtered(response)
        assert tracked.to_psd().variance == pytest.approx(reference.variance)

    def test_independent_sources_add_power(self):
        a = TrackedSpectrum.from_source("a", NoiseStats(0.0, 1.0), 32)
        b = TrackedSpectrum.from_source("b", NoiseStats(0.0, 2.0), 32)
        assert (a + b).total_power == pytest.approx(3.0)

    def test_reconvergent_same_source_adds_coherently(self):
        """x + x has 4x the power of x, not 2x (full correlation)."""
        source = TrackedSpectrum.from_source("s", NoiseStats(0.0, 1.0), 32)
        assert (source + source).total_power == pytest.approx(4.0)

    def test_reconvergent_cancellation(self):
        """x - x is exactly zero, which uncorrelated addition cannot model."""
        source = TrackedSpectrum.from_source("s", NoiseStats(0.0, 1.0), 32)
        cancelled = source + source.scaled(-1.0)
        assert cancelled.total_power == pytest.approx(0.0, abs=1e-15)

    def test_uncorrelated_addition_differs_from_tracked(self):
        """The same situation handled with DiscretePsd overestimates."""
        stats = NoiseStats(0.0, 1.0)
        uncorrelated = (DiscretePsd.white(stats, 32)
                        + DiscretePsd.white(stats, 32).scaled(-1.0))
        assert uncorrelated.total_power == pytest.approx(2.0)

    def test_with_source_rejects_duplicates(self):
        tracked = TrackedSpectrum.from_source("s", NoiseStats(0.0, 1.0), 16)
        with pytest.raises(ValueError):
            tracked.with_source("s", NoiseStats(0.0, 1.0))

    def test_mismatched_bins_rejected(self):
        a = TrackedSpectrum.zero(16)
        b = TrackedSpectrum.zero(32)
        with pytest.raises(ValueError):
            a + b

    def test_delayed_reconvergence_partial_correlation(self):
        """x[n] + x[n-1]: power spectrum |1 + e^{-jw}|^2 shaping."""
        stats = NoiseStats(0.0, 1.0)
        n = 64
        direct = TrackedSpectrum.from_source("s", stats, n)
        delayed = direct.filtered(
            TransferFunction.delay(1).frequency_response(n))
        combined = direct + delayed
        assert combined.total_power == pytest.approx(2.0, rel=1e-9)
        psd = combined.to_psd()
        # DC bin gain is |1 + 1|^2 = 4, Nyquist bin gain is 0.
        assert psd.ac[0] == pytest.approx(4.0 / n, rel=1e-9)
        assert psd.ac[n // 2] == pytest.approx(0.0, abs=1e-12)


class TestCrossSpectrumHelpers:
    def test_cross_spectrum_of_identical_signals_is_auto(self, rng):
        from repro.psd.estimation import welch
        x = rng.standard_normal(40_000)
        sxx = welch(x, 64).ac
        sxy = cross_power_spectrum(x, x, 64)
        # welch() renormalizes its bins to the exact sample variance, the
        # cross-spectrum estimator does not, so allow a small tolerance.
        np.testing.assert_allclose(np.real(sxy), sxx, rtol=1e-3)

    def test_cross_spectrum_of_independent_signals_is_small(self, rng):
        x = rng.standard_normal(60_000)
        y = rng.standard_normal(60_000)
        sxy = cross_power_spectrum(x, y, 64)
        sxx = cross_power_spectrum(x, x, 64)
        assert np.max(np.abs(sxy)) < 0.2 * np.max(np.abs(sxx))

    def test_length_mismatch_rejected(self, rng):
        with pytest.raises(ValueError):
            cross_power_spectrum(rng.standard_normal(10),
                                 rng.standard_normal(20), 8)

    def test_coherence_of_filtered_copy_is_high(self, rng):
        x = rng.standard_normal(60_000)
        taps = design_fir_lowpass(15, 0.8)
        y = np.convolve(x, taps)[:60_000]
        gamma = coherence(x, y, 64)
        assert np.mean(gamma[1:20]) > 0.8

    def test_coherence_of_independent_signals_is_low(self, rng):
        x = rng.standard_normal(60_000)
        y = rng.standard_normal(60_000)
        gamma = coherence(x, y, 64)
        assert np.mean(gamma) < 0.2

    def test_cross_contribution_formula(self):
        a = DiscretePsd.from_moments(0.0, 1.0, 16)
        b = DiscretePsd.from_moments(0.0, 4.0, 16)
        full = cross_spectrum_contribution(a, b, np.ones(16))
        # 2 * sqrt(S_a S_b) per bin = 2 * sqrt(1/16 * 4/16).
        np.testing.assert_allclose(full, 2.0 * np.sqrt(1 / 16 * 4 / 16))

    def test_cross_contribution_length_check(self):
        a = DiscretePsd.zero(16)
        b = DiscretePsd.zero(16)
        with pytest.raises(ValueError):
            cross_spectrum_contribution(a, b, np.ones(8))


class TestWhiteSourceNormalization:
    """One library-wide bin convention for a white source, all engines.

    A white noise of moments ``(mu, sigma^2)`` on ``n`` bins is
    ``sigma^2 / n`` on every bin plus ``mu^2`` on DC — whether it is built
    by the PQN helper, the PSD engine's container, or collapsed from a
    tracked spectrum.
    """

    def test_bin_by_bin_agreement_across_engines(self):
        from repro.fixedpoint.noise_model import quantization_noise_psd

        stats = NoiseStats(mean=0.125, variance=0.75)
        n_bins = 32
        model = quantization_noise_psd(stats, n_bins)
        container = DiscretePsd.white(stats, n_bins).values
        tracked = TrackedSpectrum.from_source("s", stats, n_bins)
        collapsed = tracked.to_psd().values
        np.testing.assert_allclose(model, container, rtol=1e-12)
        np.testing.assert_allclose(model, collapsed, rtol=1e-12)
        # And the convention itself: variance/n everywhere, mean^2 on DC.
        np.testing.assert_allclose(model[1:], stats.variance / n_bins)
        assert model[0] == pytest.approx(stats.mean ** 2
                                         + stats.variance / n_bins)
        assert np.sum(model) == pytest.approx(stats.power, rel=1e-12)

    def test_single_source_graph_agrees_end_to_end(self):
        # A quantized input feeding a plain output: the estimated output
        # PSD is exactly the white source, in every engine.
        from repro.analysis.psd_method import evaluate_psd, evaluate_psd_tracked
        from repro.sfg.builder import SfgBuilder

        builder = SfgBuilder("white-source")
        x = builder.input("x", fractional_bits=8)
        builder.output("y", x)
        graph = builder.build()
        source = graph.node("x").generated_noise()

        psd = evaluate_psd(graph, 16)
        tracked = evaluate_psd_tracked(graph, 16)
        np.testing.assert_allclose(psd.values,
                                   DiscretePsd.white(source, 16).values,
                                   rtol=1e-12)
        np.testing.assert_allclose(psd.values, tracked.values, rtol=1e-12)
