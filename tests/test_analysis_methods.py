"""Tests of the analytical evaluation engines on graphs with known answers."""

import numpy as np
import pytest

from repro.analysis.agnostic_method import evaluate_agnostic, evaluate_agnostic_all
from repro.analysis.flat_method import evaluate_flat, source_path_functions
from repro.analysis.psd_method import evaluate_psd, evaluate_psd_all, evaluate_psd_tracked
from repro.fixedpoint.noise_model import quantization_noise_stats
from repro.lti.fir_design import design_fir_highpass, design_fir_lowpass
from repro.sfg.builder import SfgBuilder


def _single_fir_graph(bits=10, taps=None):
    builder = SfgBuilder("single-fir")
    x = builder.input("x", fractional_bits=bits)
    h = builder.fir("h", taps if taps is not None else design_fir_lowpass(17, 0.4),
                    x, fractional_bits=bits)
    builder.output("y", h)
    return builder.build()


def _two_stage_graph(bits=10):
    """Low-pass followed by high-pass: the colored-noise scenario."""
    builder = SfgBuilder("two-stage")
    x = builder.input("x", fractional_bits=bits)
    lp = builder.fir("lp", design_fir_lowpass(31, 0.35), x, fractional_bits=bits)
    hp = builder.fir("hp", design_fir_highpass(31, 0.6), lp, fractional_bits=bits)
    builder.output("y", hp)
    return builder.build()


class TestSingleBlockClosedForm:
    def test_psd_matches_closed_form(self):
        """Input source filtered by H plus output source, all white."""
        bits = 10
        graph = _single_fir_graph(bits)
        taps = graph.node("h")._effective_transfer_function().b
        source = quantization_noise_stats(bits)
        expected = source.variance * float(np.dot(taps, taps)) + source.variance
        estimate = evaluate_psd(graph, 1024)
        assert estimate.total_power == pytest.approx(expected, rel=1e-3)

    def test_flat_equals_psd_on_single_block(self):
        """Section IV-B: flat and PSD methods coincide on elementary blocks."""
        graph = _single_fir_graph(12)
        psd = evaluate_psd(graph, 2048).total_power
        flat = evaluate_flat(graph).power
        assert psd == pytest.approx(flat, rel=1e-3)

    def test_agnostic_equals_psd_on_single_block(self):
        graph = _single_fir_graph(12)
        psd = evaluate_psd(graph, 2048).total_power
        agnostic = evaluate_agnostic(graph).power
        assert psd == pytest.approx(agnostic, rel=1e-3)

    def test_tracked_equals_psd_on_feedforward_chain(self):
        graph = _two_stage_graph(12)
        psd = evaluate_psd(graph, 512).total_power
        tracked = evaluate_psd_tracked(graph, 512).total_power
        assert tracked == pytest.approx(psd, rel=1e-9)


class TestColoredNoiseScenario:
    def test_psd_and_agnostic_differ_on_cascade(self):
        """With complementary pass-bands the blind method must deviate."""
        graph = _two_stage_graph(12)
        psd = evaluate_psd(graph, 1024).total_power
        agnostic = evaluate_agnostic(graph).power
        assert abs(agnostic - psd) / psd > 0.05

    def test_flat_matches_psd_on_cascade(self):
        graph = _two_stage_graph(12)
        psd = evaluate_psd(graph, 4096).total_power
        flat = evaluate_flat(graph).power
        assert flat == pytest.approx(psd, rel=0.01)

    def test_psd_accuracy_improves_with_bins(self, rng):
        """Ed against the flat reference shrinks as N_PSD grows."""
        graph = _two_stage_graph(12)
        flat = evaluate_flat(graph).power
        deviations = []
        for n_psd in (16, 64, 256, 1024):
            psd = evaluate_psd(graph, n_psd).total_power
            deviations.append(abs(psd - flat) / flat)
        assert deviations[-1] <= deviations[0]


class TestIirGraphs:
    def test_iir_noise_shaping_included(self):
        """The output-quantizer noise of an IIR block is amplified by 1/A."""
        bits = 10
        builder = SfgBuilder("iir")
        x = builder.input("x", fractional_bits=bits)
        node = builder.iir("h", [1.0], [1.0, -0.9], x, fractional_bits=bits)
        builder.output("y", node)
        graph = builder.build()
        estimate = evaluate_psd(graph, 4096)
        source = quantization_noise_stats(bits)
        shaping_energy = 1.0 / (1.0 - 0.81)
        # Input noise through H (same energy) + own noise through 1/A.
        expected = source.variance * shaping_energy * 2.0
        assert estimate.total_power == pytest.approx(expected, rel=0.02)

    def test_flat_handles_iir(self):
        builder = SfgBuilder("iir")
        x = builder.input("x", fractional_bits=10)
        node = builder.iir("h", [0.5, 0.5], [1.0, -0.6], x, fractional_bits=10)
        builder.output("y", node)
        graph = builder.build()
        assert evaluate_flat(graph).power == pytest.approx(
            evaluate_psd(graph, 4096).total_power, rel=0.02)


class TestReconvergentPaths:
    def _reconvergent_graph(self, bits=10):
        """One noise source reaching the output through two parallel paths."""
        builder = SfgBuilder("reconvergent")
        x = builder.input("x", fractional_bits=bits)
        branch_a = builder.fir("a", [1.0], x)
        branch_b = builder.delay("b", x, samples=1)
        s = builder.add("sum", [branch_a, branch_b])
        builder.output("y", s)
        return builder.build()

    def test_tracked_handles_correlation_exactly(self):
        graph = self._reconvergent_graph()
        source = quantization_noise_stats(10)
        # True output noise: e[n] + e[n-1], power 2 sigma^2 (white e).
        expected = 2.0 * source.variance
        tracked = evaluate_psd_tracked(graph, 256).total_power
        assert tracked == pytest.approx(expected, rel=1e-6)

    def test_uncorrelated_psd_method_also_correct_here(self):
        """For a white source the cross term integrates to zero power...

        ... except it does not vanish bin-per-bin: |1 + e^{-jw}|^2 averages
        to 2, so the scalar power happens to agree while the spectrum
        differs.  Both facts are asserted.
        """
        graph = self._reconvergent_graph()
        psd = evaluate_psd(graph, 256)
        tracked_psd = evaluate_psd_tracked(graph, 256)
        assert psd.total_power == pytest.approx(tracked_psd.total_power,
                                                rel=1e-6)
        assert not np.allclose(psd.ac, tracked_psd.ac, rtol=0.01, atol=0.0)


class TestPathFunctions:
    def test_source_paths_enumerated(self):
        graph = _two_stage_graph(10)
        paths = source_path_functions(graph)
        assert set(paths) == {"x", "lp", "hp"}

    def test_path_function_composition(self):
        graph = _two_stage_graph(10)
        paths = source_path_functions(graph)
        lp = graph.node("lp")._effective_transfer_function()
        hp = graph.node("hp")._effective_transfer_function()
        expected = lp.cascade(hp).energy()
        assert paths["x"].energy() == pytest.approx(expected, rel=1e-9)

    def test_multirate_rejected(self):
        builder = SfgBuilder()
        x = builder.input("x", fractional_bits=8)
        d = builder.downsample("d", x)
        builder.output("y", d)
        graph = builder.build()
        with pytest.raises(NotImplementedError):
            evaluate_flat(graph)
        with pytest.raises(NotImplementedError):
            evaluate_psd_tracked(graph, 64)


class TestPerNodeResults:
    def test_all_nodes_reported(self):
        graph = _two_stage_graph(10)
        psd_all = evaluate_psd_all(graph, 128)
        stats_all = evaluate_agnostic_all(graph)
        assert set(psd_all) == set(graph.nodes)
        assert set(stats_all) == set(graph.nodes)

    def test_noise_accumulates_along_the_chain(self):
        graph = _two_stage_graph(10)
        psd_all = evaluate_psd_all(graph, 128)
        assert psd_all["x"].total_power <= psd_all["lp"].total_power
        assert psd_all["lp"].total_power > 0.0


class TestValidation:
    def test_invalid_bins_rejected(self):
        graph = _single_fir_graph()
        with pytest.raises(ValueError):
            evaluate_psd(graph, 1)

    def test_unknown_output_rejected(self):
        graph = _single_fir_graph()
        with pytest.raises(ValueError):
            evaluate_psd(graph, 64, output="nope")
        with pytest.raises(ValueError):
            evaluate_agnostic(graph, output="nope")
