"""Unit tests for the accuracy metrics."""

import numpy as np
import pytest

from repro.analysis.metrics import (
    ed_deviation,
    ed_from_records,
    equivalent_bit_error,
    is_sub_one_bit,
    mse,
    noise_power,
    sqnr_db,
)


class TestBasicMetrics:
    def test_noise_power(self):
        assert noise_power(np.array([1.0, -1.0, 1.0])) == pytest.approx(1.0)

    def test_noise_power_empty_rejected(self):
        with pytest.raises(ValueError):
            noise_power(np.array([]))

    def test_mse(self):
        a = np.array([1.0, 2.0])
        b = np.array([1.5, 2.0])
        assert mse(a, b) == pytest.approx(0.125)

    def test_mse_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            mse(np.zeros(3), np.zeros(4))

    def test_sqnr_db(self):
        assert sqnr_db(1.0, 0.001) == pytest.approx(30.0)

    def test_sqnr_rejects_non_positive(self):
        with pytest.raises(ValueError):
            sqnr_db(0.0, 1.0)
        with pytest.raises(ValueError):
            sqnr_db(1.0, 0.0)


class TestEdDeviation:
    def test_exact_estimate_gives_zero(self):
        assert ed_deviation(1e-6, 1e-6) == 0.0

    def test_underestimate_is_positive(self):
        assert ed_deviation(2.0, 1.0) == pytest.approx(0.5)

    def test_overestimate_is_negative(self):
        assert ed_deviation(1.0, 2.0) == pytest.approx(-1.0)

    def test_non_positive_simulation_rejected(self):
        with pytest.raises(ValueError):
            ed_deviation(0.0, 1.0)

    def test_from_records(self):
        error = np.array([0.1, -0.1])
        assert ed_from_records(error, 0.01) == pytest.approx(0.0)


class TestOneBitBand:
    def test_exact_is_sub_one_bit(self):
        assert is_sub_one_bit(0.0)

    def test_factor_two_is_sub_one_bit(self):
        # Estimate half / double the simulated power -> within one bit.
        assert is_sub_one_bit(ed_deviation(1.0, 0.5))
        assert is_sub_one_bit(ed_deviation(1.0, 2.0))

    def test_factor_five_is_over_one_bit(self):
        assert not is_sub_one_bit(ed_deviation(1.0, 5.0))
        assert not is_sub_one_bit(ed_deviation(5.0, 1.0))

    def test_band_boundaries(self):
        # One bit corresponds to a power factor of exactly 4.
        assert not is_sub_one_bit(ed_deviation(1.0, 4.0))       # Ed = -300 %
        assert not is_sub_one_bit(ed_deviation(4.0, 1.0))       # Ed = +75 %
        assert is_sub_one_bit(ed_deviation(1.0, 3.99))
        assert is_sub_one_bit(ed_deviation(3.99, 1.0))

    def test_band_endpoints_pin_factor_of_four(self):
        # With Ed = (sim - est)/sim the one-bit band is (-300 %, +75 %):
        # the 4x over-estimate sits exactly on the lower endpoint, the 4x
        # under-estimate exactly on the upper one, both excluded (open
        # interval).
        assert ed_deviation(1.0, 4.0) == pytest.approx(-3.0)
        assert ed_deviation(4.0, 1.0) == pytest.approx(0.75)
        eps = 1e-12
        assert is_sub_one_bit(-3.0 + eps) and not is_sub_one_bit(-3.0)
        assert is_sub_one_bit(0.75 - eps) and not is_sub_one_bit(0.75)


class TestEquivalentBits:
    def test_equal_powers_give_zero_bits(self):
        assert equivalent_bit_error(1.0, 1.0) == 0.0

    def test_factor_four_is_one_bit(self):
        assert equivalent_bit_error(1.0, 4.0) == pytest.approx(1.0)
        assert equivalent_bit_error(4.0, 1.0) == pytest.approx(1.0)

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            equivalent_bit_error(0.0, 1.0)
