"""Legacy (pre-compiled-plan) reference semantics, shared across tests.

The reference traversals moved into the package
(:mod:`repro.verify.legacy`) when the differential fuzzing harness
started running the same plan-vs-legacy comparisons from the ``fuzz``
CLI; this module re-exports them so the fixture suites keep their
historical import (``from legacy_reference import legacy_psd, ...``).

``tests/test_plan_equivalence.py`` pins the equivalence on the paper's
benchmark systems; ``tests/test_campaign_scenarios.py`` re-uses the same
references for every campaign scenario family;
``tests/test_verify_differential.py`` exercises them on seeded random
graphs.
"""

from repro.verify.legacy import (  # noqa: F401
    legacy_agnostic,
    legacy_flat,
    legacy_psd,
    legacy_run,
    legacy_tracked,
    legacy_walk,
)
