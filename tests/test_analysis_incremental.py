"""Unit coverage of incremental re-evaluation (:mod:`repro.analysis._engine`).

The differential ``incremental`` check fuzzes the contract over random
graphs; this suite pins the pieces on hand-built systems: the plan's
epoch / dirty-cone machinery, the :class:`NoiseMemo` pull rules and
counters, bitwise identity of cone recomputes against cold walks, the
memo-backed batched walks, the scoped :func:`memoization_disabled`
toggle, the flat method's path-function cache and the simulation
evaluator's reference-run memo.
"""

import numpy as np
import pytest

from repro.analysis._engine import (
    memoization_disabled,
    memoization_enabled,
    plan_memo,
)
from repro.analysis.agnostic_method import evaluate_agnostic
from repro.analysis.flat_method import evaluate_flat, source_path_functions
from repro.analysis.psd_method import (
    evaluate_psd,
    evaluate_psd_batch,
    evaluate_psd_tracked,
)
from repro.analysis.simulation_method import SimulationEvaluator
from repro.data.signals import uniform_white_noise
from repro.lti.fir_design import design_fir_highpass, design_fir_lowpass
from repro.sfg.builder import SfgBuilder
from repro.sfg.plan import CompiledPlan, compile_plan
from repro.systems.families import build_dwt97_bank, build_scalability_bank


def _fork_graph(bits=12):
    """input -> lp -> {hp, gain} -> add: one step with two successors."""
    builder = SfgBuilder("fork")
    x = builder.input("x", fractional_bits=bits)
    lp = builder.fir("lp", design_fir_lowpass(9, 0.4), x,
                     fractional_bits=bits)
    hp = builder.fir("hp", design_fir_highpass(9, 0.5), lp,
                     fractional_bits=bits)
    g = builder.gain("g", 0.5, lp, fractional_bits=bits)
    merged = builder.add("sum", [hp, g], fractional_bits=bits)
    builder.output("y", merged)
    return builder.build()


class TestPlanEpochs:
    def test_requantize_stamps_only_changed_cone_roots(self):
        plan = compile_plan(_fork_graph())
        epoch = plan.epoch
        plan.requantize({"hp": 10})
        assert plan.epoch == epoch + 1
        dirty = plan.steps_dirty_since(epoch)
        assert [plan.steps[i].node.name for i in dirty] == ["hp"]

    def test_noop_requantize_does_not_bump_the_epoch(self):
        plan = compile_plan(_fork_graph(bits=12))
        epoch = plan.epoch
        plan.requantize({"hp": 12})  # already at 12 bits
        assert plan.epoch == epoch
        assert plan.steps_dirty_since(epoch).size == 0

    def test_downstream_cone_is_topological_and_transitive(self):
        plan = compile_plan(_fork_graph())
        lp = plan.index_of["lp"]
        cone = plan.downstream_cone([lp])
        names = [plan.steps[i].node.name for i in cone]
        # lp feeds both hp and g, which merge into sum and the output.
        assert names == ["lp", "hp", "g", "sum", "y"] or \
            set(names) == {"lp", "hp", "g", "sum", "y"}
        assert cone == sorted(cone)

    def test_fresh_plan_starts_clean(self):
        plan = CompiledPlan(_fork_graph())
        assert plan.steps_dirty_since(plan.epoch).size == 0


class TestNoiseMemoPulls:
    @pytest.mark.parametrize("bits", [10, 12])
    def test_pure_hit_leaves_counters_alone(self, bits):
        plan = compile_plan(_fork_graph(bits=bits))
        memo = plan_memo(plan)
        first = evaluate_psd(plan, 64)
        after_build = memo.counters()
        assert after_build["full_walks"] == 1
        second = evaluate_psd(plan, 64)
        assert memo.counters() == after_build
        assert np.array_equal(first.ac, second.ac)
        assert first.mean == second.mean

    def test_cone_recompute_matches_cold_walk_bitwise(self):
        plan = compile_plan(_fork_graph())
        evaluate_psd(plan, 64)
        evaluate_agnostic(plan)
        evaluate_psd_tracked(plan, 64)
        plan.requantize({"g": 8})
        warm_psd = evaluate_psd(plan, 64)
        warm_stats = evaluate_agnostic(plan)
        warm_tracked = evaluate_psd_tracked(plan, 64)
        with memoization_disabled():
            cold_psd = evaluate_psd(plan, 64)
            cold_stats = evaluate_agnostic(plan)
            cold_tracked = evaluate_psd_tracked(plan, 64)
        assert np.array_equal(warm_psd.ac, cold_psd.ac)
        assert warm_psd.mean == cold_psd.mean
        assert warm_stats.mean == cold_stats.mean
        assert warm_stats.variance == cold_stats.variance
        assert np.array_equal(warm_tracked.ac, cold_tracked.ac)
        assert warm_tracked.mean == cold_tracked.mean

    def test_cone_recompute_touches_only_the_cone(self):
        bank = build_scalability_bank(branches=8)
        plan = compile_plan(bank)
        memo = plan_memo(plan)
        evaluate_psd(plan, 64)
        built = memo.counters()["steps_recomputed"]
        assert built == len(plan.steps)
        plan.requantize({"branch0": 10})
        evaluate_psd(plan, 64)
        counters = memo.counters()
        assert counters["cone_recomputes"] == 1
        cone = counters["steps_recomputed"] - built
        # branch0 + its adder path, strictly less than the whole bank.
        assert 1 < cone < len(plan.steps)
        assert counters["steps_reused"] > 0

    def test_multirate_graph_memoizes_too(self):
        plan = compile_plan(build_dwt97_bank())
        evaluate_psd(plan, 64)
        plan.requantize({"g0": 9})
        warm = evaluate_psd(plan, 64)
        with memoization_disabled():
            cold = evaluate_psd(plan, 64)
        assert np.array_equal(warm.ac, cold.ac)
        assert warm.mean == cold.mean

    def test_memo_is_per_plan_and_rebuilt_with_it(self):
        graph = _fork_graph()
        plan = compile_plan(graph)
        memo = plan_memo(plan)
        assert plan_memo(plan) is memo
        assert plan_memo(graph) is memo  # resolves through compile_plan
        assert plan_memo(compile_plan(graph)) is memo


class TestBatchedWalksWithMemo:
    def test_batch_rows_match_memo_blind_batch_bitwise(self):
        plan = compile_plan(_fork_graph())
        evaluate_psd(plan, 64)  # warm the scalar memo the batch broadcasts
        assignments = [{"hp": 9}, {"hp": 12, "g": 7}, {}]
        warm = evaluate_psd_batch(plan, 64, assignments)
        with memoization_disabled():
            cold = evaluate_psd_batch(plan, 64, assignments)
        assert np.array_equal(warm.ac, cold.ac)
        assert np.array_equal(warm.mean, cold.mean)

    def test_broadcast_preserves_negative_zero(self):
        # Out-of-cone rows are broadcast from the memoized scalar values;
        # adding 0.0 instead would flip -0.0 to +0.0 and break bitwise
        # identity with the sequential walk.
        plan = compile_plan(_fork_graph())
        evaluate_psd(plan, 64)
        stack = evaluate_psd_batch(plan, 64, [{}, {"g": 6}])
        plan.requantize({})
        scalar = evaluate_psd(plan, 64)
        assert np.array_equal(stack.ac[0], scalar.ac)
        assert stack.mean[0] == scalar.mean


class TestMemoizationToggle:
    def test_scoped_and_reentrant(self):
        assert memoization_enabled()
        with memoization_disabled():
            assert not memoization_enabled()
            with memoization_disabled():
                assert not memoization_enabled()
            assert not memoization_enabled()
        assert memoization_enabled()

    def test_disabled_walks_do_not_touch_the_memo(self):
        plan = compile_plan(_fork_graph())
        with memoization_disabled():
            evaluate_psd(plan, 64)
        assert plan_memo(plan).counters()["full_walks"] == 0


class TestFlatPathFunctionCache:
    def test_repeat_call_served_from_cache(self):
        plan = compile_plan(_fork_graph())
        first = source_path_functions(plan)
        cache = plan_memo(plan).path_functions
        assert len(cache) == 1
        second = source_path_functions(plan)
        assert len(cache) == 1
        assert first.keys() == second.keys()
        assert first is not second  # callers get their own dict
        assert evaluate_flat(plan).power == evaluate_flat(plan).power

    def test_coefficient_edit_misses_data_edit_hits(self):
        # Path functions depend only on effective coefficient precision;
        # the graph ties coefficient bits to the data path, so a
        # requantize changes the fingerprint and must miss.
        plan = compile_plan(_fork_graph())
        source_path_functions(plan)
        fingerprint = plan.coefficient_fingerprint()
        plan.requantize({"hp": 9})
        assert plan.coefficient_fingerprint() != fingerprint
        source_path_functions(plan)
        assert len(plan_memo(plan).path_functions) == 2

    def test_disabled_bypasses_the_cache(self):
        plan = compile_plan(_fork_graph())
        with memoization_disabled():
            source_path_functions(plan)
        assert len(plan_memo(plan).path_functions) == 0


class TestSimulationReferenceMemo:
    def _evaluator_and_stimulus(self):
        plan = compile_plan(_fork_graph())
        evaluator = SimulationEvaluator(plan)
        stimulus = {"x": uniform_white_noise(512, seed=3)}
        return plan, evaluator, stimulus

    def test_reference_run_reused_across_data_path_edits(self, monkeypatch):
        plan, evaluator, stimulus = self._evaluator_and_stimulus()
        first = evaluator.error_signal(stimulus)
        executor = evaluator._executor
        real_run_pair = executor.run_pair
        calls = {"run_pair": 0}

        def counting_run_pair(*args, **kwargs):
            calls["run_pair"] += 1
            return real_run_pair(*args, **kwargs)

        monkeypatch.setattr(executor, "run_pair", counting_run_pair)
        second = evaluator.error_signal(stimulus)
        assert calls["run_pair"] == 0  # reference leg served from memo
        assert np.array_equal(first, second)

    def test_memo_results_match_disabled_runs_bitwise(self):
        plan, evaluator, stimulus = self._evaluator_and_stimulus()
        evaluator.error_signal(stimulus)  # prime the reference memo
        memoized = evaluator.error_signal(stimulus)
        with memoization_disabled():
            cold = evaluator.error_signal(stimulus)
        assert np.array_equal(memoized, cold)

    def test_different_stimulus_misses(self, monkeypatch):
        plan, evaluator, stimulus = self._evaluator_and_stimulus()
        evaluator.error_signal(stimulus)
        executor = evaluator._executor
        real_run_pair = executor.run_pair
        calls = {"run_pair": 0}

        def counting_run_pair(*args, **kwargs):
            calls["run_pair"] += 1
            return real_run_pair(*args, **kwargs)

        monkeypatch.setattr(executor, "run_pair", counting_run_pair)
        evaluator.error_signal({"x": uniform_white_noise(512, seed=4)})
        assert calls["run_pair"] == 1
