"""The observability layer: registry, spans, exporters, CLI, campaign.

Covers the contract the instrumentation relies on:

* label-keyed instruments, snapshot/merge (worker hand-off), flat export;
* span nesting and the shared no-op fast path when observability is off
  (zero allocation, bitwise-identical evaluation results);
* Chrome trace-event export, the trace summarizer and its coverage
  figure;
* the global ``--trace`` / ``--metrics`` CLI flags, the ``obs``
  subcommand, and ``bench --json``;
* the acceptance property: a traced campaign's
  ``campaign.cache.hits`` / ``misses`` metrics equal the counts the
  runner itself reports, and the trace covers (nearly) the whole run.
"""

import json
import logging
import os

import pytest

from repro import obs
from repro.campaign import CampaignSpec, ScenarioSpec, StimulusSpec, run_campaign
from repro.cli import main
from repro.obs import (
    MetricsRegistry,
    format_metric_name,
    metric_inc,
    metric_observe,
    metric_set,
    span,
)
from repro.obs.export import (
    chrome_trace,
    load_metrics,
    load_trace,
    metrics_table,
    summarize_trace,
    trace_coverage,
    write_metrics,
    write_trace,
)
from repro.obs.trace import NOOP_SPAN, Span, TraceCollector


@pytest.fixture(autouse=True)
def _no_leaked_session():
    """Every test starts and ends with observability disabled."""
    obs.disable()
    yield
    obs.disable()


def _campaign_spec(**overrides):
    settings = dict(
        scenarios=(ScenarioSpec("polyphase_decimator",
                                {"factor": 2, "taps": 8}),),
        methods=("psd", "agnostic"),
        wordlengths=(8, 12),
        n_psd=64,
        stimulus=StimulusSpec(num_samples=1_000, discard_transient=32),
        seed=5)
    settings.update(overrides)
    return CampaignSpec(**settings)


# ----------------------------------------------------------------------
# Metrics registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_counter_identity_is_name_plus_labels(self):
        registry = MetricsRegistry()
        a = registry.counter("tape.executions", backend="codegen")
        b = registry.counter("tape.executions", backend="codegen")
        c = registry.counter("tape.executions", backend="numpy")
        assert a is b and a is not c
        a.inc()
        a.inc(2)
        assert registry.count_of("tape.executions", backend="codegen") == 3
        assert registry.count_of("tape.executions", backend="numpy") == 0

    def test_counter_rejects_negative_increment(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("x").inc(-1)

    def test_gauge_and_histogram(self):
        registry = MetricsRegistry()
        registry.gauge("campaign.elapsed_seconds").set(1.5)
        registry.gauge("campaign.elapsed_seconds").set(2.5)
        histogram = registry.histogram("span.dur", span="plan.compile")
        for value in (3.0, 1.0, 2.0):
            histogram.record(value)
        assert registry.gauge("campaign.elapsed_seconds").value == 2.5
        assert histogram.count == 3
        assert histogram.total == 6.0
        assert histogram.minimum == 1.0
        assert histogram.maximum == 3.0
        assert histogram.mean == 2.0

    def test_snapshot_merge_accumulates_counters(self):
        worker = MetricsRegistry()
        worker.counter("memo.full_walks").inc(2)
        worker.counter("plan.runs", mode="error").inc(4)
        worker.gauge("campaign.elapsed_seconds").set(9.0)
        worker.histogram("span.dur").record(1.0)

        driver = MetricsRegistry()
        driver.counter("memo.full_walks").inc(1)
        driver.histogram("span.dur").record(3.0)
        driver.merge(worker.snapshot())

        assert driver.count_of("memo.full_walks") == 3
        assert driver.count_of("plan.runs", mode="error") == 4
        assert driver.gauge("campaign.elapsed_seconds").value == 9.0
        merged = driver.histogram("span.dur")
        assert (merged.count, merged.total) == (2, 4.0)
        assert (merged.minimum, merged.maximum) == (1.0, 3.0)

    def test_flattened_formats_labels(self):
        registry = MetricsRegistry()
        registry.counter("campaign.cache.lookups", result="hit").inc(7)
        registry.counter("plain").inc()
        flat = registry.flattened()
        assert flat["campaign.cache.lookups{result=hit}"] == 7
        assert flat["plain"] == 1
        assert format_metric_name("a", ()) == "a"
        assert format_metric_name("a", (("k", "v"), ("l", "w"))) == "a{k=v,l=w}"


# ----------------------------------------------------------------------
# Spans and session state
# ----------------------------------------------------------------------
class TestSpans:
    def test_disabled_span_is_the_shared_noop(self):
        assert span("anything", attr=1) is NOOP_SPAN
        assert span("other") is NOOP_SPAN
        with span("still.noop") as handle:
            handle.set(extra=2)  # must be accepted and dropped

    def test_disabled_metric_helpers_are_noops(self):
        metric_inc("x")
        metric_set("y", 1.0)
        metric_observe("z", 2.0)
        assert obs.current() is None

    def test_observe_collects_nested_spans(self):
        with obs.observe() as session:
            with span("outer", kind="test") as outer:
                outer.set(discovered=True)
                with span("inner"):
                    pass
            metric_inc("events", 2, kind="test")
        spans = {entry["name"]: entry for entry in session.trace.snapshot()}
        assert spans["outer"]["depth"] == 0
        assert spans["inner"]["depth"] == 1
        assert spans["outer"]["attrs"] == {"kind": "test", "discovered": True}
        assert spans["outer"]["pid"] == os.getpid()
        assert session.metrics.count_of("events", kind="test") == 2
        assert obs.current() is None  # restored on exit

    def test_observe_restores_previous_session(self):
        outer_session = obs.enable()
        with obs.observe() as inner_session:
            assert obs.current() is inner_session
        assert obs.current() is outer_session

    def test_record_span_depth_offset(self):
        with obs.observe() as session:
            with span("method"):
                obs.record_span("job", 100.0, 0.5, depth_offset=1, key="k1")
        by_name = {entry["name"]: entry for entry in session.trace.snapshot()}
        # the open "method" span counts itself in current_depth (1), and
        # the offset nests the job one further level below it
        assert by_name["method"]["depth"] == 0
        assert by_name["job"]["depth"] == 2
        assert by_name["job"]["attrs"]["key"] == "k1"
        assert by_name["job"]["ts"] == 100.0
        assert by_name["job"]["dur"] == 0.5

    def test_ingest_merges_foreign_spans(self):
        foreign = [Span("worker.span", ts=1.0, dur=0.25, depth=0,
                        pid=99999, tid=1, attrs={"a": 1}).to_dict()]
        with obs.observe() as session:
            obs.ingest_spans(foreign)
        merged = session.trace.snapshot()
        assert merged[0]["pid"] == 99999
        assert merged[0]["name"] == "worker.span"

    def test_tracing_off_metrics_only_session(self):
        with obs.observe(trace=False) as session:
            assert obs.enabled()
            assert not obs.tracing()
            assert span("x") is NOOP_SPAN
            obs.record_span("y", 0.0, 1.0)  # must not blow up
            metric_inc("counted")
        assert session.trace is None
        assert session.metrics.count_of("counted") == 1


# ----------------------------------------------------------------------
# The no-op fast path
# ----------------------------------------------------------------------
class TestNoopFastPath:
    def test_disabled_run_leaves_no_global_state(self):
        from repro.analysis.psd_method import evaluate_psd
        from repro.campaign import build_scenario
        from repro.sfg.plan import compile_plan

        instance = build_scenario("polyphase_decimator",
                                  {"factor": 2, "taps": 8})
        plan = compile_plan(instance.graph)
        assert obs.current() is None
        evaluate_psd(plan, 64)
        assert obs.current() is None  # nothing sprang into existence

    def test_results_bitwise_identical_with_and_without_obs(self):
        from repro.analysis.psd_method import evaluate_psd
        from repro.campaign import build_scenario
        from repro.sfg.plan import compile_plan

        def run_once():
            instance = build_scenario("polyphase_decimator",
                                      {"factor": 2, "taps": 8})
            plan = compile_plan(instance.graph)
            psd = evaluate_psd(plan, 64)
            return psd.total_power, psd.mean, psd.variance

        baseline = run_once()
        with obs.observe() as session:
            observed = run_once()
        assert baseline == observed  # bitwise: same floats either way
        assert session.trace.snapshot()  # ... and the run left spans

    def test_instrumented_counters_exact_without_session(self):
        # NoiseMemo's registry-backed counters work with obs disabled.
        from repro.analysis._engine import plan_memo
        from repro.analysis.psd_method import evaluate_psd
        from repro.campaign import build_scenario
        from repro.sfg.plan import compile_plan

        instance = build_scenario("polyphase_decimator",
                                  {"factor": 2, "taps": 8})
        plan = compile_plan(instance.graph)
        evaluate_psd(plan, 64)
        memo = plan_memo(plan)
        assert memo.full_walks >= 1
        assert memo.metrics.count_of("memo.full_walks") == memo.full_walks


# ----------------------------------------------------------------------
# Exporters
# ----------------------------------------------------------------------
def _sample_spans():
    return [
        Span("cli.campaign", ts=10.0, dur=1.0, depth=0, pid=1, tid=1).to_dict(),
        Span("campaign.job", ts=10.1, dur=0.4, depth=1, pid=1, tid=1,
             attrs={"cached": True}).to_dict(),
        Span("campaign.job", ts=10.5, dur=0.4, depth=1, pid=2, tid=2,
             attrs={"cached": False}).to_dict(),
    ]


class TestExport:
    def test_chrome_trace_structure(self):
        document = chrome_trace(_sample_spans(), origin=10.0)
        events = document["traceEvents"]
        assert [event["name"] for event in events] == [
            "cli.campaign", "campaign.job", "campaign.job"]
        root = events[0]
        assert root["ph"] == "X"
        assert root["ts"] == 0.0          # normalised to the origin
        assert root["dur"] == pytest.approx(1e6)  # microseconds
        assert root["args"]["depth"] == 0
        assert events[1]["args"]["cached"] is True
        assert {event["pid"] for event in events} == {1, 2}
        assert document["otherData"]["origin"] == 10.0

    def test_write_and_load_roundtrip(self, tmp_path):
        with obs.observe() as session:
            with span("root"):
                pass
        trace_path = tmp_path / "trace.json"
        metrics_path = tmp_path / "metrics.json"
        session.metrics.counter("events").inc(3)
        write_trace(str(trace_path), session)
        write_metrics(str(metrics_path), session)
        document = load_trace(str(trace_path))
        assert document["traceEvents"][0]["name"] == "root"
        snapshot = load_metrics(str(metrics_path))
        assert snapshot["metrics"]["events"] == 3

    def test_load_trace_rejects_non_trace_json(self, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text("{}")
        with pytest.raises(ValueError, match="traceEvents"):
            load_trace(str(path))
        with pytest.raises(ValueError, match="metrics"):
            load_metrics(str(path))

    def test_summarize_trace_reports_coverage_and_cache_ratio(self):
        document = chrome_trace(_sample_spans(), origin=10.0)
        summary = summarize_trace(document)
        assert "cli.campaign" in summary
        assert "campaign jobs: 2  cached: 1 (50.0%)" in summary
        # root span covers 1.0s of a 1.0s extent
        assert "top-level coverage: 100.0%" in summary
        assert trace_coverage(document) == pytest.approx(1.0)
        assert summarize_trace({"traceEvents": []}) == "(empty trace)"

    def test_summarize_trace_top_limits_rows(self):
        document = chrome_trace(_sample_spans(), origin=10.0)
        limited = summarize_trace(document, top=1)
        # campaign.job (0.8s total) outranks cli.campaign's 1.0s? No:
        # cli.campaign total 1.0 > 0.8, so it is the surviving row.
        assert "cli.campaign" in limited.splitlines()[2]

    def test_metrics_table_renders_all_kinds(self):
        registry = MetricsRegistry()
        registry.counter("hits", result="hit").inc(2)
        registry.gauge("elapsed").set(1.25)
        registry.histogram("dur").record(2.0)
        rendered = metrics_table(registry.flattened())
        assert "hits{result=hit}" in rendered
        assert "1.25" in rendered
        assert "count=1" in rendered
        assert metrics_table({}) == "(no metrics recorded)"


# ----------------------------------------------------------------------
# CLI integration
# ----------------------------------------------------------------------
class TestCli:
    def test_trace_and_metrics_flags_write_files(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.json"
        metrics_path = tmp_path / "metrics.json"
        status = main(["campaign",
                       "--scenarios", "polyphase_decimator:factor=2,taps=8",
                       "--methods", "psd", "--wordlengths", "8", "12",
                       "--samples", "1000", "--n-psd", "64",
                       "--trace", str(trace_path),
                       "--metrics", str(metrics_path)])
        assert status == 0
        out = capsys.readouterr().out
        assert f"wrote {trace_path}" in out
        assert f"wrote {metrics_path}" in out

        document = load_trace(str(trace_path))
        names = {event["name"] for event in document["traceEvents"]}
        assert "cli.campaign" in names
        assert "campaign.run" in names
        assert "campaign.job" in names
        # the root CLI span keeps coverage at (essentially) 100%
        assert trace_coverage(document) >= 0.95

        metrics = load_metrics(str(metrics_path))["metrics"]
        assert metrics["campaign.cache.misses"] == 2
        assert metrics["campaign.cache.hits"] == 0
        assert obs.current() is None  # session torn down after the command

    def test_metrics_flag_alone_skips_tracing(self, tmp_path):
        metrics_path = tmp_path / "metrics.json"
        status = main(["evaluate", "--metrics", str(metrics_path),
                       str(_write_example_system(tmp_path))])
        assert status == 0
        metrics = load_metrics(str(metrics_path))["metrics"]
        assert metrics.get("memo.full_walks", 0) >= 1
        assert not (tmp_path / "trace.json").exists()

    def test_obs_subcommand_summarizes(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.json"
        metrics_path = tmp_path / "metrics.json"
        with obs.observe() as session:
            with span("cli.demo"):
                metric_inc("demo.events", 3)
        write_trace(str(trace_path), session)
        write_metrics(str(metrics_path), session)

        status = main(["obs", str(trace_path),
                       "--metrics-file", str(metrics_path)])
        assert status == 0
        out = capsys.readouterr().out
        assert "cli.demo" in out
        assert "top-level coverage" in out
        assert "demo.events" in out

    def test_obs_subcommand_rejects_garbage(self, tmp_path, capsys):
        path = tmp_path / "not_a_trace.json"
        path.write_text("{}")
        status = main(["obs", str(path)])
        assert status == 1
        assert "traceEvents" in capsys.readouterr().err

    def test_default_output_unchanged_without_flags(self, tmp_path, capsys):
        system = _write_example_system(tmp_path)
        assert main(["evaluate", str(system)]) == 0
        first = capsys.readouterr().out
        assert main(["evaluate", str(system)]) == 0
        second = capsys.readouterr().out
        assert "wrote" not in first
        assert first.splitlines()[0] == second.splitlines()[0]


def _write_example_system(tmp_path):
    from repro.campaign import build_scenario
    from repro.sfg.serialization import save_graph

    instance = build_scenario("polyphase_decimator", {"factor": 2, "taps": 8})
    path = tmp_path / "system.json"
    save_graph(instance.graph, path)
    return path


# ----------------------------------------------------------------------
# bench --json
# ----------------------------------------------------------------------
class TestBenchJson:
    def test_baseline_diff_rows(self):
        from repro.bench import baseline_diff

        payloads = [{"name": "sim_engine_ff",
                     "speedup": {"bit_true_simulation": 2.4}}]
        baseline = {"floors": {
            "sim_engine_ff": {"bit_true_simulation": 1.2},
            "unmeasured_bench": {"key": 9.0},
        }}
        rows = baseline_diff(payloads, baseline)
        assert rows == [{"name": "sim_engine_ff",
                         "key": "bit_true_simulation",
                         "floor": 1.2, "measured": 2.4,
                         "margin": pytest.approx(2.0), "ok": True}]

    def test_baseline_diff_flags_shortfall_and_optional_numba(self):
        from repro.bench import baseline_diff
        from repro.simkernel import numba_available

        payloads = [{"name": "sim_engine_iir",
                     "speedup": {"single_stream": 0.5}}]
        baseline = {"floors": {"sim_engine_iir": {
            "single_stream": 1.5, "single_stream_numba": 1.5}}}
        rows = {row["key"]: row for row in baseline_diff(payloads, baseline)}
        assert rows["single_stream"]["ok"] is False
        assert rows["single_stream"]["margin"] == pytest.approx(1 / 3)
        numba_row = rows["single_stream_numba"]
        assert numba_row["measured"] is None
        if numba_available():
            assert numba_row["ok"] is False
        else:
            assert numba_row["ok"] is True
            assert numba_row["skipped"] == "numba backend unavailable"

    def test_cli_bench_json_emits_payloads(self, tmp_path, capsys):
        status = main(["bench", "--names", "welch_psd",
                       "--samples", "20000",
                       "--results", str(tmp_path / "results"), "--json"])
        assert status == 0
        document = json.loads(capsys.readouterr().out)
        assert document["checked"] is False
        (payload,) = document["payloads"]
        assert payload["name"] == "welch_psd"
        assert "warmup_s" in payload

    def test_cli_bench_check_json_includes_diff(self, tmp_path, capsys):
        status = main(["bench", "--names", "welch_psd",
                       "--samples", "20000",
                       "--results", str(tmp_path / "results"),
                       "--check", "--json"])
        document = json.loads(capsys.readouterr().out)
        assert document["checked"] is True
        assert document["missing_baseline"] == []
        keys = {row["key"] for row in document["diff"]
                if row["name"] == "welch_psd"}
        assert keys == {"welch", "welch_batched"}
        for row in document["diff"]:
            assert row["margin"] == pytest.approx(
                row["measured"] / row["floor"])
        assert document["ok"] == (status == 0)
        assert document["ok"] == (not document["regressions"])


# ----------------------------------------------------------------------
# Campaign acceptance: metrics equal the runner's own accounting
# ----------------------------------------------------------------------
class TestCampaignObservability:
    def test_metrics_match_runner_counts_cold_and_warm(self, tmp_path):
        cache_dir = tmp_path / "cache"
        with obs.observe() as cold_session:
            cold = run_campaign(_campaign_spec(), cache_dir=cache_dir)
        cold_metrics = cold_session.metrics
        assert cold_metrics.count_of("campaign.cache.hits") == cold.cache_hits
        assert cold_metrics.count_of("campaign.cache.misses") == cold.computed
        assert (cold_metrics.count_of("campaign.jobs.skipped")
                == cold.skipped_unsupported)
        assert cold.computed == 4  # 2 methods x 2 wordlengths

        with obs.observe() as warm_session:
            warm = run_campaign(_campaign_spec(), cache_dir=cache_dir)
        warm_metrics = warm_session.metrics
        assert warm.cache_hits == 4 and warm.computed == 0
        assert warm_metrics.count_of("campaign.cache.hits") == 4
        assert warm_metrics.count_of("campaign.cache.misses") == 0
        # the store-level lookup counters agree with the job-level view
        assert warm_metrics.count_of("campaign.cache.lookups",
                                     result="hit") == 4

    def test_every_job_leaves_a_span(self, tmp_path):
        cache_dir = tmp_path / "cache"
        with obs.observe() as session:
            result = run_campaign(_campaign_spec(), cache_dir=cache_dir)
        jobs = [entry for entry in session.trace.snapshot()
                if entry["name"] == "campaign.job"]
        assert len(jobs) == result.total_jobs
        assert all(entry["attrs"]["cached"] is False for entry in jobs)

        with obs.observe() as warm:
            run_campaign(_campaign_spec(), cache_dir=cache_dir)
        warm_jobs = [entry for entry in warm.trace.snapshot()
                     if entry["name"] == "campaign.job"]
        assert len(warm_jobs) == 4
        assert all(entry["attrs"]["cached"] is True for entry in warm_jobs)

    def test_campaign_run_span_covers_the_trace(self, tmp_path):
        with obs.observe() as session:
            run_campaign(_campaign_spec(), cache_dir=tmp_path / "cache")
        document = chrome_trace(session.trace.snapshot(), session.origin)
        assert trace_coverage(document) >= 0.95

    def test_pool_workers_ship_spans_and_metrics(self, tmp_path):
        spec = _campaign_spec(
            scenarios=(ScenarioSpec("polyphase_decimator",
                                    {"factor": 2, "taps": 8}),
                       ScenarioSpec("interpolator_chain", {"taps": 7})),
            methods=("psd",))
        with obs.observe() as session:
            result = run_campaign(spec, cache_dir=None, workers=2)
        spans = session.trace.snapshot()
        jobs = [entry for entry in spans if entry["name"] == "campaign.job"]
        assert len(jobs) == result.total_jobs == 4
        payload_pids = {entry["pid"] for entry in spans
                        if entry["name"] == "campaign.payload"}
        assert payload_pids  # worker spans made it home
        assert session.metrics.count_of("campaign.cache.misses") == 4
        # worker-side memo counters merged into the driver session
        assert session.metrics.count_of("memo.full_walks") >= 1

    def test_finish_line_log(self, caplog, tmp_path):
        with caplog.at_level(logging.INFO, logger="repro.campaign.runner"):
            result = run_campaign(_campaign_spec(),
                                  cache_dir=tmp_path / "cache")
        records = [record for record in caplog.records
                   if record.name == "repro.campaign.runner"
                   and "campaign finished" in record.getMessage()]
        assert len(records) == 1
        message = records[0].getMessage()
        assert f"{result.total_jobs} jobs" in message
        assert f"{result.computed} computed" in message
