"""Unit tests for window functions."""

import numpy as np
import pytest

from repro.lti.windows import (
    blackman,
    get_window,
    hamming,
    hann,
    kaiser,
    rectangular,
)


class TestIndividualWindows:
    def test_rectangular_is_all_ones(self):
        np.testing.assert_array_equal(rectangular(8), np.ones(8))

    def test_hamming_endpoints(self):
        window = hamming(11)
        assert window[0] == pytest.approx(0.08, abs=1e-12)
        assert window[-1] == pytest.approx(0.08, abs=1e-12)
        assert window[5] == pytest.approx(1.0)

    def test_hann_endpoints_are_zero(self):
        window = hann(9)
        assert window[0] == pytest.approx(0.0, abs=1e-15)
        assert window[-1] == pytest.approx(0.0, abs=1e-15)

    def test_blackman_peak_at_center(self):
        window = blackman(21)
        assert np.argmax(window) == 10

    def test_kaiser_monotone_from_edge_to_center(self):
        window = kaiser(33, beta=8.6)
        half = window[:17]
        assert np.all(np.diff(half) >= -1e-12)

    def test_all_windows_symmetric(self):
        for name in ("rectangular", "hamming", "hann", "blackman", "kaiser"):
            window = get_window(name, 17)
            np.testing.assert_allclose(window, window[::-1], atol=1e-12)

    def test_all_windows_bounded_by_one(self):
        for name in ("rectangular", "hamming", "hann", "blackman", "kaiser"):
            window = get_window(name, 32)
            assert np.max(window) <= 1.0 + 1e-12
            assert np.min(window) >= -1e-12

    def test_length_one_window(self):
        for name in ("hamming", "hann", "blackman", "kaiser"):
            np.testing.assert_array_equal(get_window(name, 1), [1.0])


class TestGetWindow:
    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            get_window("tukey", 8)

    def test_zero_length_rejected(self):
        with pytest.raises(ValueError):
            get_window("hann", 0)

    def test_case_insensitive(self):
        np.testing.assert_array_equal(get_window("HaMMing", 8), hamming(8))
