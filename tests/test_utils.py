"""Unit tests for the utility helpers (tables, timing, validation)."""

import time

import numpy as np
import pytest

from repro.utils.tables import TextTable
from repro.utils.timing import Stopwatch, time_callable
from repro.utils.validation import (
    check_positive_int,
    check_probability,
    check_same_length,
)


class TestTextTable:
    def test_render_contains_headers_and_rows(self):
        table = TextTable(["name", "value"], title="results")
        table.add_row("alpha", 1.25)
        table.add_row("beta", 2)
        text = table.render()
        assert "results" in text
        assert "alpha" in text and "beta" in text
        assert "1.25" in text

    def test_column_count_enforced(self):
        table = TextTable(["a", "b"])
        with pytest.raises(ValueError):
            table.add_row("only-one")

    def test_empty_headers_rejected(self):
        with pytest.raises(ValueError):
            TextTable([])

    def test_alignment_widths(self):
        table = TextTable(["x"])
        table.add_row("a-very-long-cell")
        lines = table.render().splitlines()
        assert len(lines[0]) == len(lines[2])


class TestTiming:
    def test_stopwatch_accumulates(self):
        watch = Stopwatch()
        with watch:
            time.sleep(0.01)
        first = watch.elapsed
        with watch:
            time.sleep(0.01)
        assert watch.elapsed > first

    def test_stopwatch_reset(self):
        watch = Stopwatch()
        with watch:
            pass
        watch.reset()
        assert watch.elapsed == 0.0

    def test_time_callable_returns_result_and_positive_time(self):
        result, seconds = time_callable(sum, [1, 2, 3], repeat=3)
        assert result == 6
        assert seconds >= 0.0

    def test_time_callable_rejects_zero_repeat(self):
        with pytest.raises(ValueError):
            time_callable(sum, [1], repeat=0)

    def test_stopwatch_exit_without_enter_raises(self):
        watch = Stopwatch()
        with pytest.raises(RuntimeError, match="never started"):
            watch.__exit__(None, None, None)

    def test_stopwatch_reenters_after_exception(self):
        # A raising region still accumulates its time and leaves the
        # stopwatch re-enterable.
        watch = Stopwatch()
        with pytest.raises(ValueError):
            with watch:
                raise ValueError("boom")
        after_failure = watch.elapsed
        assert after_failure >= 0.0
        assert watch._started_at is None
        with watch:
            pass
        assert watch.elapsed >= after_failure

    def test_stopwatch_reset_mid_region_discards_start(self):
        watch = Stopwatch()
        watch.__enter__()
        watch.reset()
        # reset() dropped the pending start; closing the region again
        # must complain rather than silently count from a stale origin.
        with pytest.raises(RuntimeError):
            watch.__exit__(None, None, None)

    def test_time_callable_averages_over_repeats(self, monkeypatch):
        # Drive perf_counter with a fake clock: the loop body "takes"
        # one tick per call, so the averaged per-call time is exact.
        from repro.utils import timing

        ticks = iter(range(100))
        monkeypatch.setattr(timing.time, "perf_counter",
                            lambda: float(next(ticks)))
        calls = []

        def work(value):
            calls.append(value)
            return value * 2

        result, seconds = time_callable(work, 21, repeat=4)
        assert result == 42
        assert calls == [21, 21, 21, 21]
        # start=0, end=1 (one tick elapses between the two perf_counter
        # reads), averaged over 4 repetitions.
        assert seconds == pytest.approx(1.0 / 4.0)

    def test_time_callable_returns_last_result(self):
        counter = iter(range(10))
        result, _ = time_callable(lambda: next(counter), repeat=3)
        assert result == 2


class TestValidation:
    def test_check_positive_int(self):
        assert check_positive_int(3, "n") == 3
        with pytest.raises(ValueError):
            check_positive_int(0, "n")
        with pytest.raises(TypeError):
            check_positive_int(2.5, "n")
        with pytest.raises(TypeError):
            check_positive_int(True, "n")

    def test_check_probability(self):
        assert check_probability(0.5, "p") == 0.5
        with pytest.raises(ValueError):
            check_probability(1.5, "p")

    def test_check_same_length(self):
        check_same_length([1, 2], [3, 4])
        with pytest.raises(ValueError):
            check_same_length([1], [1, 2], "a", "b")

    def test_numpy_integers_accepted(self):
        assert check_positive_int(np.int64(4), "n") == 4
