"""Unit tests for the utility helpers (tables, timing, validation)."""

import time

import numpy as np
import pytest

from repro.utils.tables import TextTable
from repro.utils.timing import Stopwatch, time_callable
from repro.utils.validation import (
    check_positive_int,
    check_probability,
    check_same_length,
)


class TestTextTable:
    def test_render_contains_headers_and_rows(self):
        table = TextTable(["name", "value"], title="results")
        table.add_row("alpha", 1.25)
        table.add_row("beta", 2)
        text = table.render()
        assert "results" in text
        assert "alpha" in text and "beta" in text
        assert "1.25" in text

    def test_column_count_enforced(self):
        table = TextTable(["a", "b"])
        with pytest.raises(ValueError):
            table.add_row("only-one")

    def test_empty_headers_rejected(self):
        with pytest.raises(ValueError):
            TextTable([])

    def test_alignment_widths(self):
        table = TextTable(["x"])
        table.add_row("a-very-long-cell")
        lines = table.render().splitlines()
        assert len(lines[0]) == len(lines[2])


class TestTiming:
    def test_stopwatch_accumulates(self):
        watch = Stopwatch()
        with watch:
            time.sleep(0.01)
        first = watch.elapsed
        with watch:
            time.sleep(0.01)
        assert watch.elapsed > first

    def test_stopwatch_reset(self):
        watch = Stopwatch()
        with watch:
            pass
        watch.reset()
        assert watch.elapsed == 0.0

    def test_time_callable_returns_result_and_positive_time(self):
        result, seconds = time_callable(sum, [1, 2, 3], repeat=3)
        assert result == 6
        assert seconds >= 0.0

    def test_time_callable_rejects_zero_repeat(self):
        with pytest.raises(ValueError):
            time_callable(sum, [1], repeat=0)


class TestValidation:
    def test_check_positive_int(self):
        assert check_positive_int(3, "n") == 3
        with pytest.raises(ValueError):
            check_positive_int(0, "n")
        with pytest.raises(TypeError):
            check_positive_int(2.5, "n")
        with pytest.raises(TypeError):
            check_positive_int(True, "n")

    def test_check_probability(self):
        assert check_probability(0.5, "p") == 0.5
        with pytest.raises(ValueError):
            check_probability(1.5, "p")

    def test_check_same_length(self):
        check_same_length([1, 2], [3, 4])
        with pytest.raises(ValueError):
            check_same_length([1], [1, 2], "a", "b")

    def test_numpy_integers_accepted(self):
        assert check_positive_int(np.int64(4), "n") == 4
