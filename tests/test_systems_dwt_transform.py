"""Unit tests for the Daubechies 9/7 filters and transform engines."""

import numpy as np
import pytest

from repro.fixedpoint.qformat import QFormat
from repro.fixedpoint.quantizer import Quantizer
from repro.systems.dwt.daubechies97 import daubechies_9_7_filters
from repro.systems.dwt.dwt1d import analyze_1d, circular_filter, synthesize_1d
from repro.systems.dwt.dwt2d import (
    analyze_2d,
    analyze_multilevel,
    synthesize_2d,
    synthesize_multilevel,
)


class TestFilterBank:
    def test_lowpass_dc_gains(self):
        filters = daubechies_9_7_filters()
        assert np.sum(filters.analysis_lowpass) == pytest.approx(1.0, abs=1e-6)
        assert np.sum(filters.synthesis_lowpass) == pytest.approx(2.0, abs=1e-6)

    def test_highpass_filters_reject_dc(self):
        filters = daubechies_9_7_filters()
        assert np.sum(filters.analysis_highpass) == pytest.approx(0.0, abs=1e-6)
        assert np.sum(filters.synthesis_highpass) == pytest.approx(0.0, abs=1e-6)

    def test_filter_lengths(self):
        filters = daubechies_9_7_filters()
        assert len(filters.analysis_lowpass) == 9
        assert len(filters.analysis_highpass) == 7
        assert len(filters.synthesis_lowpass) == 7
        assert len(filters.synthesis_highpass) == 9

    def test_quantized_copy_on_grid(self):
        filters = daubechies_9_7_filters().quantized(8)
        scaled = filters.analysis_lowpass * 2 ** 8
        np.testing.assert_allclose(scaled, np.round(scaled), atol=1e-9)


class TestCircularFilter:
    def test_identity_filter(self, rng):
        x = rng.standard_normal(16)
        np.testing.assert_allclose(circular_filter(x, np.array([1.0]), 0), x)

    def test_centered_delay_is_roll(self, rng):
        x = rng.standard_normal(16)
        # taps [0, 1] with center 0 -> y[n] = x[n+1] is a left roll.
        result = circular_filter(x, np.array([0.0, 1.0]), 0)
        np.testing.assert_allclose(result, np.roll(x, -1))

    def test_2d_filtering_along_each_axis(self, rng):
        image = rng.standard_normal((8, 8))
        rows = circular_filter(image, np.array([0.5, 0.5]), 0, axis=1)
        cols = circular_filter(image, np.array([0.5, 0.5]), 0, axis=0)
        assert rows.shape == image.shape
        assert not np.allclose(rows, cols)

    def test_quantizer_applied(self, rng):
        x = rng.uniform(-1, 1, 32)
        quantizer = Quantizer(QFormat(3, 4))
        y = circular_filter(x, np.array([0.3, 0.7]), 0, quantizer=quantizer)
        scaled = y * 2 ** 4
        np.testing.assert_allclose(scaled, np.round(scaled), atol=1e-9)


class TestPerfectReconstruction1d:
    def test_random_signal_reconstructed(self, rng):
        filters = daubechies_9_7_filters()
        x = rng.standard_normal(64)
        low, high = analyze_1d(x, filters)
        reconstructed = synthesize_1d(low, high, filters)
        np.testing.assert_allclose(reconstructed, x, atol=1e-10)

    def test_band_lengths(self, rng):
        filters = daubechies_9_7_filters()
        x = rng.standard_normal(64)
        low, high = analyze_1d(x, filters)
        assert len(low) == 32 and len(high) == 32

    def test_constant_signal_goes_to_lowband(self):
        filters = daubechies_9_7_filters()
        x = np.full(32, 0.5)
        low, high = analyze_1d(x, filters)
        assert np.max(np.abs(high)) < 1e-10
        np.testing.assert_allclose(synthesize_1d(low, high, filters), x,
                                   atol=1e-12)

    def test_2d_rows_and_columns(self, rng):
        filters = daubechies_9_7_filters()
        image = rng.standard_normal((32, 32))
        low, high = analyze_1d(image, filters, axis=0)
        reconstructed = synthesize_1d(low, high, filters, axis=0)
        np.testing.assert_allclose(reconstructed, image, atol=1e-10)


class TestPerfectReconstruction2d:
    def test_one_level(self, small_image):
        filters = daubechies_9_7_filters()
        subbands = analyze_2d(small_image, filters)
        assert set(subbands) == {"ll", "lh", "hl", "hh"}
        assert subbands["ll"].shape == (16, 16)
        reconstructed = synthesize_2d(subbands, filters)
        np.testing.assert_allclose(reconstructed, small_image, atol=1e-10)

    def test_two_levels(self, small_image):
        filters = daubechies_9_7_filters()
        pyramid = analyze_multilevel(small_image, filters, 2)
        assert len(pyramid["levels"]) == 2
        assert pyramid["ll"].shape == (8, 8)
        reconstructed = synthesize_multilevel(pyramid, filters)
        np.testing.assert_allclose(reconstructed, small_image, atol=1e-10)

    def test_three_levels(self, rng):
        from repro.data.images import natural_image
        filters = daubechies_9_7_filters()
        image = natural_image(64, seed=2)
        pyramid = analyze_multilevel(image, filters, 3)
        reconstructed = synthesize_multilevel(pyramid, filters)
        np.testing.assert_allclose(reconstructed, image, atol=1e-9)

    def test_odd_sizes_rejected(self, rng):
        filters = daubechies_9_7_filters()
        with pytest.raises(ValueError):
            analyze_2d(rng.standard_normal((15, 16)), filters)

    def test_non_2d_rejected(self, rng):
        filters = daubechies_9_7_filters()
        with pytest.raises(ValueError):
            analyze_2d(rng.standard_normal(16), filters)

    def test_invalid_level_count_rejected(self, small_image):
        filters = daubechies_9_7_filters()
        with pytest.raises(ValueError):
            analyze_multilevel(small_image, filters, 0)

    def test_energy_concentrated_in_ll(self, small_image):
        """For natural images the LL band holds most of the energy."""
        filters = daubechies_9_7_filters()
        subbands = analyze_2d(small_image, filters)
        ll_energy = np.sum(subbands["ll"] ** 2)
        detail_energy = sum(np.sum(subbands[k] ** 2)
                            for k in ("lh", "hl", "hh"))
        assert ll_energy > 5 * detail_energy
