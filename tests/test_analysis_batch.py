"""Configuration-batched evaluation must be bit-identical to sequential.

The batched walks promise more than closeness: every row of a
:class:`~repro.psd.batch.PsdStack` (and every entry of a batched
:class:`~repro.fixedpoint.noise_model.NoiseStats`) applies exactly the
same floating-point operations as the scalar walk of that configuration,
so the comparisons below use strict equality, not tolerances.
"""

import numpy as np
import pytest

from repro.analysis.agnostic_method import (
    evaluate_agnostic,
    evaluate_agnostic_batch,
)
from repro.analysis.flat_method import evaluate_flat, evaluate_flat_batch
from repro.analysis.psd_method import evaluate_psd, evaluate_psd_batch
from repro.analysis.simulation_method import SimulationEvaluator
from repro.lti.fir_design import design_fir_highpass, design_fir_lowpass
from repro.lti.iir_design import design_iir_filter
from repro.psd.batch import PsdStack
from repro.sfg.builder import SfgBuilder
from repro.sfg.plan import compile_plan


def _cascade_graph(bits=12):
    b, a = design_iir_filter(4, 0.3, kind="lowpass", family="butterworth")
    builder = SfgBuilder("cascade")
    s = builder.input("x", fractional_bits=bits)
    s = builder.fir("f1", design_fir_lowpass(15, 0.4), s, fractional_bits=bits)
    s = builder.iir("i1", b, a, s, fractional_bits=bits)
    s = builder.gain("g1", 0.8, s, fractional_bits=bits)
    s = builder.fir("f2", design_fir_highpass(9, 0.5), s, fractional_bits=bits)
    builder.output("y", s)
    return builder.build()


def _multirate_graph(bits=10):
    builder = SfgBuilder("two-channel")
    s = builder.input("x", fractional_bits=bits)
    s = builder.fir("h0", design_fir_lowpass(9, 0.45), s, fractional_bits=bits)
    s = builder.downsample("down", s, factor=2)
    s = builder.upsample("up", s, factor=2)
    s = builder.fir("g0", design_fir_lowpass(9, 0.45), s, fractional_bits=bits)
    builder.output("y", s)
    return builder.build()


_CASCADE_STACK = [
    {"x": 12, "f1": 12, "i1": 12, "g1": 12, "f2": 12},
    {"x": 11, "f1": 12, "i1": 12, "g1": 12, "f2": 12},
    {"x": 12, "f1": 12, "i1": 10, "g1": 14, "f2": 12},
    {"x": 8, "f1": 9, "i1": 16, "g1": 12, "f2": None},
]


class TestPsdBatch:
    def test_rows_bit_identical_to_sequential(self):
        graph = _cascade_graph()
        plan = compile_plan(graph)
        stack = evaluate_psd_batch(plan, 128, _CASCADE_STACK)
        assert stack.size == len(_CASCADE_STACK)
        for k, assignment in enumerate(_CASCADE_STACK):
            plan.requantize(assignment)
            scalar = evaluate_psd(plan, 128)
            np.testing.assert_array_equal(stack.ac[k], scalar.ac)
            assert stack.mean[k] == scalar.mean
            assert stack.total_power[k] == scalar.total_power

    def test_multirate_rows_bit_identical(self):
        graph = _multirate_graph()
        plan = compile_plan(graph)
        assignments = [{"x": 10, "h0": 10, "g0": 10},
                       {"x": 8, "h0": 12, "g0": 9},
                       {"x": 14, "h0": 7, "g0": 11}]
        stack = evaluate_psd_batch(plan, 64, assignments)
        for k, assignment in enumerate(assignments):
            plan.requantize(assignment)
            scalar = evaluate_psd(plan, 64)
            np.testing.assert_array_equal(stack.ac[k], scalar.ac)
            assert stack.mean[k] == scalar.mean

    def test_select_extracts_scalar_psd(self):
        graph = _cascade_graph()
        stack = evaluate_psd_batch(graph, 64, _CASCADE_STACK)
        one = stack.select(2)
        np.testing.assert_array_equal(one.ac, stack.ac[2])
        assert one.mean == stack.mean[2]

    def test_batch_does_not_mutate_specs(self):
        graph = _cascade_graph(bits=12)
        evaluate_psd_batch(graph, 64, _CASCADE_STACK)
        for name in ("x", "f1", "i1", "g1", "f2"):
            assert graph.node(name).quantization.fractional_bits == 12

    def test_unknown_node_rejected(self):
        graph = _cascade_graph()
        with pytest.raises(ValueError, match="unknown"):
            evaluate_psd_batch(graph, 64, [{"nope": 8}])

    def test_empty_stack_rejected(self):
        graph = _cascade_graph()
        with pytest.raises(ValueError):
            evaluate_psd_batch(graph, 64, [])


class TestStatsBatch:
    def test_agnostic_entries_bit_identical(self):
        graph = _cascade_graph()
        plan = compile_plan(graph)
        batched = evaluate_agnostic_batch(plan, _CASCADE_STACK)
        for k, assignment in enumerate(_CASCADE_STACK):
            plan.requantize(assignment)
            scalar = evaluate_agnostic(plan)
            assert batched.mean[k] == scalar.mean
            assert batched.variance[k] == scalar.variance
            assert batched.power[k] == scalar.power

    def test_flat_entries_bit_identical(self):
        graph = _cascade_graph()
        plan = compile_plan(graph)
        batched = evaluate_flat_batch(plan, _CASCADE_STACK)
        for k, assignment in enumerate(_CASCADE_STACK):
            plan.requantize(assignment)
            scalar = evaluate_flat(plan)
            assert batched.mean[k] == scalar.mean
            assert batched.variance[k] == scalar.variance

    def test_flat_restores_quantization_state(self):
        graph = _cascade_graph(bits=12)
        evaluate_flat_batch(graph, _CASCADE_STACK)
        for name in ("x", "f1", "i1", "g1", "f2"):
            assert graph.node(name).quantization.fractional_bits == 12


class TestSimulationBatch:
    def test_matches_per_config_evaluation(self, rng):
        graph = _cascade_graph()
        plan = compile_plan(graph)
        evaluator = SimulationEvaluator(plan)
        stimulus = {"x": rng.uniform(-0.9, 0.9, 4096)}
        assignments = _CASCADE_STACK[:3]
        batched = evaluator.evaluate_batch(assignments, stimulus)
        assert len(batched) == 3
        for assignment, measured in zip(assignments, batched):
            plan.requantize(assignment)
            scalar = SimulationEvaluator(plan).evaluate(stimulus)
            assert measured.error_power == scalar.error_power
            assert measured.error_mean == scalar.error_mean
            assert measured.num_samples == scalar.num_samples

    def test_restores_quantization_state(self, rng):
        graph = _cascade_graph(bits=12)
        evaluator = SimulationEvaluator(compile_plan(graph))
        evaluator.evaluate_batch(_CASCADE_STACK[:2],
                                 {"x": rng.uniform(-0.9, 0.9, 1024)})
        for name in ("x", "f1", "i1", "g1", "f2"):
            assert graph.node(name).quantization.fractional_bits == 12

    def test_coefficient_free_nodes_share_one_group(self):
        # Configs differing only at nodes without quantized coefficients
        # (here the input) share every transfer function, so they must
        # land in one group and share the double-precision reference run.
        graph = _cascade_graph()
        from repro.sfg.plan import compile_plan as _compile
        plan = _compile(graph)
        stack = plan.config_stack([
            {"x": 12}, {"x": 10}, {"x": 8},
        ])
        assert stack.coefficient_groups() == [[0, 1, 2]]

    def test_coefficient_tracking_nodes_split_groups(self):
        graph = _cascade_graph()
        from repro.sfg.plan import compile_plan as _compile
        plan = _compile(graph)
        stack = plan.config_stack([
            {"f1": 12}, {"f1": 10}, {"f1": 12, "x": 9},
        ])
        assert stack.coefficient_groups() == [[0, 2], [1]]

    def test_protocol_systems_rejected(self):
        class Protocol:
            def run_reference(self, stimulus):
                return stimulus

            def run_fixed_point(self, stimulus):
                return stimulus

        evaluator = SimulationEvaluator(Protocol())
        with pytest.raises(TypeError):
            evaluator.evaluate_batch([{"x": 8}], np.zeros(16))


class TestPsdStackContainer:
    def test_white_matches_scalar_white(self):
        from repro.fixedpoint.noise_model import NoiseStats
        from repro.psd.spectrum import DiscretePsd
        stack = PsdStack.white(np.array([0.5, 0.0]), np.array([1.0, 2.0]), 8)
        scalar = DiscretePsd.white(NoiseStats(0.5, 1.0), 8)
        np.testing.assert_array_equal(stack.ac[0], scalar.ac)
        assert stack.mean[0] == scalar.mean

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            PsdStack(np.zeros(8), np.zeros(1))
        with pytest.raises(ValueError):
            PsdStack(np.zeros((2, 8)), np.zeros(3))
        with pytest.raises(ValueError):
            PsdStack.zero(0, 8)

    def test_mismatched_addition_rejected(self):
        with pytest.raises(ValueError):
            PsdStack.zero(2, 8) + PsdStack.zero(2, 16)
        with pytest.raises(ValueError):
            PsdStack.zero(2, 8) + PsdStack.zero(3, 8)

    def test_filtered_rejects_wrong_length(self):
        with pytest.raises(ValueError):
            PsdStack.zero(2, 8).filtered(np.ones(4))
        with pytest.raises(ValueError):
            PsdStack.zero(2, 8).filtered(np.ones((3, 8)))
