"""Unit tests for :mod:`repro.fixedpoint.quantizer`."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.fixedpoint.qformat import QFormat
from repro.fixedpoint.quantizer import (
    OverflowMode,
    Quantizer,
    RoundingMode,
    quantize,
)


class TestRounding:
    def test_round_to_nearest(self):
        q = Quantizer(QFormat(2, 2), rounding=RoundingMode.ROUND)
        np.testing.assert_allclose(q(np.array([0.3, 0.4, -0.3])),
                                   [0.25, 0.5, -0.25])

    def test_round_ties_away_from_zero(self):
        # MATLAB round semantics: ties go away from zero on both sides.
        q = Quantizer(QFormat(2, 1), rounding=RoundingMode.ROUND)
        np.testing.assert_allclose(q(np.array([0.25, -0.25, 0.75, -0.75])),
                                   [0.5, -0.5, 1.0, -1.0])

    def test_round_is_odd_characteristic(self):
        q = Quantizer(QFormat(4, 5), rounding=RoundingMode.ROUND)
        x = np.linspace(-3.0, 3.0, 1537)  # includes exact tie values
        np.testing.assert_array_equal(q(-x), -q(x))

    def test_round_negative_ties_regression(self):
        # -0.5 * step used to round towards +inf (floor(x + 0.5)); the
        # corrected mode must match MATLAB round on every negative tie.
        q = Quantizer(QFormat(4, 3), rounding=RoundingMode.ROUND)
        step = q.step
        ties = -np.array([0.5, 1.5, 2.5, 7.5]) * step
        np.testing.assert_allclose(q(ties),
                                   -np.array([1.0, 2.0, 3.0, 8.0]) * step)

    def test_truncate_goes_towards_minus_infinity(self):
        q = Quantizer(QFormat(2, 2), rounding=RoundingMode.TRUNCATE)
        np.testing.assert_allclose(q(np.array([0.3, -0.3])), [0.25, -0.5])

    def test_convergent_ties_to_even(self):
        q = Quantizer(QFormat(3, 0), rounding=RoundingMode.CONVERGENT)
        np.testing.assert_allclose(q(np.array([0.5, 1.5, 2.5, -0.5])),
                                   [0.0, 2.0, 2.0, 0.0])

    def test_values_on_grid_unchanged(self):
        q = Quantizer(QFormat(3, 4))
        values = np.array([0.0625, -2.5, 3.9375, 0.0])
        np.testing.assert_array_equal(q(values), values)

    def test_error_bounded_by_step(self):
        q = Quantizer(QFormat(4, 6), rounding=RoundingMode.ROUND)
        x = np.linspace(-7, 7, 1001)
        assert np.max(np.abs(q.error(x))) <= q.step / 2 + 1e-15

    def test_truncation_error_sign(self):
        q = Quantizer(QFormat(4, 6), rounding=RoundingMode.TRUNCATE)
        x = np.linspace(-7, 7, 1001)
        errors = q.error(x)
        assert np.all(errors <= 0.0)
        assert np.all(errors > -q.step)


class TestOverflow:
    def test_saturation_clips(self):
        q = Quantizer(QFormat(1, 2), overflow=OverflowMode.SATURATE)
        np.testing.assert_allclose(q(np.array([5.0, -5.0])), [1.75, -2.0])

    def test_wrap_is_modular(self):
        q = Quantizer(QFormat(1, 0), overflow=OverflowMode.WRAP)
        # Range is [-2, 1]; 2 wraps to -2.
        np.testing.assert_allclose(q(np.array([2.0])), [-2.0])

    def test_none_leaves_out_of_range_values(self):
        q = Quantizer(QFormat(1, 2), overflow=OverflowMode.NONE)
        np.testing.assert_allclose(q(np.array([5.0])), [5.0])


class TestConvenienceFunction:
    def test_quantize_matches_class(self):
        x = np.array([0.33, -0.77, 0.123])
        expected = Quantizer(QFormat(15, 8)).quantize(x)
        np.testing.assert_array_equal(quantize(x, 8), expected)

    def test_string_modes_accepted(self):
        x = np.array([0.3])
        np.testing.assert_allclose(quantize(x, 2, rounding="truncate"), [0.25])


class TestProperties:
    @given(st.lists(st.floats(min_value=-100, max_value=100,
                              allow_nan=False, allow_infinity=False),
                    min_size=1, max_size=50),
           st.integers(min_value=0, max_value=20),
           st.sampled_from(list(RoundingMode)))
    def test_idempotent(self, values, frac, mode):
        q = Quantizer(QFormat(15, frac), rounding=mode)
        once = q(np.array(values))
        twice = q(once)
        np.testing.assert_array_equal(once, twice)

    @given(st.lists(st.floats(min_value=-100, max_value=100,
                              allow_nan=False, allow_infinity=False),
                    min_size=1, max_size=50),
           st.integers(min_value=0, max_value=20))
    def test_output_on_grid(self, values, frac):
        q = Quantizer(QFormat(15, frac))
        output = q(np.array(values))
        mantissa = output / q.step
        np.testing.assert_allclose(mantissa, np.round(mantissa), atol=1e-6)

    @given(st.integers(min_value=0, max_value=18))
    def test_finer_grid_gives_smaller_error(self, frac):
        x = np.linspace(-1, 1, 257)
        coarse = Quantizer(QFormat(3, frac)).error(x)
        fine = Quantizer(QFormat(3, frac + 2)).error(x)
        assert np.mean(fine ** 2) <= np.mean(coarse ** 2) + 1e-18
