"""Unit and property tests for :class:`repro.psd.spectrum.DiscretePsd`."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.fixedpoint.noise_model import NoiseStats
from repro.lti.fir_design import design_fir_lowpass
from repro.lti.transfer_function import TransferFunction
from repro.psd.spectrum import DiscretePsd


class TestConstruction:
    def test_zero(self):
        psd = DiscretePsd.zero(16)
        assert psd.total_power == 0.0
        assert psd.n_bins == 16

    def test_white_spreads_variance_uniformly(self):
        psd = DiscretePsd.white(NoiseStats(mean=0.1, variance=1.6), 32)
        np.testing.assert_allclose(psd.ac, 0.05)
        assert psd.mean == pytest.approx(0.1)

    def test_total_power_combines_mean_and_variance(self):
        psd = DiscretePsd.from_moments(mean=0.5, variance=2.0, n_bins=8)
        assert psd.total_power == pytest.approx(2.25)

    def test_values_property_adds_mean_square_to_dc(self):
        psd = DiscretePsd.from_moments(mean=0.5, variance=0.8, n_bins=8)
        assert psd.values[0] == pytest.approx(0.1 + 0.25)
        assert np.sum(psd.values) == pytest.approx(psd.total_power)

    def test_negative_bins_rejected(self):
        with pytest.raises(ValueError):
            DiscretePsd(np.array([0.1, -0.2]))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            DiscretePsd(np.array([]))

    def test_to_stats_round_trip(self):
        stats = NoiseStats(mean=-0.2, variance=0.7)
        recovered = DiscretePsd.white(stats, 64).to_stats()
        assert recovered.mean == pytest.approx(stats.mean)
        assert recovered.variance == pytest.approx(stats.variance)


class TestAlgebra:
    def test_addition_sums_means_and_bins(self):
        a = DiscretePsd.from_moments(0.1, 1.0, 8)
        b = DiscretePsd.from_moments(-0.3, 2.0, 8)
        total = a + b
        assert total.mean == pytest.approx(-0.2)
        assert total.variance == pytest.approx(3.0)

    def test_addition_requires_same_bins(self):
        with pytest.raises(ValueError):
            DiscretePsd.zero(8) + DiscretePsd.zero(16)

    def test_scaling_squares_the_gain_for_power(self):
        psd = DiscretePsd.from_moments(0.5, 1.0, 8).scaled(-2.0)
        assert psd.mean == pytest.approx(-1.0)
        assert psd.variance == pytest.approx(4.0)

    def test_mul_operator(self):
        psd = DiscretePsd.from_moments(0.0, 1.0, 8)
        assert (3.0 * psd).variance == pytest.approx(9.0)

    def test_means_can_cancel(self):
        a = DiscretePsd.from_moments(0.5, 0.0, 8)
        b = DiscretePsd.from_moments(-0.5, 0.0, 8)
        assert (a + b).total_power == pytest.approx(0.0)


class TestFiltering:
    def test_white_noise_through_filter_gets_energy_gain(self):
        taps = design_fir_lowpass(31, 0.4)
        tf = TransferFunction.fir(taps)
        psd = DiscretePsd.from_moments(0.0, 1.0, 512)
        filtered = psd.filtered(tf.frequency_response(512))
        assert filtered.variance == pytest.approx(tf.energy(), rel=1e-6)

    def test_mean_follows_dc_gain_with_sign(self):
        tf = TransferFunction.fir([-0.5, -0.5])
        psd = DiscretePsd.from_moments(0.4, 1.0, 64)
        filtered = psd.filtered(tf.frequency_response(64))
        assert filtered.mean == pytest.approx(-0.4)

    def test_wrong_response_length_rejected(self):
        psd = DiscretePsd.zero(16)
        with pytest.raises(ValueError):
            psd.filtered(np.ones(8))

    def test_delay_preserves_psd(self):
        psd = DiscretePsd.from_moments(0.1, 1.0, 32)
        assert psd.delayed().allclose(psd)

    def test_cascaded_filtering_composes(self):
        taps_a = design_fir_lowpass(15, 0.6)
        taps_b = design_fir_lowpass(15, 0.3)
        response_a = TransferFunction.fir(taps_a).frequency_response(256)
        response_b = TransferFunction.fir(taps_b).frequency_response(256)
        psd = DiscretePsd.from_moments(0.0, 1.0, 256)
        one_shot = psd.filtered(response_a * response_b)
        two_steps = psd.filtered(response_a).filtered(response_b)
        assert one_shot.allclose(two_steps, rtol=1e-9)


class TestMultirate:
    def test_downsampling_preserves_power(self):
        psd = DiscretePsd.from_moments(0.2, 1.5, 64)
        folded = psd.downsampled(2)
        assert folded.n_bins == 32
        assert folded.variance == pytest.approx(1.5)
        assert folded.mean == pytest.approx(0.2)

    def test_upsampling_divides_power_and_mean(self):
        psd = DiscretePsd.from_moments(0.2, 1.5, 32)
        imaged = psd.upsampled(2)
        assert imaged.n_bins == 64
        assert imaged.variance == pytest.approx(0.75)
        assert imaged.mean == pytest.approx(0.1)

    def test_down_then_up_power(self):
        psd = DiscretePsd.from_moments(0.0, 1.0, 64)
        assert psd.downsampled(2).upsampled(2).variance == pytest.approx(0.5)


class TestResampling:
    def test_downsample_grid_preserves_power(self):
        psd = DiscretePsd(np.random.default_rng(0).uniform(0, 1, 64), 0.3)
        resampled = psd.resampled(16)
        assert resampled.total_power == pytest.approx(psd.total_power)

    def test_upsample_grid_preserves_power(self):
        psd = DiscretePsd(np.random.default_rng(1).uniform(0, 1, 16), 0.0)
        resampled = psd.resampled(64)
        assert resampled.total_power == pytest.approx(psd.total_power)

    def test_incommensurate_grid_preserves_power(self):
        psd = DiscretePsd(np.random.default_rng(2).uniform(0, 1, 48), 0.1)
        resampled = psd.resampled(36)
        assert resampled.total_power == pytest.approx(psd.total_power)

    def test_identity_resampling(self):
        psd = DiscretePsd(np.random.default_rng(3).uniform(0, 1, 32), 0.1)
        assert psd.resampled(32).allclose(psd)


class TestProperties:
    @given(st.integers(min_value=2, max_value=256),
           st.floats(min_value=0.0, max_value=10.0),
           st.floats(min_value=-3.0, max_value=3.0))
    def test_white_total_power_exact(self, n_bins, variance, mean):
        psd = DiscretePsd.from_moments(mean, variance, n_bins)
        assert psd.total_power == pytest.approx(mean ** 2 + variance, rel=1e-9)

    @given(st.integers(min_value=1, max_value=5),
           st.floats(min_value=0.01, max_value=5.0))
    def test_repeated_up_down_power_bookkeeping(self, rounds, variance):
        psd = DiscretePsd.from_moments(0.0, variance, 64)
        expected = variance
        for _ in range(rounds):
            psd = psd.downsampled(2).upsampled(2)
            expected /= 2.0
        assert psd.variance == pytest.approx(expected, rel=1e-9)
