"""Unit tests for the lifting-scheme 9/7 realization."""

import numpy as np
import pytest

from repro.data.images import natural_image
from repro.fixedpoint.qformat import QFormat
from repro.fixedpoint.quantizer import Quantizer
from repro.systems.dwt.codec import Dwt97Codec
from repro.systems.dwt.lifting import (
    LiftingDwt97Codec,
    lifting_analyze_1d,
    lifting_analyze_2d,
    lifting_synthesize_1d,
    lifting_synthesize_2d,
)


class TestPerfectReconstruction:
    def test_1d_round_trip(self, rng):
        x = rng.standard_normal(64)
        low, high = lifting_analyze_1d(x)
        np.testing.assert_allclose(lifting_synthesize_1d(low, high), x,
                                   atol=1e-12)

    def test_1d_band_lengths(self, rng):
        low, high = lifting_analyze_1d(rng.standard_normal(64))
        assert len(low) == 32 and len(high) == 32

    def test_odd_length_rejected(self, rng):
        with pytest.raises(ValueError):
            lifting_analyze_1d(rng.standard_normal(63))

    def test_2d_round_trip(self, small_image):
        subbands = lifting_analyze_2d(small_image)
        assert set(subbands) == {"ll", "lh", "hl", "hh"}
        reconstructed = lifting_synthesize_2d(subbands)
        np.testing.assert_allclose(reconstructed, small_image, atol=1e-12)

    def test_2d_requires_2d_input(self, rng):
        with pytest.raises(ValueError):
            lifting_analyze_2d(rng.standard_normal(16))

    def test_constant_signal_concentrates_in_lowband(self):
        low, high = lifting_analyze_1d(np.full(32, 0.5))
        assert np.max(np.abs(high)) < 1e-12

    def test_axis_argument(self, rng):
        image = rng.standard_normal((16, 32))
        low, high = lifting_analyze_1d(image, axis=0)
        assert low.shape == (8, 32)
        reconstructed = lifting_synthesize_1d(low, high, axis=0)
        np.testing.assert_allclose(reconstructed, image, atol=1e-12)


class TestSubbandAgreementWithFilterBank:
    def test_ll_band_content_matches_convolution_codec(self, small_image):
        """Lifting and filter-bank analysis extract the same LL content.

        The two factorizations use different per-band normalizations
        (lifting scale K versus the filter DC gains), so the comparison is
        on the *correlation* of the approximation band, not its scale.
        """
        from repro.systems.dwt.daubechies97 import daubechies_9_7_filters
        from repro.systems.dwt.dwt2d import analyze_2d

        lifting_ll = lifting_analyze_2d(small_image)["ll"].ravel()
        convolution_ll = analyze_2d(small_image,
                                    daubechies_9_7_filters())["ll"].ravel()
        correlation = np.corrcoef(lifting_ll, convolution_ll)[0, 1]
        assert correlation > 0.95

    def test_ll_band_dominates_in_both_realizations(self, small_image):
        """For natural images the LL band dominates in both realizations."""
        from repro.systems.dwt.daubechies97 import daubechies_9_7_filters
        from repro.systems.dwt.dwt2d import analyze_2d

        lifting_bands = lifting_analyze_2d(small_image)
        convolution_bands = analyze_2d(small_image, daubechies_9_7_filters())
        for bands in (lifting_bands, convolution_bands):
            ll_energy = float(np.sum(bands["ll"] ** 2))
            detail_energy = sum(float(np.sum(bands[k] ** 2))
                                for k in ("lh", "hl", "hh"))
            assert ll_energy > 3.0 * detail_energy


class TestLiftingCodec:
    def test_reference_is_identity(self, small_image):
        codec = LiftingDwt97Codec(fractional_bits=16, levels=2)
        np.testing.assert_allclose(codec.run_reference(small_image),
                                   small_image, atol=1e-10)

    def test_fixed_point_output_on_grid(self, small_image):
        codec = LiftingDwt97Codec(fractional_bits=10, levels=1)
        output = codec.run_fixed_point(small_image)
        scaled = output * 2 ** 10
        np.testing.assert_allclose(scaled, np.round(scaled), atol=1e-9)

    def test_error_decreases_with_word_length(self, small_image):
        errors = []
        for bits in (8, 12, 16):
            codec = LiftingDwt97Codec(fractional_bits=bits, levels=2)
            errors.append(float(np.mean(codec.error_image(small_image) ** 2)))
        assert errors[0] > errors[1] > errors[2]

    def test_invalid_levels_rejected(self):
        with pytest.raises(ValueError):
            LiftingDwt97Codec(fractional_bits=10, levels=0)

    def test_quantized_analysis_through_quantizer_argument(self, small_image):
        quantizer = Quantizer(QFormat(7, 8))
        subbands = lifting_analyze_2d(small_image, quantizer=quantizer)
        scaled = subbands["ll"] * 2 ** 8
        np.testing.assert_allclose(scaled, np.round(scaled), atol=1e-9)

    def test_noise_same_order_as_convolution_realization(self):
        """Both realizations of the transform have the same order of
        fixed-point noise (they quantize a comparable number of operations
        to the same precision); the exact values differ per image."""
        image = natural_image(32, seed=11)
        bits = 10
        lifting_error = np.mean(
            LiftingDwt97Codec(fractional_bits=bits, levels=2)
            .error_image(image) ** 2)
        convolution_error = np.mean(
            Dwt97Codec(fractional_bits=bits, levels=2)
            .error_image(image) ** 2)
        assert 0.25 < lifting_error / convolution_error < 4.0
