"""Unit tests for the Table-I filter-bank generator and evaluation."""

import numpy as np
import pytest

from repro.lti.transfer_function import TransferFunction
from repro.systems.filter_bank import (
    FilterBankResult,
    build_filter_graph,
    evaluate_filter_bank,
    generate_fir_bank,
    generate_iir_bank,
)


class TestBankGeneration:
    def test_fir_bank_size_and_uniqueness(self):
        bank = generate_fir_bank(30)
        assert len(bank) == 30
        assert len({entry.name for entry in bank}) == 30

    def test_fir_bank_covers_all_kinds(self):
        kinds = {entry.kind for entry in generate_fir_bank(12)}
        assert kinds == {"lowpass", "highpass", "bandpass"}

    def test_fir_bank_tap_range(self):
        bank = generate_fir_bank(147)
        orders = [entry.order for entry in bank]
        assert min(orders) >= 15
        assert max(orders) <= 129

    def test_fir_entries_are_fir(self):
        for entry in generate_fir_bank(9):
            assert entry.is_fir
            assert entry.a == (1.0,)

    def test_iir_bank_size_and_stability(self):
        bank = generate_iir_bank(30)
        assert len(bank) == 30
        for entry in bank:
            assert not entry.is_fir
            assert TransferFunction(list(entry.b), list(entry.a)).is_stable()

    def test_iir_bank_order_range(self):
        orders = [entry.order for entry in generate_iir_bank(60)]
        assert min(orders) >= 2
        assert max(orders) <= 10

    def test_full_paper_bank_sizes(self):
        assert len(generate_fir_bank(147)) == 147
        assert len(generate_iir_bank(147)) == 147

    def test_determinism(self):
        a = generate_fir_bank(10, seed=1)
        b = generate_fir_bank(10, seed=1)
        assert [e.b for e in a] == [e.b for e in b]


class TestGraphConstruction:
    def test_fir_graph_structure(self):
        entry = generate_fir_bank(1)[0]
        graph = build_filter_graph(entry, fractional_bits=12)
        assert set(graph.nodes) == {"x", "filter", "y"}
        assert graph.node("x").quantization.fractional_bits == 12

    def test_iir_graph_structure(self):
        entry = generate_iir_bank(1)[0]
        graph = build_filter_graph(entry, fractional_bits=10)
        assert graph.node("filter").quantization.fractional_bits == 10


class TestResultContainer:
    def test_summary_statistics(self):
        result = FilterBankResult()
        result.add("a", 0.01)
        result.add("b", -0.02)
        result.add("c", 0.005)
        assert result.count == 3
        assert result.min_ed == pytest.approx(-0.02)
        assert result.max_ed == pytest.approx(0.01)
        assert result.mean_abs_ed == pytest.approx((0.01 + 0.02 + 0.005) / 3)
        row = result.summary_row()
        assert row[0] == pytest.approx(-2.0)


class TestSmallBankEvaluation:
    def test_fir_subset_is_sub_one_percent(self):
        bank = generate_fir_bank(4)
        result = evaluate_filter_bank(bank, fractional_bits=14,
                                      num_samples=15_000, n_psd=512)
        assert result.count == 4
        assert result.mean_abs_ed < 0.05

    def test_iir_subset_within_paper_band(self):
        bank = generate_iir_bank(3)
        result = evaluate_filter_bank(bank, fractional_bits=14,
                                      num_samples=15_000, n_psd=512)
        assert result.count == 3
        # The paper reports IIR deviations up to ~31 %; allow a wide band
        # but require the estimates to stay within one bit.
        assert result.mean_abs_ed < 0.5

    def test_truncation_mode_supported(self):
        bank = generate_fir_bank(2)
        result = evaluate_filter_bank(bank, fractional_bits=12,
                                      num_samples=10_000, n_psd=256,
                                      rounding="truncate")
        assert result.mean_abs_ed < 0.2
