"""Unit tests for the fluent graph builder."""

import numpy as np
import pytest

from repro.fixedpoint.quantizer import RoundingMode
from repro.lti.transfer_function import TransferFunction
from repro.sfg.builder import SfgBuilder
from repro.sfg.executor import SfgExecutor
from repro.sfg.nodes import DownsampleNode, UpsampleNode


class TestBuilder:
    def test_minimal_graph(self):
        builder = SfgBuilder("m")
        x = builder.input("x")
        builder.output("y", x)
        graph = builder.build()
        assert graph.input_names() == ["x"]
        assert graph.output_names() == ["y"]

    def test_build_validates(self):
        builder = SfgBuilder()
        builder.input("x")
        # No output -> invalid.
        with pytest.raises(ValueError):
            builder.build()

    def test_quantization_specs_applied(self):
        builder = SfgBuilder()
        x = builder.input("x", fractional_bits=9, rounding="truncate")
        h = builder.fir("h", [1.0], x, fractional_bits=7)
        builder.output("y", h)
        graph = builder.build()
        assert graph.node("x").quantization.fractional_bits == 9
        assert graph.node("x").quantization.rounding is RoundingMode.TRUNCATE
        assert graph.node("h").quantization.fractional_bits == 7

    def test_add_with_signs(self, rng):
        builder = SfgBuilder()
        a = builder.input("a")
        b = builder.input("b")
        s = builder.add("s", [a, b], signs=[1.0, -1.0])
        builder.output("y", s)
        executor = SfgExecutor(builder.build())
        xa = rng.uniform(-1, 1, 20)
        xb = rng.uniform(-1, 1, 20)
        np.testing.assert_allclose(
            executor.run({"a": xa, "b": xb}).output("y"), xa - xb)

    def test_gain_delay_chain(self, rng):
        builder = SfgBuilder()
        x = builder.input("x")
        g = builder.gain("g", 2.0, x)
        d = builder.delay("d", g, samples=1)
        builder.output("y", d)
        executor = SfgExecutor(builder.build())
        xin = rng.uniform(-1, 1, 10)
        out = executor.run({"x": xin}).output("y")
        np.testing.assert_allclose(out[1:], 2.0 * xin[:-1])

    def test_iir_and_lti_nodes(self, rng):
        builder = SfgBuilder()
        x = builder.input("x")
        i = builder.iir("i", [1.0], [1.0, -0.5], x)
        l = builder.lti("l", TransferFunction.fir([0.5, 0.5]), i)
        builder.output("y", l)
        graph = builder.build()
        assert graph.node("i").filter.order == 1
        assert graph.node("l").transfer_function().order == 1

    def test_multirate_helpers(self):
        builder = SfgBuilder()
        x = builder.input("x")
        d = builder.downsample("down", x, factor=2)
        u = builder.upsample("up", d, factor=2)
        builder.output("y", u)
        graph = builder.build()
        assert isinstance(graph.node("down"), DownsampleNode)
        assert isinstance(graph.node("up"), UpsampleNode)

    def test_multirate_execution(self):
        builder = SfgBuilder()
        x = builder.input("x")
        d = builder.downsample("down", x, factor=2)
        u = builder.upsample("up", d, factor=2)
        builder.output("y", u)
        executor = SfgExecutor(builder.build())
        xin = np.arange(8, dtype=float)
        out = executor.run({"x": xin}).output("y")
        np.testing.assert_allclose(out[::2], xin[::2])
        np.testing.assert_allclose(out[1::2], 0.0)
