"""Seeded random-SFG generator: determinism, validity, constraints."""

import numpy as np
import pytest

from repro.data.signals import uniform_white_noise
from repro.campaign import build_scenario
from repro.sfg.executor import SfgExecutor
from repro.sfg.graph import is_multirate
from repro.sfg.nodes import DownsampleNode, IirNode, UpsampleNode
from repro.sfg.serialization import graph_fingerprint
from repro.systems.random_graphs import (
    COMPATIBLE_N_PSD,
    SEGMENT_FACTORS,
    build_random_graph,
    random_assignments,
)

SEEDS = list(range(12))


class TestDeterminism:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_same_seed_same_fingerprint(self, seed):
        first = build_random_graph(seed, blocks=8)
        second = build_random_graph(seed, blocks=8)
        assert graph_fingerprint(first) == graph_fingerprint(second)

    def test_different_seeds_differ(self):
        fingerprints = {graph_fingerprint(build_random_graph(seed, blocks=8))
                        for seed in SEEDS}
        assert len(fingerprints) == len(SEEDS)

    def test_size_knob_is_part_of_the_identity(self):
        small = build_random_graph(3, blocks=2)
        large = build_random_graph(3, blocks=10)
        assert len(large) > len(small)
        assert graph_fingerprint(small) != graph_fingerprint(large)

    def test_assignment_stack_is_deterministic(self):
        graph = build_random_graph(4, blocks=8)
        assert random_assignments(graph, 9, 4) == \
            random_assignments(graph, 9, 4)
        assert random_assignments(graph, 9, 4) != \
            random_assignments(graph, 10, 4)


@pytest.mark.parametrize("seed", SEEDS)
class TestValidity:
    def test_graph_is_valid_and_acyclic(self, seed):
        graph = build_random_graph(seed, blocks=8)
        graph.validate()  # no undriven ports, terminals present
        assert graph.is_acyclic()
        assert graph.output_names() == ["y"]

    def test_input_is_always_a_noise_source(self, seed):
        graph = build_random_graph(seed, blocks=8)
        for name in graph.input_names():
            assert graph.node(name).quantization.enabled

    def test_iir_sections_are_stable(self, seed):
        graph = build_random_graph(seed, blocks=12)
        for node in graph.nodes.values():
            if isinstance(node, IirNode):
                poles = np.roots(node.filter.a)
                assert np.all(np.abs(poles) < 0.9)

    def test_simulates_without_blowup(self, seed):
        graph = build_random_graph(seed, blocks=8)
        stimulus = {name: uniform_white_noise(2304, 0.9, seed + index)
                    for index, name in enumerate(graph.input_names())}
        executor = SfgExecutor(graph)
        for mode in ("double", "fixed"):
            output = executor.run(stimulus, mode=mode).output("y")
            assert np.all(np.isfinite(output))
            assert float(np.max(np.abs(output))) < 100.0

    def test_multirate_flag_honored(self, seed):
        single = build_random_graph(seed, blocks=10, multirate=False)
        assert not is_multirate(single)

    def test_compatible_n_psd_is_divisible_by_every_factor(self, seed):
        for factor in SEGMENT_FACTORS:
            assert COMPATIBLE_N_PSD % factor == 0
        # And by the optional final output decimator.
        assert COMPATIBLE_N_PSD % 2 == 0


class TestParameterValidation:
    def test_bad_parameters_rejected(self):
        with pytest.raises(ValueError):
            build_random_graph(0, blocks=-1)
        with pytest.raises(ValueError):
            build_random_graph(0, min_bits=10, max_bits=8)
        with pytest.raises(ValueError):
            build_random_graph(0, multirate=True, factors=())
        with pytest.raises(ValueError):
            random_assignments(build_random_graph(0), seed=0, count=0)

    def test_zero_blocks_is_a_minimal_system(self):
        graph = build_random_graph(11, blocks=0)
        graph.validate()
        # Input quantization alone must still inject noise.
        assert any(node.quantization.enabled
                   for node in graph.nodes.values())

    def test_assignments_cover_exactly_the_quantized_nodes(self):
        graph = build_random_graph(6, blocks=8)
        quantized = {name for name, node in graph.nodes.items()
                     if node.quantization.enabled}
        for assignment in random_assignments(graph, 1, 5):
            assert set(assignment) == quantized


class TestScenarioRegistration:
    def test_random_scenario_builds_through_the_registry(self):
        instance = build_scenario("random", {"seed": 21})
        assert instance.params["seed"] == 21
        assert instance.graph.output_names() == ["y"]
        assert instance.signature != \
            build_scenario("random", {"seed": 22}).signature

    def test_registry_graph_matches_direct_generation(self):
        instance = build_scenario("random", {"seed": 5, "blocks": 6})
        direct = build_random_graph(5, blocks=6, factors=(2,))
        assert graph_fingerprint(instance.graph) == graph_fingerprint(direct)

    def test_registry_restricts_to_power_of_two_factors(self):
        # Campaigns use power-of-two n_psd values; a factor-3 decimator
        # would make the PSD folding impossible there.
        for seed in range(8):
            graph = build_scenario("random", {"seed": seed}).graph
            for node in graph.nodes.values():
                if isinstance(node, (DownsampleNode, UpsampleNode)):
                    assert node.factor in (1, 2)
