"""Unit coverage of the perf-regression harness (:mod:`repro.bench`).

The CLI smoke tests drive one bench end to end; this suite pins the
pieces individually — schema writer/loader, registry filtering, the
baseline comparison rules (missing measurements, optional numba floors)
and each registered benchmark on a reduced workload, including the
bitwise-identity guard that refuses to report a speedup for a kernel
that drifted.
"""

import functools
import json

import numpy as np
import pytest

from repro.bench import (
    BENCH_SCHEMA,
    bench_entries,
    bench_incremental_reeval,
    bench_payload,
    bench_sim_engine_ff,
    bench_sim_engine_iir,
    bench_welch_psd,
    check_against_baseline,
    load_baseline,
    load_bench_json,
    missing_baseline_entries,
    required_floor,
    write_bench_json,
)
from repro.simkernel import numba_available


class TestSchema:
    def test_payload_round_trip(self, tmp_path):
        payload = bench_payload(
            "demo", workload={"samples": 8}, seconds={"a": 1.5},
            speedup={"x": 2.0}, tags=("t2", "t1"), mode="reduced")
        path = write_bench_json(tmp_path, payload)
        assert path.name == "BENCH_demo.json"
        loaded = load_bench_json(path)
        assert loaded == payload
        assert loaded["tags"] == ["t1", "t2"]
        assert loaded["schema"] == BENCH_SCHEMA

    def test_unsupported_schema_rejected(self, tmp_path):
        path = tmp_path / "BENCH_bad.json"
        path.write_text(json.dumps({"schema": 99, "name": "bad"}))
        with pytest.raises(ValueError, match="unsupported bench schema"):
            load_bench_json(path)
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps({"schema": 99}))
        with pytest.raises(ValueError, match="unsupported baseline schema"):
            load_baseline(baseline)


class TestRegistry:
    def test_every_entry_is_tagged_and_described(self):
        entries = bench_entries()
        assert {entry.name for entry in entries} >= {
            "sim_engine_ff", "sim_engine_iir", "welch_psd",
            "incremental_reeval"}
        for entry in entries:
            assert entry.tags and entry.description

    def test_tag_and_name_filters(self):
        assert all("sim" in entry.tags
                   for entry in bench_entries(tags=["sim"]))
        only = bench_entries(names=["welch_psd"])
        assert [entry.name for entry in only] == ["welch_psd"]
        with pytest.raises(ValueError, match="unknown benchmark"):
            bench_entries(names=["nope"])


class TestBaselineComparison:
    def test_pass_fail_and_missing_measurement(self):
        payloads = [bench_payload("b1", workload={}, seconds={},
                                  speedup={"k": 3.0})]
        baseline = {"schema": 1, "floors": {"b1": {"k": 2.0}}}
        assert check_against_baseline(payloads, baseline) == []
        baseline["floors"]["b1"]["k"] = 4.0
        assert len(check_against_baseline(payloads, baseline)) == 1
        baseline["floors"]["b1"] = {"other": 1.0}
        regressions = check_against_baseline(payloads, baseline)
        assert regressions and "no measurement" in regressions[0]

    def test_unselected_registered_bench_is_not_a_regression(self):
        payloads = [bench_payload("b1", workload={}, seconds={},
                                  speedup={"k": 3.0})]
        baseline = {"schema": 1,
                    "floors": {"welch_psd": {"welch": 99.0}}}
        assert check_against_baseline(payloads, baseline) == []

    def test_unknown_baseline_name_is_a_regression(self):
        # A floor whose benchmark no longer exists in the registry would
        # otherwise never be evaluated again — that must fail loudly.
        payloads = [bench_payload("b1", workload={}, seconds={},
                                  speedup={"k": 3.0})]
        baseline = {"schema": 1, "floors": {"renamed_bench": {"k": 1.0}}}
        regressions = check_against_baseline(payloads, baseline)
        assert regressions and "unknown benchmark" in regressions[0]

    def test_numba_floor_skipped_when_numba_absent(self):
        payloads = [bench_payload("b1", workload={}, seconds={},
                                  speedup={})]
        baseline = {"schema": 1,
                    "floors": {"b1": {"speed_numba": 2.0}}}
        regressions = check_against_baseline(payloads, baseline)
        if numba_available():
            assert regressions  # backend present, measurement required
        else:
            assert regressions == []


class TestBaselineGating:
    """Floors must exist before a bench may gate on them."""

    def test_required_floor_returns_committed_value(self):
        baseline = {"schema": 1, "floors": {"b1": {"k": 2.5}}}
        assert required_floor(baseline, "b1", "k") == 2.5

    def test_required_floor_names_the_missing_key(self, tmp_path):
        baseline = {"schema": 1, "floors": {"b1": {"k": 2.5}}}
        path = tmp_path / "baseline.json"
        with pytest.raises(ValueError, match=r"floors\.b1\.other"):
            required_floor(baseline, "b1", "other", path)
        with pytest.raises(ValueError) as excinfo:
            required_floor(baseline, "b2", "k", path)
        assert str(path) in str(excinfo.value)
        assert "floors.b2.k" in str(excinfo.value)

    def test_missing_baseline_entries_flags_unfloored_speedups(self):
        payloads = [
            bench_payload("floored", workload={}, seconds={},
                          speedup={"k": 3.0}),
            bench_payload("unfloored_b", workload={}, seconds={},
                          speedup={"k": 3.0}),
            bench_payload("unfloored_a", workload={}, seconds={},
                          speedup={"k": 3.0}),
            bench_payload("timing_only", workload={}, seconds={"k": 0.1}),
        ]
        baseline = {"schema": 1, "floors": {"floored": {"k": 1.0}}}
        # Sorted, speedup-less payloads excluded, floored payloads excluded.
        assert missing_baseline_entries(payloads, baseline) == [
            "unfloored_a", "unfloored_b"]
        baseline["floors"]["unfloored_a"] = {"k": 1.0}
        baseline["floors"]["unfloored_b"] = {"k": 1.0}
        assert missing_baseline_entries(payloads, baseline) == []

    def test_committed_baseline_covers_incremental_reeval(self):
        # The acceptance floor of the incremental re-evaluation work must
        # stay committed: 5x per greedy candidate.
        from pathlib import Path

        path = Path(__file__).parent.parent / "benchmarks" / \
            "bench_baseline.json"
        baseline = load_baseline(path)
        assert required_floor(baseline, "incremental_reeval",
                              "per_candidate") >= 5.0


class TestRegisteredBenches:
    @pytest.mark.parametrize("function, key", [
        (bench_sim_engine_ff, "bit_true_simulation"),
        (bench_sim_engine_iir, "single_stream"),
        (bench_welch_psd, "welch"),
        (functools.partial(bench_incremental_reeval, branches=8,
                           candidates=4, n_psd=128), "per_candidate"),
    ])
    def test_reduced_workload_produces_valid_payload(self, function, key):
        payload = function(samples=2000)
        assert payload["schema"] == BENCH_SCHEMA
        assert payload["speedup"][key] > 0.0
        assert all(value >= 0.0 for value in payload["seconds"].values())

    def test_bitwise_guard_refuses_broken_kernels(self, monkeypatch):
        from repro import bench as bench_module

        original = np.array_equal
        monkeypatch.setattr(
            bench_module.np, "array_equal",
            lambda *args, **kwargs: False)
        with pytest.raises(RuntimeError, match="not bitwise identical"):
            bench_sim_engine_iir(samples=1000)
        assert original(np.arange(3), np.arange(3))
