"""Unit tests for the cost-vs-noise Pareto sweep."""

import numpy as np
import pytest

from repro.analysis.psd_method import evaluate_psd
from repro.lti.fir_design import design_fir_highpass, design_fir_lowpass
from repro.sfg.builder import SfgBuilder
from repro.systems.pareto import (
    ParetoFront,
    ParetoPoint,
    budget_range,
    sweep_noise_budgets,
)


def _graph(bits=12):
    builder = SfgBuilder("pareto-system")
    x = builder.input("x", fractional_bits=bits)
    lp = builder.fir("lp", design_fir_lowpass(15, 0.4), x,
                     fractional_bits=bits)
    hp = builder.fir("hp", design_fir_highpass(15, 0.5), lp,
                     fractional_bits=bits)
    builder.output("y", hp)
    return builder.build()


class TestBudgetRange:
    def test_geometric_spacing(self):
        budgets = budget_range(1e-4, 1e-8, 5)
        np.testing.assert_allclose(budgets,
                                   [1e-4, 1e-5, 1e-6, 1e-7, 1e-8], rtol=1e-9)

    def test_single_point(self):
        np.testing.assert_allclose(budget_range(1e-5, 1e-9, 1), [1e-5])

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            budget_range(0.0, 1e-8, 3)
        with pytest.raises(ValueError):
            budget_range(1e-4, 0.0, 3)
        with pytest.raises(ValueError):
            budget_range(1e-4, 1e-8, -1)

    def test_zero_count_is_an_empty_range(self):
        # Regression: a zero-point request used to raise; it must produce
        # a well-formed empty range (and an empty front downstream).
        budgets = budget_range(1e-4, 1e-8, 0)
        assert budgets.shape == (0,)

    def test_inverted_endpoints_are_reordered(self):
        # Regression: swapped endpoints must still yield a loosest-first
        # descending range, not an ascending one.
        np.testing.assert_allclose(budget_range(1e-8, 1e-4, 5),
                                   budget_range(1e-4, 1e-8, 5), rtol=1e-12)
        np.testing.assert_allclose(budget_range(1e-9, 1e-5, 1), [1e-5])

    def test_equal_endpoints_collapse(self):
        np.testing.assert_allclose(budget_range(1e-6, 1e-6, 3),
                                   [1e-6, 1e-6, 1e-6])


class TestSweep:
    def test_points_meet_their_budgets(self):
        graph = _graph()
        front = sweep_noise_budgets(graph, budget_range(1e-5, 1e-8, 4),
                                    n_psd=128)
        assert len(front.points) == 4
        for point in front.points:
            assert point.noise_power <= point.budget
            assert point.total_bits == sum(point.assignment.values())

    def test_tighter_budgets_cost_more_bits(self):
        front = sweep_noise_budgets(_graph(), budget_range(1e-5, 1e-9, 5),
                                    n_psd=128)
        costs = [point.total_bits for point in front.points]
        assert costs == sorted(costs)

    def test_points_match_standalone_evaluation(self):
        graph = _graph()
        front = sweep_noise_budgets(graph, [1e-6, 1e-8], n_psd=128)
        for point in front.points:
            from repro.sfg.plan import compile_plan
            plan = compile_plan(graph)
            plan.requantize(point.assignment)
            assert evaluate_psd(plan, 128).total_power == point.noise_power

    def test_unreachable_budgets_truncate_the_sweep(self):
        front = sweep_noise_budgets(_graph(), [1e-5, 1e-30], n_psd=64,
                                    max_bits=16)
        assert len(front.points) == 1
        assert front.points[0].budget == 1e-5

    def test_batched_and_sequential_fronts_identical(self):
        budgets = budget_range(1e-5, 1e-8, 3)
        batched = sweep_noise_budgets(_graph(), budgets, n_psd=128,
                                      batch=True)
        sequential = sweep_noise_budgets(_graph(), budgets, n_psd=128,
                                         batch=False)
        for a, b in zip(batched.points, sequential.points):
            assert a.assignment == b.assignment
            assert a.noise_power == b.noise_power
            assert a.evaluations == b.evaluations

    def test_validation_attaches_simulated_powers(self):
        front = sweep_noise_budgets(_graph(), [1e-5, 1e-7], n_psd=256,
                                    validate_samples=20_000, seed=3)
        for point in front.points:
            assert point.simulated_power is not None
            assert point.simulated_power > 0
            # The estimate must sit well inside the sub-one-bit band.
            assert -3.0 < point.ed < 0.75

    def test_empty_sweep_yields_empty_front(self):
        # Regression: an empty budget list (e.g. budget_range(..., 0))
        # used to raise; it must yield a well-formed empty front whose
        # accessors all behave.
        front = sweep_noise_budgets(_graph(), budget_range(1e-5, 1e-8, 0))
        assert front.points == []
        assert front.pareto_points() == []
        assert front.total_evaluations == 0
        assert "0 budgets" in front.describe()

    def test_single_point_sweep_is_well_formed(self):
        front = sweep_noise_budgets(_graph(), budget_range(1e-6, 1e-6, 1),
                                    n_psd=64)
        assert len(front.points) == 1
        assert front.pareto_points() == front.points
        assert front.points[0].noise_power <= 1e-6

    def test_duplicate_budgets_collapse(self):
        front = sweep_noise_budgets(_graph(), [1e-6, 1e-6, 1e-6], n_psd=64)
        assert len(front.points) == 1

    def test_negative_budgets_rejected(self):
        with pytest.raises(ValueError):
            sweep_noise_budgets(_graph(), [1e-6, -1.0])

    @pytest.mark.parametrize("bad",
                             [float("nan"), float("inf"), float("-inf")])
    def test_non_finite_budgets_rejected(self, bad):
        # Regression: NaN passed the `budget <= 0` check and poisoned the
        # whole sweep (sorting with NaN is undefined, and the optimizer
        # binary search never terminates meaningfully).
        with pytest.raises(ValueError, match="finite"):
            sweep_noise_budgets(_graph(), [1e-6, bad])
        with pytest.raises(ValueError, match="finite"):
            budget_range(bad, 1e-8, 3)
        with pytest.raises(ValueError, match="finite"):
            budget_range(1e-4, bad, 3)

    def test_edge_granularity_threaded_to_the_optimizer(self):
        node_front = sweep_noise_budgets(_graph(), [1e-6], n_psd=128)
        edge_front = sweep_noise_budgets(_graph(), [1e-6], n_psd=128,
                                         granularity="edge")
        assert all("->" not in key
                   for key in node_front.points[0].assignment)
        assert any("->" in key
                   for key in edge_front.points[0].assignment)
        assert edge_front.points[0].noise_power <= 1e-6


class TestParetoFront:
    def _point(self, bits, power, budget=1e-6):
        return ParetoPoint(budget=budget, total_bits=bits, noise_power=power,
                           assignment={}, evaluations=1)

    def test_dominated_points_filtered(self):
        front = ParetoFront(system="s", method="psd", points=[
            self._point(10, 1e-6),
            self._point(12, 1e-6),   # more bits, same noise: dominated
            self._point(10, 2e-6),   # same bits, more noise: dominated
            self._point(8, 5e-6),
        ])
        optimal = front.pareto_points()
        assert [p.total_bits for p in optimal] == [8, 10]

    def test_describe_renders_every_point(self):
        front = ParetoFront(system="s", method="psd", points=[
            self._point(10, 1e-6), self._point(14, 1e-8)])
        text = front.describe()
        assert "cost-vs-noise sweep" in text
        assert text.count("yes") == 2

    def test_ed_requires_validation(self):
        assert self._point(10, 1e-6).ed is None
