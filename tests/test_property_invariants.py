"""Cross-module property-based tests of the library-wide invariants.

These tests tie together the fixed-point, PSD and analysis layers and
check the conservation laws the whole methodology rests on:

* total noise power is conserved by the PSD representation regardless of
  how the frequency grid is chosen or transformed;
* the analytical estimators are consistent with each other in the regimes
  where they are supposed to coincide;
* estimates scale exactly as ``q^2`` with the word length (the property
  that makes word-length optimization monotone);
* the separable 2-D noise field agrees with the 1-D machinery on
  separable inputs.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.agnostic_method import evaluate_agnostic
from repro.analysis.flat_method import evaluate_flat
from repro.analysis.psd_method import evaluate_psd
from repro.fixedpoint.noise_model import NoiseStats, quantization_noise_stats
from repro.fixedpoint.qformat import QFormat
from repro.fixedpoint.quantizer import (
    Quantizer,
    RoundingMode,
    round_half_away,
)
from repro.lti.fir_design import design_fir_lowpass
from repro.lti.transfer_function import TransferFunction
from repro.psd.spectrum import DiscretePsd
from repro.sfg.builder import SfgBuilder
from repro.systems.dwt.noise_model import SeparableNoiseField

_ROUNDING_MODES = st.sampled_from([RoundingMode.ROUND, RoundingMode.TRUNCATE,
                                   RoundingMode.CONVERGENT])


def _simple_graph(bits, taps):
    # Coefficients are pinned to a fixed high precision so that changing the
    # data word length changes only the data-path noise (which is what the
    # q^2-scaling property is about), not the effective transfer function.
    builder = SfgBuilder("prop")
    x = builder.input("x", fractional_bits=bits)
    h = builder.fir("h", taps, x, fractional_bits=bits,
                    coefficient_fractional_bits=24)
    builder.output("y", h)
    return builder.build()


class TestPsdConservationLaws:
    @settings(deadline=None, max_examples=30)
    @given(st.integers(min_value=2, max_value=9),
           st.integers(min_value=2, max_value=9),
           st.floats(min_value=1e-6, max_value=10.0),
           st.floats(min_value=-1.0, max_value=1.0))
    def test_grid_resampling_never_changes_power(self, log_a, log_b,
                                                 variance, mean):
        psd = DiscretePsd.from_moments(mean, variance, 2 ** log_a)
        resampled = psd.resampled(2 ** log_b)
        assert resampled.total_power == pytest.approx(psd.total_power,
                                                      rel=1e-9)

    @settings(deadline=None, max_examples=30)
    @given(st.integers(min_value=1, max_value=4),
           st.floats(min_value=1e-6, max_value=10.0))
    def test_decimation_then_expansion_halves_power_each_round(self, rounds,
                                                               variance):
        psd = DiscretePsd.from_moments(0.0, variance, 256)
        field = SeparableNoiseField.zero(64).injected(NoiseStats(0.0, variance))
        for _ in range(rounds):
            psd = psd.downsampled(2).upsampled(2)
            field = field.downsampled(0).upsampled(0)
        expected = variance / (2.0 ** rounds)
        assert psd.variance == pytest.approx(expected, rel=1e-9)
        assert field.variance == pytest.approx(expected, rel=1e-9)

    @settings(deadline=None, max_examples=20)
    @given(st.integers(min_value=5, max_value=31).filter(lambda n: n % 2 == 1),
           st.floats(min_value=0.1, max_value=0.9))
    def test_filtering_power_matches_parseval(self, taps_count, cutoff):
        taps = design_fir_lowpass(taps_count, cutoff)
        tf = TransferFunction.fir(taps)
        psd = DiscretePsd.from_moments(0.0, 1.0, 1024)
        filtered = psd.filtered(tf.frequency_response(1024))
        assert filtered.variance == pytest.approx(tf.energy(), rel=1e-6)

    @settings(deadline=None, max_examples=20)
    @given(st.floats(min_value=1e-6, max_value=10.0),
           st.floats(min_value=0.1, max_value=0.9))
    def test_separable_field_matches_1d_psd_on_row_filtering(self, variance,
                                                             cutoff):
        """Filtering along one axis of a white 2-D field equals the 1-D case."""
        taps = design_fir_lowpass(15, cutoff)
        field = (SeparableNoiseField.zero(128)
                 .injected(NoiseStats(0.0, variance))
                 .filtered(taps, axis=1))
        psd = DiscretePsd.from_moments(0.0, variance, 128).filtered(
            TransferFunction.fir(taps).frequency_response(128))
        assert field.variance == pytest.approx(psd.variance, rel=1e-6)


class TestFixedPointInvariants:
    """Seeded properties of the quantization layer itself: idempotence,
    odd symmetry of the rounding characteristic, and agreement of the
    PQN noise model with empirically measured error moments."""

    @settings(deadline=None, max_examples=40)
    @given(st.integers(min_value=0, max_value=16), _ROUNDING_MODES,
           st.integers(min_value=0, max_value=2 ** 31 - 1))
    def test_quantizer_is_idempotent(self, bits, rounding, seed):
        """Re-quantizing at the same format must be the identity."""
        quantizer = Quantizer(QFormat(15, bits), rounding=rounding)
        values = np.random.default_rng(seed).uniform(-4.0, 4.0, 512)
        once = quantizer.quantize(values)
        np.testing.assert_array_equal(quantizer.quantize(once), once)

    @settings(deadline=None, max_examples=40)
    @given(st.integers(min_value=-10 ** 9, max_value=10 ** 9),
           st.integers(min_value=0, max_value=2 ** 31 - 1))
    def test_round_half_away_is_odd(self, half_step, seed):
        """``round_half_away(-x) == -round_half_away(x)``, ties included."""
        # Exact half-integers are the interesting inputs — they are where
        # the asymmetric floor(x + 0.5) rule breaks the symmetry.
        ties = np.array([half_step / 2.0])
        np.testing.assert_array_equal(round_half_away(-ties),
                                      -round_half_away(ties))
        values = np.random.default_rng(seed).uniform(-100.0, 100.0, 256)
        np.testing.assert_array_equal(round_half_away(-values),
                                      -round_half_away(values))

    @settings(deadline=None, max_examples=15)
    @given(st.integers(min_value=3, max_value=8), _ROUNDING_MODES,
           st.integers(min_value=0, max_value=2 ** 31 - 1))
    def test_pqn_moments_match_empirical_continuous_input(self, bits,
                                                          rounding, seed):
        """Model moments vs measured moments, continuous-amplitude input."""
        model = quantization_noise_stats(bits, rounding=rounding)
        quantizer = Quantizer(QFormat(15, bits), rounding=rounding)
        values = np.random.default_rng(seed).uniform(-0.9, 0.9, 200_000)
        error = quantizer.error(values)
        step = 2.0 ** -bits
        # Mean to five standard errors of the uniform error distribution;
        # variance to 5 % (exact for a uniform continuous input).
        assert np.mean(error) == pytest.approx(
            model.mean, abs=5.0 * step / np.sqrt(12.0 * error.size))
        assert np.var(error) == pytest.approx(model.variance, rel=0.05)

    @settings(deadline=None, max_examples=15)
    @given(st.integers(min_value=3, max_value=7),
           st.integers(min_value=2, max_value=8), _ROUNDING_MODES,
           st.integers(min_value=0, max_value=2 ** 31 - 1))
    def test_pqn_moments_match_empirical_requantization(self, bits, extra,
                                                        rounding, seed):
        """Model moments vs measured moments when the input already lives
        on a finer grid (the re-quantization case, including the tie
        term of ties-away-from-zero rounding)."""
        input_bits = bits + extra
        model = quantization_noise_stats(bits, rounding=rounding,
                                         input_fractional_bits=input_bits)
        fine = Quantizer(QFormat(15, input_bits), rounding=rounding)
        coarse = Quantizer(QFormat(15, bits), rounding=rounding)
        values = fine.quantize(
            np.random.default_rng(seed).uniform(-0.9, 0.9, 400_000))
        error = coarse.error(values)
        step = 2.0 ** -bits
        tolerance = 5.0 * step / np.sqrt(12.0 * error.size)
        if rounding is RoundingMode.CONVERGENT:
            # The model documents that the discrete-input tie term of
            # convergent rounding is neglected; only the mean is exact.
            assert np.mean(error) == pytest.approx(model.mean, abs=tolerance)
        else:
            assert np.mean(error) == pytest.approx(model.mean, abs=tolerance)
            assert np.var(error) == pytest.approx(
                model.variance, rel=0.05, abs=step * step / 2_000.0)

    @settings(deadline=None, max_examples=20)
    @given(st.integers(min_value=0, max_value=12),
           st.integers(min_value=0, max_value=6), _ROUNDING_MODES)
    def test_coarser_or_equal_input_grid_means_zero_noise(self, bits, extra,
                                                          rounding):
        """A quantizer whose input is already representable is lossless —
        the model must predict exactly zero noise for it."""
        stats = quantization_noise_stats(
            bits, rounding=rounding, input_fractional_bits=max(0, bits - extra))
        assert stats.mean == 0.0
        assert stats.variance == 0.0


class TestEstimatorConsistency:
    @settings(deadline=None, max_examples=15)
    @given(st.integers(min_value=6, max_value=20),
           st.integers(min_value=5, max_value=41).filter(lambda n: n % 2 == 1),
           st.floats(min_value=0.15, max_value=0.85))
    def test_flat_psd_agnostic_coincide_on_single_block(self, bits, taps_count,
                                                        cutoff):
        graph = _simple_graph(bits, design_fir_lowpass(taps_count, cutoff))
        psd = evaluate_psd(graph, 1024).total_power
        flat = evaluate_flat(graph).power
        agnostic = evaluate_agnostic(graph).power
        assert psd == pytest.approx(flat, rel=5e-3)
        assert agnostic == pytest.approx(flat, rel=5e-3)

    @settings(deadline=None, max_examples=15)
    @given(st.integers(min_value=6, max_value=16),
           st.integers(min_value=1, max_value=6))
    def test_estimates_scale_exactly_as_q_squared(self, bits, extra_bits):
        taps = design_fir_lowpass(17, 0.4)
        coarse = evaluate_psd(_simple_graph(bits, taps), 256).total_power
        fine = evaluate_psd(_simple_graph(bits + extra_bits, taps),
                            256).total_power
        assert coarse / fine == pytest.approx(4.0 ** extra_bits, rel=1e-6)

    @settings(deadline=None, max_examples=15)
    @given(st.integers(min_value=6, max_value=16))
    def test_more_quantizers_never_reduce_noise(self, bits):
        """Adding a quantized stage can only add noise."""
        taps = design_fir_lowpass(17, 0.4)
        single = evaluate_psd(_simple_graph(bits, taps), 256).total_power

        builder = SfgBuilder("two-stage")
        x = builder.input("x", fractional_bits=bits)
        h1 = builder.fir("h1", taps, x, fractional_bits=bits)
        h2 = builder.fir("h2", [1.0], h1, fractional_bits=bits)
        builder.output("y", h2)
        double = evaluate_psd(builder.build(), 256).total_power
        assert double >= single - 1e-18

    @settings(deadline=None, max_examples=10)
    @given(st.integers(min_value=4, max_value=10),
           st.integers(min_value=2, max_value=64))
    def test_psd_power_independent_of_bin_count_for_white_paths(self, bits,
                                                                n_bins):
        """With a pure-gain path the estimate must not depend on N_PSD."""
        builder = SfgBuilder("gain-only")
        x = builder.input("x", fractional_bits=bits)
        g = builder.gain("g", 0.5, x, fractional_bits=bits)
        builder.output("y", g)
        graph = builder.build()
        reference = evaluate_psd(graph, 2).total_power
        assert evaluate_psd(graph, n_bins).total_power == pytest.approx(
            reference, rel=1e-9)
