"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic random generator shared by the tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def short_white_noise(rng) -> np.ndarray:
    """A short wide-band stimulus for quick simulations."""
    return rng.uniform(-0.9, 0.9, 8_192)


@pytest.fixture
def small_image(rng) -> np.ndarray:
    """A small synthetic test image in [0, 1)."""
    from repro.data.images import natural_image

    return natural_image(32, seed=7)
