"""Unit tests for graph serialization and the CLI front end."""

import json

import numpy as np
import pytest

from repro.analysis.psd_method import evaluate_psd
from repro.cli import main as cli_main
from repro.lti.fir_design import design_fir_lowpass
from repro.lti.iir_design import design_iir_filter
from repro.lti.transfer_function import TransferFunction
from repro.sfg.builder import SfgBuilder
from repro.sfg.executor import SfgExecutor
from repro.sfg.nodes import LtiNode
from repro.sfg.serialization import (
    graph_from_dict,
    graph_to_dict,
    load_graph,
    save_graph,
)


def _rich_graph():
    """A graph touching every serializable node type."""
    b, a = design_iir_filter(2, 0.4, "lowpass", "butterworth")
    builder = SfgBuilder("rich")
    x = builder.input("x", fractional_bits=12)
    fir = builder.fir("fir", design_fir_lowpass(9, 0.4), x, fractional_bits=12)
    gain = builder.gain("gain", 0.75, fir, fractional_bits=12)
    delay = builder.delay("delay", gain, samples=2)
    iir = builder.iir("iir", b, a, delay, fractional_bits=12)
    down = builder.downsample("down", iir, factor=2)
    up = builder.upsample("up", down, factor=2)
    lti = builder.lti("lti", TransferFunction([0.5, 0.5]), up)
    mix = builder.add("mix", [lti, gain], signs=[1.0, -1.0],
                      fractional_bits=12)
    builder.output("y", mix)
    return builder.build()


class TestRoundTrip:
    def test_dict_round_trip_preserves_structure(self):
        graph = _rich_graph()
        rebuilt = graph_from_dict(graph_to_dict(graph))
        assert set(rebuilt.nodes) == set(graph.nodes)
        assert len(rebuilt.edges) == len(graph.edges)

    def test_round_trip_preserves_behaviour(self, rng):
        graph = _rich_graph()
        rebuilt = graph_from_dict(graph_to_dict(graph))
        x = rng.uniform(-0.9, 0.9, 512)
        original = SfgExecutor(graph).run({"x": x}, mode="fixed").output("y")
        restored = SfgExecutor(rebuilt).run({"x": x}, mode="fixed").output("y")
        np.testing.assert_allclose(restored, original)

    def test_round_trip_preserves_noise_estimate(self):
        graph = _rich_graph()
        rebuilt = graph_from_dict(graph_to_dict(graph))
        assert evaluate_psd(rebuilt, 128).total_power == pytest.approx(
            evaluate_psd(graph, 128).total_power)

    def test_file_round_trip(self, tmp_path, rng):
        graph = _rich_graph()
        path = tmp_path / "system.json"
        save_graph(graph, path)
        rebuilt = load_graph(path)
        x = rng.uniform(-0.9, 0.9, 128)
        np.testing.assert_allclose(
            SfgExecutor(rebuilt).run({"x": x}).output("y"),
            SfgExecutor(graph).run({"x": x}).output("y"))

    def test_quantization_specs_preserved(self):
        graph = _rich_graph()
        rebuilt = graph_from_dict(graph_to_dict(graph))
        assert rebuilt.node("fir").quantization.fractional_bits == 12
        assert not rebuilt.node("delay").quantization.enabled

    def test_serialized_file_is_human_readable_json(self, tmp_path):
        path = tmp_path / "system.json"
        save_graph(_rich_graph(), path)
        data = json.loads(path.read_text())
        assert data["version"] == 1
        assert any(node["type"] == "iir" for node in data["nodes"])


class TestValidation:
    def test_unknown_node_type_rejected(self):
        with pytest.raises(ValueError):
            graph_from_dict({"version": 1, "name": "bad",
                             "nodes": [{"name": "x", "type": "modulator"}],
                             "edges": []})

    def test_unknown_version_rejected(self):
        with pytest.raises(ValueError):
            graph_from_dict({"version": 99, "nodes": [], "edges": []})

    def test_missing_name_rejected(self):
        with pytest.raises(ValueError):
            graph_from_dict({"version": 1,
                             "nodes": [{"type": "input"}], "edges": []})

    def test_unserializable_node_rejected(self):
        from repro.systems.freq_filter import FrequencyDomainFirNode
        from repro.sfg.graph import SignalFlowGraph
        from repro.sfg.nodes import InputNode, OutputNode

        graph = SignalFlowGraph("custom")
        graph.add_node(InputNode("x"))
        graph.add_node(FrequencyDomainFirNode("f", [1.0, 0.5], fft_size=8))
        graph.add_node(OutputNode("y"))
        graph.connect("x", "f")
        graph.connect("f", "y")
        with pytest.raises(TypeError):
            graph_to_dict(graph)


class TestCli:
    @pytest.fixture
    def system_file(self, tmp_path):
        path = tmp_path / "system.json"
        builder = SfgBuilder("cli-system")
        x = builder.input("x", fractional_bits=10)
        h = builder.fir("h", design_fir_lowpass(9, 0.4), x, fractional_bits=10)
        builder.output("y", h)
        save_graph(builder.build(), path)
        return path

    def test_evaluate_command(self, system_file, capsys):
        assert cli_main(["evaluate", str(system_file), "--method", "psd",
                         "--n-psd", "128"]) == 0
        output = capsys.readouterr().out
        assert "estimated output noise power" in output

    def test_simulate_command(self, system_file, capsys):
        assert cli_main(["simulate", str(system_file),
                         "--samples", "5000"]) == 0
        assert "simulated output noise power" in capsys.readouterr().out

    def test_compare_command(self, system_file, capsys):
        assert cli_main(["compare", str(system_file), "--samples", "5000",
                         "--methods", "psd", "flat"]) == 0
        output = capsys.readouterr().out
        assert "psd" in output and "flat" in output

    def test_optimize_command(self, system_file, capsys):
        assert cli_main(["optimize", str(system_file),
                         "--budget", "1e-5", "--n-psd", "64"]) == 0
        assert "optimized word lengths" in capsys.readouterr().out

    def test_missing_file_reports_error(self, tmp_path, capsys):
        missing = tmp_path / "nope.json"
        assert cli_main(["evaluate", str(missing)]) == 1
        assert "error:" in capsys.readouterr().err
