"""Unit tests for graph serialization and the CLI front end."""

import json

import numpy as np
import pytest

from repro.analysis.psd_method import evaluate_psd
from repro.cli import main as cli_main
from repro.lti.fir_design import design_fir_lowpass
from repro.lti.iir_design import design_iir_filter
from repro.lti.transfer_function import TransferFunction
from repro.sfg.builder import SfgBuilder
from repro.sfg.executor import SfgExecutor
from repro.sfg.nodes import LtiNode
from repro.sfg.serialization import (
    assignment_fingerprint,
    canonical_graph_dict,
    graph_fingerprint,
    graph_from_dict,
    graph_to_dict,
    load_graph,
    save_graph,
)


def _rich_graph():
    """A graph touching every serializable node type."""
    b, a = design_iir_filter(2, 0.4, "lowpass", "butterworth")
    builder = SfgBuilder("rich")
    x = builder.input("x", fractional_bits=12)
    fir = builder.fir("fir", design_fir_lowpass(9, 0.4), x, fractional_bits=12)
    gain = builder.gain("gain", 0.75, fir, fractional_bits=12)
    delay = builder.delay("delay", gain, samples=2)
    iir = builder.iir("iir", b, a, delay, fractional_bits=12)
    down = builder.downsample("down", iir, factor=2)
    up = builder.upsample("up", down, factor=2)
    lti = builder.lti("lti", TransferFunction([0.5, 0.5]), up)
    mix = builder.add("mix", [lti, gain], signs=[1.0, -1.0],
                      fractional_bits=12)
    builder.output("y", mix)
    return builder.build()


class TestRoundTrip:
    def test_dict_round_trip_preserves_structure(self):
        graph = _rich_graph()
        rebuilt = graph_from_dict(graph_to_dict(graph))
        assert set(rebuilt.nodes) == set(graph.nodes)
        assert len(rebuilt.edges) == len(graph.edges)

    def test_round_trip_preserves_behaviour(self, rng):
        graph = _rich_graph()
        rebuilt = graph_from_dict(graph_to_dict(graph))
        x = rng.uniform(-0.9, 0.9, 512)
        original = SfgExecutor(graph).run({"x": x}, mode="fixed").output("y")
        restored = SfgExecutor(rebuilt).run({"x": x}, mode="fixed").output("y")
        np.testing.assert_allclose(restored, original)

    def test_round_trip_preserves_noise_estimate(self):
        graph = _rich_graph()
        rebuilt = graph_from_dict(graph_to_dict(graph))
        assert evaluate_psd(rebuilt, 128).total_power == pytest.approx(
            evaluate_psd(graph, 128).total_power)

    def test_file_round_trip(self, tmp_path, rng):
        graph = _rich_graph()
        path = tmp_path / "system.json"
        save_graph(graph, path)
        rebuilt = load_graph(path)
        x = rng.uniform(-0.9, 0.9, 128)
        np.testing.assert_allclose(
            SfgExecutor(rebuilt).run({"x": x}).output("y"),
            SfgExecutor(graph).run({"x": x}).output("y"))

    def test_quantization_specs_preserved(self):
        graph = _rich_graph()
        rebuilt = graph_from_dict(graph_to_dict(graph))
        assert rebuilt.node("fir").quantization.fractional_bits == 12
        assert not rebuilt.node("delay").quantization.enabled

    def test_serialized_file_is_human_readable_json(self, tmp_path):
        path = tmp_path / "system.json"
        save_graph(_rich_graph(), path)
        data = json.loads(path.read_text())
        assert data["version"] == 1
        assert any(node["type"] == "iir" for node in data["nodes"])


def _single_node_graph(node_type: str):
    """Wrap one instance of ``node_type`` into a minimal valid graph."""
    from repro.fixedpoint.quantizer import RoundingMode
    from repro.sfg.graph import SignalFlowGraph
    from repro.sfg.nodes import (
        AddNode,
        DelayNode,
        DownsampleNode,
        FirNode,
        GainNode,
        IirNode,
        InputNode,
        LtiNode,
        OutputNode,
        QuantizationSpec,
        UpsampleNode,
    )

    spec = QuantizationSpec(fractional_bits=9,
                            rounding=RoundingMode.TRUNCATE,
                            coefficient_fractional_bits=11,
                            input_fractional_bits=14)
    b, a = design_iir_filter(2, 0.4, "lowpass", "butterworth")
    nodes = {
        "input": InputNode("n", spec),
        "output": OutputNode("n"),
        "add": AddNode("n", num_inputs=2, signs=[1.0, -1.0],
                       quantization=spec),
        "gain": GainNode("n", 0.625, quantization=spec),
        "delay": DelayNode("n", delay=3),
        "fir": FirNode("n", design_fir_lowpass(7, 0.3), quantization=spec),
        "iir": IirNode("n", b, a, quantization=spec),
        "lti": LtiNode("n", TransferFunction([0.5, 0.25], [1.0, -0.5]),
                       quantization=spec),
        "downsample": DownsampleNode("n", factor=2, phase=1),
        "upsample": UpsampleNode("n", factor=3),
    }
    node = nodes[node_type]

    graph = SignalFlowGraph(f"single-{node_type}")
    if node_type == "input":
        graph.add_node(node)
        graph.add_node(FirNode("h", [1.0, 0.5], quantization=spec))
        graph.add_node(OutputNode("y"))
        graph.connect("n", "h")
        graph.connect("h", "y")
        return graph
    graph.add_node(InputNode("x", spec))
    if node_type == "output":
        graph.add_node(node)
        graph.connect("x", "n")
        return graph
    graph.add_node(node)
    graph.add_node(OutputNode("y"))
    graph.connect("x", "n", 0)
    if node_type == "add":
        graph.add_node(GainNode("g2", 0.5, quantization=spec))
        graph.connect("x", "g2")
        graph.connect("g2", "n", 1)
    graph.connect("n", "y")
    return graph


_ALL_NODE_TYPES = ("input", "output", "add", "gain", "delay", "fir", "iir",
                   "lti", "downsample", "upsample")


class TestEveryNodeTypeRoundTrip:
    """Satellite coverage: every node type survives save -> load intact."""

    @pytest.mark.parametrize("node_type", _ALL_NODE_TYPES)
    def test_file_round_trip_preserves_node(self, node_type, tmp_path):
        graph = _single_node_graph(node_type)
        path = tmp_path / "system.json"
        save_graph(graph, path)
        rebuilt = load_graph(path)
        assert set(rebuilt.nodes) == set(graph.nodes)
        original = graph.node("n")
        restored = rebuilt.node("n")
        assert type(restored) is type(original)

    @pytest.mark.parametrize("node_type", _ALL_NODE_TYPES)
    def test_quantization_spec_round_trips_exactly(self, node_type, tmp_path):
        graph = _single_node_graph(node_type)
        path = tmp_path / "system.json"
        save_graph(graph, path)
        rebuilt = load_graph(path)
        for name, node in graph.nodes.items():
            spec = node.quantization
            restored = rebuilt.node(name).quantization
            assert restored.fractional_bits == spec.fractional_bits
            if spec.enabled:
                assert restored.rounding == spec.rounding
                assert restored.coefficient_fractional_bits == \
                    spec.coefficient_fractional_bits
                assert restored.input_fractional_bits == \
                    spec.input_fractional_bits

    @pytest.mark.parametrize("node_type", _ALL_NODE_TYPES)
    def test_reloaded_plan_produces_identical_estimates(self, node_type,
                                                        tmp_path):
        from repro.analysis.agnostic_method import evaluate_agnostic
        from repro.sfg.plan import compile_plan

        graph = _single_node_graph(node_type)
        path = tmp_path / "system.json"
        save_graph(graph, path)
        plan = compile_plan(load_graph(path))
        original_psd = evaluate_psd(graph, 128)
        reloaded_psd = evaluate_psd(plan, 128)
        np.testing.assert_array_equal(reloaded_psd.ac, original_psd.ac)
        assert reloaded_psd.mean == original_psd.mean
        original_stats = evaluate_agnostic(graph)
        reloaded_stats = evaluate_agnostic(plan)
        assert reloaded_stats.mean == original_stats.mean
        assert reloaded_stats.variance == original_stats.variance

    def test_rich_graph_reloaded_plan_matches_executor(self, tmp_path, rng):
        from repro.sfg.plan import compile_plan

        graph = _rich_graph()
        path = tmp_path / "system.json"
        save_graph(graph, path)
        plan = compile_plan(load_graph(path))
        x = rng.uniform(-0.9, 0.9, 256)
        np.testing.assert_array_equal(
            SfgExecutor(plan).run({"x": x}, mode="fixed").output("y"),
            SfgExecutor(graph).run({"x": x}, mode="fixed").output("y"))


class TestFingerprints:
    def test_fingerprint_survives_round_trip(self):
        graph = _rich_graph()
        rebuilt = graph_from_dict(graph_to_dict(graph))
        assert graph_fingerprint(rebuilt) == graph_fingerprint(graph)

    def test_fingerprint_is_insertion_order_stable(self):
        # Build the same two-node system wiring-first vs nodes-reversed;
        # the plain serialized dicts differ (node order follows insertion)
        # but the canonical form and the fingerprint must not.
        from repro.sfg.graph import SignalFlowGraph
        from repro.sfg.nodes import FirNode, InputNode, OutputNode

        def build(order):
            graph = SignalFlowGraph("fp")
            nodes = {"x": InputNode("x"),
                     "h": FirNode("h", [0.5, 0.5]),
                     "y": OutputNode("y")}
            for name in order:
                graph.add_node(nodes[name])
            graph.connect("x", "h", 0)
            graph.connect("h", "y", 0)
            return graph

        forward, backward = build("xhy"), build("yhx")
        assert graph_to_dict(forward)["nodes"] \
            != graph_to_dict(backward)["nodes"]
        assert canonical_graph_dict(forward) == canonical_graph_dict(backward)
        assert graph_fingerprint(forward) == graph_fingerprint(backward)

    def test_fingerprint_tracks_content(self):
        base = _rich_graph()
        changed = graph_from_dict(graph_to_dict(base))
        changed.node("gain").gain = 0.5
        assert graph_fingerprint(changed) != graph_fingerprint(base)
        requantized = graph_from_dict(graph_to_dict(base))
        node = requantized.node("fir")
        node.quantization = node.quantization.with_fractional_bits(7)
        assert graph_fingerprint(requantized) != graph_fingerprint(base)

    def test_fingerprint_is_version_tagged_hex(self):
        digest = graph_fingerprint(_rich_graph())
        assert len(digest) == 64
        int(digest, 16)  # pure hex

    def test_assignment_fingerprint_order_stable(self):
        assert assignment_fingerprint({"a": 4, "b": 8}) \
            == assignment_fingerprint({"b": 8, "a": 4})
        assert assignment_fingerprint({"a": 4}) \
            != assignment_fingerprint({"a": 5})
        assert assignment_fingerprint({"a": None}) \
            != assignment_fingerprint({"a": 0})


class TestValidation:
    def test_unknown_node_type_rejected(self):
        with pytest.raises(ValueError):
            graph_from_dict({"version": 1, "name": "bad",
                             "nodes": [{"name": "x", "type": "modulator"}],
                             "edges": []})

    def test_unknown_version_rejected(self):
        with pytest.raises(ValueError):
            graph_from_dict({"version": 99, "nodes": [], "edges": []})

    def test_missing_name_rejected(self):
        with pytest.raises(ValueError):
            graph_from_dict({"version": 1,
                             "nodes": [{"type": "input"}], "edges": []})

    def test_unserializable_node_rejected(self):
        from repro.systems.freq_filter import FrequencyDomainFirNode
        from repro.sfg.graph import SignalFlowGraph
        from repro.sfg.nodes import InputNode, OutputNode

        graph = SignalFlowGraph("custom")
        graph.add_node(InputNode("x"))
        graph.add_node(FrequencyDomainFirNode("f", [1.0, 0.5], fft_size=8))
        graph.add_node(OutputNode("y"))
        graph.connect("x", "f")
        graph.connect("f", "y")
        with pytest.raises(TypeError):
            graph_to_dict(graph)


class TestCli:
    @pytest.fixture
    def system_file(self, tmp_path):
        path = tmp_path / "system.json"
        builder = SfgBuilder("cli-system")
        x = builder.input("x", fractional_bits=10)
        h = builder.fir("h", design_fir_lowpass(9, 0.4), x, fractional_bits=10)
        builder.output("y", h)
        save_graph(builder.build(), path)
        return path

    def test_evaluate_command(self, system_file, capsys):
        assert cli_main(["evaluate", str(system_file), "--method", "psd",
                         "--n-psd", "128"]) == 0
        output = capsys.readouterr().out
        assert "estimated output noise power" in output

    def test_simulate_command(self, system_file, capsys):
        assert cli_main(["simulate", str(system_file),
                         "--samples", "5000"]) == 0
        assert "simulated output noise power" in capsys.readouterr().out

    def test_compare_command(self, system_file, capsys):
        assert cli_main(["compare", str(system_file), "--samples", "5000",
                         "--methods", "psd", "flat"]) == 0
        output = capsys.readouterr().out
        assert "psd" in output and "flat" in output

    def test_optimize_command(self, system_file, capsys):
        assert cli_main(["optimize", str(system_file),
                         "--budget", "1e-5", "--n-psd", "64"]) == 0
        assert "optimized word lengths" in capsys.readouterr().out

    def test_missing_file_reports_error(self, tmp_path, capsys):
        missing = tmp_path / "nope.json"
        assert cli_main(["evaluate", str(missing)]) == 1
        assert "error:" in capsys.readouterr().err


class TestFineGrainedSpecSerialization:
    """Per-edge / per-signal spec fields in the JSON schema."""

    def _graph_with_fine_grained_specs(self):
        builder = SfgBuilder("fine")
        x = builder.input("x", fractional_bits=12)
        f = builder.fir("f", [0.5, 0.5], x, fractional_bits=10)
        g = builder.gain("g", 0.75, f, fractional_bits=9)
        builder.output("y", g)
        graph = builder.build()
        node = graph.node("x")
        node.quantization = node.quantization \
            .with_edge_fractional_bits("f", 8).with_integer_bits(2)
        return graph

    def test_round_trip_preserves_every_spec_field(self, tmp_path):
        """Completeness: a new spec field must survive save -> load.

        Driven by ``dataclasses.fields()`` so that adding a field to
        :class:`QuantizationSpec` without teaching the serializer fails
        here instead of silently dropping the field.
        """
        import dataclasses

        from repro.fixedpoint.quantizer import RoundingMode
        from repro.sfg.nodes import QuantizationSpec

        non_defaults = {
            "fractional_bits": 10,
            "rounding": RoundingMode.TRUNCATE,
            "coefficient_fractional_bits": 13,
            "input_fractional_bits": 9,
            "edge_fractional_bits": {"f": 7},
            "integer_bits": 3,
        }
        missing = [f.name for f in dataclasses.fields(QuantizationSpec)
                   if f.name not in non_defaults]
        assert not missing, \
            f"extend this test's non_defaults for new field(s) {missing}"
        builder = SfgBuilder("complete")
        x = builder.input("x", fractional_bits=12)
        f = builder.fir("f", [0.5, 0.5], x, fractional_bits=10)
        builder.output("y", f)
        graph = builder.build()
        graph.node("x").quantization = QuantizationSpec(**non_defaults)
        path = tmp_path / "system.json"
        save_graph(graph, path)
        restored = load_graph(path).node("x").quantization
        for field in dataclasses.fields(QuantizationSpec):
            assert getattr(restored, field.name) \
                == getattr(graph.node("x").quantization, field.name), \
                f"serialization round-trip dropped {field.name}"

    def test_edge_taps_on_disabled_spec_round_trip(self, tmp_path):
        graph = self._graph_with_fine_grained_specs()
        node = graph.node("f")
        node.quantization = node.quantization.with_fractional_bits(None) \
            .with_edge_fractional_bits("g", 6)
        path = tmp_path / "system.json"
        save_graph(graph, path)
        restored = load_graph(path)
        spec = restored.node("f").quantization
        assert not spec.enabled
        assert spec.edge_bits_for("g") == 6
        assert restored.node("x").quantization.edge_bits_for("f") == 8
        assert restored.node("x").quantization.integer_bits == 2

    def test_plain_specs_serialize_as_before(self):
        """Absent fine-grained fields leave the schema byte-identical."""
        builder = SfgBuilder("plain")
        x = builder.input("x", fractional_bits=12)
        f = builder.fir("f", [0.5, 0.5], x, fractional_bits=10)
        builder.output("y", f)
        data = graph_to_dict(builder.build())
        for node in data["nodes"]:
            assert "edge_fractional_bits" not in node
            assert "integer_bits" not in node

    def test_fingerprint_tracks_fine_grained_fields(self):
        base = self._graph_with_fine_grained_specs()
        tapped = self._graph_with_fine_grained_specs()
        node = tapped.node("x")
        node.quantization = node.quantization.with_edge_fractional_bits("f", 6)
        assert graph_fingerprint(base) != graph_fingerprint(tapped)
        unpinned = self._graph_with_fine_grained_specs()
        node = unpinned.node("x")
        node.quantization = node.quantization.with_integer_bits(None)
        assert graph_fingerprint(base) != graph_fingerprint(unpinned)

    def test_assignment_fingerprint_accepts_edge_keys(self):
        first = assignment_fingerprint({"f": 10, "x->f": 8})
        second = assignment_fingerprint({"x->f": 8, "f": 10})
        assert first == second
        assert first != assignment_fingerprint({"f": 10, "x->f": 7})
