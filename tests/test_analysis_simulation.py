"""Unit tests for the simulation-based evaluator."""

import numpy as np
import pytest

from repro.analysis.simulation_method import SimulationEvaluator
from repro.lti.fir_design import design_fir_lowpass
from repro.sfg.builder import SfgBuilder


def _graph(bits=8):
    builder = SfgBuilder("sim")
    x = builder.input("x", fractional_bits=bits)
    h = builder.fir("h", design_fir_lowpass(9, 0.5), x, fractional_bits=bits)
    builder.output("y", h)
    return builder.build()


class _CallableSystem:
    """Minimal FixedPointSystem protocol implementation for the tests."""

    def __init__(self, bits):
        self.step = 2.0 ** -bits

    def run_reference(self, stimulus):
        return np.asarray(stimulus, dtype=float) * 0.5

    def run_fixed_point(self, stimulus):
        exact = np.asarray(stimulus, dtype=float) * 0.5
        return np.floor(exact / self.step + 0.5) * self.step


class TestWithGraphs:
    def test_error_signal_length(self, short_white_noise):
        evaluator = SimulationEvaluator(_graph())
        error = evaluator.error_signal(short_white_noise)
        assert len(error) == len(short_white_noise)

    def test_bare_array_accepted_for_single_input(self, short_white_noise):
        evaluator = SimulationEvaluator(_graph())
        result = evaluator.evaluate(short_white_noise)
        assert result.error_power > 0.0

    def test_transient_discard(self, short_white_noise):
        evaluator = SimulationEvaluator(_graph())
        full = evaluator.evaluate(short_white_noise)
        trimmed = evaluator.evaluate(short_white_noise, discard_transient=100)
        assert trimmed.num_samples == full.num_samples - 100

    def test_transient_longer_than_record_rejected(self):
        evaluator = SimulationEvaluator(_graph())
        with pytest.raises(ValueError):
            evaluator.evaluate(np.zeros(10), discard_transient=10)

    def test_error_psd_returned_when_requested(self, short_white_noise):
        evaluator = SimulationEvaluator(_graph())
        result = evaluator.evaluate(short_white_noise, n_psd=64)
        assert result.error_psd is not None
        assert result.error_psd.n_bins == 64
        assert result.error_psd.total_power == pytest.approx(
            result.error_power, rel=0.05)

    def test_error_variance_property(self, short_white_noise):
        evaluator = SimulationEvaluator(_graph(6))
        result = evaluator.evaluate(short_white_noise)
        assert result.error_variance == pytest.approx(
            result.error_power - result.error_mean ** 2)

    def test_error_power_scales_with_word_length(self, short_white_noise):
        coarse = SimulationEvaluator(_graph(6)).evaluate(short_white_noise)
        fine = SimulationEvaluator(_graph(12)).evaluate(short_white_noise)
        ratio = coarse.error_power / fine.error_power
        assert ratio == pytest.approx(4.0 ** 6, rel=0.5)


class TestBatchedStimulus:
    def test_batched_error_power_matches_loop_of_1d_runs(self, rng):
        evaluator = SimulationEvaluator(_graph(bits=9))
        block = rng.uniform(-0.9, 0.9, (8, 2_000))
        batched = evaluator.evaluate(block)
        loop_powers = [evaluator.evaluate(block[trial]).error_power
                       for trial in range(len(block))]
        assert batched.error_power == pytest.approx(
            float(np.mean(loop_powers)), rel=1e-12)
        assert batched.num_samples == block.size

    def test_batched_error_signal_is_2d_and_identical_per_trial(self, rng):
        evaluator = SimulationEvaluator(_graph(bits=9))
        block = rng.uniform(-0.9, 0.9, (4, 1_000))
        batched = evaluator.error_signal(block)
        assert batched.shape == block.shape
        for trial in range(len(block)):
            np.testing.assert_array_equal(
                batched[trial], evaluator.error_signal(block[trial]))

    def test_batched_transient_discard_is_per_trial(self, rng):
        evaluator = SimulationEvaluator(_graph())
        block = rng.uniform(-0.9, 0.9, (3, 500))
        result = evaluator.evaluate(block, discard_transient=100)
        assert result.num_samples == 3 * 400

    def test_batched_error_psd_averages_trials(self, rng):
        evaluator = SimulationEvaluator(_graph())
        block = rng.uniform(-0.9, 0.9, (4, 4_096))
        result = evaluator.evaluate(block, n_psd=64)
        assert result.error_psd.n_bins == 64
        assert result.error_psd.total_power == pytest.approx(
            result.error_power, rel=0.05)

    def test_batched_dict_stimulus(self, rng):
        evaluator = SimulationEvaluator(_graph())
        block = rng.uniform(-0.9, 0.9, (2, 800))
        result = evaluator.evaluate({"x": block})
        assert result.error_power > 0.0


class TestWithProtocolSystems:
    def test_protocol_object_accepted(self, rng):
        system = _CallableSystem(bits=8)
        evaluator = SimulationEvaluator(system)
        result = evaluator.evaluate(rng.uniform(-1, 1, 20_000))
        expected = (2.0 ** -8) ** 2 / 12
        assert result.error_power == pytest.approx(expected, rel=0.1)

    def test_invalid_system_rejected(self):
        with pytest.raises(TypeError):
            SimulationEvaluator(42)

    def test_shape_mismatch_detected(self, rng):
        class Broken:
            def run_reference(self, stimulus):
                return np.zeros(10)

            def run_fixed_point(self, stimulus):
                return np.zeros(11)

        with pytest.raises(ValueError):
            SimulationEvaluator(Broken()).error_signal(np.zeros(10))
