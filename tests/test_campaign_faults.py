"""Fault-tolerance coverage: retry policy, chaos injector, supervisor.

The chaos tests force specific failure modes by restricting the
injector's ``kinds`` and driving ``rate`` to 1.0, then assert the
acceptance contract of the fault layer: recoverable faults leave records
bitwise identical to a fault-free run, permanent failures quarantine as
``status="failed"`` records that are never cached, and the accounting
reconciles exactly with the injector's ledger.
"""

import json

import pytest

from repro.campaign import (
    CampaignReport,
    CampaignSpec,
    FaultInjector,
    InjectedFault,
    ResultCache,
    RetryPolicy,
    ScenarioSpec,
    StimulusSpec,
    expand_campaign,
    run_campaign,
)
from repro.campaign.faults import CRASH_EXIT_CODE, FAULT_KINDS, FaultPlan
from repro.cli import main

#: Record fields that legitimately differ between otherwise identical
#: runs (timing, batch regrouping after bisection, cache provenance).
VOLATILE = ("elapsed_seconds", "batched_with", "cached", "cache_schema")


def _spec(**overrides):
    settings = dict(
        scenarios=(ScenarioSpec("polyphase_decimator",
                                {"factor": 2, "taps": 8}),
                   ScenarioSpec("interpolator_chain", {"taps": 7})),
        methods=("psd", "agnostic"),
        wordlengths=(8, 12),
        n_psd=64,
        stimulus=StimulusSpec(num_samples=2_000, discard_transient=32),
        seed=9)
    settings.update(overrides)
    return CampaignSpec(**settings)


def _fast_policy(**overrides):
    settings = dict(max_attempts=3, backoff_base=0.0, seed=9)
    settings.update(overrides)
    return RetryPolicy(**settings)


def _stripped(record):
    return {key: value for key, value in record.items()
            if key not in VOLATILE}


def _assert_ok_records_match(chaos_result, clean_result):
    """Every non-failed chaos record is bitwise identical to the clean
    run's, modulo the volatile timing / regrouping fields."""
    clean = {record["key"]: _stripped(record)
             for record in clean_result.records}
    for record in chaos_result.records:
        if record.get("status") == "failed":
            continue
        assert _stripped(record) == clean[record["key"]]


class TestRetryPolicy:
    def test_delay_is_deterministic_and_grows(self):
        policy = RetryPolicy(backoff_base=0.1, backoff_factor=2.0,
                             backoff_max=10.0, jitter=0.25, seed=3)
        first = policy.delay("abc", 1)
        assert first == policy.delay("abc", 1)  # pure function
        assert policy.delay("abc", 2) > first  # exponential
        assert 0.1 <= first <= 0.1 * 1.25  # jitter band
        assert policy.delay("other", 1) != first  # keyed jitter

    def test_delay_caps_and_disables(self):
        policy = RetryPolicy(backoff_base=0.1, backoff_factor=10.0,
                             backoff_max=0.5)
        assert policy.delay("abc", 9) == 0.5
        assert RetryPolicy(backoff_base=0.0).delay("abc", 1) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError, match="payload_timeout"):
            RetryPolicy(payload_timeout=-1.0)


class TestFaultInjector:
    def test_parse_arming_syntax(self):
        injector = FaultInjector.parse("7@0.25")
        assert (injector.seed, injector.rate) == (7, 0.25)
        assert injector.kinds == FAULT_KINDS
        narrowed = FaultInjector.parse("7@0.25@exception,crash")
        assert narrowed.kinds == ("exception", "crash")

    @pytest.mark.parametrize("text", ["7", "x@0.5", "7@x", "7@0.5@bogus",
                                      "7@0.5@a@b@c", "7@1.5"])
    def test_parse_rejects_bad_specs(self, text):
        with pytest.raises(ValueError):
            FaultInjector.parse(text)

    def test_plans_are_pure_and_rate_bounded(self):
        injector = FaultInjector(seed=11, rate=0.3)
        keys = [f"key-{i:04d}" for i in range(500)]
        ledger = injector.ledger(keys)
        assert ledger == injector.ledger(keys)  # reproducible
        assert 0.15 < len(ledger) / len(keys) < 0.45  # ~rate
        assert {plan.kind for plan in ledger.values()} == set(FAULT_KINDS)
        # Only exception faults may be permanent.
        for plan in ledger.values():
            if plan.permanent:
                assert plan.kind == "exception"
        assert FaultInjector(seed=11, rate=0.0).ledger(keys) == {}

    def test_config_round_trip(self):
        injector = FaultInjector(seed=4, rate=0.8, kinds=("hang",),
                                 permanent_rate=0.5, hang_seconds=1.5)
        clone = FaultInjector.from_config(injector.config())
        assert clone == injector
        assert FaultInjector.from_config(injector.config(inline=True)).inline

    def test_fire_semantics(self):
        injector = FaultInjector(seed=0, rate=1.0, kinds=("exception",),
                                 permanent_rate=0.0)
        with pytest.raises(InjectedFault) as info:
            injector.fire("some-key", 0)
        assert not info.value.permanent
        injector.fire("some-key", 1)  # transient: retry recovers
        permanent = FaultInjector(seed=0, rate=1.0, kinds=("exception",),
                                  permanent_rate=1.0)
        for attempt in (0, 1, 5):
            with pytest.raises(InjectedFault):
                permanent.fire("some-key", attempt)
        # corrupt never fails the job itself.
        FaultInjector(seed=0, rate=1.0, kinds=("corrupt",)).fire("k", 0)

    def test_inline_converts_crash_and_hang_to_exceptions(self):
        # os._exit / sleep in the driver process would kill or stall the
        # campaign itself; the inline injector must raise instead.
        for kind in ("crash", "hang"):
            injector = FaultInjector(seed=0, rate=1.0, kinds=(kind,),
                                     inline=True)
            with pytest.raises(InjectedFault) as info:
                injector.fire("some-key", 0)
            assert info.value.kind == kind

    def test_injected_fault_survives_pickling(self):
        import pickle
        fault = pickle.loads(pickle.dumps(
            InjectedFault("k" * 64, "crash", True)))
        assert (fault.key, fault.kind, fault.permanent) \
            == ("k" * 64, "crash", True)
        assert f"exit code {CRASH_EXIT_CODE}" or True  # constant exists

    def test_validation(self):
        with pytest.raises(ValueError, match="rate"):
            FaultInjector(rate=1.5)
        with pytest.raises(ValueError, match="kind"):
            FaultInjector(kinds=("exception", "bogus"))
        with pytest.raises(ValueError, match="kind"):
            FaultInjector(kinds=())


class TestSupervisorInline:
    def test_transient_exceptions_recover_bit_identical(self):
        clean = run_campaign(_spec(), cache_dir=None)
        injector = FaultInjector(seed=1, rate=1.0, kinds=("exception",),
                                 permanent_rate=0.0)
        chaos = run_campaign(_spec(), cache_dir=None,
                             retry_policy=_fast_policy(),
                             fault_injector=injector)
        assert chaos.failed == 0
        # Every payload's first dispatch hits a transient fault (rate is
        # 1.0), the second recovers: exactly one retry per payload.
        assert chaos.retries == 2
        assert chaos.bisections == 0
        _assert_ok_records_match(chaos, clean)

    def test_permanent_faults_quarantine_and_never_cache(self, tmp_path):
        spec = _spec()
        injector = FaultInjector(seed=1, rate=1.0, kinds=("exception",),
                                 permanent_rate=1.0)
        output = tmp_path / "stream.jsonl"
        result = run_campaign(spec, cache_dir=tmp_path / "cache",
                              output_path=output,
                              retry_policy=_fast_policy(),
                              fault_injector=injector)
        assert result.failed == result.total_jobs == len(result.records)
        assert result.computed == 0
        # Bisection isolated every offender down to single jobs.
        assert result.bisections >= 2
        for record in result.records:
            assert record["status"] == "failed"
            assert record["error_type"] == "InjectedFault"
            assert "permanent" in record["error_message"]
            assert record["attempts"] >= 1
            assert "power" not in record
        # No negative caching: the cache stayed empty...
        cache = ResultCache(tmp_path / "cache")
        assert all(cache.get(record["key"]) is None
                   for record in result.records)
        # ...and the JSONL stream carries the failures for diagnosis.
        lines = [json.loads(line)
                 for line in output.read_text().splitlines()]
        assert all(line["status"] == "failed" for line in lines)
        # A fault-free re-run against the same cache retries everything.
        retry = run_campaign(spec, cache_dir=tmp_path / "cache")
        assert retry.failed == 0 and retry.cache_hits == 0
        assert retry.computed == len(retry.records)

    def test_mixed_ledger_reconciles_exactly(self):
        # The acceptance contract: whatever mix the seed deals, the
        # failed set equals the permanent-fault set of the ledger — no
        # innocent job is quarantined, no permanent fault slips through.
        spec = _spec(methods=("psd", "agnostic", "simulation"))
        clean = run_campaign(spec, cache_dir=None)
        injector = FaultInjector(seed=1, rate=0.6,
                                 kinds=("exception", "corrupt"),
                                 permanent_rate=0.5)
        _prepared, jobs, _skipped = expand_campaign(spec)
        ledger = injector.ledger([job.key for job in jobs])
        permanent = {key for key, plan in ledger.items() if plan.permanent}
        assert permanent  # seed chosen to exercise the quarantine path
        assert len(permanent) < len(jobs)
        chaos = run_campaign(spec, cache_dir=None,
                             retry_policy=_fast_policy(),
                             fault_injector=injector)
        failed = {record["key"] for record in chaos.failed_records}
        assert failed == permanent
        assert chaos.failed == len(permanent)
        assert chaos.computed == len(jobs) - len(permanent)
        assert chaos.total_jobs == len(jobs)
        _assert_ok_records_match(chaos, clean)

    def test_report_and_exports_carry_failures(self, tmp_path):
        injector = FaultInjector(seed=1, rate=0.6,
                                 kinds=("exception",), permanent_rate=0.5)
        spec = _spec(methods=("psd", "agnostic", "simulation"))
        result = run_campaign(spec, cache_dir=None,
                              retry_policy=_fast_policy(),
                              fault_injector=injector)
        assert 0 < result.failed < result.total_jobs
        report = CampaignReport(result.records)
        summary = report.summary()
        assert summary["failed"] == result.failed
        assert summary["computed"] == result.computed
        assert len(summary["failures"]) == result.failed
        for failure in summary["failures"]:
            assert failure["error_type"] == "InjectedFault"
            assert failure["attempts"] >= 1
        text = report.describe()
        assert f"{result.failed} FAILED" in text
        assert text.count("FAILED") == result.failed + 1  # title + rows
        report.to_csv(tmp_path / "rows.csv")
        csv_text = (tmp_path / "rows.csv").read_text()
        assert csv_text.count("failed") == result.failed


class TestSupervisorPool:
    def test_worker_crash_rebuilds_pool_and_recovers(self):
        spec = _spec()
        clean = run_campaign(spec, cache_dir=None)
        injector = FaultInjector(seed=2, rate=1.0, kinds=("crash",))
        chaos = run_campaign(spec, cache_dir=None, workers=2,
                             retry_policy=_fast_policy(),
                             fault_injector=injector)
        assert chaos.failed == 0
        assert chaos.pool_rebuilds >= 1
        _assert_ok_records_match(chaos, clean)

    def test_hung_payload_is_abandoned_and_retried(self):
        spec = _spec()
        clean = run_campaign(spec, cache_dir=None)
        injector = FaultInjector(seed=2, rate=1.0, kinds=("hang",),
                                 hang_seconds=20.0)
        chaos = run_campaign(
            spec, cache_dir=None, workers=2,
            retry_policy=_fast_policy(payload_timeout=0.5),
            fault_injector=injector)
        assert chaos.failed == 0
        assert chaos.pool_rebuilds >= 1
        assert chaos.retries >= 1
        _assert_ok_records_match(chaos, clean)

    def test_repeated_pool_deaths_degrade_to_inline(self, monkeypatch):
        from repro.campaign import runner
        monkeypatch.setattr(runner._Supervisor, "MAX_POOL_DEATHS", 1)
        spec = _spec()
        clean = run_campaign(spec, cache_dir=None)
        injector = FaultInjector(seed=2, rate=1.0, kinds=("crash",))
        chaos = run_campaign(spec, cache_dir=None, workers=2,
                             retry_policy=_fast_policy(),
                             fault_injector=injector)
        # One death is the new limit: no rebuild, straight to inline —
        # where crash faults arrive as exceptions and retries recover.
        assert chaos.pool_rebuilds == 0
        assert chaos.failed == 0
        _assert_ok_records_match(chaos, clean)

    def test_full_four_kind_mix_meets_acceptance(self, tmp_path):
        # The ISSUE acceptance bar: >= 20% rate mixing all four kinds,
        # multi-scenario, workers > 1, completing with ok records
        # bitwise identical to fault-free and accounting reconciling
        # with the ledger.
        spec = _spec(
            scenarios=(ScenarioSpec("polyphase_decimator",
                                    {"factor": 2, "taps": 8}),
                       ScenarioSpec("interpolator_chain", {"taps": 7}),
                       ScenarioSpec("table1_fir", {"taps": 8})),
            methods=("psd", "agnostic", "simulation"))
        clean = run_campaign(spec, cache_dir=None)
        injector = FaultInjector(seed=1, rate=0.5, permanent_rate=0.4,
                                 hang_seconds=20.0)
        _prepared, jobs, _skipped = expand_campaign(spec)
        ledger = injector.ledger([job.key for job in jobs])
        kinds = {plan.kind for plan in ledger.values()}
        assert kinds == set(FAULT_KINDS)  # seed exercises all four
        permanent = {key for key, plan in ledger.items() if plan.permanent}
        assert permanent
        chaos = run_campaign(
            spec, cache_dir=tmp_path / "cache", workers=2,
            retry_policy=_fast_policy(payload_timeout=1.0),
            fault_injector=injector)
        assert {r["key"] for r in chaos.failed_records} == permanent
        assert chaos.computed == len(jobs) - len(permanent)
        assert chaos.retries >= 1
        _assert_ok_records_match(chaos, clean)
        # Quarantined jobs were never cached; successful ones were.
        cache = ResultCache(tmp_path / "cache")
        for job in jobs:
            cached = cache.get(job.key)
            if job.key in permanent:
                assert cached is None
            elif ledger.get(job.key) != FaultPlan("corrupt"):
                assert cached is not None

    def test_corrupt_faults_heal_on_the_next_run(self, tmp_path):
        spec = _spec()
        injector = FaultInjector(seed=3, rate=0.5, kinds=("corrupt",))
        _prepared, jobs, _skipped = expand_campaign(spec)
        garbled = set(injector.ledger([job.key for job in jobs]))
        assert garbled
        first = run_campaign(spec, cache_dir=tmp_path / "cache",
                             retry_policy=_fast_policy(),
                             fault_injector=injector)
        # Corrupt faults never fail the run itself...
        assert first.failed == 0 and first.retries == 0
        assert first.computed == len(jobs)
        # ...but the fault-free resume finds the garbled records, heals
        # them (delete + warn) and recomputes exactly those jobs.
        resumed = run_campaign(spec, cache_dir=tmp_path / "cache")
        assert resumed.failed == 0
        assert resumed.cache_hits == len(jobs) - len(garbled)
        assert resumed.computed == len(garbled)
        for a, b in zip(first.records, resumed.records):
            assert _stripped(a) == _stripped(b)


class TestCliChaos:
    ARGS = ["campaign",
            "--scenarios", "table1_fir:taps=8", "interpolator_chain:taps=7",
            "--methods", "psd",
            "--wordlengths", "8", "12",
            "--samples", "2000", "--n-psd", "64", "--seed", "3"]

    def test_partial_failure_exits_2_with_machine_readable_summary(
            self, tmp_path, capsys):
        argv = [*self.ARGS, "--chaos", "2@0.6@exception", "--max-retries",
                "1", "--json-report", str(tmp_path / "report.json")]
        # Chaos seed 2 plants at least one permanent exception in this grid
        # (asserted below against the printed ledger, so a drift in the
        # grid contents fails loudly instead of testing nothing).
        assert main(argv) == 2
        out = capsys.readouterr().out
        ledger_line = next(line for line in out.splitlines()
                           if line.startswith("chaos ledger: "))
        ledger = json.loads(ledger_line[len("chaos ledger: "):])
        permanent = {key for key, plan in ledger.items()
                     if plan["permanent"]}
        assert permanent
        summary_line = next(line for line in out.splitlines()
                            if line.startswith("failure summary: "))
        summary = json.loads(summary_line[len("failure summary: "):])
        assert summary["failed"] == len(permanent)
        assert {f["key"] for f in summary["failures"]} == permanent
        payload = json.loads((tmp_path / "report.json").read_text())
        assert payload["summary"]["failed"] == len(permanent)

    def test_armed_but_quiet_chaos_exits_0(self, capsys):
        # Rate 0 arms the harness without planting anything: the ledger
        # prints (empty) and the exit code stays 0.
        assert main([*self.ARGS, "--chaos", "31@0.0"]) == 0
        out = capsys.readouterr().out
        assert "chaos ledger: {}" in out
        assert "failure summary" not in out

    def test_bad_chaos_spec_exits_1(self, capsys):
        assert main([*self.ARGS, "--chaos", "nope"]) == 1
        assert "bad chaos spec" in capsys.readouterr().err

    def test_negative_max_retries_rejected(self, capsys):
        assert main([*self.ARGS, "--max-retries", "-1"]) == 1
        assert "--max-retries" in capsys.readouterr().err
