"""Unit tests for cycle detection and feedback-loop collapsing."""

import numpy as np
import pytest

from repro.sfg.builder import SfgBuilder
from repro.sfg.cycles import break_feedback_loops, find_cycles
from repro.sfg.executor import SfgExecutor
from repro.sfg.graph import SignalFlowGraph
from repro.sfg.nodes import (
    AddNode,
    DelayNode,
    GainNode,
    InputNode,
    OutputNode,
)


def _feedback_graph(gain: float = 0.5) -> SignalFlowGraph:
    """x --> (+) --> y, with the adder output fed back through gain*z^-1."""
    graph = SignalFlowGraph("feedback")
    graph.add_node(InputNode("x"))
    graph.add_node(AddNode("sum", num_inputs=2))
    graph.add_node(DelayNode("z", 1))
    graph.add_node(GainNode("g", gain))
    graph.add_node(OutputNode("y"))
    graph.connect("x", "sum", port=0)
    graph.connect("sum", "z")
    graph.connect("z", "g")
    graph.connect("g", "sum", port=1)
    graph.connect("sum", "y")
    return graph


class TestFindCycles:
    def test_acyclic_graph_has_no_cycles(self):
        builder = SfgBuilder()
        x = builder.input("x")
        h = builder.fir("h", [1.0, 0.5], x)
        builder.output("y", h)
        assert find_cycles(builder.build()) == []

    def test_feedback_loop_found(self):
        cycles = find_cycles(_feedback_graph())
        assert len(cycles) == 1
        assert set(cycles[0]) == {"sum", "z", "g"}

    def test_two_independent_loops_found(self):
        graph = _feedback_graph()
        # Add a second loop after the first one.
        graph.add_node(AddNode("sum2", num_inputs=2))
        graph.add_node(DelayNode("z2", 1))
        graph.add_node(GainNode("g2", 0.25))
        # Rewire: sum -> sum2 -> y (replace direct sum -> y edge).
        for edge in graph.successors("sum"):
            if edge.target == "y":
                graph.remove_edge(edge)
        graph.connect("sum", "sum2", port=0)
        graph.connect("sum2", "z2")
        graph.connect("z2", "g2")
        graph.connect("g2", "sum2", port=1)
        graph.connect("sum2", "y")
        cycles = find_cycles(graph)
        assert len(cycles) == 2


class TestBreakFeedbackLoops:
    def test_collapsed_graph_is_acyclic(self):
        graph = break_feedback_loops(_feedback_graph())
        assert graph.is_acyclic()
        graph.validate()

    def test_collapsed_graph_matches_recursive_filter(self):
        """The loop y[n] = x[n] + 0.5 y[n-1] is the IIR 1 / (1 - 0.5 z^-1)."""
        graph = break_feedback_loops(_feedback_graph(0.5))
        executor = SfgExecutor(graph)
        x = np.zeros(16)
        x[0] = 1.0
        response = executor.run({"x": x}).output("y")
        np.testing.assert_allclose(response, 0.5 ** np.arange(16), atol=1e-12)

    def test_negative_feedback_sign(self):
        graph = SignalFlowGraph("negfb")
        graph.add_node(InputNode("x"))
        graph.add_node(AddNode("sum", num_inputs=2, signs=[1.0, -1.0]))
        graph.add_node(DelayNode("z", 1))
        graph.add_node(GainNode("g", 0.5))
        graph.add_node(OutputNode("y"))
        graph.connect("x", "sum", port=0)
        graph.connect("sum", "z")
        graph.connect("z", "g")
        graph.connect("g", "sum", port=1)
        graph.connect("sum", "y")
        collapsed = break_feedback_loops(graph)
        response = SfgExecutor(collapsed).run(
            {"x": np.eye(1, 16, 0).ravel()}).output("y")
        np.testing.assert_allclose(response, (-0.5) ** np.arange(16),
                                   atol=1e-12)

    def test_acyclic_graph_unchanged(self):
        builder = SfgBuilder()
        x = builder.input("x")
        h = builder.fir("h", [1.0, 0.5], x)
        builder.output("y", h)
        graph = builder.build()
        names_before = set(graph.nodes)
        break_feedback_loops(graph)
        assert set(graph.nodes) == names_before
