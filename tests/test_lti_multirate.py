"""Unit and property tests for the multirate operators and PSD rules."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.lti.multirate import (
    downsample,
    downsample_psd,
    upsample,
    upsample_psd,
)


class TestTimeDomainOperators:
    def test_downsample_keeps_every_other_sample(self):
        x = np.arange(10)
        np.testing.assert_array_equal(downsample(x, 2), [0, 2, 4, 6, 8])

    def test_downsample_phase(self):
        x = np.arange(10)
        np.testing.assert_array_equal(downsample(x, 2, phase=1), [1, 3, 5, 7, 9])

    def test_upsample_inserts_zeros(self):
        np.testing.assert_array_equal(upsample(np.array([1.0, 2.0]), 2),
                                      [1.0, 0.0, 2.0, 0.0])

    def test_downsample_then_upsample_keeps_even_samples(self):
        x = np.arange(8, dtype=float)
        y = upsample(downsample(x, 2), 2)
        np.testing.assert_array_equal(y[::2], x[::2])
        np.testing.assert_array_equal(y[1::2], 0.0)

    def test_invalid_factor_rejected(self):
        with pytest.raises(ValueError):
            downsample(np.arange(4), 0)
        with pytest.raises(ValueError):
            upsample(np.arange(4), 0)

    def test_invalid_phase_rejected(self):
        with pytest.raises(ValueError):
            downsample(np.arange(4), 2, phase=2)


class TestPsdRules:
    def test_downsample_psd_preserves_power(self):
        psd = np.random.default_rng(0).uniform(0, 1, 64)
        folded = downsample_psd(psd, 2)
        assert np.sum(folded) == pytest.approx(np.sum(psd))
        assert len(folded) == 32

    def test_downsample_psd_requires_divisible_length(self):
        with pytest.raises(ValueError):
            downsample_psd(np.ones(9), 2)

    def test_upsample_psd_halves_power(self):
        psd = np.random.default_rng(1).uniform(0, 1, 32)
        imaged = upsample_psd(psd, 2)
        assert np.sum(imaged) == pytest.approx(np.sum(psd) / 2)
        assert len(imaged) == 64

    def test_white_spectrum_stays_white_through_both(self):
        psd = np.full(32, 1.0 / 32)
        folded = downsample_psd(psd, 2)
        np.testing.assert_allclose(folded, folded[0])
        imaged = upsample_psd(psd, 2)
        np.testing.assert_allclose(imaged, imaged[0])

    @given(st.integers(min_value=1, max_value=4),
           st.integers(min_value=1, max_value=5))
    def test_power_bookkeeping_composes(self, log_factor, seed):
        factor = 2 ** log_factor
        rng = np.random.default_rng(seed)
        psd = rng.uniform(0, 1, 16 * factor)
        total = np.sum(psd)
        assert np.sum(downsample_psd(psd, factor)) == pytest.approx(total)
        assert np.sum(upsample_psd(psd, factor)) == pytest.approx(total / factor)


class TestPsdRulesAgainstSimulation:
    """The PSD transformation rules must match measured spectra."""

    def test_downsampled_noise_power_matches(self, rng):
        from repro.psd.estimation import welch
        x = rng.standard_normal(60_000)
        decimated = downsample(x, 2)
        measured = welch(decimated, 64)
        assert measured.variance == pytest.approx(1.0, rel=0.05)

    def test_upsampled_noise_power_matches(self, rng):
        from repro.psd.estimation import welch
        x = rng.standard_normal(60_000)
        expanded = upsample(x, 2)
        measured = welch(expanded, 64)
        assert measured.variance == pytest.approx(0.5, rel=0.05)

    def test_colored_noise_folding_matches_measurement(self, rng):
        from repro.psd.estimation import welch
        from repro.lti.fir_design import design_fir_lowpass

        taps = design_fir_lowpass(31, 0.4)
        x = np.convolve(rng.standard_normal(120_000), taps)[:120_000]
        predicted = downsample_psd(welch(x, 64).ac, 2)
        measured = welch(downsample(x, 2), 32).ac
        # Compare the coarse spectral shape (binned power).
        np.testing.assert_allclose(np.sum(predicted), np.sum(measured),
                                   rtol=0.08)
        np.testing.assert_allclose(predicted[:8], measured[:8], rtol=0.3,
                                   atol=1e-4)
