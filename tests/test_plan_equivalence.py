"""Plan-path vs legacy-path equivalence.

The compiled-plan refactor must be a pure execution-architecture change:
for every evaluation engine, running through a :class:`CompiledPlan` (with
its memoized frequency responses and index-based schedule) must produce
*bitwise identical* results to the straightforward per-call traversal the
library used before (validate, re-derive the topological order, resolve
predecessors by name, call every node's propagation rule directly).

The legacy traversals live in :mod:`legacy_reference` (shared with the
campaign scenario-family tests); here they are exercised on the paper's
Table-I filter-bank systems and on a DWT-style multirate filter-bank
graph.
"""

import numpy as np
import pytest

from repro.analysis.agnostic_method import evaluate_agnostic
from repro.analysis.flat_method import evaluate_flat
from repro.analysis.psd_method import evaluate_psd, evaluate_psd_tracked
from repro.sfg.executor import SfgExecutor
from repro.systems.families import build_dwt97_bank
from repro.systems.filter_bank import (
    build_filter_graph,
    generate_fir_bank,
    generate_iir_bank,
)


# ----------------------------------------------------------------------
# Legacy reference implementations (shared with the campaign scenario
# tests; see tests/legacy_reference.py)
# ----------------------------------------------------------------------
from legacy_reference import (
    legacy_agnostic as _legacy_agnostic,
    legacy_flat as _legacy_flat,
    legacy_psd as _legacy_psd,
    legacy_run as _legacy_run,
    legacy_tracked as _legacy_tracked,
)


# ----------------------------------------------------------------------
# Systems under test
# ----------------------------------------------------------------------
def _table1_graphs():
    entries = generate_fir_bank(3, seed=5) + generate_iir_bank(3, seed=5)
    return [build_filter_graph(entry, fractional_bits=12)
            for entry in entries]


def _dwt_graph(bits=11):
    """One-level 9/7 analysis + synthesis bank as a multirate SFG —
    the exact graph the campaign registry ships (shared builder)."""
    return build_dwt97_bank(fractional_bits=bits)


def _assert_psd_identical(plan_psd, legacy_psd):
    np.testing.assert_array_equal(plan_psd.ac, legacy_psd.ac)
    assert plan_psd.mean == legacy_psd.mean


class TestTable1FilterBank:
    @pytest.mark.parametrize("index", range(6))
    def test_psd_method_bitwise_identical(self, index):
        graph = _table1_graphs()[index]
        _assert_psd_identical(evaluate_psd(graph, 256),
                              _legacy_psd(graph, 256))

    @pytest.mark.parametrize("index", range(6))
    def test_tracked_method_bitwise_identical(self, index):
        graph = _table1_graphs()[index]
        _assert_psd_identical(evaluate_psd_tracked(graph, 256),
                              _legacy_tracked(graph, 256))

    @pytest.mark.parametrize("index", range(6))
    def test_agnostic_method_bitwise_identical(self, index):
        graph = _table1_graphs()[index]
        stats = evaluate_agnostic(graph)
        legacy = _legacy_agnostic(graph)
        assert stats.mean == legacy.mean
        assert stats.variance == legacy.variance

    @pytest.mark.parametrize("index", range(6))
    def test_flat_method_bitwise_identical(self, index):
        # The flat method composes the same per-block transfer functions
        # in the same order through the plan schedule, so it too must be
        # bitwise reproducible.
        graph = _table1_graphs()[index]
        via_plan = evaluate_flat(graph)
        legacy = _legacy_flat(graph)
        assert via_plan.mean == legacy.mean
        assert via_plan.variance == legacy.variance

    @pytest.mark.parametrize("index", [0, 3])
    def test_simulator_bitwise_identical(self, index, rng):
        graph = _table1_graphs()[index]
        x = rng.uniform(-0.9, 0.9, 2048)
        executor = SfgExecutor(graph)
        for mode in ("double", "fixed"):
            np.testing.assert_array_equal(
                executor.run({"x": x}, mode=mode).output("y"),
                _legacy_run(graph, {"x": x}, mode))


class TestDwtBank:
    def test_psd_method_bitwise_identical(self):
        graph = _dwt_graph()
        _assert_psd_identical(evaluate_psd(graph, 256),
                              _legacy_psd(graph, 256))

    def test_agnostic_method_bitwise_identical(self):
        graph = _dwt_graph()
        stats = evaluate_agnostic(graph)
        legacy = _legacy_agnostic(graph)
        assert stats.mean == legacy.mean
        assert stats.variance == legacy.variance

    def test_simulator_bitwise_identical(self, rng):
        graph = _dwt_graph()
        x = rng.uniform(-0.9, 0.9, 1024)
        executor = SfgExecutor(graph)
        for mode in ("double", "fixed"):
            np.testing.assert_array_equal(
                executor.run({"x": x}, mode=mode).output("y"),
                _legacy_run(graph, {"x": x}, mode))

    def test_estimate_close_to_simulation(self, rng):
        """End-to-end sanity: the plan path still estimates accurately."""
        graph = _dwt_graph()
        executor = SfgExecutor(graph)
        x = rng.uniform(-0.9, 0.9, 60_000)
        measured = float(np.mean(executor.run_error({"x": x})[64:] ** 2))
        estimated = evaluate_psd(graph, 512).total_power
        assert estimated == pytest.approx(measured, rel=0.3)
