"""Plan-path vs legacy-path equivalence.

The compiled-plan refactor must be a pure execution-architecture change:
for every evaluation engine, running through a :class:`CompiledPlan` (with
its memoized frequency responses and index-based schedule) must produce
*bitwise identical* results to the straightforward per-call traversal the
library used before (validate, re-derive the topological order, resolve
predecessors by name, call every node's propagation rule directly).

The legacy traversals are re-implemented here, in the test, as the
reference semantics; they are exercised on the paper's Table-I filter-bank
systems and on a DWT-style multirate filter-bank graph.
"""

import numpy as np
import pytest

from repro.analysis.agnostic_method import evaluate_agnostic
from repro.analysis.flat_method import evaluate_flat
from repro.analysis.psd_method import evaluate_psd, evaluate_psd_tracked
from repro.fixedpoint.noise_model import NoiseStats
from repro.psd.spectrum import DiscretePsd
from repro.psd.propagation import TrackedSpectrum
from repro.sfg.builder import SfgBuilder
from repro.sfg.executor import SfgExecutor
from repro.sfg.nodes import IirNode, InputNode
from repro.systems.dwt.daubechies97 import daubechies_9_7_filters
from repro.systems.filter_bank import (
    build_filter_graph,
    generate_fir_bank,
    generate_iir_bank,
)


# ----------------------------------------------------------------------
# Legacy reference implementations (pre-plan semantics)
# ----------------------------------------------------------------------
def _legacy_walk(graph, zero, propagate, inject):
    graph.validate()
    order = graph.topological_order()
    results = {}
    for name in order:
        node = graph.node(name)
        if isinstance(node, InputNode) or node.num_inputs == 0:
            representation = zero(node)
        else:
            inputs = [results[edge.source]
                      for edge in graph.predecessors(name)]
            representation = propagate(node, inputs)
        own = node.generated_noise()
        if own.variance > 0.0 or own.mean != 0.0:
            representation = inject(node, own, representation)
        results[name] = representation
    return results


def _legacy_psd(graph, n_psd):
    def inject(node, stats, acc):
        psd = DiscretePsd.white(stats, acc.n_bins)
        if isinstance(node, IirNode):
            psd = psd.filtered(
                node.noise_shaping_function().frequency_response(acc.n_bins))
        return acc + psd

    results = _legacy_walk(
        graph,
        zero=lambda node: DiscretePsd.zero(n_psd),
        propagate=lambda node, inputs: node.propagate_psd(inputs, n_psd),
        inject=inject)
    return results[graph.output_names()[0]]


def _legacy_agnostic(graph):
    def inject(node, stats, acc):
        if isinstance(node, IirNode):
            shaping = node.noise_shaping_function()
            stats = NoiseStats(mean=stats.mean * shaping.coefficient_sum(),
                               variance=stats.variance * shaping.energy())
        return acc + stats

    results = _legacy_walk(
        graph,
        zero=lambda node: NoiseStats(0.0, 0.0),
        propagate=lambda node, inputs: node.propagate_stats(inputs),
        inject=inject)
    return results[graph.output_names()[0]]


def _legacy_tracked(graph, n_psd):
    def inject(node, stats, acc):
        tracked = TrackedSpectrum.from_source(node.name, stats, n_psd)
        if isinstance(node, IirNode):
            tracked = tracked.filtered(
                node.noise_shaping_function().frequency_response(n_psd))
        return acc + tracked

    results = _legacy_walk(
        graph,
        zero=lambda node: TrackedSpectrum.zero(n_psd),
        propagate=lambda node, inputs: node.propagate_tracked(inputs, n_psd),
        inject=inject)
    return results[graph.output_names()[0]].to_psd()


def _legacy_flat(graph):
    from repro.lti.transfer_function import TransferFunction
    from repro.sfg.nodes import AddNode, OutputNode, _LtiMixin

    graph.validate()
    paths = {}
    for name in graph.topological_order():
        node = graph.node(name)
        if isinstance(node, InputNode) or node.num_inputs == 0:
            accumulated = {}
        else:
            input_maps = [paths[edge.source]
                          for edge in graph.predecessors(name)]
            if isinstance(node, OutputNode):
                (single,) = input_maps
                accumulated = dict(single)
            elif isinstance(node, AddNode):
                accumulated = {}
                for sign, source_map in zip(node.signs, input_maps):
                    for source, tf in source_map.items():
                        contribution = tf.scaled(sign)
                        if source in accumulated:
                            accumulated[source] = \
                                accumulated[source].parallel(contribution)
                        else:
                            accumulated[source] = contribution
            elif isinstance(node, _LtiMixin):
                (single,) = input_maps
                block_tf = node._effective_transfer_function()
                accumulated = {source: tf.cascade(block_tf)
                               for source, tf in single.items()}
            else:
                raise NotImplementedError(type(node).__name__)
        own = node.generated_noise()
        if own.variance > 0.0 or own.mean != 0.0:
            shaping = (node.noise_shaping_function()
                       if isinstance(node, IirNode)
                       else TransferFunction.identity())
            if name in accumulated:
                accumulated[name] = accumulated[name].parallel(shaping)
            else:
                accumulated[name] = shaping
        paths[name] = accumulated

    path_functions = paths[graph.output_names()[0]]
    total_variance = 0.0
    mean_contributions = []
    for name, tf in path_functions.items():
        stats = graph.node(name).generated_noise()
        total_variance += stats.variance * tf.energy()
        mean_contributions.append(stats.mean * tf.coefficient_sum())
    return NoiseStats(mean=float(np.sum(mean_contributions)),
                      variance=total_variance)


def _legacy_run(graph, inputs, mode):
    graph.validate()
    signals = {}
    for name in graph.topological_order():
        node = graph.node(name)
        if isinstance(node, InputNode):
            stimulus = np.asarray(inputs[name], dtype=float)
            if mode == "fixed" and node.quantization.enabled:
                stimulus = node.quantization.quantizer().quantize(stimulus)
            signals[name] = stimulus
            continue
        node_inputs = [signals[edge.source]
                       for edge in graph.predecessors(name)]
        signals[name] = (node.simulate(node_inputs) if mode == "double"
                         else node.simulate_fixed(node_inputs))
    return signals[graph.output_names()[0]]


# ----------------------------------------------------------------------
# Systems under test
# ----------------------------------------------------------------------
def _table1_graphs():
    entries = generate_fir_bank(3, seed=5) + generate_iir_bank(3, seed=5)
    return [build_filter_graph(entry, fractional_bits=12)
            for entry in entries]


def _dwt_graph(bits=11):
    """One-level 9/7 analysis + synthesis bank as a multirate SFG."""
    filters = daubechies_9_7_filters()
    builder = SfgBuilder("dwt-bank")
    x = builder.input("x", fractional_bits=bits)
    low = builder.fir("h0", filters.analysis_lowpass, x,
                      fractional_bits=bits)
    high = builder.fir("h1", filters.analysis_highpass, x,
                       fractional_bits=bits)
    low_d = builder.downsample("low_down", low, 2)
    high_d = builder.downsample("high_down", high, 2)
    low_u = builder.upsample("low_up", low_d, 2)
    high_u = builder.upsample("high_up", high_d, 2)
    low_s = builder.fir("g0", filters.synthesis_lowpass, low_u,
                        fractional_bits=bits)
    high_s = builder.fir("g1", filters.synthesis_highpass, high_u,
                         fractional_bits=bits)
    merged = builder.add("merge", [low_s, high_s], fractional_bits=bits)
    builder.output("y", merged)
    return builder.build()


def _assert_psd_identical(plan_psd, legacy_psd):
    np.testing.assert_array_equal(plan_psd.ac, legacy_psd.ac)
    assert plan_psd.mean == legacy_psd.mean


class TestTable1FilterBank:
    @pytest.mark.parametrize("index", range(6))
    def test_psd_method_bitwise_identical(self, index):
        graph = _table1_graphs()[index]
        _assert_psd_identical(evaluate_psd(graph, 256),
                              _legacy_psd(graph, 256))

    @pytest.mark.parametrize("index", range(6))
    def test_tracked_method_bitwise_identical(self, index):
        graph = _table1_graphs()[index]
        _assert_psd_identical(evaluate_psd_tracked(graph, 256),
                              _legacy_tracked(graph, 256))

    @pytest.mark.parametrize("index", range(6))
    def test_agnostic_method_bitwise_identical(self, index):
        graph = _table1_graphs()[index]
        stats = evaluate_agnostic(graph)
        legacy = _legacy_agnostic(graph)
        assert stats.mean == legacy.mean
        assert stats.variance == legacy.variance

    @pytest.mark.parametrize("index", range(6))
    def test_flat_method_bitwise_identical(self, index):
        # The flat method composes the same per-block transfer functions
        # in the same order through the plan schedule, so it too must be
        # bitwise reproducible.
        graph = _table1_graphs()[index]
        via_plan = evaluate_flat(graph)
        legacy = _legacy_flat(graph)
        assert via_plan.mean == legacy.mean
        assert via_plan.variance == legacy.variance

    @pytest.mark.parametrize("index", [0, 3])
    def test_simulator_bitwise_identical(self, index, rng):
        graph = _table1_graphs()[index]
        x = rng.uniform(-0.9, 0.9, 2048)
        executor = SfgExecutor(graph)
        for mode in ("double", "fixed"):
            np.testing.assert_array_equal(
                executor.run({"x": x}, mode=mode).output("y"),
                _legacy_run(graph, {"x": x}, mode))


class TestDwtBank:
    def test_psd_method_bitwise_identical(self):
        graph = _dwt_graph()
        _assert_psd_identical(evaluate_psd(graph, 256),
                              _legacy_psd(graph, 256))

    def test_agnostic_method_bitwise_identical(self):
        graph = _dwt_graph()
        stats = evaluate_agnostic(graph)
        legacy = _legacy_agnostic(graph)
        assert stats.mean == legacy.mean
        assert stats.variance == legacy.variance

    def test_simulator_bitwise_identical(self, rng):
        graph = _dwt_graph()
        x = rng.uniform(-0.9, 0.9, 1024)
        executor = SfgExecutor(graph)
        for mode in ("double", "fixed"):
            np.testing.assert_array_equal(
                executor.run({"x": x}, mode=mode).output("y"),
                _legacy_run(graph, {"x": x}, mode))

    def test_estimate_close_to_simulation(self, rng):
        """End-to-end sanity: the plan path still estimates accurately."""
        graph = _dwt_graph()
        executor = SfgExecutor(graph)
        x = rng.uniform(-0.9, 0.9, 60_000)
        measured = float(np.mean(executor.run_error({"x": x})[64:] ** 2))
        estimated = evaluate_psd(graph, 512).total_power
        assert estimated == pytest.approx(measured, rel=0.3)
