"""Bit-exactness and backend coverage of the simulation kernel layer.

The contract of :mod:`repro.simkernel` is absolute: the optimized kernels
must reproduce the preserved legacy loops *bit for bit* — not close, not
within a tolerance.  This suite pins that contract as a matrix over

* rounding modes (TRUNCATE / ROUND / CONVERGENT),
* filter structures (FIR, direct-form IIR, SOS biquad cascades, the
  frequency-domain overlap-save FIR),
* stimulus shapes (single stream and stacked Monte-Carlo trials),
* extreme Q-formats (1 fractional bit, deep fractional words, inputs
  pushed to the saturation edge of the Q15 range),

plus the backend selection machinery itself (env var, context manager,
numba auto-detection) and the vectorized Welch estimator against its
per-segment reference loop.
"""

import os
import subprocess
import sys

import numpy as np
import pytest

from repro.data.signals import uniform_white_noise
from repro.fixedpoint.quantizer import RoundingMode
from repro.lti.fft import FixedPointFft
from repro.lti.filters import FirFilter, FixedPointFilterConfig, IirFilter
from repro.lti.iir_design import design_iir_filter
from repro.lti.sos import build_direct_form_graph, build_sos_graph
from repro.psd.estimation import (
    _welch_reference,
    estimate_psd,
    estimate_psd_batch,
    welch,
    welch_batched,
)
from repro.sfg.executor import SfgExecutor
from repro.simkernel import (
    available_backends,
    default_backend,
    get_backend,
    iir_df1_fixed,
    numba_available,
    resolve_backend,
    set_backend,
    use_backend,
)
from repro.simkernel.reference import iir_df1_reference
from repro.systems.freq_filter import FrequencyDomainFirNode

MODES = (RoundingMode.TRUNCATE, RoundingMode.ROUND, RoundingMode.CONVERGENT)


@pytest.fixture
def rng():
    return np.random.default_rng(1234)


def _iir_coefficients(order: int):
    b, a = design_iir_filter(order, 0.3, "lowpass", "butterworth")
    return np.asarray(b), np.asarray(a)


# ----------------------------------------------------------------------
# IIR kernels vs the legacy per-sample loop
# ----------------------------------------------------------------------
class TestIirKernelBitExactness:
    @pytest.mark.parametrize("mode", MODES)
    @pytest.mark.parametrize("fractional_bits", [1, 8, 12, 24])
    @pytest.mark.parametrize("batched", [False, True])
    def test_matrix_vs_reference_loop(self, rng, mode, fractional_bits,
                                      batched):
        b, a = _iir_coefficients(3)
        step = 2.0 ** -fractional_bits
        shape = (5, 600) if batched else (1500,)
        x = rng.uniform(-0.9, 0.9, shape)
        expected = iir_df1_reference(x, b, a, step, mode)
        result = iir_df1_fixed(x, b, a, step, mode, backend="numpy")
        assert np.array_equal(result, expected)

    @pytest.mark.parametrize("mode", MODES)
    def test_saturation_edge_stimulus(self, rng, mode):
        # Inputs pushed to the edge of the Q15 range: large accumulator
        # magnitudes exercise the mantissa arithmetic far from the
        # comfortable unit-amplitude regime.
        b, a = _iir_coefficients(2)
        step = 2.0 ** -10
        x = rng.uniform(-1.0, 1.0, 900) * (2.0 ** 14)
        expected = iir_df1_reference(x, b, a, step, mode)
        result = iir_df1_fixed(x, b, a, step, mode, backend="numpy")
        assert np.array_equal(result, expected)

    def test_pure_feed_forward_fast_path(self, rng):
        # len(a) == 1: the recursion disappears and the kernel collapses
        # to one vectorized rounding pass — still bit-identical.
        b = rng.standard_normal(7)
        a = np.array([1.0])
        x = rng.uniform(-0.9, 0.9, 500)
        for mode in MODES:
            expected = iir_df1_reference(x, b, a, 2.0 ** -12, mode)
            result = iir_df1_fixed(x, b, a, 2.0 ** -12, mode,
                                   backend="numpy")
            assert np.array_equal(result, expected)

    def test_filter_object_matches_reference_backend(self, rng):
        iir = IirFilter(*_iir_coefficients(4))
        x = rng.uniform(-0.9, 0.9, 1200)
        config = FixedPointFilterConfig(data_fractional_bits=12,
                                        rounding=RoundingMode.ROUND)
        with use_backend("numpy"):
            fast = iir.process_fixed_point(x, config)
        with use_backend("reference"):
            slow = iir.process_fixed_point(x, config)
        assert np.array_equal(fast, slow)

    def test_fir_filter_unaffected_by_backend(self, rng):
        fir = FirFilter(rng.standard_normal(9))
        x = rng.uniform(-0.9, 0.9, (3, 400))
        config = FixedPointFilterConfig(data_fractional_bits=10,
                                        rounding=RoundingMode.TRUNCATE)
        with use_backend("numpy"):
            fast = fir.process_fixed_point(x, config)
        with use_backend("reference"):
            slow = fir.process_fixed_point(x, config)
        assert np.array_equal(fast, slow)

    @pytest.mark.parametrize("mode", MODES)
    def test_sos_cascade_graph(self, mode):
        # A cascade of biquad IirNodes runs every section through the
        # kernel; the whole graph output must be backend-invariant.
        b, a = design_iir_filter(6, 0.25, "lowpass", "chebyshev1")
        graph = build_sos_graph(b, a, fractional_bits=12, rounding=mode)
        direct = build_direct_form_graph(b, a, fractional_bits=12,
                                         rounding=mode)
        stimulus = {"x": uniform_white_noise(2000, seed=9)}
        for system in (graph, direct):
            executor = SfgExecutor(system)
            with use_backend("numpy"):
                fast = executor.run(stimulus, mode="fixed").output("y")
            with use_backend("reference"):
                slow = executor.run(stimulus, mode="fixed").output("y")
            assert np.array_equal(fast, slow)

    def test_batched_rows_equal_single_stream_runs(self, rng):
        # The trials axis must be semantics-free: row t of the batched
        # run equals the 1-D run on row t.
        b, a = _iir_coefficients(3)
        step = 2.0 ** -12
        x = rng.uniform(-0.9, 0.9, (4, 700))
        batched = iir_df1_fixed(x, b, a, step, RoundingMode.ROUND,
                                backend="numpy")
        for t in range(x.shape[0]):
            row = iir_df1_fixed(x[t], b, a, step, RoundingMode.ROUND,
                                backend="numpy")
            assert np.array_equal(batched[t], row)

    @pytest.mark.skipif(not numba_available(), reason="numba not installed")
    def test_numba_backend_equals_numpy(self, rng):
        b, a = _iir_coefficients(3)
        step = 2.0 ** -12
        for shape in (1200, (4, 500)):
            x = rng.uniform(-0.9, 0.9, shape)
            for mode in MODES:
                fast = iir_df1_fixed(x, b, a, step, mode, backend="numba")
                ref = iir_df1_fixed(x, b, a, step, mode, backend="numpy")
                assert np.array_equal(fast, ref)


# ----------------------------------------------------------------------
# Fixed-point FFT and the overlap-save node
# ----------------------------------------------------------------------
class TestFixedPointFftVectorization:
    @pytest.mark.parametrize("mode", MODES)
    def test_batched_forward_equals_reference_loop(self, rng, mode):
        engine = FixedPointFft(16, 12, rounding=mode)
        blocks = rng.uniform(-1.0, 1.0, (40, 16))
        batched = engine.forward(blocks)
        for t in range(blocks.shape[0]):
            assert np.array_equal(batched[t],
                                  engine._forward_reference(
                                      blocks[t].astype(complex)))

    def test_reference_backend_routes_through_loop(self, rng):
        engine = FixedPointFft(16, 10)
        blocks = rng.uniform(-1.0, 1.0, (3, 16))
        with use_backend("reference"):
            looped = engine.forward(blocks)
        fast = engine.forward(blocks)
        assert np.array_equal(looped, fast)

    def test_inverse_round_trip_backend_invariant(self, rng):
        engine = FixedPointFft(16, 12)
        spectra = (rng.uniform(-1, 1, (7, 16))
                   + 1j * rng.uniform(-1, 1, (7, 16)))
        fast = engine.inverse(spectra)
        with use_backend("reference"):
            slow = engine.inverse(spectra)
        assert np.array_equal(fast, slow)

    def test_wrong_block_length_rejected(self):
        engine = FixedPointFft(16, 12)
        with pytest.raises(ValueError, match="expected a block"):
            engine.forward(np.zeros(8))


class TestFrequencyDomainNodeVectorization:
    def _node(self, bits=12, rounding=RoundingMode.ROUND):
        from repro.sfg.nodes import QuantizationSpec
        from repro.systems.freq_filter import default_frequency_domain_taps
        return FrequencyDomainFirNode(
            "freq", default_frequency_domain_taps(), fft_size=16,
            quantization=QuantizationSpec(fractional_bits=bits,
                                          rounding=rounding))

    @pytest.mark.parametrize("mode", MODES)
    def test_fixed_pipeline_matches_reference(self, mode):
        node = self._node(rounding=mode)
        x = uniform_white_noise(3000, seed=4)
        fast = node.simulate_fixed([x])
        with use_backend("reference"):
            slow = node.simulate_fixed([x])
        assert np.array_equal(fast, slow)

    def test_batched_trials_equal_per_trial_rows(self):
        node = self._node()
        x = np.stack([uniform_white_noise(640, seed=20 + t)
                      for t in range(5)])
        batched_fixed = node.simulate_fixed([x])
        batched_double = node.simulate([x])
        assert batched_fixed.shape == x.shape
        for t in range(x.shape[0]):
            assert np.array_equal(batched_fixed[t],
                                  node.simulate_fixed([x[t]]))
            assert np.array_equal(batched_double[t], node.simulate([x[t]]))

    def test_double_path_matches_reference_backend(self):
        node = self._node()
        x = uniform_white_noise(2500, seed=6)
        fast = node.simulate([x])
        with use_backend("reference"):
            slow = node.simulate([x])
        assert np.array_equal(fast, slow)

    def test_supports_batch_introspection_retained(self):
        # The attribute survives (always true) even though the executor
        # fallback it used to gate is gone.
        from repro.sfg.nodes import GainNode, Node
        assert Node.supports_batch is True
        assert GainNode("g", 2.0).supports_batch is True
        assert self._node().supports_batch is True


class TestOverlapSaveBatched:
    def test_batched_rows_equal_per_row(self, rng):
        from repro.lti.convolution import overlap_save
        h = rng.standard_normal(5)
        x = rng.standard_normal((4, 100))
        batched = overlap_save(x, h, 16)
        assert batched.shape == x.shape
        for t in range(x.shape[0]):
            assert np.array_equal(batched[t], overlap_save(x[t], h, 16))

    def test_streaming_loop_rejects_batches(self, rng):
        from repro.lti.convolution import overlap_save
        h = rng.standard_normal(5)
        x = rng.standard_normal((4, 100))
        with pytest.raises(ValueError, match="1-D stream"):
            overlap_save(x, h, 16, fft=np.fft.fft, ifft=np.fft.ifft)
        with use_backend("reference"):
            with pytest.raises(ValueError, match="1-D stream"):
                overlap_save(x, h, 16)


# ----------------------------------------------------------------------
# Welch vectorization
# ----------------------------------------------------------------------
class TestWelchVectorization:
    @pytest.mark.parametrize("n_bins", [32, 128, 256])
    @pytest.mark.parametrize("overlap", [0.0, 0.5, 0.75])
    def test_welch_equals_reference_loop(self, rng, n_bins, overlap):
        x = rng.standard_normal(5000)
        fast = welch(x, n_bins, overlap=overlap)
        slow = _welch_reference(x, n_bins, overlap=overlap)
        assert np.array_equal(fast.ac, slow.ac)
        assert fast.mean == slow.mean

    def test_short_record_zero_padding(self, rng):
        x = rng.standard_normal(20)
        fast = welch(x, 64)
        slow = _welch_reference(x, 64)
        assert np.array_equal(fast.ac, slow.ac)

    def test_extreme_overlap_hop_clamp(self, rng):
        x = rng.standard_normal(400)
        fast = welch(x, 64, overlap=0.999)
        slow = _welch_reference(x, 64, overlap=0.999)
        assert np.array_equal(fast.ac, slow.ac)

    def test_constant_record_is_zero_psd(self):
        psd = welch(np.full(300, 0.25), 32)
        assert np.all(psd.ac == 0.0)
        assert psd.mean == 0.25

    def test_batched_rows_equal_per_row_welch(self, rng):
        records = rng.standard_normal((6, 2000))
        batch = welch_batched(records, 128)
        for row, psd in zip(records, batch):
            single = welch(row, 128)
            assert np.array_equal(psd.ac, single.ac)
            assert psd.mean == single.mean

    def test_estimate_psd_batch_periodogram(self, rng):
        records = rng.standard_normal((3, 700))
        batch = estimate_psd_batch(records, 64, method="periodogram")
        for row, psd in zip(records, batch):
            single = estimate_psd(row, 64, method="periodogram")
            assert np.array_equal(psd.ac, single.ac)

    def test_empty_and_bad_overlap_rejected(self):
        with pytest.raises(ValueError):
            welch(np.array([]), 16)
        with pytest.raises(ValueError):
            welch(np.ones(100), 16, overlap=1.0)

    def test_memory_bounded_fallback_is_bitwise_identical(self, rng,
                                                          monkeypatch):
        # Extreme overlap clamps the hop to one sample — nearly one
        # segment per sample.  Force the bounded-memory per-segment path
        # on a small record and pin it against both the one-shot pass
        # and the reference loop.
        from repro.psd import estimation
        x = rng.standard_normal(3000)
        one_shot = welch(x, 64, overlap=0.99)
        monkeypatch.setattr(estimation, "_MAX_ONE_SHOT_ELEMENTS", 1024)
        looped = welch(x, 64, overlap=0.99)
        reference = _welch_reference(x, 64, overlap=0.99)
        assert np.array_equal(looped.ac, one_shot.ac)
        assert np.array_equal(looped.ac, reference.ac)


# ----------------------------------------------------------------------
# Backend selection machinery
# ----------------------------------------------------------------------
class TestBackendSelection:
    def test_default_backend_consistent_with_numba_detection(self):
        assert default_backend() == ("numba" if numba_available()
                                     else "numpy")
        assert "numpy" in available_backends()
        assert "reference" in available_backends()

    def test_use_backend_restores_previous_choice(self):
        before = get_backend()
        with use_backend("reference"):
            assert get_backend() == "reference"
            with use_backend("numpy"):
                assert get_backend() == "numpy"
            assert get_backend() == "reference"
        assert get_backend() == before

    def test_set_backend_and_reset(self):
        set_backend("reference")
        try:
            assert get_backend() == "reference"
        finally:
            set_backend(None)
        assert get_backend() == default_backend()

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown simulation backend"):
            resolve_backend("fortran")
        with pytest.raises(ValueError):
            set_backend("fortran")

    def test_numba_request_without_numba_rejected(self):
        if numba_available():
            pytest.skip("numba installed; the rejection path is inactive")
        with pytest.raises(ValueError, match="numba is not installed"):
            resolve_backend("numba")

    def test_environment_variable_forces_backend(self):
        # The env var is read per resolution, so a subprocess is the
        # honest end-to-end check of the documented switch.
        env = dict(os.environ, REPRO_SIMD_BACKEND="reference",
                   PYTHONPATH="src")
        output = subprocess.run(
            [sys.executable, "-c",
             "from repro.simkernel import get_backend; print(get_backend())"],
            capture_output=True, text=True, env=env, check=True)
        assert output.stdout.strip() == "reference"

    def test_explicit_argument_beats_active_backend(self, rng):
        b, a = _iir_coefficients(2)
        x = rng.uniform(-0.9, 0.9, 300)
        with use_backend("numpy"):
            via_argument = iir_df1_fixed(x, b, a, 2.0 ** -8,
                                         RoundingMode.ROUND,
                                         backend="reference")
        expected = iir_df1_reference(x, b, a, 2.0 ** -8, RoundingMode.ROUND)
        assert np.array_equal(via_argument, expected)


# ----------------------------------------------------------------------
# Plan-level batch validation
# ----------------------------------------------------------------------
class TestPlanBatchValidation:
    def _two_input_graph(self):
        from repro.sfg.builder import SfgBuilder
        builder = SfgBuilder("two-input")
        left = builder.input("left", fractional_bits=10)
        right = builder.input("right", fractional_bits=10)
        total = builder.add("sum", [left, right])
        builder.output("y", total)
        return builder.build()

    def test_mismatched_trial_axes_rejected(self):
        executor = SfgExecutor(self._two_input_graph())
        stimulus = {"left": np.zeros((3, 64)), "right": np.zeros((4, 64))}
        with pytest.raises(ValueError, match="trial axes"):
            executor.run(stimulus, mode="double")
        with pytest.raises(ValueError, match="trial axes"):
            executor.run_pair(stimulus)

    def test_broadcast_of_unbatched_stimulus_still_allowed(self):
        executor = SfgExecutor(self._two_input_graph())
        stimulus = {"left": np.ones((3, 64)), "right": np.ones(64)}
        result = executor.run(stimulus, mode="fixed").output("y")
        assert result.shape == (3, 64)
        assert np.all(result == 2.0)
