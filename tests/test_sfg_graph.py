"""Unit tests for the signal-flow-graph container."""

import pytest

from repro.sfg.graph import Edge, SignalFlowGraph
from repro.sfg.nodes import AddNode, FirNode, InputNode, OutputNode


def _simple_graph() -> SignalFlowGraph:
    graph = SignalFlowGraph("simple")
    graph.add_node(InputNode("x"))
    graph.add_node(FirNode("h", [0.5, 0.5]))
    graph.add_node(OutputNode("y"))
    graph.connect("x", "h")
    graph.connect("h", "y")
    return graph


class TestConstruction:
    def test_duplicate_names_rejected(self):
        graph = SignalFlowGraph()
        graph.add_node(InputNode("x"))
        with pytest.raises(ValueError):
            graph.add_node(InputNode("x"))

    def test_connect_unknown_nodes_rejected(self):
        graph = SignalFlowGraph()
        graph.add_node(InputNode("x"))
        with pytest.raises(KeyError):
            graph.connect("x", "missing")
        with pytest.raises(KeyError):
            graph.connect("missing", "x")

    def test_connect_invalid_port_rejected(self):
        graph = SignalFlowGraph()
        graph.add_node(InputNode("x"))
        graph.add_node(FirNode("h", [1.0]))
        with pytest.raises(ValueError):
            graph.connect("x", "h", port=1)

    def test_double_driving_a_port_rejected(self):
        graph = SignalFlowGraph()
        graph.add_node(InputNode("a"))
        graph.add_node(InputNode("b"))
        graph.add_node(FirNode("h", [1.0]))
        graph.connect("a", "h")
        with pytest.raises(ValueError):
            graph.connect("b", "h")

    def test_negative_port_rejected(self):
        with pytest.raises(ValueError):
            Edge("a", "b", port=-1)

    def test_contains_and_len(self):
        graph = _simple_graph()
        assert "h" in graph
        assert "missing" not in graph
        assert len(graph) == 3

    def test_remove_node_drops_edges(self):
        graph = _simple_graph()
        graph.remove_node("h")
        assert "h" not in graph
        assert all(e.source != "h" and e.target != "h" for e in graph.edges)

    def test_remove_unknown_node_rejected(self):
        with pytest.raises(KeyError):
            _simple_graph().remove_node("zzz")


class TestQueries:
    def test_input_output_names(self):
        graph = _simple_graph()
        assert graph.input_names() == ["x"]
        assert graph.output_names() == ["y"]

    def test_predecessors_sorted_by_port(self):
        graph = SignalFlowGraph()
        graph.add_node(InputNode("a"))
        graph.add_node(InputNode("b"))
        graph.add_node(AddNode("sum", num_inputs=2))
        graph.add_node(OutputNode("y"))
        graph.connect("b", "sum", port=1)
        graph.connect("a", "sum", port=0)
        graph.connect("sum", "y")
        assert [e.source for e in graph.predecessors("sum")] == ["a", "b"]

    def test_successors_and_fanout(self):
        graph = SignalFlowGraph()
        graph.add_node(InputNode("x"))
        graph.add_node(FirNode("h1", [1.0]))
        graph.add_node(FirNode("h2", [1.0]))
        graph.add_node(OutputNode("y1"))
        graph.add_node(OutputNode("y2"))
        graph.connect("x", "h1")
        graph.connect("x", "h2")
        graph.connect("h1", "y1")
        graph.connect("h2", "y2")
        assert graph.fanout("x") == 2
        assert {e.target for e in graph.successors("x")} == {"h1", "h2"}

    def test_reachable_from(self):
        graph = _simple_graph()
        assert graph.reachable_from("x") == {"h", "y"}
        assert graph.reachable_from("y") == set()
        with pytest.raises(KeyError):
            graph.reachable_from("zzz")


class TestValidationAndOrdering:
    def test_valid_graph_passes(self):
        _simple_graph().validate()

    def test_missing_input_detected(self):
        graph = SignalFlowGraph()
        graph.add_node(FirNode("h", [1.0]))
        graph.add_node(OutputNode("y"))
        graph.connect("h", "y")
        with pytest.raises(ValueError):
            graph.validate()

    def test_undriven_port_detected(self):
        graph = SignalFlowGraph()
        graph.add_node(InputNode("x"))
        graph.add_node(AddNode("sum", num_inputs=2))
        graph.add_node(OutputNode("y"))
        graph.connect("x", "sum", port=0)
        graph.connect("sum", "y")
        with pytest.raises(ValueError):
            graph.validate()

    def test_output_driving_nodes_detected(self):
        graph = SignalFlowGraph()
        graph.add_node(InputNode("x"))
        graph.add_node(OutputNode("y"))
        graph.add_node(FirNode("h", [1.0]))
        graph.connect("x", "y")
        graph.connect("y", "h")
        with pytest.raises(ValueError):
            graph.validate()

    def test_topological_order_respects_edges(self):
        graph = _simple_graph()
        order = graph.topological_order()
        assert order.index("x") < order.index("h") < order.index("y")

    def test_cycle_detected_by_topological_sort(self):
        graph = SignalFlowGraph()
        graph.add_node(InputNode("x"))
        graph.add_node(AddNode("sum", num_inputs=2))
        graph.add_node(FirNode("h", [1.0]))
        graph.add_node(OutputNode("y"))
        graph.connect("x", "sum", port=0)
        graph.connect("sum", "h")
        graph.connect("h", "sum", port=1)
        graph.connect("sum", "y")
        assert not graph.is_acyclic()
        with pytest.raises(ValueError):
            graph.topological_order()
