"""Unit tests for PSD estimation (periodogram / Welch / 2-D)."""

import numpy as np
import pytest

from repro.psd.estimation import estimate_psd, estimate_psd_2d, periodogram, welch


class TestWelch:
    def test_white_noise_variance_recovered(self, rng):
        x = rng.standard_normal(50_000) * 0.3
        psd = welch(x, 128)
        assert psd.variance == pytest.approx(0.09, rel=0.05)

    def test_mean_recovered(self, rng):
        x = rng.standard_normal(20_000) + 0.7
        psd = welch(x, 64)
        assert psd.mean == pytest.approx(0.7, abs=0.02)

    def test_white_noise_is_flat(self, rng):
        x = rng.standard_normal(200_000)
        psd = welch(x, 32)
        np.testing.assert_allclose(psd.ac, np.mean(psd.ac), rtol=0.25)

    def test_sinusoid_concentrates_in_two_bins(self, rng):
        n = 64
        t = np.arange(50_000)
        x = np.sin(2 * np.pi * t * (8 / n)) + 0.001 * rng.standard_normal(50_000)
        psd = welch(x, n, window="hann")
        dominant = np.argsort(psd.ac)[-2:]
        assert set(dominant) == {8, n - 8}

    def test_lowpass_noise_has_lowpass_spectrum(self, rng):
        from repro.lti.fir_design import design_fir_lowpass
        taps = design_fir_lowpass(63, 0.2)
        x = np.convolve(rng.standard_normal(100_000), taps)[:100_000]
        psd = welch(x, 64)
        low_power = np.sum(psd.ac[:8]) + np.sum(psd.ac[-8:])
        assert low_power > 0.8 * psd.variance

    def test_empty_record_rejected(self):
        with pytest.raises(ValueError):
            welch(np.array([]), 16)

    def test_invalid_overlap_rejected(self, rng):
        with pytest.raises(ValueError):
            welch(rng.standard_normal(100), 16, overlap=1.0)

    def test_short_record_padded(self, rng):
        psd = welch(rng.standard_normal(10), 64)
        assert psd.n_bins == 64

    def test_short_record_preserves_variance_and_mean(self, rng):
        # Zero padding must not leak into the scalar statistics: the bins
        # still sum to the variance of the 10 actual samples.
        x = rng.standard_normal(10) + 0.3
        psd = welch(x, 64)
        assert psd.variance == pytest.approx(float(np.var(x)), rel=1e-9)
        assert psd.mean == pytest.approx(float(np.mean(x)))

    def test_single_sample_record(self):
        # Degenerate but legal: one sample has zero variance by definition.
        psd = welch(np.array([0.7]), 16)
        assert psd.n_bins == 16
        assert psd.variance == 0.0
        assert psd.mean == pytest.approx(0.7)

    def test_record_exactly_one_segment(self, rng):
        x = rng.standard_normal(64)
        psd = welch(x, 64)
        assert psd.n_bins == 64
        assert psd.variance == pytest.approx(float(np.var(x)), rel=1e-9)

    def test_overlap_near_one_clamps_hop_to_one_sample(self, rng):
        # n_bins * (1 - overlap) rounds to zero here; the hop must clamp
        # to one sample instead of looping forever or dividing by zero.
        x = rng.standard_normal(200)
        psd = welch(x, 64, overlap=0.999)
        assert psd.n_bins == 64
        assert psd.variance == pytest.approx(float(np.var(x)), rel=1e-9)

    def test_high_overlap_matches_variance(self, rng):
        x = rng.standard_normal(4096)
        for overlap in (0.9, 0.99):
            psd = welch(x, 128, overlap=overlap)
            assert psd.variance == pytest.approx(float(np.var(x)), rel=1e-9)

    def test_constant_record_gives_zero_variance(self):
        psd = welch(np.full(1000, 0.25), 32)
        assert psd.variance == 0.0
        assert psd.mean == pytest.approx(0.25)


class TestPeriodogram:
    def test_variance_recovered(self, rng):
        x = rng.standard_normal(40_000)
        psd = periodogram(x, 256)
        assert psd.variance == pytest.approx(1.0, rel=0.05)

    def test_estimate_psd_dispatch(self, rng):
        x = rng.standard_normal(5_000)
        assert estimate_psd(x, 64, method="welch").n_bins == 64
        assert estimate_psd(x, 64, method="periodogram").n_bins == 64
        with pytest.raises(ValueError):
            estimate_psd(x, 64, method="multitaper")


class TestPsd2d:
    def test_total_power_matches_mean_square(self, rng):
        error = rng.standard_normal((64, 64)) * 0.01
        spectrum = estimate_psd_2d(error)
        assert np.sum(spectrum) == pytest.approx(np.mean(error ** 2), rel=1e-9)

    def test_dc_at_center_after_shift(self):
        constant = np.full((32, 32), 0.5)
        spectrum = estimate_psd_2d(constant)
        assert np.argmax(spectrum) == np.ravel_multi_index((16, 16), (32, 32))

    def test_requires_2d(self, rng):
        with pytest.raises(ValueError):
            estimate_psd_2d(rng.standard_normal(64))
