"""Runner, report and CLI coverage for the campaign subsystem."""

import csv
import json
import os
import subprocess
import sys
import textwrap

import numpy as np
import pytest

from repro.analysis.psd_method import evaluate_psd
from repro.campaign import (
    CampaignReport,
    CampaignSpec,
    ScenarioSpec,
    StimulusSpec,
    build_scenario,
    run_campaign,
)
from repro.cli import build_parser, main
from repro.sfg.plan import compile_plan


def _spec(**overrides):
    settings = dict(
        scenarios=(ScenarioSpec("polyphase_decimator",
                                {"factor": 2, "taps": 8}),
                   ScenarioSpec("interpolator_chain", {"taps": 7})),
        methods=("psd", "agnostic", "simulation"),
        wordlengths=(8, 12),
        n_psd=64,
        stimulus=StimulusSpec(num_samples=2_000, discard_transient=32),
        seed=9)
    settings.update(overrides)
    return CampaignSpec(**settings)


class TestRunner:
    def test_parallel_and_inline_runs_identical(self, tmp_path):
        inline = run_campaign(_spec(), cache_dir=None, workers=1)
        parallel = run_campaign(_spec(), cache_dir=None, workers=2)
        assert len(inline.records) == len(parallel.records)
        for a, b in zip(inline.records, parallel.records):
            assert a["key"] == b["key"]
            assert a["power"] == b["power"]
            assert a["mean"] == b["mean"]

    def test_batched_estimates_match_single_evaluation(self):
        result = run_campaign(_spec(methods=("psd",)), cache_dir=None)
        for record in result.records:
            instance = build_scenario(record["scenario"],
                                      record["params"])
            plan = compile_plan(instance.graph)
            assignment = {name: record["wordlength"]
                          for name, node in instance.graph.nodes.items()
                          if node.quantization.enabled}
            plan.requantize(assignment)
            expected = evaluate_psd(plan, 64).total_power
            assert record["power"] == expected
            assert record["batched_with"] == 2  # both wordlengths at once

    def test_flat_and_tracked_methods_run_end_to_end(self):
        """Every runner method branch executes and matches the direct
        single-config evaluation (flat / psd_tracked have no batched
        walk, so they take their own code path in the worker)."""
        from repro.analysis.flat_method import evaluate_flat
        from repro.analysis.psd_method import evaluate_psd_tracked

        spec = _spec(scenarios=(ScenarioSpec("table1_fir", {"taps": 8}),),
                     methods=("flat", "psd_tracked", "simulation"))
        result = run_campaign(spec, cache_dir=None)
        by_method = {}
        for record in result.records:
            by_method.setdefault(record["method"], []).append(record)
        assert len(by_method["flat"]) == len(by_method["psd_tracked"]) == 2
        instance = build_scenario("table1_fir", {"taps": 8})
        for record in by_method["flat"] + by_method["psd_tracked"]:
            plan = compile_plan(instance.graph)
            plan.requantize({name: record["wordlength"]
                             for name, node in instance.graph.nodes.items()
                             if node.quantization.enabled})
            if record["method"] == "flat":
                expected = evaluate_flat(plan).power
            else:
                expected = evaluate_psd_tracked(plan, 64).total_power
            assert record["power"] == expected

    def test_simulation_records_are_seed_reproducible(self):
        first = run_campaign(_spec(methods=("simulation",)), cache_dir=None)
        again = run_campaign(_spec(methods=("simulation",)), cache_dir=None)
        other = run_campaign(_spec(methods=("simulation",), seed=10),
                             cache_dir=None)
        for a, b in zip(first.records, again.records):
            assert a["power"] == b["power"]
        assert any(a["power"] != c["power"]
                   for a, c in zip(first.records, other.records))

    def test_jsonl_stream_written_incrementally(self, tmp_path):
        output = tmp_path / "stream.jsonl"
        result = run_campaign(_spec(), output_path=output)
        lines = output.read_text().splitlines()
        assert len(lines) == len(result.records)
        assert all(json.loads(line)["key"] for line in lines)

    def test_overlapping_scenario_entries_computed_once(self):
        # Regression: two scenario entries resolving to the same graph
        # (explicit params == defaults) expand to identical job keys;
        # the work must run once, with the duplicates served as hits.
        duplicated = _spec(scenarios=(
            ScenarioSpec("polyphase_decimator", {"factor": 2, "taps": 8}),
            ScenarioSpec("polyphase_decimator", {"taps": 8, "factor": 2})))
        single = _spec(scenarios=(
            ScenarioSpec("polyphase_decimator", {"factor": 2, "taps": 8}),))
        result = run_campaign(duplicated, cache_dir=None)
        assert len(result.records) == 2 * len(
            run_campaign(single, cache_dir=None).records)
        assert result.computed == len(result.records) // 2
        assert result.cache_hits == len(result.records) // 2

    def test_duplicate_jobs_keep_their_own_scenario_labels(self):
        # factor=2 and factor=2.0 build identical graphs (identical job
        # keys) but have distinct raw params, hence distinct signatures;
        # each entry's records must carry its own identity.
        spec = _spec(scenarios=(
            ScenarioSpec("polyphase_decimator", {"factor": 2, "taps": 8}),
            ScenarioSpec("polyphase_decimator",
                         {"factor": 2.0, "taps": 8})))
        result = run_campaign(spec, cache_dir=None)
        assert result.computed == len(result.records) // 2
        signatures = {record["signature"] for record in result.records}
        assert len(signatures) == 2
        for record in result.records[len(result.records) // 2:]:
            assert record["params"]["factor"] == 2.0
        # Ed still joins within each entry.
        report = CampaignReport(result.records)
        assert all(row["ed_percent"] is not None for row in report.rows()
                   if row["method"] == "psd")

    def test_cache_and_cache_dir_are_exclusive(self, tmp_path):
        from repro.campaign import ResultCache
        with pytest.raises(ValueError, match="not both"):
            run_campaign(_spec(), cache=ResultCache(None),
                         cache_dir=tmp_path)


class TestFaultPaths:
    """Failure paths of the supervisor outside the chaos harness (see
    test_campaign_faults.py for the injected-fault matrix)."""

    def test_persistently_raising_payload_quarantines_only_itself(
            self, monkeypatch):
        from repro.campaign import RetryPolicy, runner

        real = runner.execute_scenario_payload

        def poisoned(payload):
            if payload["scenario"] == "interpolator_chain":
                raise ValueError("broken scenario build")
            return real(payload)

        monkeypatch.setattr(runner, "execute_scenario_payload", poisoned)
        result = run_campaign(
            _spec(), cache_dir=None,
            retry_policy=RetryPolicy(max_attempts=2, backoff_base=0.0))
        by_scenario = {}
        for record in result.records:
            by_scenario.setdefault(record["scenario"], []).append(record)
        # The healthy scenario's records survived intact...
        healthy = by_scenario["polyphase_decimator"]
        assert all("power" in record for record in healthy)
        # ...and every job of the poisoned one was isolated (bisected
        # down to singles) and quarantined with the real error attached.
        poisoned_records = by_scenario["interpolator_chain"]
        assert all(record["status"] == "failed"
                   for record in poisoned_records)
        assert all(record["error_type"] == "ValueError"
                   for record in poisoned_records)
        assert result.failed == len(poisoned_records)
        assert result.computed == len(healthy)
        assert result.bisections >= 1

    def test_keyboard_interrupt_flushes_jsonl_tail(
            self, tmp_path, monkeypatch, caplog):
        from repro.campaign import runner

        real = runner.execute_scenario_payload
        completed = []

        def interrupted(payload):
            if completed:
                raise KeyboardInterrupt
            records = real(payload)
            completed.append(payload["scenario"])
            return records

        monkeypatch.setattr(runner, "execute_scenario_payload",
                            interrupted)
        output = tmp_path / "stream.jsonl"
        with caplog.at_level("WARNING", logger="repro.campaign.runner"):
            with pytest.raises(KeyboardInterrupt):
                run_campaign(_spec(), cache_dir=tmp_path / "cache",
                             output_path=output)
        # The first payload's records reached the stream before the
        # interrupt — the tail is flushed per record, nothing is lost.
        lines = [json.loads(line)
                 for line in output.read_text().splitlines()]
        assert lines and all(line["scenario"] == completed[0]
                             for line in lines)
        assert any("campaign interrupted" in message
                   for message in caplog.messages)
        # The partial run resumes: flushed records come back as hits.
        monkeypatch.setattr(runner, "execute_scenario_payload", real)
        resumed = run_campaign(_spec(), cache_dir=tmp_path / "cache",
                               output_path=output)
        assert resumed.cache_hits == len(lines)
        report = CampaignReport.from_jsonl(output)
        assert report.summary()["jobs"] == len(resumed.records)

    def test_resume_after_kill_inside_payload_under_chaos(self, tmp_path):
        """A driver killed *inside* a payload while chaos is armed:
        cache + JSONL converge on re-run and the records end up bitwise
        identical to a fault-free campaign."""
        cache_dir, output = tmp_path / "cache", tmp_path / "stream.jsonl"
        script = textwrap.dedent(f"""
            import os
            from repro.campaign import runner
            from repro.campaign import (CampaignSpec, FaultInjector,
                                        RetryPolicy, ScenarioSpec,
                                        StimulusSpec, run_campaign)

            real = runner.execute_scenario_payload
            completed = []

            def dying(payload):
                if completed:
                    os._exit(9)  # SIGKILL-grade death mid-payload
                records = real(payload)
                completed.append(payload["scenario"])
                return records

            runner.execute_scenario_payload = dying
            spec = CampaignSpec(
                scenarios=(ScenarioSpec("polyphase_decimator",
                                        {{"factor": 2, "taps": 8}}),
                           ScenarioSpec("interpolator_chain",
                                        {{"taps": 7}})),
                methods=("psd", "agnostic"), wordlengths=(8, 12),
                n_psd=64,
                stimulus=StimulusSpec(num_samples=2000,
                                      discard_transient=32),
                seed=9)
            run_campaign(
                spec, cache_dir={str(cache_dir)!r},
                output_path={str(output)!r},
                retry_policy=RetryPolicy(max_attempts=3, backoff_base=0.0,
                                         seed=9),
                fault_injector=FaultInjector(
                    seed=3, rate=0.4, kinds=("exception", "corrupt"),
                    permanent_rate=0.0))
        """)
        env = {**os.environ,
               "PYTHONPATH": str(pytest.importorskip("repro").__file__
                                 ).rsplit("/repro/", 1)[0]}
        process = subprocess.run([sys.executable, "-c", script], env=env,
                                 capture_output=True, text=True)
        assert process.returncode == 9, process.stderr
        # The kill landed after the first payload: its records are on
        # disk (JSONL tail flushed, cache written record by record).
        lines = [json.loads(line)
                 for line in output.read_text().splitlines()]
        assert lines
        # The fault-free resume converges from what survived the kill:
        # flushed records return as cache hits (minus any the chaos
        # corrupt faults garbled — those heal into recomputed misses).
        resumed = run_campaign(_spec(), cache_dir=cache_dir,
                               output_path=output)
        assert resumed.failed == 0
        assert resumed.cache_hits >= 1
        clean = run_campaign(_spec(), cache_dir=None)
        volatile = ("elapsed_seconds", "batched_with", "cached",
                    "cache_schema")

        def stripped(record):
            return {key: value for key, value in record.items()
                    if key not in volatile}

        for a, b in zip(resumed.records, clean.records):
            assert stripped(a) == stripped(b)
        # JSONL (deduped, later record wins) agrees with the cache view.
        report = CampaignReport.from_jsonl(output)
        assert {r["key"] for r in report.records} \
            == {r["key"] for r in resumed.records}


class TestReport:
    def _report(self, tmp_path):
        result = run_campaign(_spec(), cache_dir=tmp_path / "cache")
        return CampaignReport(result.records), result

    def test_rows_join_ed_against_simulation(self, tmp_path):
        report, _ = self._report(tmp_path)
        analytical = [row for row in report.rows()
                      if row["method"] in ("psd", "agnostic")]
        assert analytical
        for row in analytical:
            assert row["simulated_power"] is not None
            expected = 100.0 * (row["simulated_power"] - row["power"]) \
                / row["simulated_power"]
            assert row["ed_percent"] == pytest.approx(expected)
            assert row["sub_one_bit"] is True

    def test_summary_accounting(self, tmp_path):
        report, result = self._report(tmp_path)
        summary = report.summary()
        assert summary["jobs"] == len(result.records)
        assert summary["cached"] == 0
        assert summary["hit_rate"] == 0.0
        assert summary["wordlengths"] == [8, 12]
        assert summary["methods"]["psd"]["all_sub_one_bit"] is True
        assert summary["methods"]["simulation"]["jobs"] == 4

    def test_describe_renders_every_job(self, tmp_path):
        report, result = self._report(tmp_path)
        text = report.describe()
        assert str(len(result.records)) + " jobs" in text
        assert text.count("polyphase_decimator") == 6

    def test_csv_and_json_exports(self, tmp_path):
        report, result = self._report(tmp_path)
        report.to_csv(tmp_path / "rows.csv")
        with (tmp_path / "rows.csv").open() as stream:
            rows = list(csv.DictReader(stream))
        assert len(rows) == len(result.records)
        report.to_json(tmp_path / "report.json")
        payload = json.loads((tmp_path / "report.json").read_text())
        assert payload["summary"]["jobs"] == len(result.records)
        assert len(payload["records"]) == len(result.records)

    def test_mixed_stimulus_records_never_cross_join(self, tmp_path):
        # Regression: a JSONL file accumulated across campaigns with
        # different stimuli must not join an estimate against a foreign
        # simulation — the stimulus is part of the join key.
        output = tmp_path / "mixed.jsonl"
        run_campaign(_spec(), output_path=output)
        run_campaign(_spec(stimulus=StimulusSpec(num_samples=4_000,
                                                 discard_transient=32)),
                     output_path=output)
        report = CampaignReport.from_jsonl(output)
        for row, record in zip(report.rows(), report.records):
            if row["simulated_power"] is None:
                continue
            partner = report._simulation_for(record)
            assert partner["stimulus"] == record["stimulus"]
        # Both campaigns' analytical rows found their own reference.
        joined = [row for row in report.rows()
                  if row["ed_percent"] is not None]
        assert len(joined) == 16  # 2 campaigns x 2 scenarios x 2 wl x 2

    def test_from_jsonl_dedups_resumed_streams(self, tmp_path):
        output = tmp_path / "stream.jsonl"
        run_campaign(_spec(), cache_dir=tmp_path / "cache",
                     output_path=output)
        # Resume appends every record again (as cache hits).
        result = run_campaign(_spec(), cache_dir=tmp_path / "cache",
                              output_path=output)
        report = CampaignReport.from_jsonl(output)
        assert report.summary()["jobs"] == len(result.records)
        assert report.summary()["hit_rate"] == 1.0


class TestCli:
    def test_every_subcommand_accepts_seed(self):
        parser = build_parser()
        for command, extra in (("evaluate", ["system.json"]),
                               ("simulate", ["system.json"]),
                               ("compare", ["system.json"]),
                               ("optimize", ["system.json",
                                             "--budget", "1e-6"]),
                               ("sweep", ["system.json",
                                          "--budgets", "1e-6"]),
                               ("campaign", [])):
            args = parser.parse_args([command, *extra, "--seed", "42"])
            assert args.seed == 42, command

    def test_list_scenarios(self, capsys):
        assert main(["campaign", "--list-scenarios"]) == 0
        out = capsys.readouterr().out
        assert "polyphase_decimator" in out
        assert "fft_butterfly" in out

    def test_campaign_without_scenarios_fails(self, capsys):
        assert main(["campaign"]) == 1
        assert "no scenarios" in capsys.readouterr().err

    def test_campaign_end_to_end_with_cache(self, tmp_path, capsys):
        argv = ["campaign",
                "--scenarios", "table1_fir:taps=8",
                "fft_butterfly:stages=2,bin_index=1",
                "--methods", "psd", "simulation",
                "--wordlengths", "8", "12",
                "--samples", "2000", "--n-psd", "64", "--seed", "3",
                "--cache-dir", str(tmp_path / "cache"),
                "--output", str(tmp_path / "run.jsonl"),
                "--csv", str(tmp_path / "rows.csv"),
                "--json-report", str(tmp_path / "report.json")]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "cache: 0 hits / 8 jobs" in first
        assert (tmp_path / "rows.csv").exists()

        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "cache: 8 hits / 8 jobs (100.0%)" in second
        payload = json.loads((tmp_path / "report.json").read_text())
        assert payload["summary"]["hit_rate"] == 1.0
        assert payload["summary"]["methods"]["psd"]["all_sub_one_bit"] \
            is True

    def test_campaign_bad_scenario_parameter_reports_error(self, capsys):
        assert main(["campaign", "--scenarios", "table1_fir:taps"]) == 1
        assert "bad scenario parameter" in capsys.readouterr().err

    def test_campaign_unknown_scenario_reports_error(self, capsys):
        assert main(["campaign", "--scenarios", "nope"]) == 1
        assert "unknown scenario" in capsys.readouterr().err
