"""Smoke coverage of every CLI subcommand, plus seeded determinism.

Each of the eight subcommands runs end to end (in process, against a tmp
dir) asserting its exit code, and then runs *again* with the same
``--seed`` asserting byte-identical output.  Wall-clock timings are the
single intentionally nondeterministic element of the CLI output
(``evaluation time`` / ``campaign time`` lines and the trailing ``ms``
table column), so the determinism comparison masks exactly those and
nothing else.  The ``bench`` subcommand is inherently a measurement, so
only its ``--list`` output takes part in the byte-identical comparison;
its run/check paths are asserted structurally (files, schema, exit
codes) instead.
"""

import json
import re

import pytest

from repro.cli import main
from repro.sfg.serialization import save_graph
from repro.systems.filter_bank import build_filter_graph, generate_iir_bank

_TIMING_LINE = re.compile(r"^(evaluation time|campaign time):.*$")


def _normalize(text: str) -> str:
    """Mask the wall-clock parts of CLI output, leave everything else.

    The trailing table column is masked only inside a table whose header
    names it ``ms`` (the campaign report) — data-bearing numeric columns
    of other tables (e.g. the per-node bits of ``optimize``) stay part of
    the byte-identical comparison.
    """
    lines = []
    in_ms_table = False
    for line in text.splitlines():
        if _TIMING_LINE.match(line):
            lines.append(_TIMING_LINE.sub(r"\1: <wall clock>", line))
            continue
        if "|" in line:
            cells = [cell.strip() for cell in line.split("|")]
            if cells[-1] == "ms":  # the header row declaring the column
                in_ms_table = True
            elif in_ms_table:
                line = line.rpartition("|")[0] + "| <ms>"
        elif "+" not in line:  # not a table separator: the table ended
            in_ms_table = False
        lines.append(line)
    return "\n".join(lines)


@pytest.fixture(scope="module")
def system_path(tmp_path_factory):
    """A small serialized Table-I IIR system shared by the suite."""
    path = tmp_path_factory.mktemp("cli") / "system.json"
    entry = generate_iir_bank(1)[0]
    save_graph(build_filter_graph(entry, fractional_bits=10), path)
    return str(path)


def _run(capsys, argv):
    code = main(argv)
    return code, capsys.readouterr().out


def _assert_deterministic(capsys, argv, runs=2):
    outputs = []
    for _ in range(runs):
        code, out = _run(capsys, argv)
        assert code == 0, out
        outputs.append(_normalize(out))
    assert outputs[0] == outputs[1]
    return outputs[0]


class TestSubcommandSmoke:
    def test_evaluate(self, capsys, system_path):
        out = _assert_deterministic(
            capsys, ["evaluate", system_path, "--method", "psd",
                     "--n-psd", "64", "--seed", "3"])
        assert "estimated output noise power" in out

    def test_simulate(self, capsys, system_path):
        out = _assert_deterministic(
            capsys, ["simulate", system_path, "--samples", "2000",
                     "--seed", "3"])
        assert "simulated output noise power" in out

    def test_simulate_seed_changes_the_measurement(self, capsys,
                                                   system_path):
        _, first = _run(capsys, ["simulate", system_path, "--samples",
                                 "2000", "--seed", "3"])
        _, second = _run(capsys, ["simulate", system_path, "--samples",
                                  "2000", "--seed", "4"])
        assert first != second

    def test_compare(self, capsys, system_path):
        out = _assert_deterministic(
            capsys, ["compare", system_path, "--methods", "psd", "agnostic",
                     "--samples", "2000", "--n-psd", "64", "--seed", "3"])
        assert "psd" in out and "agnostic" in out

    def test_optimize(self, capsys, system_path):
        out = _assert_deterministic(
            capsys, ["optimize", system_path, "--budget", "1e-4",
                     "--n-psd", "64", "--max-bits", "16", "--seed", "3"])
        assert "total fractional bits" in out

    def test_sweep(self, capsys, system_path):
        out = _assert_deterministic(
            capsys, ["sweep", system_path, "--budgets", "1e-3", "1e-5",
                     "--n-psd", "64", "--max-bits", "16", "--seed", "3"])
        assert "pareto-optimal points" in out

    def test_campaign(self, capsys, tmp_path):
        # Separate cache directories per run: a shared cache would flip
        # the (data-bearing) "cached?" column between runs.
        outputs = []
        for run in range(2):
            code, out = _run(capsys, [
                "campaign", "--scenarios", "table1_fir:taps=8",
                "random:seed=4,blocks=4", "--methods", "psd", "simulation",
                "--wordlengths", "8", "12", "--n-psd", "64",
                "--samples", "2000", "--seed", "3",
                "--cache-dir", str(tmp_path / f"cache{run}")])
            assert code == 0, out
            outputs.append(_normalize(out))
        assert outputs[0] == outputs[1]
        assert "0 hits / 8 jobs" in outputs[0]

    def test_campaign_list_scenarios(self, capsys):
        code, out = _run(capsys, ["campaign", "--list-scenarios"])
        assert code == 0
        assert "random" in out and "table1_fir" in out

    def test_bench_list(self, capsys):
        out = _assert_deterministic(capsys, ["bench", "--list"])
        assert "sim_engine_ff" in out
        assert "welch_psd" in out

    def test_bench_run_writes_schema_files_and_checks_baseline(
            self, capsys, tmp_path):
        results = tmp_path / "results"
        passing = tmp_path / "pass.json"
        passing.write_text(json.dumps({
            "schema": 1,
            "floors": {"sim_engine_iir": {"single_stream": 0.0001}}}))
        code, out = _run(capsys, [
            "bench", "--names", "sim_engine_iir", "--samples", "2000",
            "--results", str(results), "--check",
            "--baseline", str(passing)])
        assert code == 0, out
        payload = json.loads(
            (results / "BENCH_sim_engine_iir.json").read_text())
        assert payload["schema"] == 1
        assert payload["workload"]["samples"] == 2000
        assert payload["speedup"]["single_stream"] > 0.0
        assert "at or above every baseline floor" in out

        failing = tmp_path / "fail.json"
        failing.write_text(json.dumps({
            "schema": 1,
            "floors": {"sim_engine_iir": {"single_stream": 1e9}}}))
        code = main(["bench", "--names", "sim_engine_iir",
                     "--samples", "2000", "--results", str(results),
                     "--check", "--baseline", str(failing)])
        captured = capsys.readouterr()
        assert code == 1
        assert "REGRESSION sim_engine_iir.single_stream" in captured.err

    def test_fuzz(self, capsys, tmp_path):
        argv = ["fuzz", "--count", "2", "--seed", "0", "--blocks", "4",
                "--samples", "1152", "--ed-samples", "4608",
                "--n-psd", "96", "--artifacts", str(tmp_path / "artifacts")]
        out = _assert_deterministic(capsys, argv)
        assert "fuzzed 2 random graph(s)" in out
        assert "all passed" in out
        # No artifacts for a clean run.
        assert not (tmp_path / "artifacts").exists()


class TestErrorPaths:
    def test_missing_system_file_is_exit_code_1(self, capsys):
        code = main(["evaluate", "no-such-file.json"])
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_unknown_scenario_is_exit_code_1(self, capsys):
        code = main(["campaign", "--scenarios", "not_a_family"])
        assert code == 1
        assert "unknown scenario" in capsys.readouterr().err

    def test_bench_rejects_unknown_name_and_tiny_samples(self, capsys):
        code = main(["bench", "--names", "no_such_bench"])
        assert code == 1
        assert "unknown benchmark" in capsys.readouterr().err
        code = main(["bench", "--samples", "8"])
        assert code == 1
        assert "--samples" in capsys.readouterr().err
        code = main(["bench", "--tags", "no-such-tag"])
        assert code == 1
        assert "no registered benchmark" in capsys.readouterr().err

    def test_fuzz_rejects_non_positive_count(self, capsys):
        code = main(["fuzz", "--count", "0"])
        assert code == 1
        assert "--count" in capsys.readouterr().err

    def test_fuzz_rejects_invalid_generator_knobs(self, capsys):
        # Bad generator arguments are a usage error, not 'count' seeded
        # graphs all reported as failing.
        code = main(["fuzz", "--count", "2", "--blocks", "-1"])
        assert code == 1
        assert "--blocks" in capsys.readouterr().err
        code = main(["fuzz", "--count", "2", "--seed", "-3"])
        assert code == 1
        assert "--seed" in capsys.readouterr().err

    def test_fuzz_artifact_round_trip_on_forced_failure(self, capsys,
                                                        tmp_path,
                                                        monkeypatch):
        """A fuzz failure prints the reproducing seed, exits non-zero and
        dumps a loadable artifact."""
        from repro.verify import differential

        def broken(graph, plan, **options):
            raise AssertionError("injected engine bug")

        monkeypatch.setitem(differential._CHECKS, "plan_vs_legacy", broken)
        code, out = _run(capsys, [
            "fuzz", "--count", "1", "--seed", "17", "--blocks", "3",
            "--samples", "1152", "--ed-samples", "1152", "--n-psd", "96",
            "--no-shrink", "--artifacts", str(tmp_path)])
        assert code == 1
        assert "seed 17: FAILED" in out
        assert "--seed 17 --count 1" in out
        data = json.loads((tmp_path / "seed17.json").read_text())
        assert data["name"] == "random-sfg-seed17"
