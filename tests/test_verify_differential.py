"""Differential verification harness and fuzz driver.

The harness itself is test infrastructure, so these tests check it both
ways: that it *passes* on systems known to be consistent (random graphs,
an existing scenario family) and that it *fails loudly and usefully* —
shrinking to the simplest reproducing case and dumping loadable
artifacts — when a failure is injected.
"""

import numpy as np
import pytest

from repro.campaign import build_scenario
from repro.sfg.builder import SfgBuilder
from repro.sfg.serialization import load_graph
from repro.systems.random_graphs import build_random_graph
from repro.verify import (
    CHECK_NAMES,
    CheckResult,
    FuzzCase,
    GraphVerdict,
    run_fuzz,
    shrink_failure,
    verify_graph,
)

# Fast harness settings shared by the passing-path tests.
FAST = dict(n_psd=96, samples=1152, ed_samples=4608, discard_transient=256,
            batch_configs=2)


class TestVerifyGraphPasses:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_graphs_pass_all_checks(self, seed):
        graph = build_random_graph(seed, blocks=6, factors=(2,))
        verdict = verify_graph(graph, seed=seed, **FAST)
        assert verdict.passed, verdict.describe()
        assert [check.name for check in verdict.checks] == list(CHECK_NAMES)

    def test_scenario_family_passes(self):
        graph = build_scenario("polyphase_decimator",
                               {"taps": 16, "factor": 2}).graph
        verdict = verify_graph(graph, seed=3, **FAST)
        assert verdict.passed, verdict.describe()

    def test_verdict_is_deterministic(self):
        graph = build_random_graph(2, blocks=6, factors=(2,))
        first = verify_graph(graph, seed=2, **FAST)
        second = verify_graph(graph, seed=2, **FAST)
        assert first.describe() == second.describe()

    def test_check_subset_and_validation(self):
        graph = build_random_graph(1, blocks=4, factors=(2,))
        verdict = verify_graph(graph, seed=1, checks=("round_trip",),
                               **FAST)
        assert [check.name for check in verdict.checks] == ["round_trip"]
        with pytest.raises(ValueError, match="unknown check"):
            verify_graph(graph, checks=("bogus",))


class TestVerifyGraphFails:
    def test_engine_crash_is_a_check_failure_not_a_crash(self):
        # A multirate graph with an n_psd that the folding cannot divide:
        # the PSD engines raise, and the harness must fold that into the
        # affected checks instead of propagating.
        builder = SfgBuilder("odd-rate")
        x = builder.input("x", fractional_bits=10)
        down = builder.downsample("down", x, factor=3)
        builder.output("y", down)
        graph = builder.build()
        verdict = verify_graph(graph, n_psd=128, samples=1152,
                               ed_samples=1152, discard_transient=64)
        failed = {check.name for check in verdict.failures}
        assert "plan_vs_legacy" in failed
        assert "divisible" in " ".join(check.detail
                                       for check in verdict.failures)

    def test_plan_compilation_crash_fails_every_check(self, monkeypatch):
        # A regression that breaks compilation itself must become a
        # per-graph failure (so a fuzz run keeps going), not a crash.
        from repro.verify import differential

        def broken_compile(graph):
            raise RuntimeError("injected compiler bug")

        monkeypatch.setattr(differential, "compile_plan", broken_compile)
        graph = build_random_graph(0, blocks=3, factors=(2,))
        verdict = verify_graph(graph, **FAST)
        assert not verdict.passed
        assert len(verdict.failures) == len(CHECK_NAMES)
        assert all("plan compilation failed" in check.detail
                   for check in verdict.failures)

    def test_zero_noise_graph_fails_the_ed_check(self):
        # No quantizer anywhere: the simulation measures exactly zero
        # error power, which the Ed check must report as a failure
        # (rather than dividing by zero).
        builder = SfgBuilder("noiseless")
        x = builder.input("x")
        gain = builder.gain("g", 0.5, x)
        builder.output("y", gain)
        verdict = verify_graph(builder.build(), checks=("ed_band",),
                               **FAST)
        assert not verdict.passed
        assert "zero error power" in verdict.failures[0].detail


def _synthetic_verifier(threshold):
    """A verifier failing exactly when the graph has > threshold nodes."""
    def verifier(graph, seed=0, **_):
        verdict = GraphVerdict(graph_name=graph.name)
        passed = len(graph) <= threshold
        verdict.checks.append(CheckResult(
            "plan_vs_legacy", passed,
            "" if passed else f"synthetic: {len(graph)} nodes"))
        return verdict
    return verifier


class TestFuzzDriver:
    def test_all_passing_run(self):
        report = run_fuzz(range(3), blocks=4, multirate=False, **FAST)
        assert report.passed
        assert report.cases == 3
        assert "all passed" in report.describe()

    def test_failure_is_shrunk_and_dumped(self, tmp_path):
        report = run_fuzz([5], blocks=8, artifacts_dir=tmp_path,
                          verifier=_synthetic_verifier(6))
        assert not report.passed
        (failure,) = report.failures
        # Shrunk to a strictly simpler configuration that still fails.
        assert failure.minimal.blocks < failure.case.blocks
        assert not _synthetic_verifier(6)(failure.minimal.build()).passed
        # The artifact pair exists and the graph loads back.
        graph_path, text_path = failure.artifacts
        rebuilt = load_graph(graph_path)
        assert rebuilt.name == failure.minimal.build().name
        text = (tmp_path / "seed5.txt").read_text()
        assert failure.minimal.command() in text
        assert "FAIL" in text

    def test_reported_command_reproduces_the_failure(self):
        report = run_fuzz([7], blocks=8, shrink=True,
                          verifier=_synthetic_verifier(5))
        minimal = report.failures[0].minimal
        # The command string encodes exactly the minimal case.
        expected = f"python -m repro.cli fuzz --seed 7 --count 1 " \
                   f"--blocks {minimal.blocks}"
        assert minimal.command().startswith(expected)
        # Rebuilding from the advertised knobs fails again.
        rebuilt = FuzzCase(7, blocks=minimal.blocks,
                           multirate=minimal.multirate)
        assert not _synthetic_verifier(5)(rebuilt.build()).passed

    def test_generator_crash_is_a_reported_failure(self, monkeypatch):
        # If graph *generation* raises for some seed, the run must record
        # that seed as failed and keep fuzzing the rest.
        from repro.verify import fuzz as fuzz_module

        real_build = fuzz_module.build_random_graph

        def flaky_build(seed, **kwargs):
            if seed == 1:
                raise RuntimeError("injected generator bug")
            return real_build(seed, **kwargs)

        monkeypatch.setattr(fuzz_module, "build_random_graph", flaky_build)
        report = run_fuzz(range(3), blocks=3, multirate=False, **FAST)
        assert report.cases == 3
        (failure,) = report.failures
        assert failure.case.seed == 1
        assert "generation failed" in failure.verdict.failures[0].detail

    def test_no_shrink_keeps_the_original_case(self):
        report = run_fuzz([5], blocks=8, shrink=False,
                          verifier=_synthetic_verifier(6))
        assert report.failures[0].minimal == report.failures[0].case

    def test_shrink_failure_returns_original_when_nothing_smaller_fails(self):
        # Fails only at exactly the original size: nothing smaller
        # reproduces, so the shrinker must hand back the original case.
        case = FuzzCase(3, blocks=4, multirate=False)
        original_nodes = len(case.build())
        verifier = _synthetic_verifier(original_nodes - 1)
        smaller_all_pass = all(
            verifier(FuzzCase(3, blocks=b, multirate=False).build()).passed
            for b in range(4))
        if smaller_all_pass:
            assert shrink_failure(case, verifier=verifier) == case


class TestLegacyShim:
    def test_tests_module_reexports_package_implementations(self):
        import legacy_reference
        from repro.verify import legacy

        for name in ("legacy_walk", "legacy_psd", "legacy_agnostic",
                     "legacy_tracked", "legacy_flat", "legacy_run"):
            assert getattr(legacy_reference, name) is getattr(legacy, name)

    def test_legacy_reference_still_disagrees_with_broken_graphs(self):
        # Sanity: the reference is independent enough to catch a
        # mutation — quantization specs differing between two otherwise
        # identical graphs yield different legacy PSD walks.
        from repro.verify.legacy import legacy_psd
        coarse = build_random_graph(9, blocks=5, min_bits=8, max_bits=8)
        fine = build_random_graph(9, blocks=5, min_bits=12, max_bits=12)
        assert not np.array_equal(legacy_psd(coarse, 96).ac,
                                  legacy_psd(fine, 96).ac)
