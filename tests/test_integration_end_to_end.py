"""End-to-end integration tests across substrates and evaluation methods.

These tests exercise the whole stack the way the benchmark harnesses do:
build a system, simulate it in both precisions, run the analytical
estimators, and check that the paper's qualitative claims hold on small
instances.
"""

import numpy as np
import pytest

from repro import AccuracyEvaluator, quickstart_fir_graph
from repro.analysis.flat_method import evaluate_flat
from repro.analysis.psd_method import evaluate_psd
from repro.data.images import ImageGenerator
from repro.data.signals import SignalGenerator, uniform_white_noise
from repro.lti.fir_design import design_fir_highpass, design_fir_lowpass
from repro.lti.iir_design import design_iir_filter
from repro.sfg.builder import SfgBuilder
from repro.sfg.cycles import break_feedback_loops
from repro.sfg.executor import SfgExecutor
from repro.systems.dwt.codec import Dwt97Codec
from repro.systems.freq_filter import FrequencyDomainFilter


class TestQuickstartGraph:
    def test_quickstart_flow(self):
        graph = quickstart_fir_graph(fractional_bits=12)
        evaluator = AccuracyEvaluator(graph, n_psd=256)
        comparison = evaluator.compare(uniform_white_noise(20_000, seed=1),
                                       methods=("psd", "agnostic", "flat"),
                                       discard_transient=32)
        for report in comparison.reports.values():
            assert report.sub_one_bit


class TestFilterChainAgainstSimulation:
    """Every analytical method must track simulation on an LTI chain."""

    @pytest.mark.parametrize("method,tolerance", [("psd", 0.15),
                                                  ("flat", 0.15),
                                                  ("psd_tracked", 0.15)])
    def test_cascade_estimates_close_to_simulation(self, method, tolerance):
        builder = SfgBuilder("cascade")
        x = builder.input("x", fractional_bits=12)
        lp = builder.fir("lp", design_fir_lowpass(21, 0.5), x,
                         fractional_bits=12)
        g = builder.gain("g", 0.75, lp, fractional_bits=12)
        hp = builder.fir("hp", design_fir_highpass(21, 0.3), g,
                         fractional_bits=12)
        builder.output("y", hp)
        graph = builder.build()

        evaluator = AccuracyEvaluator(graph, n_psd=512)
        comparison = evaluator.compare(uniform_white_noise(60_000, seed=3),
                                       methods=(method,),
                                       discard_transient=100)
        assert abs(comparison.reports[method].ed) < tolerance

    def test_iir_chain_estimate(self):
        b, a = design_iir_filter(4, 0.35, "lowpass", "butterworth")
        builder = SfgBuilder("iir-chain")
        x = builder.input("x", fractional_bits=12)
        filt = builder.iir("iir", b, a, x, fractional_bits=12)
        post = builder.fir("post", design_fir_lowpass(11, 0.6), filt,
                           fractional_bits=12)
        builder.output("y", post)
        graph = builder.build()

        evaluator = AccuracyEvaluator(graph, n_psd=1024)
        comparison = evaluator.compare(uniform_white_noise(40_000, seed=9),
                                       methods=("psd",),
                                       discard_transient=500)
        assert comparison.reports["psd"].sub_one_bit
        assert abs(comparison.reports["psd"].ed) < 0.35


class TestFeedbackLoopPipeline:
    def test_loop_collapse_then_evaluate(self):
        """Cycle breaking (step 1 of the method) feeds the estimators."""
        from repro.sfg.graph import SignalFlowGraph
        from repro.sfg.nodes import (AddNode, DelayNode, GainNode, InputNode,
                                     OutputNode, QuantizationSpec)

        graph = SignalFlowGraph("loop")
        graph.add_node(InputNode("x", QuantizationSpec(12)))
        graph.add_node(AddNode("sum", num_inputs=2))
        graph.add_node(DelayNode("z", 1))
        graph.add_node(GainNode("g", 0.5))
        graph.add_node(OutputNode("y"))
        graph.connect("x", "sum", port=0)
        graph.connect("sum", "z")
        graph.connect("z", "g")
        graph.connect("g", "sum", port=1)
        graph.connect("sum", "y")

        collapsed = break_feedback_loops(graph)
        collapsed.node("sum__loop").quantization = \
            collapsed.node("sum__loop").quantization.with_fractional_bits(12)

        evaluator = AccuracyEvaluator(collapsed, n_psd=1024)
        comparison = evaluator.compare(
            uniform_white_noise(40_000, seed=2), methods=("psd",),
            discard_transient=200)
        assert comparison.reports["psd"].sub_one_bit


class TestPaperHeadlineClaims:
    def test_freq_filter_psd_beats_agnostic_across_word_lengths(self):
        """Table II / Fig. 4 direction for the frequency-domain filter."""
        for bits in (10, 14):
            system = FrequencyDomainFilter(fractional_bits=bits, n_psd=256)
            comparison = system.compare(uniform_white_noise(30_000, seed=bits),
                                        methods=("psd", "agnostic"))
            assert abs(comparison.reports["psd"].ed) <= abs(
                comparison.reports["agnostic"].ed) + 0.02

    def test_dwt_psd_estimate_is_sub_one_bit(self):
        """Fig. 4 claim for the DWT: deviation well within one bit."""
        codec = Dwt97Codec(fractional_bits=10, levels=2)
        images = ImageGenerator(size=32, seed=3).corpus(2)
        result = codec.compare(images, n_psd=128, methods=("psd",))
        assert abs(result["methods"]["psd"]["ed"]) < 0.75

    def test_estimation_is_much_faster_than_simulation(self):
        """Fig. 6 claim: analytical evaluation beats Monte-Carlo wall-clock."""
        import time

        graph = quickstart_fir_graph(fractional_bits=12, num_taps=64)
        evaluator = AccuracyEvaluator(graph, n_psd=512)
        stimulus = uniform_white_noise(200_000, seed=4)

        start = time.perf_counter()
        evaluator.simulate(stimulus)
        simulation_time = time.perf_counter() - start

        start = time.perf_counter()
        evaluator.estimate("psd")
        estimation_time = time.perf_counter() - start

        assert estimation_time < simulation_time

    def test_flat_and_psd_equivalent_on_elementary_blocks(self):
        """Section IV-B: strict equivalence on single filter blocks."""
        generator = SignalGenerator(seed=0)
        for taps in (design_fir_lowpass(33, 0.3),
                     design_fir_highpass(33, 0.7)):
            builder = SfgBuilder("elementary")
            x = builder.input("x", fractional_bits=14)
            h = builder.fir("h", taps, x, fractional_bits=14)
            builder.output("y", h)
            graph = builder.build()
            psd = evaluate_psd(graph, 2048).total_power
            flat = evaluate_flat(graph).power
            assert psd == pytest.approx(flat, rel=5e-3)


class TestNumericalRobustness:
    def test_zero_noise_configuration(self):
        """A graph without quantization produces exactly zero estimates."""
        builder = SfgBuilder("exact")
        x = builder.input("x")
        h = builder.fir("h", design_fir_lowpass(9, 0.4), x)
        builder.output("y", h)
        graph = builder.build()
        assert evaluate_psd(graph, 64).total_power == 0.0
        error = SfgExecutor(graph).run_error(
            {"x": uniform_white_noise(1000, seed=0)})
        assert np.max(np.abs(error)) == 0.0

    def test_very_coarse_quantization_still_tracked(self):
        graph = quickstart_fir_graph(fractional_bits=4)
        evaluator = AccuracyEvaluator(graph, n_psd=128)
        comparison = evaluator.compare(uniform_white_noise(30_000, seed=6),
                                       methods=("psd",),
                                       discard_transient=32)
        assert comparison.reports["psd"].sub_one_bit
