"""Unit tests for the windowed-sinc FIR designs."""

import numpy as np
import pytest

from repro.lti.fir_design import (
    design_fir_bandpass,
    design_fir_bandstop,
    design_fir_highpass,
    design_fir_lowpass,
)
from repro.lti.transfer_function import TransferFunction


def _gain_at(taps, frequency):
    """Magnitude response at a normalized frequency (1.0 = Nyquist)."""
    response = TransferFunction.fir(taps).frequency_response(1024)
    index = int(round(frequency * 512))
    return abs(response[index])


class TestLowpass:
    def test_unit_dc_gain(self):
        taps = design_fir_lowpass(33, 0.3)
        assert np.sum(taps) == pytest.approx(1.0)

    def test_stopband_attenuation(self):
        taps = design_fir_lowpass(65, 0.3)
        assert _gain_at(taps, 0.8) < 0.01

    def test_passband_flatness(self):
        taps = design_fir_lowpass(65, 0.5)
        assert _gain_at(taps, 0.1) == pytest.approx(1.0, abs=0.02)

    def test_symmetric_linear_phase(self):
        taps = design_fir_lowpass(32, 0.4)
        np.testing.assert_allclose(taps, taps[::-1], atol=1e-12)

    def test_invalid_cutoff_rejected(self):
        with pytest.raises(ValueError):
            design_fir_lowpass(16, 1.5)
        with pytest.raises(ValueError):
            design_fir_lowpass(16, 0.0)

    def test_too_few_taps_rejected(self):
        with pytest.raises(ValueError):
            design_fir_lowpass(1, 0.3)


class TestHighpass:
    def test_unit_nyquist_gain(self):
        taps = design_fir_highpass(33, 0.4)
        assert _gain_at(taps, 1.0 - 1 / 512) == pytest.approx(1.0, abs=0.02)

    def test_dc_rejection(self):
        taps = design_fir_highpass(65, 0.4)
        assert abs(np.sum(taps)) < 0.01

    def test_even_length_promoted_to_odd(self):
        taps = design_fir_highpass(16, 0.4)
        assert len(taps) == 17


class TestBandpass:
    def test_center_gain(self):
        taps = design_fir_bandpass(65, 0.3, 0.6)
        assert _gain_at(taps, 0.45) == pytest.approx(1.0, abs=0.05)

    def test_band_edges_reject_out_of_band(self):
        taps = design_fir_bandpass(97, 0.4, 0.6)
        assert _gain_at(taps, 0.05) < 0.02
        assert _gain_at(taps, 0.95) < 0.02

    def test_invalid_band_rejected(self):
        with pytest.raises(ValueError):
            design_fir_bandpass(32, 0.6, 0.4)


class TestBandstop:
    def test_notch_attenuation(self):
        taps = design_fir_bandstop(97, 0.4, 0.6)
        assert _gain_at(taps, 0.5) < 0.05

    def test_dc_gain_unity(self):
        taps = design_fir_bandstop(65, 0.4, 0.6)
        assert np.sum(taps) == pytest.approx(1.0, abs=1e-6)

    def test_invalid_band_rejected(self):
        with pytest.raises(ValueError):
            design_fir_bandstop(33, 0.0, 0.4)


class TestWindows:
    @pytest.mark.parametrize("window", ["rectangular", "hamming", "hann",
                                        "blackman", "kaiser"])
    def test_all_windows_produce_valid_lowpass(self, window):
        taps = design_fir_lowpass(49, 0.35, window=window)
        assert np.sum(taps) == pytest.approx(1.0)
        assert _gain_at(taps, 0.9) < 0.1
