"""Per-edge / per-signal word-length granularity on the compiled plan.

Covers the fine-grained quantization tentpole end to end: edge-key
requantize and fanout taps on :class:`CompiledPlan`, dirty-cone targeting
of tap edits, scalar/batch/simulation agreement with taps in play, the
codegen fallback, integer-width pinning from range analysis, and the
edge-granularity word-length search.
"""

import numpy as np
import pytest

from repro.analysis._engine import memoization_disabled
from repro.analysis.agnostic_method import (
    evaluate_agnostic,
    evaluate_agnostic_batch,
)
from repro.analysis.flat_method import evaluate_flat, evaluate_flat_batch
from repro.analysis.psd_method import evaluate_psd, evaluate_psd_batch
from repro.data.signals import uniform_white_noise
from repro.lti.fir_design import design_fir_highpass, design_fir_lowpass
from repro.sfg.builder import SfgBuilder
from repro.sfg.plan import compile_plan, parse_edge_key
from repro.systems.families import build_scalability_bank
from repro.systems.wordlength import WordLengthOptimizer


def _fork_graph(bits=12):
    """input -> lp -> {hp, gain} -> add: a fanout worth tapping."""
    builder = SfgBuilder("fork")
    x = builder.input("x", fractional_bits=bits)
    lp = builder.fir("lp", design_fir_lowpass(9, 0.4), x,
                     fractional_bits=bits)
    hp = builder.fir("hp", design_fir_highpass(9, 0.5), lp,
                     fractional_bits=bits)
    g = builder.gain("g", 0.5, lp, fractional_bits=bits)
    merged = builder.add("sum", [hp, g], fractional_bits=bits)
    builder.output("y", merged)
    return builder.build()


def _stimulus(graph, samples=4096, seed=0):
    plan = compile_plan(graph)
    return {name: uniform_white_noise(samples, 0.9, seed + index)
            for index, name in enumerate(plan.input_names)}


class TestParseEdgeKey:
    def test_splits_source_and_target(self):
        assert parse_edge_key("lp->g") == ("lp", "g")

    def test_rejects_plain_names(self):
        with pytest.raises(ValueError, match="neither a node name"):
            parse_edge_key("lp")


class TestEdgeRequantize:
    def test_tap_created_on_target_port(self):
        plan = compile_plan(_fork_graph())
        plan.requantize({"lp->g": 8})
        (entry,) = plan.active_edge_taps()
        step, port, tap = entry
        assert step.name == "g"
        assert port == 0
        assert tap.key == "lp->g"
        assert tap.bits == 8
        assert tap.input_bits == 12
        assert tap.noise is not None

    def test_noop_tap_carries_no_noise(self):
        plan = compile_plan(_fork_graph(bits=12))
        plan.requantize({"lp->g": 12})
        assert plan.active_edge_taps() == []
        # ... but the quantizer is still installed (a no-op on the grid).
        (step,) = [s for s in plan.steps if s.name == "g"]
        assert step.edge_taps is not None
        assert step.edge_taps[0].noise is None

    def test_tap_removal_restores_plain_plan(self):
        plan = compile_plan(_fork_graph())
        plan.requantize({"lp->g": 8})
        plan.requantize({"lp->g": None})
        assert all(step.edge_taps is None for step in plan.steps)

    def test_unknown_edge_rejected(self):
        plan = compile_plan(_fork_graph())
        with pytest.raises(ValueError, match="no edge"):
            plan.requantize({"x->sum": 8})

    def test_edge_edit_dirties_only_the_target(self):
        plan = compile_plan(_fork_graph())
        epoch = plan.epoch
        plan.requantize({"lp->g": 8})
        dirty = plan.steps_dirty_since(epoch)
        assert {plan.steps[i].name for i in dirty} == {"g"}
        # hp (the other fanout branch) is untouched: its cone is clean.
        cone = {plan.steps[i].name for i in plan.downstream_cone(dirty)}
        assert "hp" not in cone
        assert "lp" not in cone

    def test_requantize_rejects_enabling_unquantized_node(self):
        graph = _fork_graph()
        graph.node("g").quantization = \
            graph.node("g").quantization.with_fractional_bits(None)
        plan = compile_plan(graph)
        with pytest.raises(ValueError, match="'g' is not quantized"):
            plan.requantize({"g": 10})
        # Opt-in and disabling are both fine.
        plan.requantize({"g": None})
        plan.requantize({"g": 10}, allow_enable=True)
        assert graph.node("g").quantization.fractional_bits == 10

    def test_tap_on_unquantized_source_is_allowed(self):
        graph = _fork_graph()
        graph.node("lp").quantization = \
            graph.node("lp").quantization.with_fractional_bits(None)
        plan = compile_plan(graph)
        plan.requantize({"lp->g": 8})
        (entry,) = plan.active_edge_taps()
        assert entry[2].input_bits is None

    def test_preserve_quantization_restores_taps(self):
        plan = compile_plan(_fork_graph())
        with plan.preserve_quantization():
            plan.requantize({"lp->g": 8, "lp": 10})
        assert plan.active_edge_taps() == []
        assert plan.graph.node("lp").quantization.fractional_bits == 12

    def test_quantization_signature_tracks_edges_and_integers(self):
        from repro.sfg.plan import quantization_signature

        graph = _fork_graph()
        plan = compile_plan(graph)
        base = quantization_signature(graph)
        plan.requantize({"lp->g": 8})
        tapped = quantization_signature(graph)
        assert tapped != base
        graph.node("lp").quantization = \
            graph.node("lp").quantization.with_integer_bits(3)
        plan.refresh()
        assert quantization_signature(graph) != tapped


class TestTapSimulation:
    def test_tap_quantizes_only_its_branch(self):
        graph = _fork_graph()
        stimulus = _stimulus(graph)
        plan = compile_plan(graph)
        reference = plan.run(stimulus, mode="fixed").output("y")
        plan.requantize({"lp->g": 6})
        tapped = plan.run(stimulus, mode="fixed").output("y")
        assert not np.array_equal(reference, tapped)
        # The hp branch is untapped: running with the tap on the *other*
        # branch and probing hp's input path via a one-branch graph
        # equivalent — here simply check the double-precision run is
        # unaffected by taps (they only exist on the fixed path).
        double = plan.run(stimulus, mode="double").output("y")
        plan.requantize({"lp->g": None})
        assert np.array_equal(double,
                              plan.run(stimulus, mode="double").output("y"))

    def test_noop_tap_is_bitwise_identity(self):
        graph = _fork_graph(bits=12)
        stimulus = _stimulus(graph)
        plan = compile_plan(graph)
        reference = plan.run(stimulus, mode="fixed").output("y")
        plan.requantize({"lp->g": 14})  # wider than the source: no-op
        assert np.array_equal(reference,
                              plan.run(stimulus, mode="fixed").output("y"))

    def test_codegen_declines_taps_and_matches_walk(self):
        from repro.simkernel.codegen.lowering import (
            UnsupportedPlanError,
            lower_plan,
        )

        graph = _fork_graph()
        stimulus = _stimulus(graph)
        plan = compile_plan(graph)
        plan.requantize({"lp->g": 7})
        with pytest.raises(UnsupportedPlanError, match="fanout taps"):
            lower_plan(plan)
        tapped = plan.run(stimulus, mode="fixed").output("y")
        # Removing the tap re-enables the tape; both paths bitwise agree.
        plan.requantize({"lp->g": None})
        untapped = plan.run(stimulus, mode="fixed").output("y")
        plan.requantize({"lp->g": 7})
        assert np.array_equal(tapped,
                              plan.run(stimulus, mode="fixed").output("y"))
        plan.requantize({"lp->g": None})
        assert np.array_equal(untapped,
                              plan.run(stimulus, mode="fixed").output("y"))


class TestTapAnalysis:
    def test_tap_noise_raises_estimates(self):
        plan = compile_plan(_fork_graph())
        base = evaluate_psd(plan, 128).total_power
        plan.requantize({"lp->g": 6})
        assert evaluate_psd(plan, 128).total_power > base

    def test_warm_equals_cold_after_edge_edits(self):
        plan = compile_plan(_fork_graph())
        evaluate_psd(plan, 128)  # prime the memo
        for edit in ({"lp->g": 8}, {"lp->hp": 7}, {"lp->g": None},
                     {"lp": 9, "lp->hp": 6}):
            plan.requantize(edit)
            warm_psd = evaluate_psd(plan, 128)
            warm_stats = evaluate_agnostic(plan)
            warm_flat = evaluate_flat(plan)
            with memoization_disabled():
                cold_psd = evaluate_psd(plan, 128)
                cold_stats = evaluate_agnostic(plan)
                cold_flat = evaluate_flat(plan)
            assert np.array_equal(warm_psd.ac, cold_psd.ac)
            assert warm_psd.mean == cold_psd.mean
            assert warm_stats.variance == cold_stats.variance
            assert warm_flat.variance == cold_flat.variance

    def test_batch_rows_match_sequential_with_edge_keys(self):
        graph = _fork_graph()
        plan = compile_plan(graph)
        assignments = [
            {"lp": 12, "hp": 11, "lp->g": 8, "lp->hp": None},
            {"lp": 10, "hp": 12, "lp->g": None, "lp->hp": 7},
            {"lp": None, "hp": 10, "lp->g": 6, "lp->hp": None},
        ]
        psd_stack = evaluate_psd_batch(plan, 128, assignments)
        stats_stack = evaluate_agnostic_batch(plan, assignments)
        flat_stack = evaluate_flat_batch(plan, assignments)
        with plan.preserve_quantization():
            for index, assignment in enumerate(assignments):
                plan.requantize(assignment, allow_enable=True)
                scalar = evaluate_psd(plan, 128)
                assert np.array_equal(psd_stack.ac[index], scalar.ac)
                assert psd_stack.mean[index] == scalar.mean
                scalar = evaluate_agnostic(plan)
                assert stats_stack.variance[index] == scalar.variance
                assert stats_stack.mean[index] == scalar.mean
                scalar = evaluate_flat(plan)
                assert flat_stack.variance[index] == scalar.variance
                assert flat_stack.mean[index] == scalar.mean

    def test_flat_method_routes_tap_noise_through_block_tf(self):
        plan = compile_plan(_fork_graph())
        plan.requantize({"lp->hp": 6})
        flat = evaluate_flat(plan)
        psd = evaluate_psd(plan, 256)
        # Same model, different decompositions: agree to solver tolerance.
        assert flat.power == pytest.approx(psd.total_power, rel=1e-6)


class TestEdgeGranularitySearch:
    def test_edge_search_beats_node_search_on_the_bank(self):
        probe = build_scalability_bank(branches=8, taps=9)
        budget = float(evaluate_psd(probe, 128).total_power) * 16.0
        node_result = WordLengthOptimizer(
            build_scalability_bank(branches=8, taps=9),
            n_psd=128).optimize(budget)
        edge_result = WordLengthOptimizer(
            build_scalability_bank(branches=8, taps=9), n_psd=128,
            granularity="edge").optimize(budget)
        assert edge_result.total_bits < node_result.total_bits
        assert edge_result.noise_power <= budget
        assert any("->" in key for key in edge_result.assignment)

    def test_three_modes_identical_at_edge_granularity(self):
        probe = build_scalability_bank(branches=4, taps=9)
        budget = float(evaluate_psd(probe, 128).total_power) * 16.0
        results = [
            WordLengthOptimizer(build_scalability_bank(branches=4, taps=9),
                                n_psd=128, granularity="edge",
                                mode=mode).optimize(budget)
            for mode in ("incremental", "batch", "sequential")]
        for other in results[1:]:
            assert other.assignment == results[0].assignment
            assert other.noise_power == results[0].noise_power

    def test_node_granularity_has_no_edge_tunables(self):
        optimizer = WordLengthOptimizer(_fork_graph(), n_psd=64)
        assert all("->" not in name for name in optimizer._tunable)

    def test_unknown_granularity_rejected(self):
        with pytest.raises(ValueError, match="unknown granularity"):
            WordLengthOptimizer(_fork_graph(), granularity="signal")

    def test_tunables_exclude_disabled_nodes_and_their_edges(self):
        graph = _fork_graph()
        graph.node("lp").quantization = \
            graph.node("lp").quantization.with_fractional_bits(None)
        optimizer = WordLengthOptimizer(graph, n_psd=64,
                                        granularity="edge")
        assert "lp" not in optimizer._tunable
        assert all(not name.startswith("lp->")
                   for name in optimizer._tunable)

    def test_assignment_cost_degenerates_at_node_granularity(self):
        optimizer = WordLengthOptimizer(_fork_graph(), n_psd=64)
        assignment = {"lp": 10, "hp": 9}
        assert optimizer.assignment_cost(assignment) == 19

    def test_assignment_cost_counts_tap_savings(self):
        optimizer = WordLengthOptimizer(_fork_graph(), n_psd=64,
                                        granularity="edge")
        assignment = {name: 10 for name in optimizer._tunable}
        base = optimizer.assignment_cost(assignment)
        narrowed = dict(assignment)
        narrowed["lp->g"] = 8  # two bits below its source
        assert optimizer.assignment_cost(narrowed) == base - 2
        widened = dict(assignment)
        widened["lp->g"] = 14  # no-op tap: costs nothing
        assert optimizer.assignment_cost(widened) == base


class TestIntegerBitAssignment:
    def test_apply_integer_bits_pins_specs(self):
        from repro.fixedpoint.range_analysis import (
            apply_integer_bits,
            assign_integer_bits,
        )

        graph = _fork_graph()
        widths = assign_integer_bits(graph, {"x": (-1.0, 1.0)})
        apply_integer_bits(graph, widths)
        assert graph.node("lp").quantization.integer_bits \
            == widths["lp"]

    def test_pinned_integer_bits_do_not_change_values(self):
        from repro.fixedpoint.range_analysis import (
            apply_integer_bits,
            assign_integer_bits,
        )

        graph = _fork_graph()
        stimulus = _stimulus(graph)
        plan = compile_plan(graph)
        reference = plan.run(stimulus, mode="fixed").output("y")
        apply_integer_bits(graph,
                           assign_integer_bits(graph, {"x": (-1.0, 1.0)},
                                               margin_bits=1))
        plan.refresh()
        # Overflow handling is OverflowMode.NONE: integer widths label
        # the format, they never clamp, so the samples are bitwise equal.
        assert np.array_equal(reference,
                              plan.run(stimulus, mode="fixed").output("y"))
