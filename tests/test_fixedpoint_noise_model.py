"""Unit and property tests for the Widrow PQN noise model."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.fixedpoint.noise_model import (
    NoiseStats,
    equivalent_bits,
    quantization_noise_psd,
    quantization_noise_stats,
    quantization_step,
)
from repro.fixedpoint.qformat import QFormat
from repro.fixedpoint.quantizer import Quantizer, RoundingMode


class TestNoiseStats:
    def test_power_combines_mean_and_variance(self):
        stats = NoiseStats(mean=0.5, variance=2.0)
        assert stats.power == pytest.approx(2.25)

    def test_scaling(self):
        stats = NoiseStats(mean=1.0, variance=4.0).scaled(-3.0)
        assert stats.mean == pytest.approx(-3.0)
        assert stats.variance == pytest.approx(36.0)

    def test_addition_of_uncorrelated_sources(self):
        total = NoiseStats(0.1, 1.0) + NoiseStats(-0.3, 2.0)
        assert total.mean == pytest.approx(-0.2)
        assert total.variance == pytest.approx(3.0)


class TestContinuousInputModel:
    def test_rounding_is_unbiased(self):
        stats = quantization_noise_stats(8, RoundingMode.ROUND)
        assert stats.mean == 0.0
        assert stats.variance == pytest.approx((2.0 ** -8) ** 2 / 12.0)

    def test_truncation_bias(self):
        stats = quantization_noise_stats(8, RoundingMode.TRUNCATE)
        assert stats.mean == pytest.approx(-(2.0 ** -8) / 2.0)

    def test_convergent_unbiased(self):
        stats = quantization_noise_stats(8, RoundingMode.CONVERGENT)
        assert stats.mean == 0.0

    def test_step_helper(self):
        assert quantization_step(None) == 0.0
        assert quantization_step(4) == 0.0625
        with pytest.raises(ValueError):
            quantization_step(-1)


class TestDiscreteInputModel:
    def test_requantization_variance(self):
        stats = quantization_noise_stats(4, RoundingMode.TRUNCATE,
                                         input_fractional_bits=8)
        q_out, q_in = 2.0 ** -4, 2.0 ** -8
        assert stats.variance == pytest.approx((q_out ** 2 - q_in ** 2) / 12.0)

    def test_requantization_round_includes_tie_term(self):
        # Ties away from zero: ±q_out/2 errors at the tie residue add
        # q_in^2/4 of variance on top of the tie-free (q_out^2-q_in^2)/12.
        stats = quantization_noise_stats(4, RoundingMode.ROUND,
                                         input_fractional_bits=8)
        q_out, q_in = 2.0 ** -4, 2.0 ** -8
        assert stats.variance == pytest.approx(
            (q_out ** 2 + 2.0 * q_in ** 2) / 12.0)

    def test_coarser_input_is_lossless(self):
        stats = quantization_noise_stats(8, RoundingMode.TRUNCATE,
                                         input_fractional_bits=4)
        assert stats.mean == 0.0
        assert stats.variance == 0.0

    def test_rounding_unbiased_for_discrete_input(self):
        # Ties away from zero is an odd characteristic: positive and
        # negative tie errors cancel, so re-quantization stays unbiased.
        stats = quantization_noise_stats(4, RoundingMode.ROUND,
                                         input_fractional_bits=6)
        assert stats.mean == 0.0

    def test_exhaustive_requantization_moments_match_model(self):
        # Enumerate every representable value of a symmetric fine-grid
        # range and compare the measured moments with the model exactly.
        in_bits, out_bits = 6, 3
        q_in = 2.0 ** -in_bits
        mantissas = np.arange(-2 ** in_bits, 2 ** in_bits)  # [-1, 1) grid
        x = mantissas * q_in
        quantizer = Quantizer(QFormat(4, out_bits), rounding=RoundingMode.ROUND)
        error = quantizer.error(x)
        model = quantization_noise_stats(out_bits, RoundingMode.ROUND,
                                         input_fractional_bits=in_bits)
        assert np.mean(error) == pytest.approx(model.mean, abs=1e-15)
        assert np.mean(error ** 2) == pytest.approx(model.power, rel=1e-12)


class TestAgainstEmpiricalQuantization:
    """The PQN model must match the measured moments of actual quantizers."""

    @settings(deadline=None, max_examples=20)
    @given(st.integers(min_value=4, max_value=12),
           st.sampled_from([RoundingMode.ROUND, RoundingMode.TRUNCATE]))
    def test_continuous_input_moments(self, frac, mode):
        rng = np.random.default_rng(frac)
        x = rng.uniform(-1.0, 1.0, 200_000)
        error = Quantizer(QFormat(4, frac), rounding=mode).error(x)
        model = quantization_noise_stats(frac, mode)
        assert np.mean(error) == pytest.approx(model.mean, abs=3e-2 * 2.0 ** -frac)
        assert np.mean(error ** 2) == pytest.approx(model.power, rel=0.05)

    @settings(deadline=None, max_examples=10)
    @given(st.integers(min_value=3, max_value=8),
           st.integers(min_value=2, max_value=6),
           st.sampled_from([RoundingMode.ROUND, RoundingMode.TRUNCATE]))
    def test_requantization_moments(self, out_bits, extra_bits, mode):
        in_bits = out_bits + extra_bits
        rng = np.random.default_rng(out_bits * 13 + extra_bits)
        x = Quantizer(QFormat(4, in_bits)).quantize(
            rng.uniform(-1.0, 1.0, 200_000))
        error = Quantizer(QFormat(4, out_bits), rounding=mode).error(x)
        model = quantization_noise_stats(out_bits, mode,
                                         input_fractional_bits=in_bits)
        assert np.mean(error) == pytest.approx(model.mean,
                                               abs=3e-2 * 2.0 ** -out_bits)
        assert np.mean(error ** 2) == pytest.approx(model.power, rel=0.06)


class TestNoisePsd:
    def test_bins_sum_to_total_power(self):
        stats = NoiseStats(mean=0.25, variance=1.0)
        psd = quantization_noise_psd(stats, 64)
        assert np.sum(psd) == pytest.approx(stats.variance + stats.mean ** 2,
                                            rel=1e-12)

    def test_variance_spread_over_all_bins(self):
        # Library-wide convention: variance/n on every bin (DC included),
        # the squared mean added on top of the DC bin.
        stats = NoiseStats(mean=0.5, variance=1.0)
        psd = quantization_noise_psd(stats, 16)
        assert psd[0] == pytest.approx(0.25 + 1.0 / 16.0)
        np.testing.assert_allclose(psd[1:], 1.0 / 16.0)

    def test_requires_at_least_two_bins(self):
        with pytest.raises(ValueError):
            quantization_noise_psd(NoiseStats(0.0, 1.0), 1)


class TestEquivalentBits:
    def test_factor_four_is_one_bit(self):
        assert equivalent_bits(4.0) == pytest.approx(1.0)
        assert equivalent_bits(0.25) == pytest.approx(-1.0)

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            equivalent_bits(0.0)
