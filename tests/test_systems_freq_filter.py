"""Unit tests for the frequency-domain band-pass filtering system (Fig. 2)."""

import numpy as np
import pytest

from repro.data.signals import uniform_white_noise
from repro.systems.freq_filter import (
    FrequencyDomainFilter,
    FrequencyDomainFirNode,
    build_frequency_filter_graph,
    default_frequency_domain_taps,
    default_time_domain_taps,
)
from repro.sfg.nodes import QuantizationSpec


class TestFrequencyDomainFirNode:
    def test_reference_matches_direct_convolution(self, rng):
        taps = default_frequency_domain_taps()
        node = FrequencyDomainFirNode("f", taps, fft_size=16)
        x = rng.uniform(-0.9, 0.9, 400)
        expected = np.convolve(x, taps)[:400]
        np.testing.assert_allclose(node.simulate([x]), expected, atol=1e-10)

    def test_taps_longer_than_fft_rejected(self):
        with pytest.raises(ValueError):
            FrequencyDomainFirNode("f", np.ones(20), fft_size=16)

    def test_fixed_point_output_on_grid(self, rng):
        node = FrequencyDomainFirNode("f", default_frequency_domain_taps(),
                                      fft_size=16,
                                      quantization=QuantizationSpec(10))
        x = np.floor(rng.uniform(-0.9, 0.9, 300) * 2 ** 10) / 2 ** 10
        out = node.simulate_fixed([x])
        scaled = out * 2 ** 10
        np.testing.assert_allclose(scaled, np.round(scaled), atol=1e-9)

    def test_fixed_point_error_shrinks_with_precision(self, rng):
        x = rng.uniform(-0.9, 0.9, 2000)
        errors = []
        for bits in (8, 12, 16):
            node = FrequencyDomainFirNode("f", default_frequency_domain_taps(),
                                          fft_size=16,
                                          quantization=QuantizationSpec(bits))
            xq = np.floor(x * 2 ** bits + 0.5) / 2 ** bits
            errors.append(np.mean((node.simulate_fixed([xq])
                                   - node.simulate([xq])) ** 2))
        assert errors[0] > errors[1] > errors[2]

    def test_generated_noise_larger_than_plain_fir(self):
        """The FFT pipeline must inject more noise than a single quantizer."""
        spec = QuantizationSpec(12)
        node = FrequencyDomainFirNode("f", default_frequency_domain_taps(),
                                      fft_size=16, quantization=spec)
        assert node.generated_noise().variance > spec.noise_stats().variance

    def test_generated_noise_zero_without_quantization(self):
        node = FrequencyDomainFirNode("f", default_frequency_domain_taps(),
                                      fft_size=16)
        assert node.generated_noise().variance == 0.0

    def test_internal_noise_model_matches_measurement(self, rng):
        """The lumped FFT/multiply/IFFT noise model should be within ~2x."""
        bits = 12
        node = FrequencyDomainFirNode("f", default_frequency_domain_taps(),
                                      fft_size=16,
                                      quantization=QuantizationSpec(bits))
        x = np.floor(rng.uniform(-0.9, 0.9, 60_000) * 2 ** bits + 0.5) / 2 ** bits
        error = node.simulate_fixed([x]) - node.simulate([x])
        measured = float(np.mean(error[64:] ** 2))
        predicted = node.generated_noise().power
        assert predicted == pytest.approx(measured, rel=1.0)


class TestSystemGraph:
    def test_graph_structure(self):
        graph = build_frequency_filter_graph(fractional_bits=12)
        assert set(graph.nodes) == {"x", "time_fir", "freq_fir", "y"}

    def test_default_designs_have_expected_shapes(self):
        assert len(default_time_domain_taps()) == 16
        assert len(default_frequency_domain_taps()) == 9

    def test_system_is_band_pass(self, rng):
        """Low frequencies and Nyquist must both be attenuated."""
        system = FrequencyDomainFilter(fractional_bits=16)
        n = np.arange(4000)
        dc_like = 0.5 * np.ones(4000)
        nyquist_like = 0.5 * np.cos(np.pi * n)
        mid = 0.5 * np.cos(np.pi * 0.4 * n)
        gain_dc = np.std(system.run_reference(dc_like)[200:])
        gain_nyq = np.std(system.run_reference(nyquist_like)[200:])
        gain_mid = np.std(system.run_reference(mid)[200:])
        assert gain_mid > 5 * gain_dc
        assert gain_mid > 5 * gain_nyq

    def test_compare_produces_sub_one_bit_psd_estimate(self):
        system = FrequencyDomainFilter(fractional_bits=12, n_psd=256)
        x = uniform_white_noise(30_000, seed=11)
        comparison = system.compare(x, methods=("psd", "agnostic"))
        assert comparison.reports["psd"].sub_one_bit
        assert abs(comparison.reports["psd"].ed) < 0.25

    def test_psd_method_beats_agnostic(self):
        """Table II direction: the PSD estimate is closer to simulation."""
        system = FrequencyDomainFilter(fractional_bits=12, n_psd=512)
        x = uniform_white_noise(40_000, seed=5)
        comparison = system.compare(x, methods=("psd", "agnostic"))
        assert abs(comparison.reports["psd"].ed) < abs(
            comparison.reports["agnostic"].ed)

    def test_run_helpers_shapes(self, rng):
        system = FrequencyDomainFilter(fractional_bits=10)
        x = rng.uniform(-0.9, 0.9, 500)
        assert len(system.run_reference(x)) == 500
        assert len(system.run_fixed_point(x)) == 500
