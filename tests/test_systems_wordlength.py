"""Unit tests for the word-length optimization use-case."""

import pytest

import repro.systems.wordlength as wordlength_module
from repro.analysis.psd_method import evaluate_psd
from repro.lti.fir_design import design_fir_highpass, design_fir_lowpass
from repro.sfg.builder import SfgBuilder
from repro.systems.filter_bank import build_filter_graph, generate_fir_bank, generate_iir_bank
from repro.systems.wordlength import WordLengthOptimizer


def _two_stage_graph(bits=12):
    builder = SfgBuilder("wl")
    x = builder.input("x", fractional_bits=bits)
    lp = builder.fir("lp", design_fir_lowpass(15, 0.4), x, fractional_bits=bits)
    hp = builder.fir("hp", design_fir_highpass(15, 0.5), lp, fractional_bits=bits)
    builder.output("y", hp)
    return builder.build()


class TestUniformSearch:
    def test_uniform_search_meets_budget(self):
        graph = _two_stage_graph()
        optimizer = WordLengthOptimizer(graph, method="psd", n_psd=128,
                                        min_bits=4, max_bits=20)
        budget = 1e-7
        assignment = optimizer.uniform_search(budget)
        assert len(set(assignment.values())) == 1
        assert evaluate_psd(graph, 128).total_power <= budget

    def test_tighter_budget_needs_more_bits(self):
        graph = _two_stage_graph()
        optimizer = WordLengthOptimizer(graph, n_psd=128, min_bits=4,
                                        max_bits=22)
        loose = optimizer.uniform_search(1e-5)
        tight = optimizer.uniform_search(1e-9)
        assert list(tight.values())[0] > list(loose.values())[0]

    def test_impossible_budget_rejected(self):
        optimizer = WordLengthOptimizer(_two_stage_graph(), n_psd=64,
                                        min_bits=4, max_bits=8)
        with pytest.raises(ValueError):
            optimizer.uniform_search(1e-12)

    def test_non_positive_budget_rejected(self):
        optimizer = WordLengthOptimizer(_two_stage_graph(), n_psd=64)
        with pytest.raises(ValueError):
            optimizer.uniform_search(0.0)

    @pytest.mark.parametrize("budget",
                             [float("nan"), float("inf"), float("-inf")])
    def test_non_finite_budget_rejected(self, budget):
        # Regression: NaN slipped through the `budget <= 0` guard (every
        # comparison with NaN is False), so the binary search "converged"
        # on nonsense instead of failing fast.  Infinities are equally
        # meaningless as noise budgets.
        optimizer = WordLengthOptimizer(_two_stage_graph(), n_psd=64)
        with pytest.raises(ValueError, match="finite"):
            optimizer.uniform_search(budget)
        with pytest.raises(ValueError, match="finite"):
            optimizer.optimize(budget)


class TestGreedyOptimization:
    def test_result_meets_budget_and_beats_uniform(self):
        graph = _two_stage_graph()
        optimizer = WordLengthOptimizer(graph, method="psd", n_psd=128,
                                        min_bits=4, max_bits=20)
        budget = 1e-7
        uniform = optimizer.uniform_search(budget)
        result = optimizer.optimize(budget)
        assert result.noise_power <= budget
        assert result.total_bits <= sum(uniform.values())
        assert result.evaluations > 0
        assert result.history[0][0] >= result.history[-1][0]

    def test_assignment_applied_to_graph(self):
        graph = _two_stage_graph()
        optimizer = WordLengthOptimizer(graph, n_psd=64, min_bits=4,
                                        max_bits=18)
        result = optimizer.optimize(1e-6)
        for name, bits in result.assignment.items():
            assert graph.node(name).quantization.fractional_bits == bits

    def test_agnostic_and_flat_drivers_also_work(self):
        for method in ("agnostic", "flat"):
            graph = _two_stage_graph()
            optimizer = WordLengthOptimizer(graph, method=method, n_psd=64,
                                            min_bits=4, max_bits=18)
            result = optimizer.optimize(1e-6)
            assert result.noise_power <= 1e-6

    def test_graph_without_quantized_nodes_rejected(self):
        builder = SfgBuilder("plain")
        x = builder.input("x")
        h = builder.fir("h", [1.0], x)
        builder.output("y", h)
        with pytest.raises(ValueError):
            WordLengthOptimizer(builder.build())

    def test_invalid_bit_range_rejected(self):
        with pytest.raises(ValueError):
            WordLengthOptimizer(_two_stage_graph(), min_bits=8, max_bits=4)

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            WordLengthOptimizer(_two_stage_graph(), method="psychic")


class TestBatchedGreedyEquivalence:
    """Batched rounds must be bit-identical to the sequential baseline."""

    @pytest.mark.parametrize("method", ["psd", "flat", "agnostic"])
    def test_identical_on_cascade(self, method):
        budget = 1e-6
        batched = WordLengthOptimizer(_two_stage_graph(), method=method,
                                      n_psd=128, batch=True).optimize(budget)
        sequential = WordLengthOptimizer(_two_stage_graph(), method=method,
                                         n_psd=128,
                                         batch=False).optimize(budget)
        assert batched.assignment == sequential.assignment
        assert batched.noise_power == sequential.noise_power
        assert batched.evaluations == sequential.evaluations
        assert batched.history == sequential.history

    def test_identical_on_table1_filter_bank(self):
        # The Table-I graphs tie coefficient precision to the data path,
        # so the batched rounds exercise per-config frequency responses.
        entries = generate_fir_bank(2) + generate_iir_bank(2)
        for entry in entries:
            budget = 1e-7
            batched = WordLengthOptimizer(
                build_filter_graph(entry, 16), n_psd=128,
                batch=True).optimize(budget)
            sequential = WordLengthOptimizer(
                build_filter_graph(entry, 16), n_psd=128,
                batch=False).optimize(budget)
            assert batched.assignment == sequential.assignment, entry.name
            assert batched.noise_power == sequential.noise_power, entry.name
            assert batched.history == sequential.history, entry.name


class TestIncrementalMode:
    """The default incremental mode: bit-identical, with work accounting."""

    @pytest.mark.parametrize("method", ["psd", "flat", "agnostic"])
    def test_incremental_identical_to_sequential(self, method):
        budget = 1e-6
        incremental = WordLengthOptimizer(
            _two_stage_graph(), method=method, n_psd=128).optimize(budget)
        sequential = WordLengthOptimizer(
            _two_stage_graph(), method=method, n_psd=128,
            mode="sequential").optimize(budget)
        assert incremental.assignment == sequential.assignment
        assert incremental.noise_power == sequential.noise_power
        assert incremental.evaluations == sequential.evaluations
        assert incremental.history == sequential.history

    def test_mode_resolution_and_alias(self):
        assert WordLengthOptimizer(_two_stage_graph()).mode == "incremental"
        assert WordLengthOptimizer(_two_stage_graph(),
                                   batch=True).mode == "batch"
        assert WordLengthOptimizer(_two_stage_graph(),
                                   batch=False).mode == "sequential"
        assert WordLengthOptimizer(_two_stage_graph(), batch=True,
                                   mode="batch").mode == "batch"

    def test_unknown_and_conflicting_modes_rejected(self):
        with pytest.raises(ValueError, match="unknown mode"):
            WordLengthOptimizer(_two_stage_graph(), mode="psychic")
        with pytest.raises(ValueError, match="conflicting"):
            WordLengthOptimizer(_two_stage_graph(), batch=True,
                                mode="sequential")

    def test_work_split_counters(self):
        budget = 1e-6
        incremental = WordLengthOptimizer(_two_stage_graph(),
                                          n_psd=128).optimize(budget)
        sequential = WordLengthOptimizer(_two_stage_graph(), n_psd=128,
                                         mode="sequential").optimize(budget)
        # Incremental: one cold memo build, then dirty-cone deltas.
        assert incremental.cone_recomputes > 0
        assert (incremental.full_walks + incremental.cone_recomputes
                == incremental.evaluations)
        assert incremental.full_walks < incremental.evaluations
        # Sequential: every evaluation is a cold full walk by definition.
        assert sequential.full_walks == sequential.evaluations
        assert sequential.cone_recomputes == 0


class TestEvaluationAccounting:
    """`evaluations` must count distinct candidate evaluations exactly."""

    def _counting_optimizer(self, monkeypatch, batch):
        counter = {"evaluations": 0}
        real_scalar = wordlength_module.evaluate_psd
        real_batch = wordlength_module.evaluate_psd_batch

        def counting_scalar(system, n_psd, *args, **kwargs):
            counter["evaluations"] += 1
            return real_scalar(system, n_psd, *args, **kwargs)

        def counting_batch(system, n_psd, assignments, *args, **kwargs):
            counter["evaluations"] += len(assignments)
            return real_batch(system, n_psd, assignments, *args, **kwargs)

        monkeypatch.setattr(wordlength_module, "evaluate_psd",
                            counting_scalar)
        monkeypatch.setattr(wordlength_module, "evaluate_psd_batch",
                            counting_batch)
        optimizer = WordLengthOptimizer(_two_stage_graph(), method="psd",
                                        n_psd=128, batch=batch)
        return optimizer, counter

    @pytest.mark.parametrize("batch", [True, False])
    def test_reported_count_matches_actual_calls(self, monkeypatch, batch):
        optimizer, counter = self._counting_optimizer(monkeypatch, batch)
        result = optimizer.optimize(1e-7)
        assert result.evaluations == counter["evaluations"]

    @pytest.mark.parametrize("batch", [True, False])
    def test_no_reevaluation_of_known_powers(self, monkeypatch, batch):
        # history[0] comes from the binary search and the final power from
        # the accepting round: the count is exactly the uniform-search
        # evaluations plus one per greedy candidate, nothing on top.
        optimizer, counter = self._counting_optimizer(monkeypatch, batch)
        result = optimizer.optimize(1e-7)
        # Every accepted move comes from one full candidate round, plus one
        # final round that accepted nothing; on this graph no node reaches
        # min_bits, so every round proposes one candidate per tunable node.
        assert all(bits > optimizer.min_bits
                   for bits in result.assignment.values())
        greedy_evaluations = len(result.history) * len(optimizer._tunable)
        uniform_evaluations = result.evaluations - greedy_evaluations
        # Binary search over [4, 20] costs 1 (feasibility at max_bits)
        # plus at most ceil(log2(width)) probes — and crucially not the
        # extra history[0] / final_power evaluations the seed version paid.
        assert 1 <= uniform_evaluations <= 6
        assert result.evaluations == counter["evaluations"]
