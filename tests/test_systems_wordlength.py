"""Unit tests for the word-length optimization use-case."""

import pytest

from repro.analysis.psd_method import evaluate_psd
from repro.lti.fir_design import design_fir_highpass, design_fir_lowpass
from repro.sfg.builder import SfgBuilder
from repro.systems.wordlength import WordLengthOptimizer


def _two_stage_graph(bits=12):
    builder = SfgBuilder("wl")
    x = builder.input("x", fractional_bits=bits)
    lp = builder.fir("lp", design_fir_lowpass(15, 0.4), x, fractional_bits=bits)
    hp = builder.fir("hp", design_fir_highpass(15, 0.5), lp, fractional_bits=bits)
    builder.output("y", hp)
    return builder.build()


class TestUniformSearch:
    def test_uniform_search_meets_budget(self):
        graph = _two_stage_graph()
        optimizer = WordLengthOptimizer(graph, method="psd", n_psd=128,
                                        min_bits=4, max_bits=20)
        budget = 1e-7
        assignment = optimizer.uniform_search(budget)
        assert len(set(assignment.values())) == 1
        assert evaluate_psd(graph, 128).total_power <= budget

    def test_tighter_budget_needs_more_bits(self):
        graph = _two_stage_graph()
        optimizer = WordLengthOptimizer(graph, n_psd=128, min_bits=4,
                                        max_bits=22)
        loose = optimizer.uniform_search(1e-5)
        tight = optimizer.uniform_search(1e-9)
        assert list(tight.values())[0] > list(loose.values())[0]

    def test_impossible_budget_rejected(self):
        optimizer = WordLengthOptimizer(_two_stage_graph(), n_psd=64,
                                        min_bits=4, max_bits=8)
        with pytest.raises(ValueError):
            optimizer.uniform_search(1e-12)

    def test_non_positive_budget_rejected(self):
        optimizer = WordLengthOptimizer(_two_stage_graph(), n_psd=64)
        with pytest.raises(ValueError):
            optimizer.uniform_search(0.0)


class TestGreedyOptimization:
    def test_result_meets_budget_and_beats_uniform(self):
        graph = _two_stage_graph()
        optimizer = WordLengthOptimizer(graph, method="psd", n_psd=128,
                                        min_bits=4, max_bits=20)
        budget = 1e-7
        uniform = optimizer.uniform_search(budget)
        result = optimizer.optimize(budget)
        assert result.noise_power <= budget
        assert result.total_bits <= sum(uniform.values())
        assert result.evaluations > 0
        assert result.history[0][0] >= result.history[-1][0]

    def test_assignment_applied_to_graph(self):
        graph = _two_stage_graph()
        optimizer = WordLengthOptimizer(graph, n_psd=64, min_bits=4,
                                        max_bits=18)
        result = optimizer.optimize(1e-6)
        for name, bits in result.assignment.items():
            assert graph.node(name).quantization.fractional_bits == bits

    def test_agnostic_and_flat_drivers_also_work(self):
        for method in ("agnostic", "flat"):
            graph = _two_stage_graph()
            optimizer = WordLengthOptimizer(graph, method=method, n_psd=64,
                                            min_bits=4, max_bits=18)
            result = optimizer.optimize(1e-6)
            assert result.noise_power <= 1e-6

    def test_graph_without_quantized_nodes_rejected(self):
        builder = SfgBuilder("plain")
        x = builder.input("x")
        h = builder.fir("h", [1.0], x)
        builder.output("y", h)
        with pytest.raises(ValueError):
            WordLengthOptimizer(builder.build())

    def test_invalid_bit_range_rejected(self):
        with pytest.raises(ValueError):
            WordLengthOptimizer(_two_stage_graph(), min_bits=8, max_bits=4)
