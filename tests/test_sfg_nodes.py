"""Unit tests for the SFG node vocabulary."""

import numpy as np
import pytest

from repro.fixedpoint.noise_model import NoiseStats
from repro.fixedpoint.quantizer import RoundingMode
from repro.psd.spectrum import DiscretePsd
from repro.sfg.nodes import (
    AddNode,
    DelayNode,
    DownsampleNode,
    FirNode,
    GainNode,
    IirNode,
    InputNode,
    LtiNode,
    OutputNode,
    QuantizationSpec,
    UpsampleNode,
)
from repro.lti.transfer_function import TransferFunction


class TestQuantizationSpec:
    def test_disabled_spec(self):
        spec = QuantizationSpec(None)
        assert not spec.enabled
        assert spec.noise_stats().power == 0.0
        with pytest.raises(ValueError):
            spec.quantizer()

    def test_enabled_spec_noise_model(self):
        spec = QuantizationSpec(8, rounding=RoundingMode.ROUND)
        stats = spec.noise_stats()
        assert stats.variance == pytest.approx((2.0 ** -8) ** 2 / 12)
        assert stats.mean == 0.0

    def test_coefficient_bits_default_to_data_bits(self):
        assert QuantizationSpec(10).coeff_bits == 10
        assert QuantizationSpec(10, coefficient_fractional_bits=14).coeff_bits == 14

    def test_with_fractional_bits(self):
        spec = QuantizationSpec(10, rounding=RoundingMode.TRUNCATE)
        changed = spec.with_fractional_bits(6)
        assert changed.fractional_bits == 6
        assert changed.rounding is RoundingMode.TRUNCATE


class TestSimulationBehaviour:
    def test_add_node_sums_with_signs(self):
        node = AddNode("sum", num_inputs=2, signs=[1.0, -1.0])
        out = node.simulate([np.array([1.0, 2.0]), np.array([0.5, 0.5])])
        np.testing.assert_allclose(out, [0.5, 1.5])

    def test_add_node_sign_count_checked(self):
        with pytest.raises(ValueError):
            AddNode("sum", num_inputs=2, signs=[1.0])

    def test_gain_node_uses_quantized_coefficient(self):
        node = GainNode("g", 0.3, QuantizationSpec(2))
        out = node.simulate([np.array([1.0])])
        assert out[0] == pytest.approx(0.25)

    def test_delay_node_shifts(self):
        node = DelayNode("d", 2)
        out = node.simulate([np.arange(5, dtype=float)])
        np.testing.assert_allclose(out, [0, 0, 0, 1, 2])

    def test_delay_zero_is_identity(self):
        node = DelayNode("d", 0)
        np.testing.assert_allclose(node.simulate([np.arange(3, dtype=float)]),
                                   [0, 1, 2])

    def test_fir_node_simulate_fixed_on_grid(self, rng):
        node = FirNode("h", [0.3, 0.3, 0.3], QuantizationSpec(8))
        out = node.simulate_fixed([rng.uniform(-1, 1, 100)])
        scaled = out * 2 ** 8
        np.testing.assert_allclose(scaled, np.round(scaled), atol=1e-9)

    def test_iir_node_simulate_fixed_on_grid(self, rng):
        node = IirNode("h", [0.2, 0.2], [1.0, -0.5], QuantizationSpec(8))
        out = node.simulate_fixed([rng.uniform(-1, 1, 100)])
        scaled = out * 2 ** 8
        np.testing.assert_allclose(scaled, np.round(scaled), atol=1e-9)

    def test_downsample_and_upsample_nodes(self):
        down = DownsampleNode("d", 2)
        up = UpsampleNode("u", 2)
        x = np.arange(8, dtype=float)
        np.testing.assert_allclose(down.simulate([x]), [0, 2, 4, 6])
        np.testing.assert_allclose(up.simulate([np.array([1.0, 2.0])]),
                                   [1, 0, 2, 0])

    def test_lti_node_filters(self, rng):
        tf = TransferFunction([1.0], [1.0, -0.5])
        node = LtiNode("l", tf)
        x = rng.standard_normal(50)
        np.testing.assert_allclose(node.simulate([x]), tf.filter(x))

    def test_output_node_passthrough(self):
        node = OutputNode("y")
        np.testing.assert_allclose(node.simulate([np.array([1.0, 2.0])]),
                                   [1.0, 2.0])

    def test_input_node_cannot_simulate(self):
        with pytest.raises(RuntimeError):
            InputNode("x").simulate([])


class TestPropagationRules:
    def test_fir_stats_propagation_uses_energy_and_dc_gain(self):
        node = FirNode("h", [0.5, 0.5])
        stats = node.propagate_stats([NoiseStats(mean=0.2, variance=1.0)])
        assert stats.variance == pytest.approx(0.5)
        assert stats.mean == pytest.approx(0.2)

    def test_fir_psd_propagation_shapes_spectrum(self):
        node = FirNode("h", [0.5, 0.5])
        psd = node.propagate_psd([DiscretePsd.from_moments(0.0, 1.0, 64)], 64)
        # |H|^2 at DC is 1, at Nyquist is 0.
        assert psd.ac[0] == pytest.approx(1.0 / 64)
        assert psd.ac[32] == pytest.approx(0.0, abs=1e-12)

    def test_add_node_psd_propagation(self):
        node = AddNode("sum", num_inputs=2, signs=[1.0, -1.0])
        a = DiscretePsd.from_moments(0.2, 1.0, 32)
        b = DiscretePsd.from_moments(0.2, 2.0, 32)
        combined = node.propagate_psd([a, b], 32)
        assert combined.variance == pytest.approx(3.0)
        assert combined.mean == pytest.approx(0.0, abs=1e-15)

    def test_downsample_psd_propagation_halves_bins(self):
        node = DownsampleNode("d", 2)
        psd = node.propagate_psd([DiscretePsd.from_moments(0.0, 1.0, 64)], 64)
        assert psd.n_bins == 32
        assert psd.variance == pytest.approx(1.0)

    def test_upsample_stats_propagation(self):
        node = UpsampleNode("u", 2)
        stats = node.propagate_stats([NoiseStats(mean=0.4, variance=1.0)])
        assert stats.variance == pytest.approx(0.5)
        assert stats.mean == pytest.approx(0.2)

    def test_multirate_tracked_propagation_not_supported(self):
        node = DownsampleNode("d", 2)
        with pytest.raises(NotImplementedError):
            node.propagate_tracked([], 16)

    def test_iir_noise_shaping_function(self):
        node = IirNode("h", [1.0], [1.0, -0.5], QuantizationSpec(8))
        shaping = node.noise_shaping_function()
        assert shaping.dc_gain() == pytest.approx(2.0)

    def test_generated_noise_follows_spec(self):
        node = FirNode("h", [1.0], QuantizationSpec(6, RoundingMode.TRUNCATE))
        stats = node.generated_noise()
        assert stats.mean == pytest.approx(-(2.0 ** -6) / 2)

    def test_input_node_zero_propagation(self):
        node = InputNode("x", QuantizationSpec(8))
        assert node.propagate_stats([]).power == 0.0
        assert node.propagate_psd([], 16).total_power == 0.0
