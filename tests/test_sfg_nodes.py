"""Unit tests for the SFG node vocabulary."""

import numpy as np
import pytest

from repro.fixedpoint.noise_model import NoiseStats
from repro.fixedpoint.quantizer import RoundingMode
from repro.psd.spectrum import DiscretePsd
from repro.sfg.nodes import (
    AddNode,
    DelayNode,
    DownsampleNode,
    FirNode,
    GainNode,
    IirNode,
    InputNode,
    LtiNode,
    OutputNode,
    QuantizationSpec,
    UpsampleNode,
)
from repro.lti.transfer_function import TransferFunction


class TestQuantizationSpec:
    def test_disabled_spec(self):
        spec = QuantizationSpec(None)
        assert not spec.enabled
        assert spec.noise_stats().power == 0.0
        with pytest.raises(ValueError):
            spec.quantizer()

    def test_enabled_spec_noise_model(self):
        spec = QuantizationSpec(8, rounding=RoundingMode.ROUND)
        stats = spec.noise_stats()
        assert stats.variance == pytest.approx((2.0 ** -8) ** 2 / 12)
        assert stats.mean == 0.0

    def test_coefficient_bits_default_to_data_bits(self):
        assert QuantizationSpec(10).coeff_bits == 10
        assert QuantizationSpec(10, coefficient_fractional_bits=14).coeff_bits == 14

    def test_with_fractional_bits(self):
        spec = QuantizationSpec(10, rounding=RoundingMode.TRUNCATE)
        changed = spec.with_fractional_bits(6)
        assert changed.fractional_bits == 6
        assert changed.rounding is RoundingMode.TRUNCATE

    def test_with_fractional_bits_preserves_every_field(self):
        """Completeness: a new spec field must survive the copy.

        ``with_fractional_bits`` historically rebuilt the spec field by
        field, so adding a field silently dropped it in every optimizer
        requantize.  Populate each field with a non-default value and
        require the copy to carry all of them.
        """
        import dataclasses

        non_defaults = {
            "fractional_bits": 10,
            "rounding": RoundingMode.TRUNCATE,
            "coefficient_fractional_bits": 13,
            "input_fractional_bits": 9,
            "edge_fractional_bits": {"consumer": 7},
            "integer_bits": 3,
        }
        missing = [f.name for f in dataclasses.fields(QuantizationSpec)
                   if f.name not in non_defaults]
        assert not missing, \
            f"extend this test's non_defaults for new field(s) {missing}"
        spec = QuantizationSpec(**non_defaults)
        changed = spec.with_fractional_bits(6)
        for field in dataclasses.fields(QuantizationSpec):
            if field.name == "fractional_bits":
                assert changed.fractional_bits == 6
            else:
                assert getattr(changed, field.name) \
                    == getattr(spec, field.name), \
                    f"with_fractional_bits dropped {field.name}"

    def test_edge_fractional_bits_normalized_and_queried(self):
        spec = QuantizationSpec(10, edge_fractional_bits={"b": 8, "a": 6})
        assert spec.edge_fractional_bits == (("a", 6), ("b", 8))
        assert spec.edge_bits_for("a") == 6
        assert spec.edge_bits_for("missing") is None
        removed = spec.with_edge_fractional_bits("a", None)
        assert removed.edge_fractional_bits == (("b", 8),)
        widened = spec.with_edge_fractional_bits("c", 12)
        assert widened.edge_bits_for("c") == 12

    def test_duplicate_edge_target_rejected(self):
        with pytest.raises(ValueError, match="duplicate target"):
            QuantizationSpec(10, edge_fractional_bits=(("a", 6), ("a", 8)))

    def test_integer_bits_override_quantizer_format(self):
        default = QuantizationSpec(10)
        pinned = QuantizationSpec(10, integer_bits=3)
        assert default.quantizer().fmt.integer_bits == 15
        assert pinned.quantizer().fmt.integer_bits == 3
        assert pinned.with_integer_bits(None).quantizer().fmt.integer_bits \
            == 15

    def test_edge_quantizer_and_noise_stats(self):
        spec = QuantizationSpec(10, rounding=RoundingMode.TRUNCATE,
                                edge_fractional_bits={"b": 8})
        assert spec.edge_quantizer(8).fmt.fractional_bits == 8
        noisy = spec.edge_noise_stats(8)
        assert noisy.variance > 0.0
        # A tap at (or above) the source width is a numerical no-op.
        assert spec.edge_noise_stats(10).power == 0.0
        assert spec.edge_noise_stats(12).power == 0.0


class TestSimulationBehaviour:
    def test_add_node_sums_with_signs(self):
        node = AddNode("sum", num_inputs=2, signs=[1.0, -1.0])
        out = node.simulate([np.array([1.0, 2.0]), np.array([0.5, 0.5])])
        np.testing.assert_allclose(out, [0.5, 1.5])

    def test_add_node_sign_count_checked(self):
        with pytest.raises(ValueError):
            AddNode("sum", num_inputs=2, signs=[1.0])

    def test_gain_node_uses_quantized_coefficient(self):
        node = GainNode("g", 0.3, QuantizationSpec(2))
        out = node.simulate([np.array([1.0])])
        assert out[0] == pytest.approx(0.25)

    def test_delay_node_shifts(self):
        node = DelayNode("d", 2)
        out = node.simulate([np.arange(5, dtype=float)])
        np.testing.assert_allclose(out, [0, 0, 0, 1, 2])

    def test_delay_zero_is_identity(self):
        node = DelayNode("d", 0)
        np.testing.assert_allclose(node.simulate([np.arange(3, dtype=float)]),
                                   [0, 1, 2])

    def test_fir_node_simulate_fixed_on_grid(self, rng):
        node = FirNode("h", [0.3, 0.3, 0.3], QuantizationSpec(8))
        out = node.simulate_fixed([rng.uniform(-1, 1, 100)])
        scaled = out * 2 ** 8
        np.testing.assert_allclose(scaled, np.round(scaled), atol=1e-9)

    def test_iir_node_simulate_fixed_on_grid(self, rng):
        node = IirNode("h", [0.2, 0.2], [1.0, -0.5], QuantizationSpec(8))
        out = node.simulate_fixed([rng.uniform(-1, 1, 100)])
        scaled = out * 2 ** 8
        np.testing.assert_allclose(scaled, np.round(scaled), atol=1e-9)

    def test_downsample_and_upsample_nodes(self):
        down = DownsampleNode("d", 2)
        up = UpsampleNode("u", 2)
        x = np.arange(8, dtype=float)
        np.testing.assert_allclose(down.simulate([x]), [0, 2, 4, 6])
        np.testing.assert_allclose(up.simulate([np.array([1.0, 2.0])]),
                                   [1, 0, 2, 0])

    def test_lti_node_filters(self, rng):
        tf = TransferFunction([1.0], [1.0, -0.5])
        node = LtiNode("l", tf)
        x = rng.standard_normal(50)
        np.testing.assert_allclose(node.simulate([x]), tf.filter(x))

    def test_output_node_passthrough(self):
        node = OutputNode("y")
        np.testing.assert_allclose(node.simulate([np.array([1.0, 2.0])]),
                                   [1.0, 2.0])

    def test_input_node_cannot_simulate(self):
        with pytest.raises(RuntimeError):
            InputNode("x").simulate([])


class TestPropagationRules:
    def test_fir_stats_propagation_uses_energy_and_dc_gain(self):
        node = FirNode("h", [0.5, 0.5])
        stats = node.propagate_stats([NoiseStats(mean=0.2, variance=1.0)])
        assert stats.variance == pytest.approx(0.5)
        assert stats.mean == pytest.approx(0.2)

    def test_fir_psd_propagation_shapes_spectrum(self):
        node = FirNode("h", [0.5, 0.5])
        psd = node.propagate_psd([DiscretePsd.from_moments(0.0, 1.0, 64)], 64)
        # |H|^2 at DC is 1, at Nyquist is 0.
        assert psd.ac[0] == pytest.approx(1.0 / 64)
        assert psd.ac[32] == pytest.approx(0.0, abs=1e-12)

    def test_add_node_psd_propagation(self):
        node = AddNode("sum", num_inputs=2, signs=[1.0, -1.0])
        a = DiscretePsd.from_moments(0.2, 1.0, 32)
        b = DiscretePsd.from_moments(0.2, 2.0, 32)
        combined = node.propagate_psd([a, b], 32)
        assert combined.variance == pytest.approx(3.0)
        assert combined.mean == pytest.approx(0.0, abs=1e-15)

    def test_downsample_psd_propagation_halves_bins(self):
        node = DownsampleNode("d", 2)
        psd = node.propagate_psd([DiscretePsd.from_moments(0.0, 1.0, 64)], 64)
        assert psd.n_bins == 32
        assert psd.variance == pytest.approx(1.0)

    def test_upsample_stats_propagation(self):
        node = UpsampleNode("u", 2)
        stats = node.propagate_stats([NoiseStats(mean=0.4, variance=1.0)])
        assert stats.variance == pytest.approx(0.5)
        assert stats.mean == pytest.approx(0.2)

    def test_multirate_tracked_propagation_not_supported(self):
        node = DownsampleNode("d", 2)
        with pytest.raises(NotImplementedError):
            node.propagate_tracked([], 16)

    def test_iir_noise_shaping_function(self):
        node = IirNode("h", [1.0], [1.0, -0.5], QuantizationSpec(8))
        shaping = node.noise_shaping_function()
        assert shaping.dc_gain() == pytest.approx(2.0)

    def test_generated_noise_follows_spec(self):
        node = FirNode("h", [1.0], QuantizationSpec(6, RoundingMode.TRUNCATE))
        stats = node.generated_noise()
        assert stats.mean == pytest.approx(-(2.0 ** -6) / 2)

    def test_input_node_zero_propagation(self):
        node = InputNode("x", QuantizationSpec(8))
        assert node.propagate_stats([]).power == 0.0
        assert node.propagate_psd([], 16).total_power == 0.0
