"""Unit tests for the synthetic signal generators."""

import numpy as np
import pytest

from repro.data.signals import (
    SignalGenerator,
    ar1_process,
    chirp,
    colored_noise,
    multitone,
    uniform_white_noise,
)
from repro.psd.estimation import welch


class TestGenerators:
    def test_white_noise_bounds_and_length(self):
        x = uniform_white_noise(1000, amplitude=0.5, seed=0)
        assert len(x) == 1000
        assert np.max(np.abs(x)) <= 0.5

    def test_white_noise_reproducible(self):
        np.testing.assert_array_equal(uniform_white_noise(100, seed=3),
                                      uniform_white_noise(100, seed=3))

    def test_white_noise_different_seeds_differ(self):
        assert not np.array_equal(uniform_white_noise(100, seed=1),
                                  uniform_white_noise(100, seed=2))

    def test_colored_noise_is_lowpass(self):
        x = colored_noise(100_000, exponent=2.0, seed=0)
        psd = welch(x, 64)
        low = np.sum(psd.ac[:4]) + np.sum(psd.ac[-4:])
        assert low > 0.5 * psd.variance

    def test_white_exponent_zero_is_flat(self):
        x = colored_noise(100_000, exponent=0.0, seed=1)
        psd = welch(x, 32)
        assert np.max(psd.ac) < 3.0 * np.min(psd.ac[1:])

    def test_multitone_peaks_at_requested_frequencies(self):
        x = multitone(60_000, [0.25], amplitude=1.0, seed=0)
        psd = welch(x, 64)
        # 0.25 of Nyquist -> bin 8 of 64 (full circle).
        assert np.argmax(psd.ac[:32]) == 8

    def test_chirp_bounded(self):
        x = chirp(10_000, amplitude=0.7)
        assert np.max(np.abs(x)) <= 0.7 + 1e-12

    def test_ar1_is_correlated(self):
        x = ar1_process(50_000, pole=0.95, seed=0)
        lag1 = np.corrcoef(x[:-1], x[1:])[0, 1]
        assert lag1 > 0.9

    def test_ar1_pole_validation(self):
        with pytest.raises(ValueError):
            ar1_process(100, pole=1.5)

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            uniform_white_noise(0)
        with pytest.raises(ValueError):
            uniform_white_noise(10, amplitude=0.0)


class TestSignalGenerator:
    def test_all_kinds_produce_requested_length(self):
        generator = SignalGenerator(seed=5)
        for kind in SignalGenerator.KINDS:
            assert len(generator.generate(kind, 500)) == 500

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            SignalGenerator().generate("square", 100)

    def test_successive_calls_differ(self):
        generator = SignalGenerator(seed=5)
        a = generator.generate("white", 100)
        b = generator.generate("white", 100)
        assert not np.array_equal(a, b)

    def test_amplitude_respected(self):
        generator = SignalGenerator(seed=1)
        for kind in SignalGenerator.KINDS:
            x = generator.generate(kind, 2000, amplitude=0.25)
            assert np.max(np.abs(x)) <= 0.25 + 1e-9
