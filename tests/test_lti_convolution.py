"""Unit tests for direct, overlap-save and overlap-add convolution."""

import numpy as np
import pytest

from repro.lti.convolution import convolve, overlap_add, overlap_save


class TestDirectConvolution:
    def test_full_mode_length(self, rng):
        x = rng.standard_normal(50)
        h = rng.standard_normal(8)
        assert len(convolve(x, h)) == 57

    def test_same_mode_matches_numpy(self, rng):
        x = rng.standard_normal(50)
        h = rng.standard_normal(8)
        np.testing.assert_allclose(convolve(x, h, "same"),
                                   np.convolve(x, h)[:50])

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            convolve(np.ones(4), np.ones(2), "valid-ish")


class TestOverlapSave:
    @pytest.mark.parametrize("fft_size", [16, 32, 64])
    def test_matches_direct_convolution(self, rng, fft_size):
        x = rng.standard_normal(500)
        h = rng.standard_normal(9)
        expected = np.convolve(x, h)[:500]
        np.testing.assert_allclose(overlap_save(x, h, fft_size), expected,
                                   atol=1e-10)

    def test_filter_longer_than_fft_rejected(self):
        with pytest.raises(ValueError):
            overlap_save(np.ones(100), np.ones(20), 16)

    def test_custom_kernels_are_used(self, rng):
        calls = {"fft": 0, "ifft": 0}

        def counting_fft(x):
            calls["fft"] += 1
            return np.fft.fft(x)

        def counting_ifft(x):
            calls["ifft"] += 1
            return np.fft.ifft(x)

        x = rng.standard_normal(64)
        h = rng.standard_normal(5)
        result = overlap_save(x, h, 16, fft=counting_fft, ifft=counting_ifft)
        np.testing.assert_allclose(result, np.convolve(x, h)[:64], atol=1e-10)
        assert calls["fft"] > 1
        assert calls["ifft"] >= 1

    def test_short_input(self, rng):
        x = rng.standard_normal(5)
        h = rng.standard_normal(3)
        np.testing.assert_allclose(overlap_save(x, h, 8),
                                   np.convolve(x, h)[:5], atol=1e-12)


class TestOverlapAdd:
    @pytest.mark.parametrize("fft_size", [16, 64])
    def test_matches_direct_convolution(self, rng, fft_size):
        x = rng.standard_normal(300)
        h = rng.standard_normal(7)
        expected = np.convolve(x, h)[:300]
        np.testing.assert_allclose(overlap_add(x, h, fft_size), expected,
                                   atol=1e-10)

    def test_agrees_with_overlap_save(self, rng):
        x = rng.standard_normal(200)
        h = rng.standard_normal(6)
        np.testing.assert_allclose(overlap_add(x, h, 32),
                                   overlap_save(x, h, 32), atol=1e-10)

    def test_filter_longer_than_fft_rejected(self):
        with pytest.raises(ValueError):
            overlap_add(np.ones(100), np.ones(40), 32)
