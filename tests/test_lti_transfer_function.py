"""Unit tests for :class:`repro.lti.transfer_function.TransferFunction`."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.lti.transfer_function import TransferFunction


class TestConstruction:
    def test_denominator_normalized(self):
        tf = TransferFunction([2.0, 4.0], [2.0, 1.0])
        np.testing.assert_allclose(tf.b, [1.0, 2.0])
        np.testing.assert_allclose(tf.a, [1.0, 0.5])

    def test_zero_leading_denominator_rejected(self):
        with pytest.raises(ValueError):
            TransferFunction([1.0], [0.0, 1.0])

    def test_identity_and_gain(self):
        assert TransferFunction.identity().dc_gain() == 1.0
        assert TransferFunction.gain(3.0).dc_gain() == 3.0

    def test_delay(self):
        tf = TransferFunction.delay(3)
        np.testing.assert_array_equal(tf.impulse_response(5), [0, 0, 0, 1, 0])

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            TransferFunction.delay(-1)


class TestResponses:
    def test_fir_impulse_response_is_taps(self):
        taps = [1.0, -0.5, 0.25]
        np.testing.assert_array_equal(
            TransferFunction.fir(taps).impulse_response(), taps)

    def test_iir_impulse_response_geometric(self):
        tf = TransferFunction([1.0], [1.0, -0.5])
        h = tf.impulse_response(6)
        np.testing.assert_allclose(h, 0.5 ** np.arange(6))

    def test_adaptive_impulse_length_captures_energy(self):
        tf = TransferFunction([1.0], [1.0, -0.9])
        energy = tf.energy()
        assert energy == pytest.approx(1.0 / (1.0 - 0.81), rel=1e-6)

    def test_frequency_response_dc_equals_coefficient_sum(self):
        tf = TransferFunction.fir([0.25, 0.5, 0.25])
        response = tf.frequency_response(64)
        assert response[0] == pytest.approx(1.0)

    def test_magnitude_response_parseval(self):
        taps = np.array([0.3, -0.2, 0.5, 0.1])
        tf = TransferFunction.fir(taps)
        mean_mag2 = np.mean(tf.magnitude_response(256))
        assert mean_mag2 == pytest.approx(np.sum(taps ** 2), rel=1e-9)

    def test_filter_matches_convolution_for_fir(self, rng):
        taps = rng.standard_normal(8)
        x = rng.standard_normal(100)
        expected = np.convolve(x, taps)[:100]
        np.testing.assert_allclose(TransferFunction.fir(taps).filter(x), expected)

    def test_filter_matches_scipy_for_iir(self, rng):
        from scipy.signal import lfilter
        b, a = [1.0, 0.3], [1.0, -0.6, 0.08]
        x = rng.standard_normal(64)
        np.testing.assert_allclose(TransferFunction(b, a).filter(x),
                                   lfilter(b, a, x))


class TestStability:
    def test_fir_always_stable(self):
        assert TransferFunction.fir([1.0, 2.0, 3.0]).is_stable()

    def test_stable_pole(self):
        assert TransferFunction([1.0], [1.0, -0.9]).is_stable()

    def test_unstable_pole(self):
        assert not TransferFunction([1.0], [1.0, -1.1]).is_stable()

    def test_poles_and_zeros(self):
        tf = TransferFunction([1.0, -0.25], [1.0, -0.5])
        np.testing.assert_allclose(tf.zeros(), [0.25])
        np.testing.assert_allclose(tf.poles(), [0.5])


class TestComposition:
    def test_cascade_multiplies_responses(self):
        a = TransferFunction.fir([1.0, 1.0])
        b = TransferFunction.fir([1.0, -1.0])
        cascade = a.cascade(b)
        np.testing.assert_allclose(cascade.b, [1.0, 0.0, -1.0])

    def test_mul_operator(self):
        a = TransferFunction.fir([0.5, 0.5])
        assert (a * 2.0).dc_gain() == pytest.approx(2.0)
        assert (a * a).order == 2

    def test_parallel_adds_responses(self):
        a = TransferFunction.fir([1.0])
        b = TransferFunction.delay(1)
        parallel = a.parallel(b)
        np.testing.assert_allclose(parallel.impulse_response(3), [1, 1, 0])

    def test_add_operator(self):
        a = TransferFunction.fir([1.0])
        combined = a + a
        assert combined.dc_gain() == pytest.approx(2.0)

    def test_feedback_unity(self):
        # H = 0.5 -> closed loop = 0.5 / 1.5
        tf = TransferFunction.gain(0.5).feedback()
        assert tf.dc_gain() == pytest.approx(1.0 / 3.0)

    def test_cascade_of_iir_keeps_poles(self):
        a = TransferFunction([1.0], [1.0, -0.5])
        b = TransferFunction([1.0], [1.0, -0.25])
        cascade = a.cascade(b)
        np.testing.assert_allclose(sorted(np.abs(cascade.poles())),
                                   [0.25, 0.5])

    @given(st.lists(st.floats(min_value=-1, max_value=1, allow_nan=False),
                    min_size=1, max_size=6),
           st.lists(st.floats(min_value=-1, max_value=1, allow_nan=False),
                    min_size=1, max_size=6))
    def test_parallel_commutes(self, taps_a, taps_b):
        a = TransferFunction.fir(taps_a)
        b = TransferFunction.fir(taps_b)
        left = a.parallel(b).impulse_response(10)
        right = b.parallel(a).impulse_response(10)
        np.testing.assert_allclose(left, right, atol=1e-12)


class TestScalarSummaries:
    def test_energy_of_fir(self):
        taps = np.array([0.5, 0.25, -0.125])
        assert TransferFunction.fir(taps).energy() == pytest.approx(
            float(np.sum(taps ** 2)))

    def test_coefficient_sum_matches_dc_gain(self):
        tf = TransferFunction([1.0, 0.5], [1.0, -0.25])
        assert tf.coefficient_sum() == pytest.approx(tf.dc_gain())
