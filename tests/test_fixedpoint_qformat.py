"""Unit tests for :mod:`repro.fixedpoint.qformat`."""

import pytest
from hypothesis import given, strategies as st

from repro.fixedpoint.qformat import QFormat


class TestBasics:
    def test_step_is_power_of_two(self):
        assert QFormat(2, 5).step == 2.0 ** -5

    def test_total_bits_includes_sign(self):
        assert QFormat(2, 5, signed=True).total_bits == 8
        assert QFormat(2, 5, signed=False).total_bits == 7

    def test_signed_range(self):
        fmt = QFormat(3, 4)
        assert fmt.min_value == -8.0
        assert fmt.max_value == 8.0 - 2.0 ** -4

    def test_unsigned_range_starts_at_zero(self):
        fmt = QFormat(3, 4, signed=False)
        assert fmt.min_value == 0.0
        assert fmt.max_value == 8.0 - 2.0 ** -4

    def test_mantissa_bounds_match_values(self):
        fmt = QFormat(2, 3)
        assert fmt.max_mantissa == 31
        assert fmt.min_mantissa == -32

    def test_negative_fractional_bits_rejected(self):
        with pytest.raises(ValueError):
            QFormat(2, -1)

    def test_empty_format_rejected(self):
        with pytest.raises(ValueError):
            QFormat(-3, 2, signed=True)

    def test_str_mentions_signedness(self):
        assert "s" in str(QFormat(1, 2))
        assert "u" in str(QFormat(1, 2, signed=False))


class TestFromRange:
    def test_covers_symmetric_range(self):
        fmt = QFormat.from_range(-3.0, 3.0, fractional_bits=8)
        assert fmt.signed
        assert fmt.contains(-3.0)
        assert fmt.contains(3.0)

    def test_positive_range_defaults_to_unsigned(self):
        fmt = QFormat.from_range(0.0, 0.9, fractional_bits=8)
        assert not fmt.signed
        assert fmt.contains(0.9)

    def test_empty_range_rejected(self):
        with pytest.raises(ValueError):
            QFormat.from_range(1.0, -1.0, fractional_bits=4)

    @given(st.floats(min_value=-100.0, max_value=100.0, allow_nan=False),
           st.integers(min_value=0, max_value=20))
    def test_value_always_within_derived_format(self, value, frac):
        fmt = QFormat.from_range(min(value, 0.0), max(value, 0.0), frac)
        assert fmt.contains(value)


class TestTransforms:
    def test_with_fractional_bits(self):
        fmt = QFormat(2, 5).with_fractional_bits(9)
        assert fmt.fractional_bits == 9
        assert fmt.integer_bits == 2

    def test_widen(self):
        fmt = QFormat(2, 5).widen(extra_integer_bits=1, extra_fractional_bits=3)
        assert fmt.integer_bits == 3
        assert fmt.fractional_bits == 8

    def test_is_representable(self):
        fmt = QFormat(2, 3)
        assert fmt.is_representable(0.125)
        assert not fmt.is_representable(0.1)
        assert not fmt.is_representable(100.0)

    def test_equality_and_hash(self):
        assert QFormat(1, 2) == QFormat(1, 2)
        assert hash(QFormat(1, 2)) == hash(QFormat(1, 2))
        assert QFormat(1, 2) != QFormat(1, 3)
