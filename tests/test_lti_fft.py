"""Unit tests for the radix-2 FFT kernels (double and fixed-point)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.lti.fft import FixedPointFft, fft_radix2, ifft_radix2


class TestReferenceFft:
    @pytest.mark.parametrize("size", [1, 2, 4, 8, 16, 64, 256])
    def test_matches_numpy(self, rng, size):
        x = rng.standard_normal(size) + 1j * rng.standard_normal(size)
        np.testing.assert_allclose(fft_radix2(x), np.fft.fft(x), atol=1e-10)

    def test_inverse_round_trip(self, rng):
        x = rng.standard_normal(32) + 1j * rng.standard_normal(32)
        np.testing.assert_allclose(ifft_radix2(fft_radix2(x)), x, atol=1e-12)

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            fft_radix2(np.ones(12))

    def test_parseval(self, rng):
        x = rng.standard_normal(64)
        spectrum = fft_radix2(x)
        assert np.sum(np.abs(spectrum) ** 2) / 64 == pytest.approx(
            np.sum(x ** 2))

    @settings(deadline=None, max_examples=25)
    @given(st.integers(min_value=0, max_value=5))
    def test_linearity(self, log_size):
        size = 2 ** log_size
        rng = np.random.default_rng(log_size)
        a = rng.standard_normal(size)
        b = rng.standard_normal(size)
        np.testing.assert_allclose(fft_radix2(a + b),
                                   fft_radix2(a) + fft_radix2(b), atol=1e-10)


class TestFixedPointFft:
    def test_high_precision_approaches_exact(self, rng):
        x = rng.uniform(-0.9, 0.9, 16)
        engine = FixedPointFft(16, fractional_bits=24)
        np.testing.assert_allclose(engine.forward(x), np.fft.fft(x), atol=1e-4)

    def test_inverse_round_trip_error_small(self, rng):
        x = rng.uniform(-0.9, 0.9, 16)
        engine = FixedPointFft(16, fractional_bits=20)
        reconstructed = engine.inverse(engine.forward(x))
        assert np.max(np.abs(reconstructed - x)) < 1e-4

    def test_error_decreases_with_precision(self, rng):
        x = rng.uniform(-0.9, 0.9, 32)
        errors = []
        for bits in (8, 12, 16, 20):
            engine = FixedPointFft(32, fractional_bits=bits)
            errors.append(np.max(np.abs(engine.forward(x) - np.fft.fft(x))))
        assert errors[0] > errors[-1]
        assert all(e1 >= e2 * 0.5 for e1, e2 in zip(errors, errors[1:]))

    def test_outputs_on_quantization_grid(self, rng):
        x = rng.uniform(-0.9, 0.9, 16)
        engine = FixedPointFft(16, fractional_bits=8)
        spectrum = engine.forward(x)
        scaled = spectrum.real * 2 ** 8
        np.testing.assert_allclose(scaled, np.round(scaled), atol=1e-9)

    def test_wrong_block_size_rejected(self):
        engine = FixedPointFft(16, fractional_bits=10)
        with pytest.raises(ValueError):
            engine.forward(np.ones(8))

    def test_non_power_of_two_size_rejected(self):
        with pytest.raises(ValueError):
            FixedPointFft(12, fractional_bits=10)

    def test_num_stages(self):
        assert FixedPointFft(16, 10).num_stages == 4
        assert FixedPointFft(256, 10).num_stages == 8

    def test_roundoff_noise_scales_with_step(self, rng):
        """The measured FFT roundoff noise should scale roughly as q^2."""
        x = rng.uniform(-0.9, 0.9, (50, 16))
        powers = []
        for bits in (10, 14):
            engine = FixedPointFft(16, fractional_bits=bits)
            errors = []
            for row in x:
                errors.append(engine.forward(row) - np.fft.fft(row))
            errors = np.concatenate(errors)
            powers.append(np.mean(np.abs(errors) ** 2))
        ratio = powers[0] / powers[1]
        assert 2 ** 7 < ratio < 2 ** 9
