"""The codegen backend: plan lowering, tape execution and rebinding.

Covers the whole-plan fusion path of :mod:`repro.simkernel.codegen`:

* backend precedence (explicit override > ``REPRO_SIMD_BACKEND`` >
  auto-detected default) with ``codegen`` in the registry;
* graceful degradation when numba is missing — the op tape runs through
  the NumPy tape interpreter and logs one warning (on the
  ``repro.simkernel.codegen`` logger) at lowering time;
* bitwise equality of the codegen backend against the per-node numpy
  walk on every rounding mode, single-trial, batched and ``run_pair``;
* the constants/structure split: requantizing a plan in place rebinds
  only the tape constants (same tape object, same op tuple) and the
  rebound tape is bit-identical to a cold lowering at the new precision;
* unsupported plans (FFT-based frequency-domain FIR) fall back to the
  per-node schedule walk without changing results;
* the packed whole-tape kernel (the numba entry point, exercised here as
  plain Python) against the tape interpreter;
* the ``--backend`` CLI flag on ``fuzz`` and ``bench``.
"""

from __future__ import annotations

import logging

import numpy as np
import pytest

from repro.cli import main
from repro.data.signals import uniform_white_noise
from repro.fixedpoint.quantizer import RoundingMode
from repro.sfg.builder import SfgBuilder
from repro.sfg.plan import compile_plan
from repro.simkernel import (
    available_backends,
    default_backend,
    get_backend,
    numba_available,
    set_backend,
    use_backend,
)
from repro.simkernel.backend import BACKEND_ENV
from repro.simkernel.codegen import UnsupportedPlanError, lower_plan
from repro.simkernel.codegen import _njit, interpreter


def _mixed_graph(bits: int = 10,
                 rounding: str | RoundingMode = RoundingMode.ROUND,
                 name: str = "codegen-mixed"):
    """Every lowerable node type on one path: gain, FIR, IIR, delay,
    adder, decimator and expander."""
    builder = SfgBuilder(name)
    x = builder.input("x", fractional_bits=bits, rounding=rounding)
    g = builder.gain("g", 0.71, x, fractional_bits=bits, rounding=rounding)
    h = builder.fir("h", [0.25, -0.5, 0.125], g,
                    fractional_bits=bits, rounding=rounding)
    v = builder.iir("v", [0.3, 0.2], [1.0, -0.5], h,
                    fractional_bits=bits, rounding=rounding)
    d = builder.delay("d", v, samples=2)
    s = builder.add("s", [d, x], signs=[1.0, -1.0],
                    fractional_bits=bits, rounding=rounding)
    down = builder.downsample("down", s, factor=2, phase=1)
    up = builder.upsample("up", down, factor=3)
    builder.output("y", up)
    return builder.build()


def _stimulus(samples: int = 512, seed: int = 11, trials: int = 0) -> dict:
    if trials:
        return {"x": np.stack([uniform_white_noise(samples, seed=seed + t)
                               for t in range(trials)])}
    return {"x": uniform_white_noise(samples, seed=seed)}


def _run_fixed(plan, stimulus, backend):
    with use_backend(backend):
        return plan.run(stimulus, mode="fixed").output("y")


# ----------------------------------------------------------------------
# Backend precedence and registry
# ----------------------------------------------------------------------
class TestBackendPrecedence:
    def test_codegen_is_always_available(self):
        backends = available_backends()
        assert backends[0] == "reference"
        assert "codegen" in backends
        # codegen is always implemented, independent of numba.
        assert ("numba" in backends) == numba_available()

    def test_explicit_override_beats_environment(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "reference")
        with use_backend("codegen"):
            assert get_backend() == "codegen"
        assert get_backend() == "reference"

    def test_environment_beats_default(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "codegen")
        assert get_backend() == "codegen"
        monkeypatch.delenv(BACKEND_ENV)
        assert get_backend() == default_backend()

    def test_unknown_backend_error_lists_codegen(self):
        with pytest.raises(ValueError, match="codegen"):
            set_backend("fortran")


# ----------------------------------------------------------------------
# Degradation without numba
# ----------------------------------------------------------------------
class TestNumbaMissingDegradation:
    @pytest.mark.skipif(numba_available(),
                        reason="numba installed; the degradation path is "
                               "inactive")
    def test_lowering_warns_once_and_matches_numpy(self, caplog):
        plan = compile_plan(_mixed_graph(name="codegen-warn"))
        stimulus = _stimulus()
        expected = _run_fixed(plan, stimulus, "numpy")
        with use_backend("codegen"):
            with caplog.at_level(logging.WARNING,
                                 logger="repro.simkernel.codegen"):
                first = plan.run(stimulus, mode="fixed").output("y")
            degradations = [record for record in caplog.records
                            if "numba is not installed" in record.message]
            assert len(degradations) == 1
            assert degradations[0].name == "repro.simkernel.codegen"
            # The warning fires at lowering time only — the cached tape
            # must re-execute silently.
            caplog.clear()
            with caplog.at_level(logging.WARNING,
                                 logger="repro.simkernel.codegen"):
                again = plan.run(stimulus, mode="fixed").output("y")
            assert not caplog.records
        assert np.array_equal(first, expected)
        assert np.array_equal(again, expected)


# ----------------------------------------------------------------------
# Bitwise equality against the per-node walk
# ----------------------------------------------------------------------
class TestCodegenEquality:
    @pytest.mark.parametrize("rounding", list(RoundingMode))
    def test_single_trial_all_rounding_modes(self, rounding):
        graph = _mixed_graph(rounding=rounding,
                             name=f"codegen-{rounding.value}")
        plan = compile_plan(graph)
        stimulus = _stimulus()
        expected = _run_fixed(plan, stimulus, "numpy")
        result = _run_fixed(plan, stimulus, "codegen")
        assert result.shape == expected.shape
        assert np.array_equal(result, expected)

    def test_batched_trials(self):
        plan = compile_plan(_mixed_graph(name="codegen-batched"))
        stimulus = _stimulus(samples=256, trials=5)
        expected = _run_fixed(plan, stimulus, "numpy")
        result = _run_fixed(plan, stimulus, "codegen")
        assert result.shape == expected.shape
        assert np.array_equal(result, expected)

    def test_run_pair_matches_per_node_walk(self):
        plan = compile_plan(_mixed_graph(name="codegen-pair"))
        stimulus = _stimulus()
        with use_backend("numpy"):
            ref_double, ref_fixed = plan.run_pair(stimulus)
        with use_backend("codegen"):
            cg_double, cg_fixed = plan.run_pair(stimulus)
        assert np.array_equal(cg_double.output("y"), ref_double.output("y"))
        assert np.array_equal(cg_fixed.output("y"), ref_fixed.output("y"))

    def test_unquantized_graph_matches(self):
        # step == 0.0 constants: the tape must reproduce the pure
        # double-precision semantics of every node.
        plan = compile_plan(_mixed_graph(bits=None, name="codegen-double"))
        stimulus = _stimulus()
        expected = _run_fixed(plan, stimulus, "numpy")
        result = _run_fixed(plan, stimulus, "codegen")
        assert np.array_equal(result, expected)


# ----------------------------------------------------------------------
# Constants/structure split: requantize rebinds, never re-lowers
# ----------------------------------------------------------------------
class TestTapeRebinding:
    def test_requantize_rebinds_constants_only(self):
        plan = compile_plan(_mixed_graph(bits=12, name="codegen-rebind"))
        stimulus = _stimulus()
        _run_fixed(plan, stimulus, "codegen")
        tape = plan._tape
        assert tape is not None
        ops = tape.ops
        binding = tape.binding

        new_bits = {name: 9 for name in ("x", "g", "h", "v", "s")}
        plan.requantize(new_bits)
        rebound = _run_fixed(plan, stimulus, "codegen")

        # Same tape, same structure, fresh constants.
        assert plan._tape is tape
        assert tape.ops is ops
        assert tape.binding == binding + 1

        # Bit-identical to a cold lowering of a fresh 9-bit graph.
        cold_plan = compile_plan(_mixed_graph(bits=9, name="codegen-cold"))
        cold = _run_fixed(cold_plan, stimulus, "codegen")
        assert cold_plan._tape is not tape
        assert np.array_equal(rebound, cold)
        # And to the per-node walk at the new precision.
        assert np.array_equal(rebound, _run_fixed(plan, stimulus, "numpy"))

    def test_untouched_plan_does_not_rebind(self):
        plan = compile_plan(_mixed_graph(name="codegen-stable"))
        stimulus = _stimulus()
        _run_fixed(plan, stimulus, "codegen")
        binding = plan._tape.binding
        _run_fixed(plan, stimulus, "codegen")
        assert plan._tape.binding == binding


# ----------------------------------------------------------------------
# Unsupported plans fall back to the per-node walk
# ----------------------------------------------------------------------
class TestUnsupportedPlanFallback:
    def test_frequency_domain_filter_falls_back(self):
        from repro.systems.freq_filter import FrequencyDomainFilter

        system = FrequencyDomainFilter(fractional_bits=10, n_psd=256)
        plan = system.evaluator.plan
        stimulus = {"x": uniform_white_noise(512, seed=4)}
        expected = _run_fixed(plan, stimulus, "numpy")
        result = _run_fixed(plan, stimulus, "codegen")
        assert np.array_equal(result, expected)
        # The failed lowering is recorded once; no tape is kept.
        assert plan._tape is None
        assert plan._tape_error is not None
        assert "FrequencyDomainFirNode" in plan._tape_error

    def test_lower_plan_raises_on_unsupported_node(self):
        from repro.systems.freq_filter import FrequencyDomainFilter

        system = FrequencyDomainFilter(fractional_bits=10, n_psd=256)
        with pytest.raises(UnsupportedPlanError, match="cannot be lowered"):
            lower_plan(system.evaluator.plan)


# ----------------------------------------------------------------------
# The packed whole-tape kernel (numba entry point, run as plain Python)
# ----------------------------------------------------------------------
class TestPackedKernel:
    def _tape(self, graph):
        return lower_plan(compile_plan(graph))

    @pytest.mark.parametrize("rounding", list(RoundingMode))
    def test_packed_kernel_matches_interpreter(self, rounding):
        tape = self._tape(_mixed_graph(
            rounding=rounding, name=f"codegen-packed-{rounding.value}"))
        packed = _njit.pack(tape)
        assert packed is not None
        stimulus = _stimulus(samples=192, seed=23)
        signals = _njit._run_packed(tape, packed, _njit.tape_kernel,
                                    stimulus)
        expected = interpreter.run(tape, stimulus)
        for slot, (got, want) in enumerate(zip(signals, expected)):
            assert got.shape == want.shape, f"slot {slot}"
            assert np.array_equal(got, want), f"slot {slot}"

    def test_packed_kernel_matches_interpreter_batched(self):
        tape = self._tape(_mixed_graph(name="codegen-packed-batched"))
        packed = _njit.pack(tape)
        stimulus = _stimulus(samples=128, seed=29, trials=4)
        signals = _njit._run_packed(tape, packed, _njit.tape_kernel,
                                    stimulus)
        expected = interpreter.run(tape, stimulus)
        for slot, (got, want) in enumerate(zip(signals, expected)):
            assert got.shape == want.shape, f"slot {slot}"
            assert np.array_equal(got, want), f"slot {slot}"

    def test_unquantized_filters_are_not_jit_eligible(self):
        # Unquantized FIR/IIR convolutions have no exact-sum argument,
        # so the packed encoding declines them and execution stays on
        # the interpreter.
        tape = self._tape(_mixed_graph(bits=None, name="codegen-nojit"))
        assert _njit.pack(tape) is None

    def test_probe_validates_kernel_bitwise(self):
        tape = self._tape(_mixed_graph(name="codegen-probe"))
        packed = _njit.pack(tape)
        assert _njit._probe(tape, packed, _njit.tape_kernel)


# ----------------------------------------------------------------------
# CLI --backend flag
# ----------------------------------------------------------------------
class TestCliBackendFlag:
    def test_fuzz_runs_under_codegen(self, capsys):
        code = main(["fuzz", "--count", "2", "--seed", "0",
                     "--blocks", "4", "--samples", "1152",
                     "--ed-samples", "4608", "--n-psd", "96",
                     "--backend", "codegen"])
        out = capsys.readouterr().out
        assert code == 0, out
        assert "all passed" in out

    @pytest.mark.skipif(numba_available(),
                        reason="numba installed; every backend is "
                               "available")
    def test_unavailable_backend_is_clear_cli_error(self, capsys):
        code = main(["fuzz", "--count", "1", "--backend", "numba"])
        assert code == 1
        err = capsys.readouterr().err
        assert "not available" in err
        assert "codegen" in err

        code = main(["bench", "--names", "sim_engine_iir",
                     "--backend", "numba"])
        assert code == 1
        assert "not available" in capsys.readouterr().err

    def test_unknown_backend_rejected_by_argparse(self, capsys):
        with pytest.raises(SystemExit):
            main(["fuzz", "--count", "1", "--backend", "fortran"])
        assert "invalid choice" in capsys.readouterr().err
