"""Unit tests for the stateful FIR / IIR filter implementations."""

import numpy as np
import pytest

from repro.fixedpoint.quantizer import RoundingMode
from repro.lti.filters import FirFilter, FixedPointFilterConfig, IirFilter
from repro.lti.iir_design import design_iir_filter


class TestFirFilter:
    def test_process_matches_convolution(self, rng):
        taps = rng.standard_normal(12)
        x = rng.standard_normal(200)
        expected = np.convolve(x, taps)[:200]
        np.testing.assert_allclose(FirFilter(taps).process(x), expected)

    def test_invalid_taps_rejected(self):
        with pytest.raises(ValueError):
            FirFilter([])

    def test_transfer_function_round_trip(self):
        taps = [0.25, 0.5, 0.25]
        np.testing.assert_array_equal(
            FirFilter(taps).transfer_function().b, taps)

    def test_fixed_point_output_on_grid(self, rng):
        taps = rng.uniform(-0.5, 0.5, 8)
        x = rng.uniform(-0.9, 0.9, 500)
        config = FixedPointFilterConfig(data_fractional_bits=10)
        y = FirFilter(taps).process_fixed_point(x, config)
        mantissa = y * 2 ** 10
        np.testing.assert_allclose(mantissa, np.round(mantissa), atol=1e-9)

    def test_fixed_point_error_bounded(self, rng):
        taps = rng.uniform(-0.5, 0.5, 8)
        x = rng.uniform(-0.9, 0.9, 500)
        config = FixedPointFilterConfig(data_fractional_bits=12,
                                        coefficient_fractional_bits=20)
        quantized_taps = config.coefficient_quantizer().quantize(taps)
        reference = np.convolve(x, quantized_taps)[:500]
        y = FirFilter(taps).process_fixed_point(x, config)
        assert np.max(np.abs(y - reference)) <= 2 ** -12

    def test_input_quantization_option(self, rng):
        taps = [1.0]
        x = rng.uniform(-0.9, 0.9, 100)
        config = FixedPointFilterConfig(data_fractional_bits=6,
                                        quantize_input=True)
        y = FirFilter(taps).process_fixed_point(x, config)
        mantissa = y * 2 ** 6
        np.testing.assert_allclose(mantissa, np.round(mantissa), atol=1e-9)


class TestIirFilter:
    def test_process_matches_scipy(self, rng):
        from scipy.signal import lfilter
        b, a = design_iir_filter(4, 0.4, "lowpass", "butterworth")
        x = rng.standard_normal(300)
        np.testing.assert_allclose(IirFilter(b, a).process(x), lfilter(b, a, x))

    def test_coefficients_normalized(self):
        filt = IirFilter([2.0], [2.0, 1.0])
        np.testing.assert_allclose(filt.a, [1.0, 0.5])

    def test_zero_leading_denominator_rejected(self):
        with pytest.raises(ValueError):
            IirFilter([1.0], [0.0, 1.0])

    def test_noise_transfer_function_is_one_over_a(self):
        b, a = [0.5, 0.5], [1.0, -0.3]
        ntf = IirFilter(b, a).noise_transfer_function()
        np.testing.assert_allclose(ntf.b, [1.0])
        np.testing.assert_allclose(ntf.a, a)

    def test_fixed_point_output_on_grid(self, rng):
        b, a = design_iir_filter(3, 0.3, "lowpass", "butterworth")
        x = rng.uniform(-0.9, 0.9, 400)
        config = FixedPointFilterConfig(data_fractional_bits=10)
        y = IirFilter(b, a).process_fixed_point(x, config)
        mantissa = y * 2 ** 10
        np.testing.assert_allclose(mantissa, np.round(mantissa), atol=1e-9)

    def test_fixed_point_converges_to_reference_with_precision(self, rng):
        b, a = design_iir_filter(2, 0.4, "lowpass", "butterworth")
        x = rng.uniform(-0.9, 0.9, 400)
        filt = IirFilter(b, a)
        errors = []
        for bits in (8, 12, 16, 20):
            config = FixedPointFilterConfig(data_fractional_bits=bits,
                                            coefficient_fractional_bits=24)
            quantized_b = config.coefficient_quantizer().quantize(filt.b)
            quantized_a = config.coefficient_quantizer().quantize(filt.a)
            reference = IirFilter(quantized_b, quantized_a).process(x)
            fixed = filt.process_fixed_point(x, config)
            errors.append(float(np.mean((fixed - reference) ** 2)))
        assert errors[0] > errors[1] > errors[2] > errors[3]

    def test_truncation_mode_biases_output_negative(self, rng):
        b, a = [1.0], [1.0]
        x = rng.uniform(-0.9, 0.9, 2000)
        config = FixedPointFilterConfig(data_fractional_bits=6,
                                        rounding=RoundingMode.TRUNCATE)
        y = IirFilter(b, a).process_fixed_point(x, config)
        assert np.mean(y - x) < 0.0


class TestFixedPointFilterConfig:
    def test_default_coefficient_bits_follow_data(self):
        config = FixedPointFilterConfig(data_fractional_bits=9)
        assert config.coeff_bits == 9

    def test_explicit_coefficient_bits(self):
        config = FixedPointFilterConfig(data_fractional_bits=9,
                                        coefficient_fractional_bits=14)
        assert config.coeff_bits == 14

    def test_quantizers_use_requested_precision(self):
        config = FixedPointFilterConfig(data_fractional_bits=5)
        assert config.data_quantizer().step == 2 ** -5
