"""Unit tests for the surrogate image generators."""

import numpy as np
import pytest

from repro.data.images import (
    ImageGenerator,
    checkerboard_image,
    gradient_image,
    natural_image,
    texture_image,
)


class TestIndividualGenerators:
    def test_natural_image_shape_and_range(self):
        image = natural_image(64, seed=0)
        assert image.shape == (64, 64)
        assert np.min(image) >= 0.0
        assert np.max(image) < 1.0

    def test_natural_image_reproducible(self):
        np.testing.assert_array_equal(natural_image(32, seed=4),
                                      natural_image(32, seed=4))

    def test_natural_image_is_lowpass(self):
        """Most spectral energy of a 1/f^2 field sits at low frequencies."""
        image = natural_image(128, exponent=2.0, seed=1)
        spectrum = np.abs(np.fft.fft2(image - np.mean(image))) ** 2
        total = np.sum(spectrum)
        low = np.sum(spectrum[:8, :8]) + np.sum(spectrum[-8:, :8]) + \
            np.sum(spectrum[:8, -8:]) + np.sum(spectrum[-8:, -8:])
        assert low > 0.5 * total

    def test_texture_image_range(self):
        image = texture_image(64, orientation=0.5, seed=2)
        assert image.shape == (64, 64)
        assert np.min(image) >= 0.0
        assert np.max(image) < 1.0

    def test_gradient_directions(self):
        horizontal = gradient_image(32, "horizontal")
        vertical = gradient_image(32, "vertical")
        assert np.allclose(horizontal[0], horizontal[-1])
        assert np.allclose(vertical[:, 0], vertical[:, -1])
        with pytest.raises(ValueError):
            gradient_image(32, "radial")

    def test_checkerboard_alternates(self):
        board = checkerboard_image(16, period=4)
        assert board[0, 0] != board[0, 2]
        with pytest.raises(ValueError):
            checkerboard_image(16, period=1)

    def test_too_small_size_rejected(self):
        with pytest.raises(ValueError):
            natural_image(4)


class TestImageGenerator:
    def test_corpus_size_and_determinism(self):
        generator = ImageGenerator(size=32, seed=9)
        corpus_a = generator.corpus(8)
        corpus_b = ImageGenerator(size=32, seed=9).corpus(8)
        assert len(corpus_a) == 8
        for a, b in zip(corpus_a, corpus_b):
            np.testing.assert_array_equal(a, b)

    def test_corpus_contains_varied_content(self):
        corpus = ImageGenerator(size=32, seed=0).corpus(8)
        variances = [float(np.var(image)) for image in corpus]
        assert max(variances) > min(variances)

    def test_all_images_in_unit_range(self):
        for image in ImageGenerator(size=32, seed=3).corpus(12):
            assert np.min(image) >= 0.0
            assert np.max(image) < 1.0

    def test_invalid_count_rejected(self):
        with pytest.raises(ValueError):
            ImageGenerator(size=32).corpus(0)
