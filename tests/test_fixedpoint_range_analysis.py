"""Unit tests for interval / affine range analysis."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.fixedpoint.range_analysis import (
    AffineForm,
    Interval,
    analyze_ranges,
    assign_integer_bits,
    integer_bits_for_range,
    simulate_ranges,
)
from repro.lti.fir_design import design_fir_lowpass
from repro.sfg.builder import SfgBuilder


class TestInterval:
    def test_construction_and_properties(self):
        interval = Interval(-2.0, 3.0)
        assert interval.width == 5.0
        assert interval.magnitude == 3.0
        assert interval.contains(0.0)
        assert not interval.contains(4.0)

    def test_empty_interval_rejected(self):
        with pytest.raises(ValueError):
            Interval(1.0, 0.0)

    def test_add_sub_neg(self):
        a = Interval(-1.0, 2.0)
        b = Interval(0.5, 1.0)
        assert (a + b) == Interval(-0.5, 3.0)
        assert (a - b) == Interval(-2.0, 1.5)
        assert (-a) == Interval(-2.0, 1.0)

    def test_scaling_flips_with_negative_gain(self):
        assert Interval(-1.0, 2.0).scaled(-2.0) == Interval(-4.0, 2.0)

    def test_interval_product(self):
        assert Interval(-1.0, 2.0) * Interval(-3.0, 0.5) == Interval(-6.0, 3.0)

    def test_hull(self):
        assert Interval(-1.0, 0.0).hull(Interval(2.0, 3.0)) == Interval(-1.0, 3.0)

    @given(st.floats(-50, 50), st.floats(-50, 50), st.floats(-5, 5))
    def test_scaling_contains_scaled_points(self, a, b, gain):
        low, high = min(a, b), max(a, b)
        interval = Interval(low, high)
        scaled = interval.scaled(gain)
        for point in (low, high, (low + high) / 2):
            assert scaled.contains(point * gain) or \
                abs(point * gain - scaled.low) < 1e-9 or \
                abs(point * gain - scaled.high) < 1e-9


class TestAffineForm:
    def test_from_interval_round_trip(self):
        form = AffineForm.from_interval(Interval(-1.0, 3.0))
        recovered = form.to_interval()
        assert recovered.low == pytest.approx(-1.0)
        assert recovered.high == pytest.approx(3.0)

    def test_subtraction_of_identical_forms_cancels(self):
        """The key advantage over interval arithmetic: x - x = 0."""
        form = AffineForm.from_interval(Interval(-1.0, 1.0))
        difference = form - form
        assert difference.radius == pytest.approx(0.0)

    def test_interval_subtraction_does_not_cancel(self):
        interval = Interval(-1.0, 1.0)
        assert (interval - interval).width == pytest.approx(4.0)

    def test_independent_forms_add_radii(self):
        a = AffineForm.from_interval(Interval(-1.0, 1.0))
        b = AffineForm.from_interval(Interval(-2.0, 2.0))
        assert (a + b).radius == pytest.approx(3.0)

    def test_scaling(self):
        form = AffineForm.from_interval(Interval(-1.0, 1.0)).scaled(-3.0)
        assert form.radius == pytest.approx(3.0)

    def test_widened_adds_fresh_symbol(self):
        form = AffineForm.constant(1.0).widened(0.5)
        assert form.radius == pytest.approx(0.5)
        assert form.widened(0.0) is form


class TestGraphRangeAnalysis:
    def _adder_graph(self):
        builder = SfgBuilder("adder")
        a = builder.input("a")
        b = builder.input("b")
        s = builder.add("sum", [a, b], signs=[1.0, -1.0])
        builder.output("y", s)
        return builder.build()

    def test_interval_propagation_through_adder(self):
        graph = self._adder_graph()
        ranges = analyze_ranges(graph, {"a": (-1.0, 1.0), "b": (-1.0, 1.0)})
        assert ranges["sum"] == Interval(-2.0, 2.0)

    def test_affine_cancellation_on_reconvergent_paths(self):
        """y = x - x is exactly zero; affine analysis proves it."""
        builder = SfgBuilder("cancel")
        x = builder.input("x")
        g1 = builder.gain("g1", 1.0, x)
        g2 = builder.gain("g2", 1.0, x)
        s = builder.add("diff", [g1, g2], signs=[1.0, -1.0])
        builder.output("y", s)
        graph = builder.build()

        interval_result = analyze_ranges(graph, {"x": (-1.0, 1.0)},
                                         method="interval")
        affine_result = analyze_ranges(graph, {"x": (-1.0, 1.0)},
                                       method="affine")
        assert interval_result["diff"].width == pytest.approx(4.0)
        assert affine_result["diff"].width == pytest.approx(0.0)

    def test_fir_uses_l1_gain(self):
        taps = design_fir_lowpass(15, 0.4)
        builder = SfgBuilder("fir")
        x = builder.input("x")
        h = builder.fir("h", taps, x)
        builder.output("y", h)
        graph = builder.build()
        ranges = analyze_ranges(graph, {"x": (-1.0, 1.0)})
        assert ranges["h"].magnitude == pytest.approx(
            float(np.sum(np.abs(taps))))

    def test_ranges_are_sound_versus_simulation(self, rng):
        builder = SfgBuilder("sound")
        x = builder.input("x")
        h = builder.fir("h", design_fir_lowpass(21, 0.3), x)
        g = builder.gain("g", -1.5, h)
        builder.output("y", g)
        graph = builder.build()

        predicted = analyze_ranges(graph, {"x": (-1.0, 1.0)})
        observed = simulate_ranges(graph, {"x": rng.uniform(-1, 1, 5000)})
        for name, interval in observed.items():
            assert predicted[name].low <= interval.low + 1e-9
            assert predicted[name].high >= interval.high - 1e-9

    def test_missing_input_range_rejected(self):
        graph = self._adder_graph()
        with pytest.raises(ValueError):
            analyze_ranges(graph, {"a": (-1.0, 1.0)})

    def test_unknown_method_rejected(self):
        graph = self._adder_graph()
        with pytest.raises(ValueError):
            analyze_ranges(graph, {"a": (0, 1), "b": (0, 1)}, method="monte")

    def test_multirate_nodes_supported(self):
        builder = SfgBuilder("multirate")
        x = builder.input("x")
        d = builder.downsample("down", x)
        u = builder.upsample("up", d)
        builder.output("y", u)
        graph = builder.build()
        ranges = analyze_ranges(graph, {"x": (0.5, 1.0)})
        assert ranges["down"] == Interval(0.5, 1.0)
        assert ranges["up"].contains(0.0)


class TestIntegerBits:
    def test_bits_for_unit_range(self):
        assert integer_bits_for_range(Interval(-1.0, 0.999)) == 0
        assert integer_bits_for_range(Interval(-1.5, 1.5)) == 1
        assert integer_bits_for_range(Interval(-3.0, 5.0)) == 3

    def test_zero_range(self):
        assert integer_bits_for_range(Interval(0.0, 0.0)) == 0

    def test_exact_power_of_two_positive_needs_extra_bit(self):
        assert integer_bits_for_range(Interval(0.0, 2.0)) == 2

    def test_assign_integer_bits_with_margin(self):
        builder = SfgBuilder("assign")
        x = builder.input("x")
        g = builder.gain("g", 4.0, x)
        builder.output("y", g)
        graph = builder.build()
        bits = assign_integer_bits(graph, {"x": (-1.0, 1.0)}, margin_bits=1)
        assert bits["x"] == 1 + 1
        assert bits["g"] >= 3

    def test_unsigned_boundary_costs_a_bit(self):
        # A signed format with k integer bits represents -2**k for free;
        # an unsigned one tops out below 2**k, so a power-of-two
        # magnitude on the negative side costs one more bit unsigned.
        assert integer_bits_for_range(Interval(-2.0, 1.0)) == 1
        assert integer_bits_for_range(Interval(-2.0, 1.0),
                                      signed=False) == 2
        assert integer_bits_for_range(Interval(0.0, 0.9),
                                      signed=False) == 0

    def test_assign_integer_bits_forwards_signed(self):
        # Regression: `signed` was accepted by integer_bits_for_range but
        # never plumbed through assign_integer_bits, so unsigned
        # datapaths silently got the signed boundary analysis on every
        # node.
        builder = SfgBuilder("unsigned")
        x = builder.input("x")
        g = builder.gain("g", -2.0, x)
        builder.output("y", g)
        graph = builder.build()
        signed = assign_integer_bits(graph, {"x": (0.0, 1.0)})
        unsigned = assign_integer_bits(graph, {"x": (0.0, 1.0)},
                                       signed=False)
        assert signed["g"] == 1
        assert unsigned["g"] == 2
        assert all(unsigned[name] >= signed[name] for name in signed)
