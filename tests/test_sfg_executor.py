"""Unit tests for the dual-mode SFG executor."""

import numpy as np
import pytest

from repro.sfg.builder import SfgBuilder
from repro.sfg.executor import SfgExecutor
from repro.lti.fir_design import design_fir_lowpass


def _fir_graph(bits=10):
    builder = SfgBuilder("fir")
    x = builder.input("x", fractional_bits=bits)
    h = builder.fir("h", design_fir_lowpass(9, 0.4), x, fractional_bits=bits)
    builder.output("y", h)
    return builder.build()


class TestDoubleMode:
    def test_output_matches_direct_filtering(self, rng):
        graph = _fir_graph()
        taps = graph.node("h")._effective_transfer_function().b
        x = rng.uniform(-0.9, 0.9, 300)
        result = SfgExecutor(graph).run({"x": x})
        np.testing.assert_allclose(result.output("y"),
                                   np.convolve(x, taps)[:300])

    def test_keep_signals(self, rng):
        graph = _fir_graph()
        x = rng.uniform(-0.9, 0.9, 50)
        result = SfgExecutor(graph).run({"x": x}, keep_signals=True)
        assert set(result.signals) == {"x", "h", "y"}

    def test_signals_not_kept_by_default(self, rng):
        graph = _fir_graph()
        result = SfgExecutor(graph).run({"x": rng.uniform(-1, 1, 10)})
        assert result.signals == {}

    def test_multi_output_requires_name(self, rng):
        builder = SfgBuilder()
        x = builder.input("x")
        h1 = builder.fir("h1", [1.0], x)
        h2 = builder.fir("h2", [0.5], x)
        builder.output("y1", h1)
        builder.output("y2", h2)
        result = SfgExecutor(builder.build()).run({"x": rng.uniform(-1, 1, 5)})
        with pytest.raises(ValueError):
            result.output()
        assert len(result.output("y2")) == 5

    def test_missing_stimulus_rejected(self):
        graph = _fir_graph()
        with pytest.raises(ValueError):
            SfgExecutor(graph).run({})

    def test_unknown_mode_rejected(self, rng):
        graph = _fir_graph()
        with pytest.raises(ValueError):
            SfgExecutor(graph).run({"x": rng.uniform(-1, 1, 5)}, mode="half")


class TestFixedMode:
    def test_all_signals_on_grid(self, rng):
        graph = _fir_graph(bits=8)
        x = rng.uniform(-0.9, 0.9, 200)
        result = SfgExecutor(graph).run({"x": x}, mode="fixed",
                                        keep_signals=True)
        for name, signal in result.signals.items():
            scaled = signal * 2 ** 8
            np.testing.assert_allclose(scaled, np.round(scaled), atol=1e-9,
                                       err_msg=f"signal {name} off grid")

    def test_error_shrinks_with_word_length(self, rng):
        x = rng.uniform(-0.9, 0.9, 2000)
        errors = []
        for bits in (6, 10, 14):
            executor = SfgExecutor(_fir_graph(bits))
            errors.append(np.mean(executor.run_error({"x": x}) ** 2))
        assert errors[0] > errors[1] > errors[2]

    def test_run_error_is_fixed_minus_double(self, rng):
        graph = _fir_graph(bits=6)
        executor = SfgExecutor(graph)
        x = rng.uniform(-0.9, 0.9, 100)
        reference = executor.run({"x": x}).output("y")
        fixed = executor.run({"x": x}, mode="fixed").output("y")
        np.testing.assert_allclose(executor.run_error({"x": x}),
                                   fixed - reference)

    def test_error_power_close_to_pqn_prediction(self, rng):
        """Single FIR block: measured noise ~ (input + output source) model."""
        from repro.analysis.psd_method import evaluate_psd

        graph = _fir_graph(bits=10)
        executor = SfgExecutor(graph)
        x = rng.uniform(-0.9, 0.9, 60_000)
        measured = np.mean(executor.run_error({"x": x})[100:] ** 2)
        predicted = evaluate_psd(graph, 512).total_power
        assert measured == pytest.approx(predicted, rel=0.15)
