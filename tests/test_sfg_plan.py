"""Unit tests for graph compilation (`repro.sfg.plan`)."""

import numpy as np
import pytest

from repro.analysis.psd_method import evaluate_psd
from repro.lti.fir_design import design_fir_lowpass
from repro.lti.iir_design import design_iir_filter
from repro.sfg.builder import SfgBuilder
from repro.sfg.executor import SfgExecutor
from repro.sfg.nodes import FirNode, InputNode
from repro.sfg.plan import (
    CompiledPlan,
    compile_plan,
    quantization_signature,
    structure_signature,
)


def _graph(bits=10):
    b, a = design_iir_filter(3, 0.35, kind="lowpass", family="butterworth")
    builder = SfgBuilder("plan-test")
    x = builder.input("x", fractional_bits=bits)
    h = builder.fir("h", design_fir_lowpass(9, 0.4), x, fractional_bits=bits)
    i = builder.iir("i", b, a, h, fractional_bits=bits)
    builder.output("y", i)
    return builder.build()


class TestCompilation:
    def test_schedule_is_topological_and_index_based(self):
        plan = compile_plan(_graph())
        seen = set()
        for step in plan.steps:
            assert all(i in seen or i == step.index
                       for i in step.predecessors)
            assert all(i < step.index for i in step.predecessors)
            seen.add(step.index)
        assert [s.name for s in plan.steps] == \
            plan.graph.topological_order()

    def test_validation_happens_at_compile_time(self):
        from repro.sfg.graph import SignalFlowGraph
        from repro.sfg.nodes import OutputNode

        graph = SignalFlowGraph("broken")
        graph.add_node(InputNode("x"))
        graph.add_node(FirNode("h", [1.0]))
        graph.add_node(OutputNode("y"))
        graph.connect("x", "h")
        # "y" port left undriven -> compile must fail.
        with pytest.raises(ValueError):
            CompiledPlan(graph)

    def test_walk_does_not_revalidate(self, monkeypatch):
        graph = _graph()
        plan = compile_plan(graph)
        calls = []
        monkeypatch.setattr(graph, "validate",
                            lambda: calls.append(1))
        evaluate_psd(plan, 64)
        evaluate_psd(plan, 64)
        assert calls == []

    def test_noise_sources_precomputed(self):
        plan = compile_plan(_graph())
        assert {s.name for s in plan.noise_steps} == {"x", "h", "i"}
        for step in plan.noise_steps:
            assert step.noise.variance > 0.0
        builder = SfgBuilder("quiet")
        x = builder.input("x")
        h = builder.fir("h", [1.0, 0.5], x)
        builder.output("y", h)
        assert compile_plan(builder.build()).noise_steps == ()

    def test_input_quantizers_preconstructed(self):
        plan = compile_plan(_graph(bits=8))
        by_name = {step.name: step for step in plan.steps}
        assert by_name["x"].quantizer is not None
        assert by_name["x"].quantizer.fmt.fractional_bits == 8
        assert by_name["y"].quantizer is None


class TestPlanCache:
    def test_same_graph_reuses_plan(self):
        graph = _graph()
        assert compile_plan(graph) is compile_plan(graph)

    def test_passing_a_plan_is_identity(self):
        plan = compile_plan(_graph())
        assert compile_plan(plan) is plan

    def test_structural_change_recompiles(self):
        graph = _graph()
        plan = compile_plan(graph)
        graph.remove_node("y")
        from repro.sfg.nodes import OutputNode
        graph.add_node(OutputNode("y2"))
        graph.connect("i", "y2")
        new_plan = compile_plan(graph)
        assert new_plan is not plan
        assert new_plan.output_names == ("y2",)

    def test_quantization_change_refreshes_in_place(self):
        graph = _graph(bits=12)
        plan = compile_plan(graph)
        noise_before = {s.name: s.noise.variance for s in plan.noise_steps}
        node = graph.node("h")
        node.quantization = node.quantization.with_fractional_bits(6)
        assert compile_plan(graph) is plan
        noise_after = {s.name: s.noise.variance for s in plan.noise_steps}
        assert noise_after["h"] > noise_before["h"]
        assert noise_after["x"] == noise_before["x"]

    def test_signatures_detect_the_right_changes(self):
        graph = _graph()
        s_structure = structure_signature(graph)
        s_quant = quantization_signature(graph)
        node = graph.node("h")
        node.quantization = node.quantization.with_fractional_bits(4)
        assert structure_signature(graph) == s_structure
        assert quantization_signature(graph) != s_quant


class TestCoefficientMutation:
    def _gain_graph(self):
        builder = SfgBuilder("coeff")
        x = builder.input("x", fractional_bits=8)
        g = builder.gain("g1", 0.5, x, fractional_bits=8)
        builder.output("y", g)
        return builder.build()

    def test_coefficient_edit_invalidates_response_cache(self):
        graph = self._gain_graph()
        before = evaluate_psd(graph, 64).total_power
        graph.node("g1").gain = 4.0
        after = evaluate_psd(graph, 64).total_power
        fresh = evaluate_psd(CompiledPlan(graph), 64).total_power
        assert after == fresh
        assert after != before

    def test_executor_picks_up_spec_mutation_between_runs(self, rng):
        graph = _graph(bits=4)
        executor = SfgExecutor(graph)
        stimulus = {"x": rng.uniform(-0.9, 0.9, 64)}
        stale = executor.run(stimulus, mode="fixed").output("y")
        node = graph.node("x")
        node.quantization = node.quantization.with_fractional_bits(12)
        refreshed = executor.run(stimulus, mode="fixed").output("y")
        np.testing.assert_array_equal(
            refreshed,
            SfgExecutor(CompiledPlan(graph)).run(
                stimulus, mode="fixed").output("y"))
        assert not np.array_equal(refreshed, stale)


class TestRequantize:
    def test_requantize_matches_fresh_compile(self):
        graph = _graph(bits=12)
        plan = compile_plan(graph)
        before = evaluate_psd(plan, 128).total_power
        plan.requantize({"x": 8, "h": 8, "i": 8})
        via_plan = evaluate_psd(plan, 128).total_power
        fresh = evaluate_psd(CompiledPlan(graph), 128).total_power
        assert via_plan == fresh
        assert via_plan > before

    def test_response_cache_survives_requantization(self):
        graph = _graph(bits=12)
        plan = compile_plan(graph)
        evaluate_psd(plan, 128)
        cached = dict(plan._response_cache)
        # Moving only the data word length back and forth reuses every
        # cached response (they are keyed by coefficient precision, which
        # follows fractional_bits here, so the original keys come back).
        plan.requantize({"x": 8, "h": 8, "i": 8})
        evaluate_psd(plan, 128)
        plan.requantize({"x": 12, "h": 12, "i": 12})
        evaluate_psd(plan, 128)
        for key, value in cached.items():
            assert key in plan._response_cache
            np.testing.assert_array_equal(plan._response_cache[key], value)


class TestExecution:
    def test_run_pair_matches_two_runs(self, rng):
        executor = SfgExecutor(_graph(bits=7))
        stimulus = {"x": rng.uniform(-0.9, 0.9, 500)}
        reference, fixed = executor.run_pair(stimulus)
        np.testing.assert_array_equal(
            reference.output("y"),
            executor.run(stimulus, mode="double").output("y"))
        np.testing.assert_array_equal(
            fixed.output("y"),
            executor.run(stimulus, mode="fixed").output("y"))

    def test_batched_run_matches_per_trial_runs(self, rng):
        executor = SfgExecutor(_graph(bits=9))
        block = rng.uniform(-0.9, 0.9, (6, 400))
        batched = executor.run({"x": block}, mode="fixed").output("y")
        assert batched.shape == (6, 400)
        for trial in range(6):
            np.testing.assert_array_equal(
                batched[trial],
                executor.run({"x": block[trial]}, mode="fixed").output("y"))

    def test_batched_run_error(self, rng):
        executor = SfgExecutor(_graph(bits=9))
        block = rng.uniform(-0.9, 0.9, (4, 300))
        batched = executor.run_error({"x": block})
        looped = np.stack([executor.run_error({"x": block[t]})
                           for t in range(4)])
        np.testing.assert_array_equal(batched, looped)

    def test_unknown_mode_rejected(self, rng):
        executor = SfgExecutor(_graph())
        with pytest.raises(ValueError):
            executor.run({"x": rng.uniform(-1, 1, 8)}, mode="half")

    def test_missing_stimulus_rejected(self):
        with pytest.raises(ValueError):
            SfgExecutor(_graph()).run({})

    def test_run_error_rejects_shape_mismatch(self, rng, monkeypatch):
        graph = _graph(bits=8)
        executor = SfgExecutor(CompiledPlan(graph))
        node = graph.node("h")
        original = type(node).simulate_fixed
        monkeypatch.setattr(
            type(node), "simulate_fixed",
            lambda self, inputs: original(self, inputs)[:-1])
        with pytest.raises(ValueError, match="different shapes"):
            executor.run_error({"x": rng.uniform(-0.9, 0.9, 64)})
