"""Unit tests for the second-order-section (cascade) realization."""

import numpy as np
import pytest

from repro.analysis.evaluator import AccuracyEvaluator
from repro.data.signals import uniform_white_noise
from repro.lti.iir_design import design_iir_filter
from repro.lti.sos import (
    build_direct_form_graph,
    build_sos_graph,
    sos_to_tf,
    tf_to_sos,
)
from repro.lti.transfer_function import TransferFunction


class TestFactorization:
    @pytest.mark.parametrize("order", [2, 3, 4, 5, 6])
    def test_cascade_matches_original_response(self, order):
        b, a = design_iir_filter(order, 0.4, "lowpass", "butterworth")
        sections = tf_to_sos(b, a)
        original = TransferFunction(b, a).frequency_response(256)
        cascade = sos_to_tf(sections).frequency_response(256)
        np.testing.assert_allclose(cascade, original, atol=1e-6, rtol=1e-5)

    def test_number_of_sections(self):
        b, a = design_iir_filter(6, 0.3, "lowpass", "butterworth")
        assert tf_to_sos(b, a).shape == (3, 6)

    def test_odd_order_handled(self):
        b, a = design_iir_filter(5, 0.35, "lowpass", "chebyshev1")
        sections = tf_to_sos(b, a)
        cascade = sos_to_tf(sections).frequency_response(128)
        original = TransferFunction(b, a).frequency_response(128)
        np.testing.assert_allclose(cascade, original, atol=1e-6, rtol=1e-4)

    def test_sections_are_individually_stable(self):
        b, a = design_iir_filter(6, 0.45, "lowpass", "chebyshev1")
        for row in tf_to_sos(b, a):
            assert TransferFunction(row[:3], row[3:]).is_stable()

    def test_highpass_and_bandpass_designs(self):
        for kind, cutoff in (("highpass", 0.6), ("bandpass", (0.3, 0.6))):
            b, a = design_iir_filter(4 if kind == "highpass" else 2, cutoff,
                                     kind, "butterworth")
            cascade = sos_to_tf(tf_to_sos(b, a)).frequency_response(128)
            original = TransferFunction(b, a).frequency_response(128)
            np.testing.assert_allclose(cascade, original, atol=1e-6, rtol=1e-4)

    def test_sos_to_tf_validates_shape(self):
        with pytest.raises(ValueError):
            sos_to_tf(np.ones((2, 5)))


class TestSosGraphs:
    def test_graph_structure(self):
        b, a = design_iir_filter(4, 0.4, "lowpass", "butterworth")
        graph = build_sos_graph(b, a, fractional_bits=12)
        biquads = [n for n in graph.nodes if n.startswith("biquad")]
        assert len(biquads) == 2

    def test_reference_output_matches_direct_form(self, rng):
        b, a = design_iir_filter(4, 0.4, "lowpass", "butterworth")
        sos_graph = build_sos_graph(b, a, fractional_bits=20,
                                    rounding="round")
        direct_graph = build_direct_form_graph(b, a, fractional_bits=20)
        from repro.sfg.executor import SfgExecutor

        x = rng.uniform(-0.9, 0.9, 2000)
        sos_out = SfgExecutor(sos_graph).run({"x": x}).output("y")
        direct_out = SfgExecutor(direct_graph).run({"x": x}).output("y")
        # Coefficient quantization differs slightly between the two
        # realizations, so only require close agreement.
        assert np.max(np.abs(sos_out - direct_out)) < 1e-3

    def test_cascade_noise_estimate_tracks_simulation(self):
        b, a = design_iir_filter(4, 0.35, "lowpass", "chebyshev1")
        graph = build_sos_graph(b, a, fractional_bits=12)
        evaluator = AccuracyEvaluator(graph, n_psd=1024)
        comparison = evaluator.compare(uniform_white_noise(40_000, seed=8),
                                       methods=("psd",),
                                       discard_transient=500)
        assert comparison.reports["psd"].sub_one_bit

    def test_cascade_and_direct_form_noise_differ(self):
        """The realization changes the roundoff noise (Jackson, ref. [10])."""
        b, a = design_iir_filter(6, 0.25, "lowpass", "chebyshev1")
        from repro.analysis.psd_method import evaluate_psd

        cascade_power = evaluate_psd(
            build_sos_graph(b, a, fractional_bits=12), 1024).total_power
        direct_power = evaluate_psd(
            build_direct_form_graph(b, a, fractional_bits=12), 1024).total_power
        assert cascade_power != pytest.approx(direct_power, rel=0.05)
