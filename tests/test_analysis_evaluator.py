"""Unit tests for the unified AccuracyEvaluator front end."""

import pytest

from repro.analysis.evaluator import AccuracyEvaluator
from repro.analysis.report import AccuracyReport, EstimateResult
from repro.lti.fir_design import design_fir_lowpass
from repro.sfg.builder import SfgBuilder


def _graph(bits=10):
    builder = SfgBuilder("system-under-test")
    x = builder.input("x", fractional_bits=bits)
    h = builder.fir("h", design_fir_lowpass(17, 0.4), x, fractional_bits=bits)
    builder.output("y", h)
    return builder.build()


class TestEstimate:
    def test_all_methods_run(self):
        evaluator = AccuracyEvaluator(_graph(), n_psd=128)
        for method in ("psd", "psd_tracked", "flat", "agnostic"):
            result = evaluator.estimate(method)
            assert result.power > 0.0
            assert result.method == method
            assert result.elapsed_seconds >= 0.0

    def test_psd_bins_recorded(self):
        evaluator = AccuracyEvaluator(_graph(), n_psd=128)
        assert evaluator.estimate("psd").n_psd == 128
        assert evaluator.estimate("psd", n_psd=64).n_psd == 64
        assert evaluator.estimate("flat").n_psd is None

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            AccuracyEvaluator(_graph()).estimate("magic")


class TestCompare:
    def test_reports_generated_per_method(self, short_white_noise):
        evaluator = AccuracyEvaluator(_graph(), n_psd=128)
        comparison = evaluator.compare(short_white_noise,
                                       methods=("psd", "agnostic"),
                                       discard_transient=32)
        assert set(comparison.reports) == {"psd", "agnostic"}
        assert comparison.simulation.error_power > 0.0

    def test_single_block_estimates_are_sub_one_bit(self, short_white_noise):
        evaluator = AccuracyEvaluator(_graph(), n_psd=256)
        comparison = evaluator.compare(short_white_noise, methods=("psd",),
                                       discard_transient=32)
        report = comparison.reports["psd"]
        assert report.sub_one_bit
        assert abs(report.ed_percent) < 20.0

    def test_metadata_recorded(self, short_white_noise):
        evaluator = AccuracyEvaluator(_graph(), n_psd=64)
        comparison = evaluator.compare(short_white_noise, methods=("psd",),
                                       metadata={"d": 10})
        assert comparison.reports["psd"].metadata == {"d": 10}

    def test_describe_mentions_each_method(self, short_white_noise):
        evaluator = AccuracyEvaluator(_graph(), n_psd=64)
        comparison = evaluator.compare(short_white_noise,
                                       methods=("psd", "flat"))
        text = comparison.describe()
        assert "psd" in text and "flat" in text

    def test_ed_percent_helper(self, short_white_noise):
        evaluator = AccuracyEvaluator(_graph(), n_psd=64)
        comparison = evaluator.compare(short_white_noise, methods=("psd",))
        assert comparison.ed_percent("psd") == pytest.approx(
            comparison.reports["psd"].ed_percent)


class TestReportObjects:
    def test_report_derived_metrics(self):
        estimate = EstimateResult(method="psd", power=2.0, mean=0.0,
                                  variance=2.0, n_psd=64)
        report = AccuracyReport(system="s", simulated_power=1.0,
                                estimate=estimate)
        assert report.ed == pytest.approx(-1.0)
        assert report.ed_percent == pytest.approx(-100.0)
        assert report.equivalent_bits == pytest.approx(0.5)
        assert report.sub_one_bit

    def test_describe_contains_flag(self):
        estimate = EstimateResult(method="psd", power=10.0, mean=0.0,
                                  variance=10.0)
        report = AccuracyReport(system="s", simulated_power=1.0,
                                estimate=estimate)
        assert "OVER one bit" in report.describe()


class TestPlanTracking:
    """The evaluator must follow graph rewires with both engines in sync."""

    def test_structural_rewire_rebuilds_simulator(self, rng):
        from repro.analysis.evaluator import AccuracyEvaluator
        from repro.sfg.builder import SfgBuilder
        from repro.sfg.nodes import GainNode, OutputNode

        builder = SfgBuilder("rewire")
        x = builder.input("x", fractional_bits=8)
        h = builder.fir("h", [1.0, 0.25], x, fractional_bits=8)
        builder.output("y", h)
        graph = builder.build()
        evaluator = AccuracyEvaluator(graph, n_psd=64)
        stimulus = rng.uniform(-0.9, 0.9, 20_000)
        evaluator.compare(stimulus, methods=("psd",))

        graph.remove_node("y")
        graph.add_node(GainNode("g", 2.0,
                                quantization=graph.node("h").quantization))
        graph.connect("h", "g")
        graph.add_node(OutputNode("y"))
        graph.connect("g", "y")

        comparison = evaluator.compare(stimulus, methods=("psd",))
        # Simulation and estimate must both describe the rewired system:
        # the x2 gain quadruples the noise power, and the deviation between
        # the two engines stays small.
        assert abs(comparison.reports["psd"].ed_percent) < 15.0
