"""Unit tests for the fixed-point DWT codec and its noise models."""

import numpy as np
import pytest

from repro.data.images import ImageGenerator, natural_image
from repro.fixedpoint.noise_model import NoiseStats
from repro.systems.dwt.codec import Dwt97Codec
from repro.systems.dwt.noise_model import SeparableNoiseField


class TestSeparableNoiseField:
    def test_zero_field(self):
        field = SeparableNoiseField.zero(64)
        assert field.total_power == 0.0

    def test_injection_accumulates_power(self):
        field = SeparableNoiseField.zero(32).injected(NoiseStats(0.0, 1.0))
        field = field.injected(NoiseStats(0.0, 0.5))
        assert field.variance == pytest.approx(1.5)

    def test_mean_tracking(self):
        field = SeparableNoiseField.zero(32).injected(NoiseStats(-0.25, 0.0))
        assert field.total_power == pytest.approx(0.0625)

    def test_filtering_white_noise_by_energy(self):
        taps = np.array([0.5, 0.5])
        field = SeparableNoiseField.zero(64).injected(NoiseStats(0.0, 1.0))
        filtered = field.filtered(taps, axis=0)
        assert filtered.variance == pytest.approx(0.5, rel=1e-6)

    def test_filtering_affects_requested_axis_only(self):
        taps = np.array([1.0, -1.0])    # DC-blocking filter
        field = SeparableNoiseField.zero(64).injected(NoiseStats(0.0, 1.0))
        filtered_rows = field.filtered(taps, axis=1)
        assert filtered_rows.variance == pytest.approx(2.0, rel=1e-6)

    def test_downsample_preserves_power_upsample_halves(self):
        field = SeparableNoiseField.zero(64).injected(NoiseStats(0.0, 1.0))
        assert field.downsampled(0).variance == pytest.approx(1.0)
        assert field.upsampled(0).variance == pytest.approx(0.5)

    def test_added_fields_combine(self):
        a = SeparableNoiseField.zero(32).injected(NoiseStats(0.1, 1.0))
        b = SeparableNoiseField.zero(32).injected(NoiseStats(-0.1, 2.0))
        total = a.added(b)
        assert total.variance == pytest.approx(3.0)
        assert total.mean == pytest.approx(0.0)

    def test_added_requires_matching_bins(self):
        a = SeparableNoiseField.zero(32)
        b = SeparableNoiseField.zero(32).downsampled(0)
        with pytest.raises(ValueError):
            a.added(b)

    def test_agnostic_mode_uses_energy_rule(self):
        taps = np.array([1.0, -1.0])
        field = SeparableNoiseField.zero(64, mode="agnostic")
        field = field.injected(NoiseStats(0.0, 1.0)).filtered(taps, axis=0)
        assert field.variance == pytest.approx(2.0)

    def test_2d_map_sums_to_power(self):
        field = SeparableNoiseField.zero(32).injected(NoiseStats(0.1, 1.0))
        grid = field.to_psd_2d()
        assert grid.shape == (32, 32)
        assert np.sum(grid) == pytest.approx(field.total_power)

    def test_2d_map_not_available_in_agnostic_mode(self):
        field = SeparableNoiseField.zero(32, mode="agnostic")
        with pytest.raises(ValueError):
            field.to_psd_2d()

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            SeparableNoiseField("fancy", {0: 4, 1: 4})


class TestCodecExecution:
    def test_reference_is_near_perfect_reconstruction(self, small_image):
        codec = Dwt97Codec(fractional_bits=16, levels=2,
                           coefficient_fractional_bits=24)
        reconstructed = codec.run_reference(small_image)
        np.testing.assert_allclose(reconstructed, small_image, atol=1e-5)

    def test_fixed_point_output_on_grid(self, small_image):
        codec = Dwt97Codec(fractional_bits=10, levels=1)
        output = codec.run_fixed_point(small_image)
        scaled = output * 2 ** 10
        np.testing.assert_allclose(scaled, np.round(scaled), atol=1e-9)

    def test_error_shrinks_with_word_length(self, small_image):
        errors = []
        for bits in (8, 12, 16):
            codec = Dwt97Codec(fractional_bits=bits, levels=2)
            errors.append(np.mean(codec.error_image(small_image) ** 2))
        assert errors[0] > errors[1] > errors[2]

    def test_encode_fixed_point_pyramid_structure(self, small_image):
        codec = Dwt97Codec(fractional_bits=12, levels=2)
        pyramid = codec.encode_fixed_point(small_image)
        assert len(pyramid["levels"]) == 2
        assert pyramid["ll"].shape == (8, 8)

    def test_invalid_levels_rejected(self):
        with pytest.raises(ValueError):
            Dwt97Codec(fractional_bits=12, levels=0)


class TestCodecNoiseEstimates:
    def test_psd_estimate_within_one_bit_of_simulation(self):
        codec = Dwt97Codec(fractional_bits=12, levels=2)
        images = ImageGenerator(size=32, seed=1).corpus(3)
        simulated = codec.simulated_error_power(images)
        estimated = codec.estimate_error_power(n_psd=256, method="psd")
        assert estimated == pytest.approx(simulated, rel=0.75)

    def test_estimates_scale_with_word_length(self):
        coarse = Dwt97Codec(fractional_bits=8).estimate_error_power(64, "psd")
        fine = Dwt97Codec(fractional_bits=16).estimate_error_power(64, "psd")
        assert coarse / fine == pytest.approx(4.0 ** 8, rel=0.05)

    def test_agnostic_estimate_available(self):
        codec = Dwt97Codec(fractional_bits=12, levels=2)
        assert codec.estimate_error_power(method="agnostic") > 0.0

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            Dwt97Codec(fractional_bits=12).estimate_output_noise(64, "magic")

    def test_compare_reports_ed_per_method(self):
        codec = Dwt97Codec(fractional_bits=12, levels=1)
        images = [natural_image(32, seed=4)]
        result = codec.compare(images, n_psd=128, methods=("psd", "agnostic"))
        assert set(result["methods"]) == {"psd", "agnostic"}
        for entry in result["methods"].values():
            assert np.isfinite(entry["ed"])

    def test_compare_requires_images(self):
        codec = Dwt97Codec(fractional_bits=12)
        with pytest.raises(ValueError):
            codec.compare([], n_psd=64)

    def test_estimated_2d_map_shape_and_power(self):
        codec = Dwt97Codec(fractional_bits=12, levels=2)
        grid = codec.estimated_error_psd_2d(n_psd=64)
        assert grid.shape == (64, 64)
        assert np.sum(grid) == pytest.approx(
            codec.estimate_error_power(64, "psd"), rel=1e-6)

    def test_simulated_2d_map_matches_measured_power(self, small_image):
        codec = Dwt97Codec(fractional_bits=10, levels=1)
        grid = codec.simulated_error_psd_2d([small_image])
        measured = np.mean(codec.error_image(small_image) ** 2)
        assert np.sum(grid) == pytest.approx(measured, rel=1e-6)

    def test_truncation_mode_mean_contributes(self):
        codec_round = Dwt97Codec(fractional_bits=12, rounding="round")
        codec_trunc = Dwt97Codec(fractional_bits=12, rounding="truncate")
        power_round = codec_round.estimate_error_power(64, "psd")
        power_trunc = codec_trunc.estimate_error_power(64, "psd")
        assert power_trunc > power_round
