"""Unit tests for the integer-mantissa fixed-point arrays."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.fixedpoint.fxparray import FxpArray
from repro.fixedpoint.qformat import QFormat
from repro.fixedpoint.quantizer import OverflowMode, RoundingMode


class TestConstruction:
    def test_from_float_round_trip(self):
        fmt = QFormat(3, 8)
        values = np.array([0.5, -1.25, 3.0])
        array = FxpArray.from_float(values, fmt)
        np.testing.assert_allclose(array.to_float(), values)

    def test_from_float_quantizes(self):
        array = FxpArray.from_float(np.array([0.3]), QFormat(2, 2))
        assert array.to_float()[0] == pytest.approx(0.25)

    def test_zeros(self):
        array = FxpArray.zeros(5, QFormat(2, 4))
        assert len(array) == 5
        np.testing.assert_array_equal(array.to_float(), np.zeros(5))

    def test_saturation_on_construction(self):
        array = FxpArray.from_float(np.array([100.0]), QFormat(2, 2),
                                    overflow=OverflowMode.SATURATE)
        assert array.to_float()[0] == QFormat(2, 2).max_value


class TestArithmetic:
    def test_addition_is_exact(self):
        a = FxpArray.from_float(np.array([0.5, 0.25]), QFormat(2, 4))
        b = FxpArray.from_float(np.array([0.125, -0.75]), QFormat(2, 6))
        result = a + b
        np.testing.assert_allclose(result.to_float(), [0.625, -0.5])

    def test_subtraction(self):
        a = FxpArray.from_float(np.array([1.0]), QFormat(2, 4))
        b = FxpArray.from_float(np.array([0.25]), QFormat(2, 4))
        np.testing.assert_allclose((a - b).to_float(), [0.75])

    def test_negation(self):
        a = FxpArray.from_float(np.array([0.5]), QFormat(2, 4))
        np.testing.assert_allclose((-a).to_float(), [-0.5])

    def test_multiplication_is_exact(self):
        a = FxpArray.from_float(np.array([0.75]), QFormat(2, 4))
        b = FxpArray.from_float(np.array([0.375]), QFormat(2, 5))
        result = a * b
        assert result.fmt.fractional_bits == 9
        np.testing.assert_allclose(result.to_float(), [0.28125])

    def test_scale_by_constant(self):
        a = FxpArray.from_float(np.array([0.5, 1.0]), QFormat(2, 4))
        result = a.scale_by_constant(0.5, QFormat(1, 6))
        np.testing.assert_allclose(result.to_float(), [0.25, 0.5])

    @given(st.lists(st.floats(min_value=-3, max_value=3, allow_nan=False),
                    min_size=1, max_size=20))
    def test_add_matches_float_addition(self, values):
        fmt = QFormat(4, 10)
        a = FxpArray.from_float(np.array(values), fmt)
        b = FxpArray.from_float(np.array(values[::-1]), fmt)
        expected = a.to_float() + b.to_float()
        np.testing.assert_allclose((a + b).to_float(), expected)


class TestRequantize:
    def test_requantize_to_coarser_grid(self):
        a = FxpArray.from_float(np.array([0.3]), QFormat(2, 8))
        coarse = a.requantize(QFormat(2, 2), rounding=RoundingMode.TRUNCATE)
        assert coarse.to_float()[0] == pytest.approx(0.25)

    def test_requantize_to_finer_grid_is_exact(self):
        a = FxpArray.from_float(np.array([0.25]), QFormat(2, 2))
        fine = a.requantize(QFormat(2, 8))
        assert fine.to_float()[0] == pytest.approx(0.25)

    def test_requantize_with_saturation(self):
        a = FxpArray.from_float(np.array([3.5]), QFormat(3, 4))
        result = a.requantize(QFormat(1, 4), overflow=OverflowMode.SATURATE)
        assert result.to_float()[0] == QFormat(1, 4).max_value

    def test_error_vs_reference(self):
        reference = np.array([0.3, 0.7])
        a = FxpArray.from_float(reference, QFormat(2, 3))
        error = a.error_vs(reference)
        assert np.max(np.abs(error)) <= QFormat(2, 3).step / 2 + 1e-15
