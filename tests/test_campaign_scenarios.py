"""Scenario-family validation: registry, serialization, equivalence, Ed.

For every campaign scenario family (including the four new system
families of :mod:`repro.systems.families`) this module pins down the full
contract the campaign layer relies on:

* the registry builds the family, enforces its parameter names and
  produces a stable parameter signature;
* the built graph serializes loss-free (round-trip preserves the
  canonical fingerprint) — cache keys would be meaningless otherwise;
* the compiled-plan walks are bitwise identical to the legacy reference
  traversals (plan-vs-legacy equivalence for the new families);
* the analytical estimate agrees with the Monte-Carlo simulation within
  the paper's sub-one-bit ``Ed`` band.
"""

import numpy as np
import pytest

from legacy_reference import legacy_agnostic, legacy_psd, legacy_run

from repro.analysis.agnostic_method import evaluate_agnostic
from repro.analysis.evaluator import AccuracyEvaluator
from repro.analysis.metrics import is_sub_one_bit
from repro.analysis.psd_method import evaluate_psd
from repro.campaign import build_scenario, get_family, scenario_names
from repro.campaign.registry import scenario_signature
from repro.sfg.executor import SfgExecutor
from repro.sfg.serialization import (
    graph_fingerprint,
    graph_from_dict,
    graph_to_dict,
)
from repro.systems.families import (
    build_cascaded_sos_bank,
    build_fft_butterfly,
    build_interpolator_chain,
    build_polyphase_decimator,
)

# The four new families, built small enough for fast bitwise checks.
NEW_FAMILIES = {
    "cascaded_sos_bank": lambda: build_cascaded_sos_bank(
        channels=2, order=2, fractional_bits=10),
    "polyphase_decimator": lambda: build_polyphase_decimator(
        taps=16, factor=4, fractional_bits=10),
    "interpolator_chain": lambda: build_interpolator_chain(
        stages=2, taps=11, fractional_bits=10),
    "fft_butterfly": lambda: build_fft_butterfly(
        stages=3, bin_index=3, fractional_bits=10),
}


class TestRegistry:
    def test_all_builtin_families_registered(self):
        names = scenario_names()
        for expected in ("cascaded_sos_bank", "polyphase_decimator",
                         "interpolator_chain", "fft_butterfly",
                         "table1_fir", "table1_iir", "dwt97_bank"):
            assert expected in names

    @pytest.mark.parametrize("name", ["cascaded_sos_bank",
                                      "polyphase_decimator",
                                      "interpolator_chain",
                                      "fft_butterfly",
                                      "table1_fir", "table1_iir",
                                      "dwt97_bank"])
    def test_families_build_valid_instances(self, name):
        instance = build_scenario(name)
        assert instance.graph.output_names()
        assert instance.stimulus.num_samples > 0
        assert len(instance.default_budgets) >= 1
        # Budgets come loosest (largest) first.
        budgets = list(instance.default_budgets)
        assert budgets == sorted(budgets, reverse=True)

    def test_parameter_overrides_and_validation(self):
        instance = build_scenario("polyphase_decimator", {"factor": 2})
        assert instance.params["factor"] == 2
        assert instance.params["taps"] == 32  # default retained
        with pytest.raises(ValueError, match="no parameter"):
            build_scenario("polyphase_decimator", {"bogus": 1})
        with pytest.raises(KeyError, match="unknown scenario"):
            build_scenario("not_a_family")

    def test_signature_is_order_stable_and_parameter_sensitive(self):
        a = scenario_signature("fam", {"x": 1, "y": 2})
        b = scenario_signature("fam", {"y": 2, "x": 1})
        c = scenario_signature("fam", {"x": 1, "y": 3})
        assert a == b
        assert a != c
        assert build_scenario("fft_butterfly").signature \
            != build_scenario("fft_butterfly", {"stages": 2}).signature

    def test_defaults_listed_for_cli(self):
        family = get_family("cascaded_sos_bank")
        assert set(family.defaults) == {"channels", "order",
                                        "fractional_bits", "family"}
        assert family.description


class TestBuilderEdgeCases:
    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            build_cascaded_sos_bank(channels=0)
        with pytest.raises(ValueError):
            build_polyphase_decimator(factor=1)
        with pytest.raises(ValueError):
            build_polyphase_decimator(taps=2, factor=4)
        with pytest.raises(ValueError):
            build_interpolator_chain(stages=0)
        with pytest.raises(ValueError):
            build_fft_butterfly(stages=3, bin_index=8)

    def test_single_channel_bank_has_no_adder(self):
        graph = build_cascaded_sos_bank(channels=1, order=2)
        assert "merge" not in graph.nodes

    def test_polyphase_output_matches_direct_decimation(self):
        """The polyphase structure must equal filter-then-decimate."""
        from repro.lti.fir_design import design_fir_lowpass
        graph = build_polyphase_decimator(taps=16, factor=4,
                                          fractional_bits=None)
        rng = np.random.default_rng(11)
        x = rng.uniform(-0.9, 0.9, 4096)
        polyphase = SfgExecutor(graph).run({"x": x}, mode="double").output("y")
        direct = np.convolve(x, design_fir_lowpass(16, 0.2))[:len(x)][::4]
        np.testing.assert_allclose(polyphase, direct, atol=1e-12)


@pytest.mark.parametrize("family", sorted(NEW_FAMILIES))
class TestNewFamilyContracts:
    """Serialization + plan-vs-legacy equivalence per new family."""

    def test_serialization_round_trip(self, family):
        graph = NEW_FAMILIES[family]()
        data = graph_to_dict(graph)
        rebuilt = graph_from_dict(data)
        assert graph_fingerprint(rebuilt) == graph_fingerprint(graph)
        assert sorted(rebuilt.nodes) == sorted(graph.nodes)
        assert len(rebuilt.edges) == len(graph.edges)

    def test_psd_method_bitwise_identical_to_legacy(self, family):
        graph = NEW_FAMILIES[family]()
        via_plan = evaluate_psd(graph, 128)
        legacy = legacy_psd(graph, 128)
        np.testing.assert_array_equal(via_plan.ac, legacy.ac)
        assert via_plan.mean == legacy.mean

    def test_agnostic_method_bitwise_identical_to_legacy(self, family):
        graph = NEW_FAMILIES[family]()
        via_plan = evaluate_agnostic(graph)
        legacy = legacy_agnostic(graph)
        assert via_plan.mean == legacy.mean
        assert via_plan.variance == legacy.variance

    def test_simulator_bitwise_identical_to_legacy(self, family):
        graph = NEW_FAMILIES[family]()
        rng = np.random.default_rng(23)
        x = rng.uniform(-0.9, 0.9, 2048)
        executor = SfgExecutor(graph)
        for mode in ("double", "fixed"):
            np.testing.assert_array_equal(
                executor.run({"x": x}, mode=mode).output("y"),
                legacy_run(graph, {"x": x}, mode))


@pytest.mark.parametrize("family", sorted(NEW_FAMILIES))
def test_estimates_within_ed_band(family):
    """Acceptance: each new family's analytical estimate must sit within
    the paper's sub-one-bit Ed band of the Monte-Carlo measurement."""
    instance = build_scenario(family)
    evaluator = AccuracyEvaluator(instance.graph, n_psd=256)
    stimulus = instance.stimulus.realize(instance.graph.input_names(),
                                         seed=7)
    comparison = evaluator.compare(
        stimulus, methods=("psd", "agnostic"),
        discard_transient=instance.stimulus.discard_transient)
    for method, report in comparison.reports.items():
        assert is_sub_one_bit(report.ed), \
            f"{family}/{method}: Ed={report.ed_percent:.1f}% out of band"
