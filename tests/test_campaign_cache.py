"""Job keys, the content-addressed cache, and campaign resumability."""

import json
import os

import pytest

from repro.campaign import (
    CampaignSpec,
    ResultCache,
    ScenarioSpec,
    StimulusSpec,
    expand_campaign,
    job_key,
    run_campaign,
)
from repro.sfg.builder import SfgBuilder
from repro.sfg.serialization import (
    assignment_fingerprint,
    graph_fingerprint,
)


def _graph(bits=10, taps=(0.25, 0.5, 0.25)):
    builder = SfgBuilder("cache-test")
    x = builder.input("x", fractional_bits=bits)
    node = builder.fir("h", list(taps), x, fractional_bits=bits)
    builder.output("y", node)
    return builder.build()


# A tiny, fast campaign reused by the runner/resume tests.
def _tiny_spec(**overrides):
    settings = dict(
        scenarios=(ScenarioSpec("table1_fir", {"taps": 8}),
                   ScenarioSpec("fft_butterfly", {"stages": 2})),
        methods=("psd", "agnostic", "simulation"),
        wordlengths=(8, 12),
        n_psd=64,
        stimulus=StimulusSpec(num_samples=2_000),
        seed=5)
    settings.update(overrides)
    return CampaignSpec(**settings)


class TestJobKeys:
    def test_key_is_deterministic(self):
        graph = _graph()
        spec = StimulusSpec()
        key_a = job_key(graph, {"x": 8, "h": 8}, "psd", 128, spec, 0)
        key_b = job_key(_graph(), {"h": 8, "x": 8}, "psd", 128, spec, 0)
        assert key_a == key_b
        assert len(key_a) == 64

    @pytest.mark.parametrize("mutation", [
        dict(assignment={"x": 9, "h": 8}),
        dict(method="agnostic"),
        dict(n_psd=256),
        dict(stimulus=StimulusSpec(num_samples=999)),
        dict(seed=1),
    ])
    def test_key_tracks_every_input(self, mutation):
        graph = _graph()
        base = dict(assignment={"x": 8, "h": 8}, method="psd", n_psd=128,
                    stimulus=StimulusSpec(), seed=0)
        changed = {**base, **mutation}
        assert job_key(graph, base["assignment"], base["method"],
                       base["n_psd"], base["stimulus"], base["seed"]) \
            != job_key(graph, changed["assignment"], changed["method"],
                       changed["n_psd"], changed["stimulus"],
                       changed["seed"])

    def test_n_psd_only_keys_psd_methods(self):
        # Regression: retuning --n-psd must not invalidate the cached
        # simulation (or moment-only) records — only the PSD-based
        # methods depend on the bin count.
        graph = _graph()
        spec = StimulusSpec()
        assignment = {"x": 8, "h": 8}
        for method in ("simulation", "agnostic", "flat"):
            assert job_key(graph, assignment, method, 128, spec, 0) \
                == job_key(graph, assignment, method, 512, spec, 0), method
        for method in ("psd", "psd_tracked"):
            assert job_key(graph, assignment, method, 128, spec, 0) \
                != job_key(graph, assignment, method, 512, spec, 0), method

    def test_key_tracks_graph_content(self):
        spec = StimulusSpec()
        assignment = {"x": 8, "h": 8}
        assert job_key(_graph(), assignment, "psd", 128, spec, 0) \
            != job_key(_graph(taps=(0.1, 0.8, 0.1)), assignment, "psd",
                       128, spec, 0)

    def test_fingerprints_are_insertion_order_stable(self):
        # Same system, nodes added in a different order.
        forward = _graph()
        builder = SfgBuilder("cache-test")
        builder.graph.add_node(forward.nodes["y"].__class__("y"))
        builder.graph.add_node(forward.nodes["h"].__class__(
            "h", [0.25, 0.5, 0.25], quantization=forward.nodes["h"].quantization))
        builder.graph.add_node(forward.nodes["x"].__class__(
            "x", forward.nodes["x"].quantization))
        builder.graph.connect("x", "h", 0)
        builder.graph.connect("h", "y", 0)
        backward = builder.build()
        assert graph_fingerprint(forward) == graph_fingerprint(backward)
        assert assignment_fingerprint({"a": 1, "b": 2}) \
            == assignment_fingerprint({"b": 2, "a": 1})
        assert assignment_fingerprint({"a": 1}) \
            != assignment_fingerprint({"a": None})


class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        assert cache.get("a" * 64) is None
        cache.put("a" * 64, {"power": 1.5})
        record = cache.get("a" * 64)
        assert record["power"] == 1.5
        assert record["key"] == "a" * 64
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == 0.5

    def test_disabled_cache_never_hits(self, tmp_path):
        cache = ResultCache(None)
        cache.put("a" * 64, {"power": 1.0})
        assert cache.get("a" * 64) is None
        assert not cache.enabled

    def test_corrupt_record_is_a_miss_and_heals(self, tmp_path, caplog):
        cache = ResultCache(tmp_path / "cache")
        key = "b" * 64
        cache.put(key, {"power": 2.0})
        cache.path_for(key).write_text("{ not json !!!")
        with caplog.at_level("WARNING", logger="repro.campaign.cache"):
            assert cache.get(key) is None
        assert cache.stats.corrupt == 1
        assert not cache.path_for(key).exists()  # removed, slot heals
        # The self-healing is diagnosable: one warning naming the path.
        (record,) = caplog.records
        assert str(cache.path_for(key)) in record.getMessage()
        cache.put(key, {"power": 3.0})
        assert cache.get(key)["power"] == 3.0

    def test_clean_lookups_do_not_warn(self, tmp_path, caplog):
        cache = ResultCache(tmp_path / "cache")
        key = "e" * 64
        with caplog.at_level("WARNING", logger="repro.campaign.cache"):
            assert cache.get(key) is None  # plain miss: no record on disk
            cache.put(key, {"power": 1.0})
            assert cache.get(key)["power"] == 1.0
        assert caplog.records == []

    def test_mis_keyed_record_is_corrupt(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        key, other = "c" * 64, "d" * 64
        cache.put(key, {"power": 2.0})
        # Simulate a file copied to the wrong slot.
        cache.path_for(other).parent.mkdir(parents=True, exist_ok=True)
        os.replace(cache.path_for(key), cache.path_for(other))
        assert cache.get(other) is None
        assert cache.stats.corrupt == 1

    def test_future_schema_record_is_a_miss_left_on_disk(self, tmp_path,
                                                         caplog):
        # An old binary sharing a cache dir with a newer one must not
        # serve (or destroy) records it cannot interpret.
        import json

        from repro.campaign.cache import CACHE_SCHEMA_VERSION

        cache = ResultCache(tmp_path / "cache")
        key = "f" * 64
        cache.put(key, {"power": 4.0})
        path = cache.path_for(key)
        record = json.loads(path.read_text())
        record["cache_schema"] = CACHE_SCHEMA_VERSION + 1
        path.write_text(json.dumps(record))
        with caplog.at_level("WARNING", logger="repro.campaign.cache"):
            assert cache.get(key) is None
        assert cache.stats.future_schema == 1
        assert cache.stats.corrupt == 0
        assert path.exists()  # left for the newer binary, not deleted
        (log_record,) = caplog.records
        assert "future" in log_record.getMessage()
        assert str(path) in log_record.getMessage()
        # Still readable once this binary understands the version — the
        # record itself was never touched.
        assert json.loads(path.read_text())["power"] == 4.0

    def test_non_integer_schema_is_corrupt(self, tmp_path):
        import json

        cache = ResultCache(tmp_path / "cache")
        key = "9" * 64
        cache.put(key, {"power": 5.0})
        path = cache.path_for(key)
        record = json.loads(path.read_text())
        record["cache_schema"] = "2"
        path.write_text(json.dumps(record))
        assert cache.get(key) is None
        assert cache.stats.corrupt == 1
        assert not path.exists()  # garbage, not a future version: healed

    def test_put_is_atomic_no_temp_left_behind(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        for index in range(4):
            cache.put(f"{index:064d}", {"power": float(index)})
        leftovers = [p for p in (tmp_path / "cache").rglob("*")
                     if p.is_file() and p.suffix != ".json"]
        assert leftovers == []


class TestCampaignResume:
    def test_second_run_is_fully_cached(self, tmp_path):
        spec = _tiny_spec()
        first = run_campaign(spec, cache_dir=tmp_path / "cache")
        assert first.cache_hits == 0
        assert first.computed == len(first.records)
        second = run_campaign(spec, cache_dir=tmp_path / "cache")
        assert second.computed == 0
        assert second.hit_rate == 1.0
        # Cached and computed runs agree record for record.
        for a, b in zip(first.records, second.records):
            assert a["key"] == b["key"]
            assert a["power"] == b["power"]

    def test_overlapping_campaign_reuses_shared_jobs(self, tmp_path):
        run_campaign(_tiny_spec(), cache_dir=tmp_path / "cache")
        # A superset campaign: same grid plus one more wordlength.
        widened = _tiny_spec(wordlengths=(8, 12, 16))
        result = run_campaign(widened, cache_dir=tmp_path / "cache")
        assert result.cache_hits == len(result.records) * 2 // 3
        assert result.computed == len(result.records) // 3

    def test_resume_after_kill(self, tmp_path):
        """A campaign killed mid-way resumes: completed jobs are served
        from the cache, only the remainder is recomputed."""
        spec = _tiny_spec()
        cache_dir = tmp_path / "cache"
        output = tmp_path / "run.jsonl"

        # Simulate the kill: run only the first scenario's jobs (as if
        # the process died before the second scenario was dispatched).
        partial = _tiny_spec(scenarios=spec.scenarios[:1])
        run_campaign(partial, cache_dir=cache_dir, output_path=output)
        records_before = len(output.read_text().splitlines())
        assert records_before > 0

        # The resumed full run recomputes only the second scenario.
        resumed = run_campaign(spec, cache_dir=cache_dir,
                               output_path=output)
        assert resumed.cache_hits == records_before
        assert resumed.computed == len(resumed.records) - records_before
        # The JSONL stream now carries the interrupted run plus the
        # resume; per-key dedup (later wins) reconstructs the campaign.
        lines = [json.loads(line)
                 for line in output.read_text().splitlines()]
        assert len({record["key"] for record in lines}) \
            == len(resumed.records)

    def test_resume_tolerates_corrupted_cache_entries(self, tmp_path):
        spec = _tiny_spec()
        cache_dir = tmp_path / "cache"
        first = run_campaign(spec, cache_dir=cache_dir)
        # Corrupt one record on disk (e.g. disk full during the kill).
        victim = first.records[0]["key"]
        cache = ResultCache(cache_dir)
        cache.path_for(victim).write_text('{"truncated": ')
        resumed = run_campaign(spec, cache_dir=cache_dir)
        assert resumed.computed >= 1
        assert resumed.cache_hits == len(resumed.records) - resumed.computed
        # The healed entry hits on the next run.
        third = run_campaign(spec, cache_dir=cache_dir)
        assert third.hit_rate == 1.0


class TestExpansion:
    def test_single_rate_methods_skipped_on_multirate(self):
        spec = _tiny_spec(methods=("psd", "flat", "psd_tracked"))
        prepared, jobs, skipped = expand_campaign(spec)
        # fft_butterfly is multirate: flat + psd_tracked skip both
        # wordlengths there; table1_fir supports everything.
        assert skipped == 4
        assert {job.method for job in prepared[0].jobs} \
            == {"psd", "flat", "psd_tracked"}
        assert {job.method for job in prepared[1].jobs} == {"psd"}

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError, match="unknown method"):
            expand_campaign(_tiny_spec(methods=("psd", "typo")))

    def test_empty_wordlengths_rejected(self):
        with pytest.raises(ValueError, match="wordlength"):
            expand_campaign(_tiny_spec(wordlengths=()))

    def test_samples_override_is_length_only(self):
        # Regression: --samples must keep each scenario's stimulus kind,
        # amplitude and transient handling, not reset them to defaults.
        from repro.campaign import build_scenario
        default = build_scenario("cascaded_sos_bank").stimulus
        assert default.discard_transient > 0
        spec = _tiny_spec(scenarios=(ScenarioSpec("cascaded_sos_bank"),),
                          stimulus=None, samples=5_000)
        prepared, _, _ = expand_campaign(spec)
        stimulus = prepared[0].stimulus
        assert stimulus.num_samples == 5_000
        assert stimulus.discard_transient == default.discard_transient
        assert stimulus.kind == default.kind
        assert stimulus.amplitude == default.amplitude

    def test_assignments_cover_quantized_nodes_only(self):
        prepared, _, _ = expand_campaign(_tiny_spec())
        for scenario in prepared:
            for job in scenario.jobs:
                assert set(job.assignment) == set(scenario.quantized_nodes)
                assert set(job.assignment.values()) == {job.wordlength}
