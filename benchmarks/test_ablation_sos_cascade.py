"""Ablation — direct-form versus cascade (SOS) realization noise.

Reference [10] of the paper (Jackson 1970) analyzed roundoff noise of
fixed-point filters realized in cascade form; the block-level granularity
of that analysis is exactly the situation the hierarchical estimators of
this library target (each biquad is a block with its own noise source
shaped by the remaining sections).

This ablation takes a selective IIR design, evaluates its output roundoff
noise in the monolithic direct form and in the cascade-of-biquads form —
analytically (proposed PSD method) and by simulation — and verifies that
the estimator tracks the simulation for *both* realizations, i.e. that the
realization-dependent noise differences are real and correctly predicted.
"""

from __future__ import annotations

from repro.analysis.evaluator import AccuracyEvaluator
from repro.data.signals import uniform_white_noise
from repro.lti.iir_design import design_iir_filter
from repro.lti.sos import build_direct_form_graph, build_sos_graph
from repro.utils.tables import TextTable

from conftest import write_bench, write_report


def test_sos_cascade_ablation(benchmark, bench_config, results_dir):
    import time
    start = time.perf_counter()
    bits = 12
    designs = {
        "butterworth order 4, fc=0.3": design_iir_filter(
            4, 0.3, "lowpass", "butterworth"),
        "chebyshev order 6, fc=0.25": design_iir_filter(
            6, 0.25, "lowpass", "chebyshev1"),
    }

    table = TextTable(
        ["design", "realization", "simulated power", "PSD estimate", "Ed [%]"],
        title=f"Ablation — direct form vs cascade of biquads (d = {bits} bits)")

    stimulus = uniform_white_noise(50_000, seed=33)
    all_sub_one_bit = True
    realization_gap_seen = False
    for name, (b, a) in designs.items():
        powers = {}
        for realization, graph in (
                ("direct", build_direct_form_graph(b, a, bits)),
                ("cascade", build_sos_graph(b, a, bits))):
            evaluator = AccuracyEvaluator(graph, n_psd=1024)
            comparison = evaluator.compare(stimulus, methods=("psd",),
                                           discard_transient=1000)
            report = comparison.reports["psd"]
            powers[realization] = comparison.simulation.error_power
            all_sub_one_bit &= report.sub_one_bit
            table.add_row(name, realization,
                          comparison.simulation.error_power,
                          report.estimate.power, round(report.ed_percent, 2))
        ratio = powers["direct"] / powers["cascade"]
        if ratio > 1.5 or ratio < 1.0 / 1.5:
            realization_gap_seen = True

    write_report(results_dir, "ablation_sos_cascade.txt", table.render())
    write_bench(results_dir, "ablation_sos_cascade",
                workload={"fractional_bits": bits,
                          "designs": sorted(designs)},
                seconds={"harness": time.perf_counter() - start},
                tags=("accuracy",))

    assert all_sub_one_bit, \
        "the PSD estimator must track both realizations within one bit"
    assert realization_gap_seen, \
        "the realization should change the roundoff noise noticeably"

    b, a = designs["chebyshev order 6, fc=0.25"]
    evaluator = AccuracyEvaluator(build_sos_graph(b, a, bits), n_psd=1024)
    benchmark(lambda: evaluator.estimate("psd").power)
