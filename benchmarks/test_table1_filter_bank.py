"""Table I — relative error-power estimation statistics over the filter bank.

The paper evaluates the proposed PSD estimator on 147 FIR filters (16-128
taps) and 147 IIR filters (order 2-10) and reports the minimum, maximum
and mean-absolute MSE deviation ``Ed`` against simulation:

=============  ========  ========
paper          FIR       IIR
=============  ========  ========
min(Ed)        -0.37 %   -19.4 %
max(Ed)        +0.37 %   +31.2 %
mean(|Ed|)      0.11 %     9.44 %
=============  ========  ========

This harness regenerates the same three-row table on a systematically
generated bank (reduced to 21 + 21 filters by default, 147 + 147 with
``REPRO_FULL_BENCH=1``) and asserts the shape-level claims: the FIR column
is much tighter than the IIR column and both stay within the sub-one-bit
band.
"""

from __future__ import annotations

from repro.systems.filter_bank import (
    evaluate_filter_bank,
    generate_fir_bank,
    generate_iir_bank,
)
from repro.utils.tables import TextTable

from conftest import write_bench, write_report


def test_table1_filter_bank(benchmark, bench_config, results_dir):
    import time
    start = time.perf_counter()
    count = bench_config["filter_bank_count"]
    samples = bench_config["filter_bank_samples"]
    n_psd = bench_config["default_n_psd"]

    fir_bank = generate_fir_bank(count)
    iir_bank = generate_iir_bank(count)

    fir_result = evaluate_filter_bank(
        fir_bank, fractional_bits=16, num_samples=samples, n_psd=n_psd)
    iir_result = evaluate_filter_bank(
        iir_bank, fractional_bits=16, num_samples=samples, n_psd=n_psd)

    fir_row = fir_result.summary_row()
    iir_row = iir_result.summary_row()

    table = TextTable(
        ["statistic", "FIR filters", "IIR filters", "paper FIR", "paper IIR"],
        title=(f"Table I — Ed statistics over {count} FIR + {count} IIR "
               f"filters ({bench_config['mode']} mode, {samples} samples, "
               f"N_PSD={n_psd})"))
    table.add_row("min(Ed) [%]", round(fir_row[0], 3), round(iir_row[0], 3),
                  -0.37, -19.4)
    table.add_row("max(Ed) [%]", round(fir_row[1], 3), round(iir_row[1], 3),
                  0.37, 31.2)
    table.add_row("mean(|Ed|) [%]", round(fir_row[2], 3), round(iir_row[2], 3),
                  0.11, 9.44)
    write_report(results_dir, "table1_filter_bank.txt", table.render())
    write_bench(results_dir, "table1_filter_bank",
                workload={"filters": 2 * count, "samples": samples,
                          "n_psd": n_psd,
                          "fir_mean_abs_ed": fir_result.mean_abs_ed,
                          "iir_mean_abs_ed": iir_result.mean_abs_ed},
                seconds={"harness": time.perf_counter() - start},
                tags=("accuracy",))

    # Shape-level reproduction claims.
    assert fir_result.mean_abs_ed < 0.05, "FIR estimates should be within a few %"
    assert iir_result.mean_abs_ed < 0.5, "IIR estimates should stay sub-one-bit"
    assert fir_result.mean_abs_ed <= iir_result.mean_abs_ed + 0.02, \
        "FIR column should be tighter than IIR column"

    # Benchmark the cost of one analytical evaluation (the quantity that
    # must stay small for the refinement loop to scale).
    from repro.analysis.psd_method import evaluate_psd
    from repro.systems.filter_bank import build_filter_graph

    graph = build_filter_graph(fir_bank[0], fractional_bits=16)
    benchmark(lambda: evaluate_psd(graph, n_psd).total_power)
