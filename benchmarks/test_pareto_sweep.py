"""Configuration-batched word-length search and the Pareto budget sweep.

PR 1 made *one* evaluation cheap by compiling the graph into a reusable
plan; this harness quantifies the next layer: evaluating a whole greedy
round of single-bit-decrement candidates as one configuration-batched
pass instead of one plan walk per candidate.  Three claims are pinned:

* **equivalence** — the batched greedy search returns bit-identical
  assignments, powers and histories to the sequential baseline on
  Table-I filter-bank systems (where coefficient precision tracks the
  data path, the hardest case for response sharing);
* **speed** — a full batched search on a ten-stage cascade is at least
  2x faster per greedy round than the sequential baseline;
* **scale** — sweeping a range of noise budgets through the shared
  optimizer yields a cost-vs-noise Pareto front (>= 5 points), each point
  cross-validated against the Monte-Carlo reference.
"""

from __future__ import annotations

import time

from repro.lti.fir_design import design_fir_highpass, design_fir_lowpass
from repro.lti.iir_design import design_iir_filter
from repro.sfg.builder import SfgBuilder
from repro.systems.filter_bank import (
    build_filter_graph,
    generate_fir_bank,
    generate_iir_bank,
)
from repro.systems.pareto import budget_range, sweep_noise_budgets
from repro.systems.wordlength import WordLengthOptimizer
from repro.utils.tables import TextTable

from conftest import write_bench, write_report


def _cascade_graph(stages: int = 10, bits: int = 16):
    """A deep FIR/IIR cascade: one tunable word length per stage."""
    builder = SfgBuilder("ten-stage-cascade")
    signal = builder.input("x", fractional_bits=bits)
    for index in range(stages):
        if index % 3 == 2:
            b, a = design_iir_filter(3, 0.2 + 0.05 * index, kind="lowpass",
                                     family="butterworth")
            signal = builder.iir(f"iir{index}", b, a, signal,
                                 fractional_bits=bits)
        elif index % 3 == 1:
            signal = builder.fir(f"fir{index}", design_fir_highpass(11, 0.3),
                                 signal, fractional_bits=bits)
        else:
            signal = builder.fir(f"fir{index}", design_fir_lowpass(13, 0.45),
                                 signal, fractional_bits=bits)
    builder.output("y", signal)
    return builder.build()


def test_pareto_sweep_and_batched_speedup(bench_config, results_dir):
    n_psd = min(512, bench_config["default_n_psd"])
    budget = 1e-7

    # --- equivalence on Table-I filter-bank systems -----------------------
    entries = generate_fir_bank(2) + generate_iir_bank(2)
    for entry in entries:
        batched = WordLengthOptimizer(build_filter_graph(entry, 16),
                                      n_psd=n_psd, batch=True)
        sequential = WordLengthOptimizer(build_filter_graph(entry, 16),
                                         n_psd=n_psd, batch=False)
        result_b = batched.optimize(budget)
        result_s = sequential.optimize(budget)
        assert result_b.assignment == result_s.assignment, entry.name
        assert result_b.noise_power == result_s.noise_power, entry.name
        assert result_b.history == result_s.history, entry.name

    # --- per-round speed-up on the ten-stage cascade ----------------------
    timings = {}
    results = {}
    for batch in (True, False):
        graph = _cascade_graph()
        optimizer = WordLengthOptimizer(graph, method="psd", n_psd=n_psd,
                                        batch=batch)
        optimizer.optimize(budget)  # warm the response cache
        start = time.perf_counter()
        results[batch] = optimizer.optimize(budget)
        timings[batch] = time.perf_counter() - start
    assert results[True].assignment == results[False].assignment
    assert results[True].history == results[False].history
    # Same number of greedy rounds on both sides (identical trajectories),
    # so the whole-search ratio is the per-round ratio.
    rounds = len(results[True].history)
    per_round = {batch: timings[batch] / rounds for batch in timings}
    speedup = per_round[False] / per_round[True]

    # --- the budget sweep -------------------------------------------------
    sweep_points = 7 if bench_config["mode"] == "full" else 6
    validate = (bench_config["filter_bank_samples"]
                if bench_config["mode"] == "full" else 20_000)
    sweep_graph = _cascade_graph()
    start = time.perf_counter()
    front = sweep_noise_budgets(sweep_graph,
                                budget_range(1e-5, 1e-8, sweep_points),
                                method="psd", n_psd=n_psd,
                                validate_samples=validate)
    sweep_time = time.perf_counter() - start

    table = TextTable(
        ["quantity", "value"],
        title=(f"Batched word-length search + Pareto sweep "
               f"({bench_config['mode']} mode, N_PSD={n_psd})"))
    table.add_row("greedy search, batched [s]", round(timings[True], 4))
    table.add_row("greedy search, sequential [s]", round(timings[False], 4))
    table.add_row("greedy rounds", rounds)
    table.add_row("per-round speed-up", round(speedup, 2))
    table.add_row("analytical evaluations", results[True].evaluations)
    table.add_row(f"sweep wall clock [s] ({sweep_points} budgets)",
                  round(sweep_time, 3))
    table.add_row("pareto points", len(front.points))
    table.add_row("pareto-optimal points", len(front.pareto_points()))
    report = table.render() + "\n\n" + front.describe()
    write_report(results_dir, "pareto_sweep.txt", report)
    write_bench(results_dir, "pareto_sweep",
                workload={"n_psd": n_psd, "greedy_rounds": rounds,
                          "sweep_points": sweep_points,
                          "pareto_points": len(front.points)},
                seconds={"greedy_batched": timings[True],
                         "greedy_sequential": timings[False],
                         "sweep": sweep_time},
                speedup={"per_round": speedup},
                tags=("pareto",))

    # Acceptance: >= 2x per greedy round, and a front of >= 5 points, each
    # inside the sub-one-bit band of its own Monte-Carlo validation.
    assert speedup >= 2.0, \
        f"batched rounds should be at least 2x faster, got {speedup:.2f}x"
    assert len(front.points) >= 5
    for point in front.points:
        assert point.noise_power <= point.budget
        assert -3.0 < point.ed < 0.75, \
            f"estimate off by over one bit at budget {point.budget:.1e}"
