"""Ablation E8 — scalability of the evaluation (Section III-B).

The paper argues that after the one-time ``O(N log N)`` characterization
of each block, one evaluation of the proposed method costs ``O(N_PSD)``
per block, i.e. it is linear both in the number of blocks and in the
number of PSD bins, whereas the flat method's path enumeration grows much
faster with system size.

This ablation measures the evaluation time of the PSD method on chains of
increasing length and for increasing ``N_PSD``, fits the growth exponent
(log-log slope) and asserts that it is close to linear; it also measures
how the flat method's cost grows on the same chains for comparison.
"""

from __future__ import annotations

import numpy as np

from repro.analysis._engine import memoization_disabled
from repro.analysis.flat_method import evaluate_flat
from repro.analysis.psd_method import evaluate_psd
from repro.systems.families import build_scalability_chain as _chain_graph
from repro.utils.tables import TextTable
from repro.utils.timing import time_callable

from conftest import write_bench, write_report


def _loglog_slope(x, y) -> float:
    return float(np.polyfit(np.log(np.asarray(x, float)),
                            np.log(np.asarray(y, float)), 1)[0])


def test_scalability_in_blocks_and_bins(benchmark, bench_config, results_dir):
    n_psd = 512
    block_counts = (2, 4, 8, 16, 32)

    table = TextTable(
        ["blocks", "PSD eval [s]", "flat eval [s]"],
        title=f"Ablation — evaluation time versus chain length (N_PSD={n_psd})")
    psd_times = []
    flat_times = []
    # The scalability claim is about the cost of one *cold* evaluation;
    # with the per-plan noise memo enabled, every repeat after the first
    # would be a (near-free) memo hit and the fitted slopes meaningless.
    with memoization_disabled():
        for count in block_counts:
            graph = _chain_graph(count)
            _, psd_time = time_callable(lambda: evaluate_psd(graph, n_psd),
                                        repeat=3)
            _, flat_time = time_callable(lambda: evaluate_flat(graph),
                                         repeat=3)
            psd_times.append(psd_time)
            flat_times.append(flat_time)
            table.add_row(count, round(psd_time, 5), round(flat_time, 5))

    bin_counts = (64, 128, 256, 512, 1024, 2048)
    graph = _chain_graph(8)
    bin_table = TextTable(
        ["N_PSD", "PSD eval [s]"],
        title="Ablation — evaluation time versus N_PSD (8-block chain)")
    bin_times = []
    with memoization_disabled():
        for bins in bin_counts:
            _, elapsed = time_callable(lambda: evaluate_psd(graph, bins),
                                       repeat=3)
            bin_times.append(elapsed)
            bin_table.add_row(bins, round(elapsed, 5))

    block_slope = _loglog_slope(block_counts, psd_times)
    flat_slope = _loglog_slope(block_counts, flat_times)
    bin_slope = _loglog_slope(bin_counts, bin_times)
    summary = TextTable(["quantity", "log-log slope"],
                        title="Ablation — fitted growth exponents")
    summary.add_row("PSD method vs number of blocks", round(block_slope, 2))
    summary.add_row("flat method vs number of blocks", round(flat_slope, 2))
    summary.add_row("PSD method vs N_PSD", round(bin_slope, 2))

    report = "\n\n".join([table.render(), bin_table.render(), summary.render()])
    write_report(results_dir, "ablation_scalability.txt", report)
    write_bench(results_dir, "ablation_scalability",
                workload={"block_counts": list(block_counts),
                          "bin_counts": list(bin_counts),
                          "psd_block_slope": block_slope,
                          "flat_block_slope": flat_slope,
                          "psd_bin_slope": bin_slope},
                seconds={"psd_eval_32_blocks": psd_times[-1],
                         "flat_eval_32_blocks": flat_times[-1]},
                tags=("scalability",))

    # Claims: the PSD method is (sub-)linear in both dimensions; the flat
    # method grows super-linearly with the chain length (path functions
    # lengthen as the chain grows).
    assert block_slope < 1.6
    assert bin_slope < 1.4
    assert flat_slope > block_slope

    def _cold_eval():
        with memoization_disabled():
            return evaluate_psd(_chain_graph(16), n_psd)

    benchmark(_cold_eval)
