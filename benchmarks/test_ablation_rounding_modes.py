"""Ablation — rounding versus truncation noise models.

The PQN model gives different means for rounding (unbiased) and truncation
(bias of half an LSB); through blocks with non-zero DC gain those means
accumulate coherently and can dominate the output error power.  This
ablation runs the colored-noise cascade under both rounding modes and
checks that (a) the estimators track simulation in both cases and (b) the
truncation-mode output power is dominated by the propagated mean, which
is the reason the DC bin / signed-mean handling exists at all.
"""

from __future__ import annotations

from repro.analysis.evaluator import AccuracyEvaluator
from repro.data.signals import uniform_white_noise
from repro.lti.fir_design import design_fir_lowpass
from repro.sfg.builder import SfgBuilder
from repro.utils.tables import TextTable

from conftest import write_bench, write_report


def _cascade(fractional_bits, rounding):
    builder = SfgBuilder(f"cascade-{rounding}")
    x = builder.input("x", fractional_bits=fractional_bits, rounding=rounding)
    lp1 = builder.fir("lp1", design_fir_lowpass(21, 0.6), x,
                      fractional_bits=fractional_bits, rounding=rounding)
    lp2 = builder.fir("lp2", design_fir_lowpass(21, 0.4), lp1,
                      fractional_bits=fractional_bits, rounding=rounding)
    builder.output("y", lp2)
    return builder.build()


def test_rounding_mode_ablation(benchmark, bench_config, results_dir):
    import time
    start = time.perf_counter()
    bits = 12
    table = TextTable(
        ["rounding mode", "simulated power", "PSD estimate", "Ed [%]",
         "estimated mean^2 share [%]"],
        title=f"Ablation — rounding vs truncation (d = {bits} bits)")

    results = {}
    for rounding in ("round", "truncate"):
        graph = _cascade(bits, rounding)
        evaluator = AccuracyEvaluator(graph, n_psd=512)
        comparison = evaluator.compare(
            uniform_white_noise(60_000, seed=17), methods=("psd",),
            discard_transient=64)
        report = comparison.reports["psd"]
        mean_share = 100.0 * (report.estimate.mean ** 2) / report.estimate.power
        results[rounding] = (comparison.simulation.error_power, report)
        table.add_row(rounding, comparison.simulation.error_power,
                      report.estimate.power, round(report.ed_percent, 2),
                      round(mean_share, 1))

    write_report(results_dir, "ablation_rounding_modes.txt", table.render())
    write_bench(results_dir, "ablation_rounding_modes",
                workload={"fractional_bits": bits,
                          "modes": sorted(results)},
                seconds={"harness": time.perf_counter() - start},
                tags=("accuracy",))

    round_sim, round_report = results["round"]
    trunc_sim, trunc_report = results["truncate"]

    assert round_report.sub_one_bit and trunc_report.sub_one_bit
    # Truncation accumulates a deterministic bias through the DC gains, so
    # its total output error power must exceed the rounding-mode power.
    assert trunc_sim > 2.0 * round_sim
    assert trunc_report.estimate.mean ** 2 > 0.5 * trunc_report.estimate.power

    graph = _cascade(bits, "truncate")
    evaluator = AccuracyEvaluator(graph, n_psd=512)
    benchmark(lambda: evaluator.estimate("psd").power)
