"""Fine-grained word-length search — per-edge taps on the incremental
backbone.

Per-edge granularity multiplies the search space (one fractional width
per fanout branch on top of one per node), which only pays off if a
one-edge candidate edit stays cheap.  This harness pins the two claims
of the fine-grained-search PR on the scalability workloads
(:mod:`repro.systems.families`):

* **per-candidate cost scales with cone depth, not graph size** — a
  single fanout-tap edit (``x->branch_i``) dirties one branch plus its
  ``log2(branches)``-deep adder path, so growing the bank 4x (16 -> 64
  branches, cone depth +2) must grow the *warm* per-candidate cost far
  slower than the cold full walk; operationally, the warm-vs-cold
  speedup must increase with the bank width, and the 16-branch speedup
  must meet the committed ``fine_grained_search.per_candidate`` floor of
  ``benchmarks/bench_baseline.json`` (the same floor ``repro bench
  --check`` gates in CI);
* **a lower total-bits front at the same budget** — the edge-granularity
  greedy search must end strictly below the node-level search's total
  fractional bits on the same bank and noise budget, with the
  incremental and sequential modes bit-identical at edge granularity.

Every timed comparison asserts the per-candidate noise powers are
bitwise identical between the memoized and the memo-blind runs before
any speedup is reported.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.analysis._engine import memoization_disabled, plan_memo
from repro.analysis.psd_method import evaluate_psd
from repro.bench import load_baseline, required_floor
from repro.sfg.plan import compile_plan
from repro.systems.families import build_scalability_bank
from repro.systems.wordlength import WordLengthOptimizer
from repro.utils.tables import TextTable
from repro.utils.timing import time_callable

from conftest import write_bench, write_report

_BASELINE = Path(__file__).parent / "bench_baseline.json"


def _tap_replay(plan, edits, n_psd):
    """One per-edge candidate pass: tap each edit, evaluate, restore."""
    powers = []
    with plan.preserve_quantization():
        for key, bits in edits:
            plan.requantize({key: bits})
            powers.append(evaluate_psd(plan, n_psd).total_power)
    return np.asarray(powers)


def _timed_tap_replays(plan, edits, n_psd, repeat):
    """(cold seconds, warm seconds) for one per-edge edit sequence.

    The cold run replays under :func:`memoization_disabled` (every
    candidate pays a full walk); the warm run pulls from the plan's
    memo (every candidate pays the tapped branch's dirty cone).  Both
    are preceded by one untimed pass, and both must produce bitwise
    identical per-candidate powers.
    """
    with memoization_disabled():
        _tap_replay(plan, edits, n_psd)
        cold, cold_seconds = time_callable(
            lambda: _tap_replay(plan, edits, n_psd), repeat=repeat)
    evaluate_psd(plan, n_psd)  # sync the memo on the restored baseline
    _tap_replay(plan, edits, n_psd)
    warm, warm_seconds = time_callable(
        lambda: _tap_replay(plan, edits, n_psd), repeat=repeat)
    assert np.array_equal(cold, warm), \
        "memoized per-edge candidate powers drifted from the cold walks"
    return cold_seconds, warm_seconds


def test_fine_grained_search(benchmark, bench_config, results_dir):
    n_psd = 256
    full = bench_config["mode"] == "full"
    widths = (16, 128) if full else (16, 64)
    candidates = 16
    repeat = 3
    budget_factor = 16.0

    # --- tap-edit scalability: cone depth vs graph size ------------------
    rows = []
    speedups = {}
    for branches in widths:
        bank = build_scalability_bank(branches=branches)
        plan = compile_plan(bank)
        edits = [(f"x->branch{index}", 12 - index % 2)
                 for index in range(min(candidates, branches))]
        cold, warm = _timed_tap_replays(plan, edits, n_psd, repeat)
        speedups[branches] = cold / warm
        rows.append((branches, bank.name, len(plan.steps), len(edits),
                     cold, warm))

    # --- search fronts: edge granularity vs node granularity -------------
    probe = build_scalability_bank(branches=widths[0])
    budget = float(evaluate_psd(probe, n_psd).total_power) * budget_factor
    node_result = WordLengthOptimizer(
        build_scalability_bank(branches=widths[0]),
        n_psd=n_psd).optimize(budget)
    edge_result = WordLengthOptimizer(
        build_scalability_bank(branches=widths[0]), n_psd=n_psd,
        granularity="edge").optimize(budget)
    sequential = WordLengthOptimizer(
        build_scalability_bank(branches=widths[0]), n_psd=n_psd,
        granularity="edge", mode="sequential").optimize(budget)
    assert edge_result.assignment == sequential.assignment
    assert edge_result.noise_power == sequential.noise_power
    assert edge_result.evaluations == sequential.evaluations
    assert edge_result.cone_recomputes > 0
    assert sequential.cone_recomputes == 0
    assert edge_result.noise_power <= budget

    # --- report and payload ----------------------------------------------
    counters = plan_memo(compile_plan(
        build_scalability_bank(branches=widths[-1]))).counters()
    table = TextTable(
        ["workload", "steps", "tap edits", "full walk [s/cand]",
         "dirty cone [s/cand]", "speedup"],
        title=(f"fine-grained search ({bench_config['mode']} mode, "
               f"N_PSD={n_psd}; per-edge tap edits, memoized cone pulls "
               "vs cold full walks, bitwise identical powers)"))
    for branches, name, steps, count, cold, warm in rows:
        table.add_row(name, steps, count, round(cold / count, 6),
                      round(warm / count, 6),
                      round(speedups[branches], 1))
    search_lines = [
        f"greedy search on scalability-bank-{widths[0]} "
        f"(budget {budget:.3e}, {budget_factor:g}x the all-default power):",
        f"  node granularity: {node_result.total_bits} total bits "
        f"({node_result.evaluations} evaluations)",
        f"  edge granularity: {edge_result.total_bits} total bits "
        f"({edge_result.evaluations} evaluations, "
        f"{edge_result.cone_recomputes} cone recomputes; incremental and "
        "sequential modes bit-identical)",
    ]
    write_report(results_dir, "fine_grained_search.txt",
                 table.render() + "\n\n" + "\n".join(search_lines))
    write_bench(results_dir, "fine_grained_search",
                workload={"widths": list(widths), "candidates": candidates,
                          "n_psd": n_psd, "budget_factor": budget_factor,
                          "node_total_bits": node_result.total_bits,
                          "edge_total_bits": edge_result.total_bits,
                          "node_evaluations": node_result.evaluations,
                          "edge_evaluations": edge_result.evaluations,
                          "steps_recomputed": counters["steps_recomputed"],
                          "steps_reused": counters["steps_reused"]},
                seconds={f"bank{branches}_{kind}": value
                         for branches, name, steps, count, cold, warm in rows
                         for kind, value in (("full_walks", cold),
                                             ("dirty_cones", warm))},
                speedup={"per_candidate": speedups[widths[0]],
                         "wide_per_candidate": speedups[widths[-1]]},
                tags=("smoke", "analysis", "scalability"))

    # The acceptance claims.
    assert edge_result.total_bits < node_result.total_bits, \
        (f"edge-granularity search ended at {edge_result.total_bits} "
         f"total bits, not strictly below the node-level "
         f"{node_result.total_bits} at the same budget")
    floor = required_floor(load_baseline(_BASELINE), "fine_grained_search",
                           "per_candidate", _BASELINE)
    assert speedups[widths[0]] >= floor, \
        (f"per-edge per-candidate speedup {speedups[widths[0]]:.1f}x fell "
         f"below the committed {floor:g}x floor on the "
         f"{widths[0]}-branch bank")
    # Cone depth grows with log2(branches) while the cold walk grows
    # linearly, so the warm-vs-cold advantage must widen with the bank.
    assert speedups[widths[-1]] > speedups[widths[0]], \
        (f"per-candidate speedup did not grow with the bank width: "
         f"{speedups[widths[0]]:.1f}x at {widths[0]} branches vs "
         f"{speedups[widths[-1]]:.1f}x at {widths[-1]}")

    bank = build_scalability_bank(branches=widths[0])
    plan = compile_plan(bank)
    benchmark(lambda: _tap_replay(plan, [("x->branch0", 12)], n_psd))
