"""Fig. 4 — deviation ``Ed`` versus the fractional bit-width ``d``.

The paper sweeps the uniform fractional word length of the two multi-block
systems from 8 to 32 bits (steps of 4) and shows that the proposed
method's deviation stays within roughly +/-10 % over the whole range.

This harness regenerates the two series (frequency-domain filter and DWT
codec).  With the reduced workload the Monte-Carlo reference itself
carries a few percent of statistical uncertainty, so the assertion is the
paper's qualitative claim: the deviation stays well inside the
sub-one-bit band (Ed in (-300 %, +75 %); the check below uses the tighter
symmetric |Ed| < 75 %) at every word length, and within ~25 % for
the PSD method.

Note: beyond ~24 fractional bits the error of the double-precision
reference itself becomes comparable to the quantization noise
(2^-53 vs 2^-2d), which is why the full 32-bit point is only meaningful
in full mode with many samples; the reduced sweep stops at 24 bits.
"""

from __future__ import annotations

from repro.data.images import ImageGenerator
from repro.data.signals import uniform_white_noise
from repro.systems.dwt.codec import Dwt97Codec
from repro.systems.freq_filter import FrequencyDomainFilter
from repro.utils.tables import TextTable

from conftest import write_bench, write_report


def test_fig4_ed_vs_bitwidth(benchmark, bench_config, results_dir):
    import time
    start = time.perf_counter()
    n_psd = bench_config["default_n_psd"]
    bitwidths = bench_config["bitwidth_sweep"]

    table = TextTable(
        ["d [bits]", "Freq. Filt. Ed [%]", "DWT 9/7 Ed [%]"],
        title=(f"Fig. 4 — Ed versus fractional bit-width "
               f"({bench_config['mode']} mode, N_PSD={n_psd}, PSD method)"))

    freq_series = []
    dwt_series = []
    for bits in bitwidths:
        system = FrequencyDomainFilter(fractional_bits=bits, n_psd=n_psd)
        stimulus = uniform_white_noise(bench_config["freq_filter_samples"],
                                       seed=bits)
        ff = system.compare(stimulus, methods=("psd",)).reports["psd"].ed_percent

        codec = Dwt97Codec(fractional_bits=bits, levels=2)
        images = ImageGenerator(size=bench_config["dwt_image_size"],
                                seed=bits).corpus(bench_config["dwt_images"])
        dwt = 100.0 * codec.compare(images, n_psd=n_psd,
                                    methods=("psd",))["methods"]["psd"]["ed"]
        freq_series.append(ff)
        dwt_series.append(dwt)
        table.add_row(bits, round(ff, 2), round(dwt, 2))

    write_report(results_dir, "fig4_ed_vs_bitwidth.txt", table.render())
    write_bench(results_dir, "fig4_ed_vs_bitwidth",
                workload={"n_psd": n_psd, "bitwidths": list(bitwidths),
                          "max_abs_ed_percent": max(
                              abs(v) for v in freq_series + dwt_series)},
                seconds={"harness": time.perf_counter() - start},
                tags=("accuracy",))

    assert all(abs(value) < 75.0 for value in freq_series + dwt_series), \
        "every point must stay within the sub-one-bit band"
    assert all(abs(value) < 30.0 for value in freq_series), \
        "frequency-filter deviations should stay within tens of percent"

    # Benchmark one estimation at the middle word length.
    system = FrequencyDomainFilter(fractional_bits=16, n_psd=n_psd)
    benchmark(lambda: system.evaluator.estimate("psd", n_psd=n_psd).power)
