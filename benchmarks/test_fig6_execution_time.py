"""Fig. 6 — execution time and speed-up versus ``N_PSD``.

The paper measures, for both multi-block systems, the wall-clock time of
the Monte-Carlo simulation and of the proposed estimation as a function of
``N_PSD`` (16 to 4096) and reports speed-ups of 3 to 5 orders of magnitude
with estimation times around a millisecond.

This harness regenerates the same series: simulation time (measured once,
it does not depend on ``N_PSD``), estimation time per ``N_PSD`` value, and
the resulting speed-up.  Absolute values differ from the paper (Python
versus MATLAB, reduced sample counts), but the asserted claims are
shape-level: estimation is always faster than simulation, the speed-up is
at least an order of magnitude (several orders in full mode), and the
estimation time grows sub-linearly-to-linearly with ``N_PSD``.
"""

from __future__ import annotations

import time

from repro.analysis._engine import memoization_disabled
from repro.data.images import ImageGenerator
from repro.data.signals import uniform_white_noise
from repro.systems.dwt.codec import Dwt97Codec
from repro.systems.freq_filter import FrequencyDomainFilter
from repro.utils.tables import TextTable
from repro.utils.timing import time_callable

from conftest import write_bench, write_report


def test_fig6_execution_time(benchmark, bench_config, results_dir):
    sweep = bench_config["timing_n_psd_sweep"]
    bits = 12

    # --- measure the simulation reference once per system -----------------
    system = FrequencyDomainFilter(fractional_bits=bits, n_psd=1024)
    stimulus = uniform_white_noise(bench_config["freq_filter_samples"], seed=1)
    start = time.perf_counter()
    system.evaluator.simulate({"x": stimulus}, discard_transient=64)
    ff_sim_time = time.perf_counter() - start

    # The timing comparison needs a simulation workload that is at least
    # somewhat representative (the paper's takes hours); even in reduced
    # mode use a reasonable image corpus so the measured speed-up is not an
    # artefact of a degenerate baseline.
    codec = Dwt97Codec(fractional_bits=bits, levels=2)
    images = ImageGenerator(size=max(128, bench_config["dwt_image_size"]),
                            seed=9).corpus(max(8, bench_config["dwt_images"]))
    start = time.perf_counter()
    codec.simulated_error_power(images)
    dwt_sim_time = time.perf_counter() - start

    # --- estimation time versus N_PSD -------------------------------------
    table = TextTable(
        ["N_PSD", "F.F. est. [s]", "F.F. speed-up", "DWT est. [s]",
         "DWT speed-up"],
        title=(f"Fig. 6 — execution time and speed-up versus N_PSD "
               f"({bench_config['mode']} mode; simulation: "
               f"F.F. {ff_sim_time:.2f}s on {len(stimulus)} samples, "
               f"DWT {dwt_sim_time:.2f}s on {len(images)} images)"))

    ff_times = []
    dwt_times = []
    # Fig. 6 reports the cost of a cold estimation; with the per-plan
    # noise memo enabled, the timed repeats would be memo hits and the
    # measured "estimation time" would not be the paper's quantity.
    with memoization_disabled():
        for n_psd in sweep:
            _, ff_time = time_callable(
                lambda: system.evaluator.estimate("psd", n_psd=n_psd),
                repeat=3)
            _, dwt_time = time_callable(
                lambda: codec.estimate_error_power(n_psd=n_psd, method="psd"),
                repeat=3)
            ff_times.append(ff_time)
            dwt_times.append(dwt_time)
            table.add_row(n_psd, round(ff_time, 5),
                          round(ff_sim_time / ff_time, 1),
                          round(dwt_time, 5),
                          round(dwt_sim_time / dwt_time, 1))

    write_report(results_dir, "fig6_execution_time.txt", table.render())
    write_bench(results_dir, "fig6_execution_time",
                workload={"ff_samples": len(stimulus), "dwt_images": len(images),
                          "n_psd_sweep": list(sweep)},
                seconds={"ff_simulation": ff_sim_time,
                         "dwt_simulation": dwt_sim_time,
                         "ff_estimation_finest": ff_times[-1],
                         "dwt_estimation_finest": dwt_times[-1]},
                speedup={"ff_estimation_vs_simulation":
                         ff_sim_time / min(ff_times),
                         "dwt_estimation_vs_simulation":
                         dwt_sim_time / min(dwt_times)},
                tags=("fig6",))

    # Shape-level claims.
    assert all(t < ff_sim_time for t in ff_times), \
        "estimation must always be faster than simulation (freq. filter)"
    assert all(t < dwt_sim_time for t in dwt_times), \
        "estimation must always be faster than simulation (DWT)"
    assert ff_sim_time / min(ff_times) > 10.0, \
        "speed-up should exceed one order of magnitude even in reduced mode"

    # pytest-benchmark record of the finest-grid (cold) estimation.
    def _cold_estimate():
        with memoization_disabled():
            return system.evaluator.estimate("psd", n_psd=sweep[-1])

    benchmark(_cold_estimate)
