"""Fig. 5 — deviation ``Ed`` versus the number of PSD samples ``N_PSD``.

The paper fixes the word length and sweeps ``N_PSD`` over powers of two
from 16 to 1024: the deviation starts around -8 % (frequency filter) /
+1 % (DWT) at 16 bins and converges into the +/-1 % band as the number of
bins grows.

This harness regenerates the two series.  The asserted shape-level claims
are (a) every point is sub-one-bit and (b) the coarsest grid is not more
accurate than the finest grid (accuracy does not degrade with more bins).

The paper runs this experiment at d = 32; with double-precision
references, quantization noise at 2^-64 would be at the numerical noise
floor, so the harness uses d = 16 (full mode: d = 20) — the deviation
``Ed`` is a *relative* quantity and its dependence on ``N_PSD`` is what
the figure demonstrates.
"""

from __future__ import annotations

from repro.data.images import ImageGenerator
from repro.data.signals import uniform_white_noise
from repro.systems.dwt.codec import Dwt97Codec
from repro.systems.freq_filter import FrequencyDomainFilter
from repro.utils.tables import TextTable

from conftest import full_mode, write_bench, write_report


def test_fig5_ed_vs_npsd(benchmark, bench_config, results_dir):
    import time
    start = time.perf_counter()
    bits = 20 if full_mode() else 16
    sweep = bench_config["n_psd_sweep"]

    system = FrequencyDomainFilter(fractional_bits=bits, n_psd=1024)
    stimulus = uniform_white_noise(bench_config["freq_filter_samples"], seed=3)
    ff_simulated = system.compare(stimulus, methods=("psd",), n_psd=64)

    codec = Dwt97Codec(fractional_bits=bits, levels=2)
    images = ImageGenerator(size=bench_config["dwt_image_size"],
                            seed=5).corpus(bench_config["dwt_images"])
    dwt_simulated_power = codec.simulated_error_power(images)

    table = TextTable(
        ["N_PSD", "Freq. Filt. Ed [%]", "DWT 9/7 Ed [%]"],
        title=(f"Fig. 5 — Ed versus N_PSD ({bench_config['mode']} mode, "
               f"d = {bits} bits, PSD method)"))

    ff_series = []
    dwt_series = []
    for n_psd in sweep:
        ff_estimate = system.evaluator.estimate("psd", n_psd=n_psd).power
        ff_ed = 100.0 * (ff_simulated.simulation.error_power - ff_estimate) \
            / ff_simulated.simulation.error_power
        dwt_estimate = codec.estimate_error_power(n_psd=n_psd, method="psd")
        dwt_ed = 100.0 * (dwt_simulated_power - dwt_estimate) \
            / dwt_simulated_power
        ff_series.append(ff_ed)
        dwt_series.append(dwt_ed)
        table.add_row(n_psd, round(ff_ed, 2), round(dwt_ed, 2))

    write_report(results_dir, "fig5_ed_vs_npsd.txt", table.render())
    write_bench(results_dir, "fig5_ed_vs_npsd",
                workload={"fractional_bits": bits, "n_psd_sweep": list(sweep),
                          "max_abs_ed_percent": max(
                              abs(v) for v in ff_series + dwt_series)},
                seconds={"harness": time.perf_counter() - start},
                tags=("accuracy",))

    assert all(abs(v) < 75.0 for v in ff_series + dwt_series)
    assert abs(ff_series[-1]) <= abs(ff_series[0]) + 5.0, \
        "accuracy must not degrade when N_PSD grows (frequency filter)"
    assert abs(dwt_series[-1]) <= abs(dwt_series[0]) + 5.0, \
        "accuracy must not degrade when N_PSD grows (DWT)"

    # Benchmark the finest-grid estimation of the frequency filter.
    benchmark(lambda: system.evaluator.estimate("psd", n_psd=sweep[-1]).power)
