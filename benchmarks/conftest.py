"""Shared configuration of the benchmark harness.

Every benchmark regenerates one table or figure of the paper.  Because the
paper's full workloads (10^6-10^7 simulation samples, 147 + 147 filters,
196 images) take hours in pure Python, each harness has a *reduced*
default configuration that preserves the shape of the result and runs in
minutes, and a *full* configuration enabled by setting the environment
variable ``REPRO_FULL_BENCH=1``.

All harnesses print their table to stdout (run pytest with ``-s`` to see
it) and also write it under ``benchmarks/results/`` so the numbers used in
EXPERIMENTS.md can be traced back to a file.  Next to every human-readable
``.txt`` report each harness drops a machine-readable ``BENCH_<name>.json``
(schema of :mod:`repro.bench`) so CI jobs and ``repro bench --check`` can
consume the same measurements.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.bench import bench_payload, write_bench_json

RESULTS_DIR = Path(__file__).parent / "results"


def full_mode() -> bool:
    """Whether the full (paper-sized) workloads were requested."""
    return os.environ.get("REPRO_FULL_BENCH", "0") not in ("", "0", "false")


@pytest.fixture(scope="session")
def bench_config() -> dict:
    """Workload sizes for the current mode (reduced by default)."""
    if full_mode():
        return {
            "mode": "full",
            "filter_bank_count": 147,
            "filter_bank_samples": 1_000_000,
            "freq_filter_samples": 2_000_000,
            "dwt_images": 32,
            "dwt_image_size": 128,
            "n_psd_sweep": (16, 32, 64, 128, 256, 512, 1024),
            "timing_n_psd_sweep": (16, 64, 256, 1024, 4096),
            "bitwidth_sweep": (8, 12, 16, 20, 24, 28, 32),
            "default_n_psd": 1024,
        }
    return {
        "mode": "reduced",
        "filter_bank_count": 21,
        "filter_bank_samples": 30_000,
        "freq_filter_samples": 60_000,
        "dwt_images": 4,
        "dwt_image_size": 64,
        "n_psd_sweep": (16, 32, 64, 128, 256, 512, 1024),
        "timing_n_psd_sweep": (16, 64, 256, 1024),
        "bitwidth_sweep": (8, 12, 16, 20, 24),
        "default_n_psd": 512,
    }


@pytest.fixture(scope="session")
def results_dir() -> Path:
    """Directory where the harnesses drop their text reports."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


def write_report(results_dir: Path, name: str, text: str) -> None:
    """Print a report and persist it under ``benchmarks/results/``."""
    print("\n" + text)
    (results_dir / name).write_text(text + "\n")


def write_bench(results_dir: Path, name: str, *, workload: dict,
                seconds: dict, speedup: dict | None = None,
                tags=()) -> None:
    """Persist one machine-readable ``BENCH_<name>.json`` measurement."""
    payload = bench_payload(
        name, workload=workload, seconds=seconds, speedup=speedup,
        tags=tags, mode="full" if full_mode() else "reduced")
    write_bench_json(results_dir, payload)
