"""Simulation-engine speedup — legacy loops vs the vectorized kernels.

The paper's headline figure (Fig. 6) measures bit-true Monte-Carlo
simulation as the slow reference the PSD estimate is compared against; in
this repository that simulation is itself the wall-clock bottleneck of
everything that uses it as ground truth (differential fuzzing, campaign
``simulation`` jobs, Pareto validation).  This harness pins the speedup
of the simulation kernel layer (:mod:`repro.simkernel`) on exactly the
Fig. 6 F.F. workload:

* the 60 000-sample bit-true simulation of the Fig. 2 frequency-domain
  filter, single stream — the legacy streaming loops (``reference``
  backend) against the vectorized kernels (``numpy`` backend), asserted
  to be **>= 5x** faster and bitwise identical;
* a 64-trial batched run of the same system;
* the direct-form IIR recursion of a Table-I filter (the scaled-integer
  kernel workload), single stream and 64-trial batched — also under the
  ``codegen`` backend (whole-plan fusion into a linear op tape), whose
  single-stream run must be **>= 5x** faster than the reference loops;
* every backend row is asserted bitwise identical to the reference.

Each backend gets one untimed warm-up call before the timed run so
one-time compile cost (numba JIT, codegen plan lowering) never pollutes
the ratios.  When numba is installed its JIT backend is measured and
reported as a separate row; it never participates in the pure-NumPy
>= 5x assertion.  The codegen >= 5x assertion holds with or without
numba: the op tape falls back to the NumPy tape interpreter, which
still fuses the plan walk.
"""

from __future__ import annotations

import time

import numpy as np

from repro.analysis.simulation_method import SimulationEvaluator
from repro.data.signals import uniform_white_noise
from repro.simkernel import available_backends, use_backend
from repro.systems.filter_bank import build_filter_graph, generate_iir_bank
from repro.systems.freq_filter import FrequencyDomainFilter
from repro.utils.tables import TextTable

from conftest import write_bench, write_report


def _time_backends(evaluator, stimulus):
    """Error-signal wall time and output per available backend.

    One untimed warm-up call precedes each timed run so JIT compilation
    and codegen tape lowering are excluded from the ratios.
    """
    seconds = {}
    outputs = {}
    for backend in available_backends():
        with use_backend(backend):
            evaluator.error_signal(stimulus)
            start = time.perf_counter()
            outputs[backend] = evaluator.error_signal(stimulus)
            seconds[backend] = time.perf_counter() - start
    return seconds, outputs


def test_sim_engine_speedup(bench_config, results_dir):
    bits = 12
    samples = bench_config["freq_filter_samples"]  # 60 000 in reduced mode
    trials = 64
    trial_samples = 2048

    workloads = []

    # --- Fig. 6 F.F. single-stream and batched ---------------------------
    system = FrequencyDomainFilter(fractional_bits=bits, n_psd=1024)
    evaluator = SimulationEvaluator(system.evaluator.plan)
    stimulus = {"x": uniform_white_noise(samples, seed=1)}
    ff_seconds, ff_outputs = _time_backends(evaluator, stimulus)
    workloads.append(("F.F. single", samples, ff_seconds, ff_outputs))

    batched = {"x": np.stack([uniform_white_noise(trial_samples, seed=50 + t)
                              for t in range(trials)])}
    ffb_seconds, ffb_outputs = _time_backends(evaluator, batched)
    workloads.append((f"F.F. {trials}-trial", trials * trial_samples,
                      ffb_seconds, ffb_outputs))

    # --- direct-form IIR (scaled-integer kernel) -------------------------
    graph = build_filter_graph(generate_iir_bank(3)[2], fractional_bits=bits)
    iir_evaluator = SimulationEvaluator(graph)
    iir_stimulus = {"x": uniform_white_noise(samples, seed=3)}
    iir_seconds, iir_outputs = _time_backends(iir_evaluator, iir_stimulus)
    workloads.append(("IIR single", samples, iir_seconds, iir_outputs))

    iir_batched = {"x": np.stack([
        uniform_white_noise(trial_samples, seed=90 + t)
        for t in range(trials)])}
    iirb_seconds, iirb_outputs = _time_backends(iir_evaluator, iir_batched)
    workloads.append((f"IIR {trials}-trial", trials * trial_samples,
                      iirb_seconds, iirb_outputs))

    # --- report -----------------------------------------------------------
    table = TextTable(
        ["workload", "samples", "reference [s]", "numpy [s]", "speedup",
         "codegen [s]", "codegen speedup"]
        + (["numba [s]", "numba speedup"]
           if "numba" in available_backends() else []),
        title=(f"simulation-engine speedup ({bench_config['mode']} mode, "
               f"d = {bits}; legacy loops vs vectorized kernels, bitwise "
               "identical outputs)"))
    seconds_payload = {}
    speedup_payload = {}
    for label, size, seconds, outputs in workloads:
        for backend, output in outputs.items():
            assert np.array_equal(output, outputs["reference"]), \
                f"{label}: {backend} backend is not bitwise identical"
        key = label.replace(" ", "_").replace(".", "").lower()
        speedup = seconds["reference"] / seconds["numpy"]
        codegen_speedup = seconds["reference"] / seconds["codegen"]
        row = [label, size, round(seconds["reference"], 4),
               round(seconds["numpy"], 4), round(speedup, 1),
               round(seconds["codegen"], 4), round(codegen_speedup, 1)]
        seconds_payload[f"{key}_reference"] = seconds["reference"]
        seconds_payload[f"{key}_numpy"] = seconds["numpy"]
        seconds_payload[f"{key}_codegen"] = seconds["codegen"]
        speedup_payload[key] = speedup
        speedup_payload[f"{key}_codegen"] = codegen_speedup
        if "numba" in seconds:
            row += [round(seconds["numba"], 4),
                    round(seconds["reference"] / seconds["numba"], 1)]
            seconds_payload[f"{key}_numba"] = seconds["numba"]
            speedup_payload[f"{key}_numba"] = (seconds["reference"]
                                               / seconds["numba"])
        table.add_row(*row)

    write_report(results_dir, "sim_engine_speedup.txt", table.render())
    write_bench(results_dir, "sim_engine_speedup",
                workload={"ff_samples": samples, "trials": trials,
                          "trial_samples": trial_samples,
                          "fractional_bits": bits},
                seconds=seconds_payload, speedup=speedup_payload,
                tags=("sim", "smoke"))

    # The acceptance claim: the Fig. 6 F.F. bit-true simulation is at
    # least 5x faster in pure NumPy, with bitwise-identical outputs
    # (asserted above for every workload and backend).
    assert speedup_payload["ff_single"] >= 5.0, \
        (f"F.F. single-stream speedup {speedup_payload['ff_single']:.1f}x "
         "fell below the required 5x")
    assert speedup_payload["ff_64-trial"] > 1.0, \
        "batched F.F. run must beat the legacy loops"
    assert speedup_payload["iir_single"] > 1.0, \
        "IIR recursion must beat the legacy per-sample loop"
    # The codegen acceptance claim: fusing the whole plan into one op
    # tape closes the IIR gap — at least 5x over the reference loops on
    # the single-stream IIR workload, bitwise identical (asserted above),
    # with or without numba installed.
    assert speedup_payload["iir_single_codegen"] >= 5.0, \
        (f"IIR single-stream codegen speedup "
         f"{speedup_payload['iir_single_codegen']:.1f}x fell below the "
         "required 5x")
    assert speedup_payload["iir_64-trial_codegen"] > 1.0, \
        "batched IIR codegen run must beat the legacy loops"
