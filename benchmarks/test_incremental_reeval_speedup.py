"""Incremental re-evaluation speedup — dirty-cone pulls vs cold walks.

The word-length optimizer's inner loop is "move one node by one bit,
re-evaluate the output noise" — thousands of single-node edits against an
incumbent configuration.  The incremental engine
(:class:`repro.analysis._engine.NoiseMemo`) serves each such edit by
re-propagating only the edited node's downstream cone, bit-identically to
a cold full walk.  This harness pins that speedup on the
ablation-scalability workloads (:mod:`repro.systems.families`):

* the **wide bank** (``branches`` parallel FIR filters under an
  unquantized binary adder tree) — the best case, one greedy candidate
  touches ``1 + log2(branches)`` of the ``2 * branches + 1`` steps; the
  per-candidate speedup must meet the committed
  ``incremental_reeval.per_candidate`` floor of
  ``benchmarks/bench_baseline.json`` (the same floor ``repro bench
  --check`` gates in CI via the registered ``incremental_reeval`` bench);
* the **chain** — the worst case (an edit's cone is every downstream
  block), reported for scale but not floored;
* the **optimizer end to end** — ``WordLengthOptimizer`` in incremental
  vs sequential mode on a reduced bank: identical assignment and noise
  power, with the work split (``full_walks`` vs ``cone_recomputes``)
  recorded in the payload.

Every timed comparison asserts the per-candidate noise powers are
bitwise identical between the memoized and the memo-blind runs before
any speedup is reported.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.analysis._engine import memoization_disabled, plan_memo
from repro.analysis.psd_method import evaluate_psd
from repro.bench import load_baseline, required_floor
from repro.sfg.plan import compile_plan
from repro.systems.families import build_scalability_bank, build_scalability_chain
from repro.systems.wordlength import WordLengthOptimizer
from repro.utils.tables import TextTable
from repro.utils.timing import time_callable

from conftest import write_bench, write_report

_BASELINE = Path(__file__).parent / "bench_baseline.json"


def _candidate_replay(plan, edits, n_psd):
    """One greedy candidate pass: requantize each edit, evaluate, restore."""
    powers = []
    with plan.preserve_quantization():
        for name, bits in edits:
            plan.requantize({name: bits})
            powers.append(evaluate_psd(plan, n_psd).total_power)
    return np.asarray(powers)


def _timed_replays(plan, edits, n_psd, repeat):
    """(cold seconds, warm seconds, powers) for one edit sequence.

    The cold run replays under :func:`memoization_disabled` (every
    candidate pays a full walk); the warm run pulls from the plan's
    memo (every candidate pays its dirty cone).  Both are preceded by
    one untimed pass so response-cache priming and the memo's cold
    build stay out of the ratio, and both must produce bitwise
    identical per-candidate powers.
    """
    with memoization_disabled():
        _candidate_replay(plan, edits, n_psd)
        cold, cold_seconds = time_callable(
            lambda: _candidate_replay(plan, edits, n_psd), repeat=repeat)
    evaluate_psd(plan, n_psd)  # sync the memo on the restored baseline
    _candidate_replay(plan, edits, n_psd)
    warm, warm_seconds = time_callable(
        lambda: _candidate_replay(plan, edits, n_psd), repeat=repeat)
    assert np.array_equal(cold, warm), \
        "memoized candidate powers drifted from the cold full walks"
    return cold_seconds, warm_seconds


def test_incremental_reeval_speedup(benchmark, bench_config, results_dir):
    n_psd = 512
    full = bench_config["mode"] == "full"
    branches = 128 if full else 64
    candidates = 32 if full else 24
    repeat = 3

    # --- wide bank: the floored workload ---------------------------------
    bank = build_scalability_bank(branches=branches)
    bank_plan = compile_plan(bank)
    bank_edits = [(f"branch{index}", 13 - index % 2)
                  for index in range(candidates)]
    bank_cold, bank_warm = _timed_replays(bank_plan, bank_edits, n_psd,
                                          repeat)
    bank_speedup = bank_cold / bank_warm

    # --- chain: the worst case, informational ----------------------------
    chain_blocks = 32
    chain = build_scalability_chain(chain_blocks)
    chain_plan = compile_plan(chain)
    chain_edits = [(f"block{index}", 13 - index % 2)
                   for index in range(min(candidates, chain_blocks))]
    chain_cold, chain_warm = _timed_replays(chain_plan, chain_edits, n_psd,
                                            repeat)
    chain_speedup = chain_cold / chain_warm

    # --- optimizer end to end: incremental vs sequential mode ------------
    small = build_scalability_bank(branches=16)
    budget = float(evaluate_psd(small, n_psd).total_power) * 4.0
    incremental = WordLengthOptimizer(small, n_psd=n_psd,
                                      mode="incremental").optimize(budget)
    sequential = WordLengthOptimizer(small, n_psd=n_psd,
                                     mode="sequential").optimize(budget)
    assert incremental.assignment == sequential.assignment
    assert incremental.noise_power == sequential.noise_power
    assert incremental.evaluations == sequential.evaluations
    assert incremental.cone_recomputes > 0
    assert incremental.full_walks < incremental.evaluations
    assert sequential.cone_recomputes == 0

    # --- report and payload ----------------------------------------------
    counters = plan_memo(bank_plan).counters()
    table = TextTable(
        ["workload", "steps", "candidates", "full walk [s/cand]",
         "dirty cone [s/cand]", "speedup"],
        title=(f"incremental re-evaluation ({bench_config['mode']} mode, "
               f"N_PSD={n_psd}; memoized dirty-cone pulls vs cold full "
               "walks, bitwise identical powers)"))
    table.add_row(bank.name, len(bank_plan.steps), len(bank_edits),
                  round(bank_cold / len(bank_edits), 6),
                  round(bank_warm / len(bank_edits), 6),
                  round(bank_speedup, 1))
    table.add_row(chain.name, len(chain_plan.steps), len(chain_edits),
                  round(chain_cold / len(chain_edits), 6),
                  round(chain_warm / len(chain_edits), 6),
                  round(chain_speedup, 1))
    optimizer_lines = [
        f"optimizer on scalability-bank-16 (budget {budget:.3e}): "
        f"{incremental.evaluations} evaluations in both modes, identical "
        "assignment and noise power",
        f"  incremental mode: {incremental.full_walks} full walks + "
        f"{incremental.cone_recomputes} cone recomputes",
        f"  sequential mode:  {sequential.full_walks} full walks",
    ]
    write_report(results_dir, "incremental_reeval.txt",
                 table.render() + "\n\n" + "\n".join(optimizer_lines))
    write_bench(results_dir, "incremental_reeval",
                workload={"branches": branches, "bank_steps":
                          len(bank_plan.steps), "chain_blocks": chain_blocks,
                          "candidates": candidates, "n_psd": n_psd,
                          "steps_recomputed": counters["steps_recomputed"],
                          "steps_reused": counters["steps_reused"],
                          "optimizer_full_walks": incremental.full_walks,
                          "optimizer_cone_recomputes":
                          incremental.cone_recomputes},
                seconds={"bank_full_walks": bank_cold,
                         "bank_dirty_cones": bank_warm,
                         "chain_full_walks": chain_cold,
                         "chain_dirty_cones": chain_warm},
                speedup={"per_candidate": bank_speedup,
                         "chain_per_candidate": chain_speedup},
                tags=("smoke", "analysis", "scalability"))

    # The acceptance claim, gated by the same committed floor that
    # `repro bench --check` enforces in CI.
    floor = required_floor(load_baseline(_BASELINE), "incremental_reeval",
                           "per_candidate", _BASELINE)
    assert bank_speedup >= floor, \
        (f"per-candidate speedup {bank_speedup:.1f}x fell below the "
         f"committed {floor:g}x floor on the {branches}-branch bank")
    # Even the worst-case chain must not be slower than cold walks.
    assert chain_speedup > 1.0, \
        "dirty-cone pulls must beat cold walks even on the chain"

    benchmark(lambda: _candidate_replay(bank_plan, bank_edits[:1], n_psd))
