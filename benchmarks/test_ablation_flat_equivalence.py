"""Ablation E7 — equivalence of the flat and PSD methods on single blocks.

Section IV-B of the paper notes that on an elementary filtering block the
classical flat method and the proposed PSD method give exactly the same
estimate ("showing their strict equivalence on an elementary filtering
block").  This ablation verifies that equivalence over a sample of the
filter bank and quantifies the residual difference (which comes only from
sampling the magnitude response on a finite grid).
"""

from __future__ import annotations

import numpy as np

from repro.analysis.flat_method import evaluate_flat
from repro.analysis.psd_method import evaluate_psd
from repro.systems.filter_bank import (
    build_filter_graph,
    generate_fir_bank,
    generate_iir_bank,
)
from repro.utils.tables import TextTable

from conftest import write_bench, write_report


def test_flat_equivalence_on_elementary_blocks(benchmark, bench_config,
                                               results_dir):
    import time
    start = time.perf_counter()
    n_psd = 4096
    entries = generate_fir_bank(6) + generate_iir_bank(6)

    table = TextTable(
        ["filter", "flat estimate", "PSD estimate", "relative gap [%]"],
        title="Ablation — flat vs proposed PSD method on elementary blocks "
              f"(N_PSD={n_psd})")

    gaps = []
    for entry in entries:
        graph = build_filter_graph(entry, fractional_bits=16)
        flat = evaluate_flat(graph).power
        psd = evaluate_psd(graph, n_psd).total_power
        gap = 100.0 * abs(psd - flat) / flat
        gaps.append(gap)
        table.add_row(entry.name, flat, psd, round(gap, 4))

    table.add_row("max over bank", "", "", round(max(gaps), 4))
    write_report(results_dir, "ablation_flat_equivalence.txt", table.render())
    write_bench(results_dir, "ablation_flat_equivalence",
                workload={"filters": len(entries), "n_psd": n_psd,
                          "max_gap_percent": max(gaps)},
                seconds={"harness": time.perf_counter() - start},
                tags=("accuracy",))

    assert max(gaps) < 2.0, \
        "flat and PSD methods must coincide on elementary blocks"
    assert float(np.median(gaps)) < 0.5

    graph = build_filter_graph(entries[0], fractional_bits=16)
    benchmark(lambda: evaluate_flat(graph).power)
