"""Campaign layer: batched throughput, cache amortization, parallelism.

The campaign subsystem exists so that design-space exploration scales:
overlapping campaigns must not recompute shared grid points, and
independent scenarios must run concurrently.  Three claims are pinned:

* **equivalence** — a process-pool run returns record-for-record
  identical powers to the inline run (the pool is pure transport);
* **cache** — re-running a campaign is served entirely from the
  content-addressed cache and is at least 5x faster than the cold run;
* **amortization** — a superset campaign (one extra wordlength per
  scenario) recomputes only the new grid points.
"""

from __future__ import annotations

import time

from repro.campaign import (
    CampaignReport,
    CampaignSpec,
    ScenarioSpec,
    StimulusSpec,
    run_campaign,
)
from repro.utils.tables import TextTable

from conftest import write_bench, write_report


def _campaign_spec(bench_config, wordlengths=(8, 12, 16)):
    samples = 4_000 if bench_config["mode"] == "reduced" else 100_000
    return CampaignSpec(
        scenarios=(
            ScenarioSpec("cascaded_sos_bank", {"channels": 2}),
            ScenarioSpec("polyphase_decimator", {"factor": 4, "taps": 32}),
            ScenarioSpec("interpolator_chain", {}),
            ScenarioSpec("fft_butterfly", {"stages": 3}),
        ),
        methods=("psd", "agnostic", "simulation"),
        wordlengths=tuple(wordlengths),
        n_psd=min(256, bench_config["default_n_psd"]),
        stimulus=StimulusSpec(num_samples=samples, discard_transient=128),
        seed=17)


def test_campaign_cache_and_parallel_speedup(bench_config, results_dir,
                                             tmp_path):
    spec = _campaign_spec(bench_config)
    cache_dir = tmp_path / "cache"

    start = time.perf_counter()
    cold = run_campaign(spec, cache_dir=cache_dir, workers=1)
    cold_seconds = time.perf_counter() - start
    assert cold.cache_hits == 0

    start = time.perf_counter()
    warm = run_campaign(spec, cache_dir=cache_dir, workers=1)
    warm_seconds = time.perf_counter() - start
    assert warm.computed == 0
    assert warm.hit_rate == 1.0
    cache_speedup = cold_seconds / max(warm_seconds, 1e-9)
    assert cache_speedup >= 5.0, (
        f"warm campaign only {cache_speedup:.1f}x faster than cold")

    # Pool transport must not change a single bit of the results.
    pooled = run_campaign(spec, cache_dir=None, workers=4)
    for a, b in zip(cold.records, pooled.records):
        assert a["key"] == b["key"]
        assert a["power"] == b["power"]

    # A widened campaign recomputes only the new wordlength column.
    widened = _campaign_spec(bench_config, wordlengths=(8, 12, 16, 20))
    start = time.perf_counter()
    superset = run_campaign(widened, cache_dir=cache_dir, workers=1)
    superset_seconds = time.perf_counter() - start
    assert superset.cache_hits == len(cold.records)
    assert superset.computed == len(superset.records) - len(cold.records)

    summary = CampaignReport(warm.records).summary()
    table = TextTable(
        ["run", "jobs", "computed", "cached", "seconds"],
        title=(f"campaign cache amortization ({bench_config['mode']} mode, "
               f"{len(spec.scenarios)} scenarios x "
               f"{len(spec.methods)} methods x "
               f"{len(spec.wordlengths)} wordlengths; "
               f"warm/cold speedup {cache_speedup:.1f}x)"))
    table.add_row("cold", cold.total_jobs, cold.computed, cold.cache_hits,
                  round(cold_seconds, 3))
    table.add_row("warm (re-run)", warm.total_jobs, warm.computed,
                  warm.cache_hits, round(warm_seconds, 3))
    table.add_row("superset (+1 wordlength)", superset.total_jobs,
                  superset.computed, superset.cache_hits,
                  round(superset_seconds, 3))
    lines = [table.render(), ""]
    lines.append("per-method accuracy on the warm run:")
    for method, entry in summary["methods"].items():
        if "ed_mean_abs_percent" in entry:
            lines.append(
                f"  {method:10s} mean|Ed| "
                f"{entry['ed_mean_abs_percent']:7.2f} %   max|Ed| "
                f"{entry['ed_max_abs_percent']:7.2f} %   sub-one-bit: "
                f"{'all' if entry['all_sub_one_bit'] else 'NOT all'}")
    write_report(results_dir, "campaign_cache_speedup.txt",
                 "\n".join(lines))
    write_bench(results_dir, "campaign_cache_speedup",
                workload={"jobs": cold.total_jobs,
                          "scenarios": len(spec.scenarios),
                          "methods": len(spec.methods),
                          "wordlengths": len(spec.wordlengths)},
                seconds={"cold": cold_seconds, "warm": warm_seconds,
                         "superset": superset_seconds},
                speedup={"warm_vs_cold": cache_speedup},
                tags=("campaign",))

    for entry in summary["methods"].values():
        if "all_sub_one_bit" in entry:
            assert entry["all_sub_one_bit"]
