"""Ablation — lifting versus convolution realization of the 9/7 codec.

JPEG-2000 encoders implement the 9/7 transform with lifting steps rather
than the convolution filter bank of Fig. 3.  The two realizations compute
the same transform but inject quantization noise at different points, so
their fixed-point output errors differ.  This ablation measures both
realizations at several word lengths and checks that

* both errors scale as ``q^2`` (one bit of word length = 6 dB), and
* the analytical estimate of the convolution codec (the system the paper
  models) stays within one bit of its simulation at every word length,
  while the lifting realization's measured noise documents how much the
  realization choice matters.
"""

from __future__ import annotations

import numpy as np

from repro.data.images import ImageGenerator
from repro.systems.dwt.codec import Dwt97Codec
from repro.systems.dwt.lifting import LiftingDwt97Codec
from repro.utils.tables import TextTable

from conftest import write_bench, write_report


def test_lifting_vs_convolution_ablation(benchmark, bench_config, results_dir):
    import time
    start = time.perf_counter()
    images = ImageGenerator(size=bench_config["dwt_image_size"],
                            seed=7).corpus(max(2, bench_config["dwt_images"] // 2))
    bitwidths = (8, 12, 16)

    table = TextTable(
        ["d [bits]", "convolution sim", "convolution PSD est.", "Ed [%]",
         "lifting sim", "lifting / convolution"],
        title="Ablation — lifting vs convolution realization of the 2-level "
              "9/7 codec")

    convolution_powers = []
    lifting_powers = []
    for bits in bitwidths:
        convolution = Dwt97Codec(fractional_bits=bits, levels=2)
        lifting = LiftingDwt97Codec(fractional_bits=bits, levels=2)
        convolution_sim = float(np.mean(
            [np.mean(convolution.error_image(image) ** 2) for image in images]))
        lifting_sim = float(np.mean(
            [np.mean(lifting.error_image(image) ** 2) for image in images]))
        estimate = convolution.estimate_error_power(n_psd=256, method="psd")
        ed = 100.0 * (convolution_sim - estimate) / convolution_sim
        convolution_powers.append(convolution_sim)
        lifting_powers.append(lifting_sim)
        table.add_row(bits, convolution_sim, estimate, round(ed, 2),
                      lifting_sim, round(lifting_sim / convolution_sim, 3))

    write_report(results_dir, "ablation_lifting_vs_convolution.txt",
                 table.render())
    write_bench(results_dir, "ablation_lifting_vs_convolution",
                workload={"images": len(images), "bitwidths": list(bitwidths)},
                seconds={"harness": time.perf_counter() - start},
                tags=("accuracy",))

    # Both realizations scale as q^2: one word-length step of 4 bits is a
    # factor of 4^4 = 256 in power.
    for powers in (convolution_powers, lifting_powers):
        for coarse, fine in zip(powers, powers[1:]):
            ratio = coarse / fine
            assert 64.0 < ratio < 1024.0, \
                "error power must scale roughly as q^2"

    # The estimator tracks the convolution realization it models.
    convolution = Dwt97Codec(fractional_bits=12, levels=2)
    estimate = convolution.estimate_error_power(n_psd=256, method="psd")
    simulated = convolution_powers[1]
    assert 0.25 < estimate / simulated < 4.0

    benchmark(lambda: convolution.estimate_error_power(n_psd=256, method="psd"))
