"""Table II — proposed PSD method versus the PSD-agnostic method.

The paper compares the deviation ``Ed`` of the proposed method (at its
least and most accurate ``N_PSD`` setting) with the PSD-agnostic method on
the two multi-block systems:

==============  ===================  ===================  ============
paper           proposed (max acc.)  proposed (min acc.)  PSD-agnostic
==============  ===================  ===================  ============
Freq. Filt.     -8.40 %              -0.87 %              29.5 %
DWT 9/7          1.10 %               0.90 %              610 %
==============  ===================  ===================  ============

This harness regenerates the same four-column table.  The shape-level
claim asserted here is that the proposed method (at its best ``N_PSD``)
is closer to simulation than the PSD-agnostic method on the
frequency-domain filter, and stays within the sub-one-bit band on both
systems.
"""

from __future__ import annotations

from repro.data.images import ImageGenerator
from repro.data.signals import uniform_white_noise
from repro.systems.dwt.codec import Dwt97Codec
from repro.systems.freq_filter import FrequencyDomainFilter
from repro.utils.tables import TextTable

from conftest import write_bench, write_report


def _freq_filter_row(samples: int):
    system = FrequencyDomainFilter(fractional_bits=12, n_psd=1024)
    stimulus = uniform_white_noise(samples, seed=21)
    simulated = None
    eds = {}
    for n_psd, label in ((16, "min_acc"), (1024, "max_acc")):
        comparison = system.compare(stimulus, methods=("psd",), n_psd=n_psd)
        simulated = comparison.simulation.error_power
        eds[label] = comparison.reports["psd"].ed_percent
    agnostic = system.compare(stimulus, methods=("agnostic",), n_psd=64)
    eds["agnostic"] = agnostic.reports["agnostic"].ed_percent
    return simulated, eds


def _dwt_row(num_images: int, image_size: int):
    codec = Dwt97Codec(fractional_bits=12, levels=2)
    images = ImageGenerator(size=image_size, seed=2).corpus(num_images)
    eds = {}
    low = codec.compare(images, n_psd=16, methods=("psd",))
    eds["min_acc"] = 100.0 * low["methods"]["psd"]["ed"]
    high = codec.compare(images, n_psd=1024, methods=("psd", "agnostic"))
    eds["max_acc"] = 100.0 * high["methods"]["psd"]["ed"]
    eds["agnostic"] = 100.0 * high["methods"]["agnostic"]["ed"]
    return high["simulated_power"], eds


def test_table2_psd_vs_agnostic(benchmark, bench_config, results_dir):
    import time
    start = time.perf_counter()
    ff_power, ff = _freq_filter_row(bench_config["freq_filter_samples"])
    dwt_power, dwt = _dwt_row(bench_config["dwt_images"],
                              bench_config["dwt_image_size"])

    table = TextTable(
        ["system", "proposed Ed (N_PSD=16) [%]", "proposed Ed (N_PSD=1024) [%]",
         "PSD-agnostic Ed [%]", "simulated power"],
        title=("Table II — Ed of the proposed PSD method vs the PSD-agnostic "
               f"method ({bench_config['mode']} mode, d = 12 bits)"))
    table.add_row("Freq. Filt.", round(ff["min_acc"], 2),
                  round(ff["max_acc"], 2), round(ff["agnostic"], 2), ff_power)
    table.add_row("DWT 9/7", round(dwt["min_acc"], 2),
                  round(dwt["max_acc"], 2), round(dwt["agnostic"], 2),
                  dwt_power)
    table.add_row("paper: Freq. Filt.", -8.40, -0.87, 29.5, float("nan"))
    table.add_row("paper: DWT 9/7", 1.10, 0.90, 610.0, float("nan"))
    write_report(results_dir, "table2_psd_vs_agnostic.txt", table.render())
    write_bench(results_dir, "table2_psd_vs_agnostic",
                workload={"fractional_bits": 12,
                          "ff_ed_percent": ff, "dwt_ed_percent": dwt},
                seconds={"harness": time.perf_counter() - start},
                tags=("accuracy",))

    # Shape-level claims.
    assert abs(ff["max_acc"]) < abs(ff["agnostic"]), \
        "proposed method must beat the agnostic method on the freq. filter"
    assert abs(ff["max_acc"]) < 75.0 and abs(dwt["max_acc"]) < 75.0, \
        "proposed method must stay within the sub-one-bit band"

    # Benchmark one full proposed-method evaluation of the DWT system.
    codec = Dwt97Codec(fractional_bits=12, levels=2)
    benchmark(lambda: codec.estimate_error_power(n_psd=1024, method="psd"))
