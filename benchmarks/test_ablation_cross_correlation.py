"""Ablation — cross-spectra at re-convergent paths (Eq. 12 vs Eq. 14).

The hierarchical PSD method adds PSDs at adders under the uncorrelated
assumption (Eq. 14).  When the *same* noise source reaches an adder
through two different paths, the contributions are correlated and the
exact combination requires the cross-spectra of Eq. 12, which the
per-source tracked variant of this library implements.

This ablation builds a family of two-path (direct + filtered) systems
with increasing correlation impact and compares three estimates against
simulation: uncorrelated PSD addition, tracked (cross-spectrum exact)
propagation, and the flat method.  It demonstrates when Eq. 14 is benign
(paths with roughly orthogonal phase) and when it is badly wrong
(coherent recombination), quantifying the design choice called out in
DESIGN.md.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.evaluator import AccuracyEvaluator
from repro.data.signals import uniform_white_noise
from repro.lti.fir_design import design_fir_lowpass
from repro.sfg.builder import SfgBuilder
from repro.utils.tables import TextTable

from conftest import write_bench, write_report


def _two_path_graph(branch_taps, fractional_bits=12):
    """input noise splits into a direct path and a filtered path, then adds."""
    builder = SfgBuilder("two-path")
    x = builder.input("x", fractional_bits=fractional_bits)
    direct = builder.gain("direct", 1.0, x)
    filtered = builder.fir("branch", branch_taps, x)
    combined = builder.add("sum", [direct, filtered])
    builder.output("y", combined)
    return builder.build()


def test_cross_correlation_ablation(benchmark, bench_config, results_dir):
    import time
    start = time.perf_counter()
    cases = {
        # Nearly coherent recombination: branch is a short delay-like filter.
        "coherent (identity branch)": np.array([1.0]),
        "mildly shaped branch": design_fir_lowpass(5, 0.8),
        "strongly shaped branch": design_fir_lowpass(21, 0.3),
    }

    table = TextTable(
        ["case", "simulated", "uncorrelated Ed [%]", "tracked Ed [%]",
         "flat Ed [%]"],
        title="Ablation — uncorrelated addition (Eq. 14) vs cross-spectrum "
              "tracking (Eq. 12) on re-convergent paths")

    worst_uncorrelated = 0.0
    worst_tracked = 0.0
    for name, taps in cases.items():
        graph = _two_path_graph(taps)
        evaluator = AccuracyEvaluator(graph, n_psd=512)
        comparison = evaluator.compare(
            uniform_white_noise(60_000, seed=len(name)),
            methods=("psd", "psd_tracked", "flat"), discard_transient=64)
        uncorrelated_ed = comparison.reports["psd"].ed_percent
        tracked_ed = comparison.reports["psd_tracked"].ed_percent
        flat_ed = comparison.reports["flat"].ed_percent
        worst_uncorrelated = max(worst_uncorrelated, abs(uncorrelated_ed))
        worst_tracked = max(worst_tracked, abs(tracked_ed))
        table.add_row(name, comparison.simulation.error_power,
                      round(uncorrelated_ed, 2), round(tracked_ed, 2),
                      round(flat_ed, 2))

    write_report(results_dir, "ablation_cross_correlation.txt", table.render())
    write_bench(results_dir, "ablation_cross_correlation",
                workload={"cases": len(cases),
                          "worst_uncorrelated_ed_percent": worst_uncorrelated,
                          "worst_tracked_ed_percent": worst_tracked},
                seconds={"harness": time.perf_counter() - start},
                tags=("accuracy",))

    # The tracked variant must stay accurate everywhere; the uncorrelated
    # variant must show a visibly larger worst case (it halves the
    # coherent-recombination power).
    assert worst_tracked < 15.0
    assert worst_uncorrelated > worst_tracked + 10.0

    graph = _two_path_graph(cases["strongly shaped branch"])
    evaluator = AccuracyEvaluator(graph, n_psd=512)
    benchmark(lambda: evaluator.estimate("psd_tracked").power)
