"""Compiled-plan speedup — repeated evaluation and word-length search.

The compiled-plan layer exists to make *repeated* evaluation cheap: the
validated topological schedule, the index-resolved wiring, the noise-source
set and the per-block frequency responses are all derived once and replayed
on every subsequent call.  This harness quantifies that against the
seed-equivalent behaviour (one fresh compilation — validation, ordering,
edge resolution, response computation — per evaluation, which is exactly
what the library did before plans existed):

* 50 consecutive ``estimate("psd")`` calls on the Fig. 2 frequency-domain
  filter system;
* one full greedy word-length search on a five-stage FIR/IIR cascade,
  whose inner loop performs hundreds of analytical evaluations.
"""

from __future__ import annotations

import time

from repro.analysis.psd_method import evaluate_psd
from repro.lti.fir_design import design_fir_lowpass
from repro.lti.iir_design import design_iir_filter
from repro.sfg.builder import SfgBuilder
from repro.sfg.plan import CompiledPlan, compile_plan
from repro.systems.freq_filter import build_frequency_filter_graph
from repro.systems.wordlength import WordLengthOptimizer
from repro.utils.tables import TextTable

from conftest import write_bench, write_report


def _timed(callable_, repeat: int) -> float:
    start = time.perf_counter()
    for _ in range(repeat):
        callable_()
    return (time.perf_counter() - start) / repeat


def test_plan_compiled_speedup(bench_config, results_dir):
    n_psd = bench_config["default_n_psd"]

    # --- 50 consecutive PSD estimates on the Fig. 2 system ----------------
    graph = build_frequency_filter_graph(fractional_bits=12)
    plan = compile_plan(graph)
    evaluate_psd(plan, n_psd)  # warm the response cache once
    repeated_calls = 50
    cached_time = _timed(lambda: evaluate_psd(plan, n_psd), repeated_calls)
    fresh_time = _timed(lambda: evaluate_psd(CompiledPlan(graph), n_psd), 10)

    # --- one word-length search on a multi-stage cascade ------------------
    # Five tunable stages give the greedy refinement a real search space
    # (a few hundred analytical evaluations).
    def _cascade_graph():
        b, a = design_iir_filter(4, 0.3, kind="lowpass",
                                 family="butterworth")
        builder = SfgBuilder("cascade")
        signal = builder.input("x", fractional_bits=16)
        signal = builder.fir("fir1", design_fir_lowpass(16, 0.45), signal,
                             fractional_bits=16)
        signal = builder.iir("iir1", b, a, signal, fractional_bits=16)
        signal = builder.gain("gain1", 0.8, signal, fractional_bits=16)
        signal = builder.fir("fir2", design_fir_lowpass(12, 0.35), signal,
                             fractional_bits=16)
        builder.output("y", signal)
        return builder.build()

    budget = 1e-6
    search_graph = _cascade_graph()
    optimizer = WordLengthOptimizer(search_graph, method="psd",
                                    n_psd=min(256, n_psd))
    start = time.perf_counter()
    result = optimizer.optimize(budget)
    search_time = time.perf_counter() - start

    # Seed-equivalent search cost: the same number of evaluations, each
    # compiling from scratch (no shared schedule, no response cache).
    baseline_graph = _cascade_graph()
    per_eval_fresh = _timed(
        lambda: evaluate_psd(CompiledPlan(baseline_graph),
                             min(256, n_psd)), 10)
    baseline_search_time = per_eval_fresh * result.evaluations

    table = TextTable(
        ["workload", "compiled plan [s]", "per-call compile [s]", "speed-up"],
        title=(f"Compiled-plan speedup ({bench_config['mode']} mode, "
               f"N_PSD={n_psd})"))
    table.add_row(f"{repeated_calls}x estimate('psd'), Fig. 2 system",
                  round(repeated_calls * cached_time, 5),
                  round(repeated_calls * fresh_time, 5),
                  round(fresh_time / cached_time, 1))
    table.add_row(f"word-length search ({result.evaluations} evals, "
                  "5-stage cascade)",
                  round(search_time, 5),
                  round(baseline_search_time, 5),
                  round(baseline_search_time / search_time, 1))
    write_report(results_dir, "plan_compiled_speedup.txt", table.render())
    write_bench(results_dir, "plan_compiled_speedup",
                workload={"n_psd": n_psd, "repeated_calls": repeated_calls,
                          "search_evaluations": result.evaluations},
                seconds={"repeated_estimate_cached":
                         repeated_calls * cached_time,
                         "repeated_estimate_fresh":
                         repeated_calls * fresh_time,
                         "wordlength_search": search_time,
                         "wordlength_search_baseline": baseline_search_time},
                speedup={"repeated_estimate": fresh_time / cached_time,
                         "wordlength_search":
                         baseline_search_time / search_time},
                tags=("plan",))

    # The whole point of the plan layer: repeated evaluation must be
    # substantially faster than compiling on every call.
    assert cached_time < fresh_time, \
        "a cached plan must beat per-call compilation"
    assert fresh_time / cached_time > 2.0, \
        "repeated estimation should be at least 2x faster through the plan"
    assert search_time < baseline_search_time, \
        "the word-length search must profit from plan reuse"
