"""Fig. 7 — 2-D frequency repartition of the DWT output error.

The paper compares, for the 2-level 9/7 codec at d = 12 bits, the 2-D
spectrum of the output error obtained by intensive simulation with the one
predicted by the PSD method, showing that the prediction captures the
frequency repartition while being orders of magnitude faster.

This harness computes both maps on the surrogate-image corpus and reports
(a) the total power of each map, (b) the log-domain correlation
coefficient between the two maps after averaging onto a common 16x16
grid, and (c) the fraction of power each map puts into the low-frequency
quadrant — the visual structure of Fig. 7 (bright center, dark borders)
expressed as numbers.  The asserted claims are a positive log-domain
correlation (> 0.5) and an agreement of the low-frequency power fraction
within a factor of two.
"""

from __future__ import annotations

import numpy as np

from repro.data.images import ImageGenerator
from repro.systems.dwt.codec import Dwt97Codec
from repro.utils.tables import TextTable

from conftest import write_bench, write_report


def _coarsen(grid: np.ndarray, size: int = 16) -> np.ndarray:
    """Average a 2-D map onto a ``size x size`` grid (power preserving)."""
    rows, cols = grid.shape
    return grid.reshape(size, rows // size, size, cols // size).sum(axis=(1, 3))


def _low_frequency_fraction(grid: np.ndarray, fraction: float = 0.25) -> float:
    """Fraction of the total power inside the centered low-frequency box."""
    rows, cols = grid.shape
    half_r = int(rows * fraction / 2)
    half_c = int(cols * fraction / 2)
    center_r, center_c = rows // 2, cols // 2
    box = grid[center_r - half_r:center_r + half_r,
               center_c - half_c:center_c + half_c]
    return float(np.sum(box) / np.sum(grid))


def test_fig7_frequency_repartition(benchmark, bench_config, results_dir):
    bits = 12
    codec = Dwt97Codec(fractional_bits=bits, levels=2)
    images = ImageGenerator(size=bench_config["dwt_image_size"],
                            seed=13).corpus(max(2, bench_config["dwt_images"] // 2))

    simulated_map = codec.simulated_error_psd_2d(images)
    estimated_map = codec.estimated_error_psd_2d(
        n_psd=bench_config["dwt_image_size"])

    simulated_coarse = _coarsen(simulated_map)
    estimated_coarse = _coarsen(estimated_map)
    log_sim = np.log10(np.maximum(simulated_coarse, 1e-30)).ravel()
    log_est = np.log10(np.maximum(estimated_coarse, 1e-30)).ravel()
    correlation = float(np.corrcoef(log_sim, log_est)[0, 1])

    sim_low = _low_frequency_fraction(simulated_map)
    est_low = _low_frequency_fraction(estimated_map)

    table = TextTable(
        ["quantity", "simulation", "PSD estimation"],
        title=(f"Fig. 7 — 2-D frequency repartition of the DWT error "
               f"({bench_config['mode']} mode, d = {bits} bits, "
               f"{len(images)} images)"))
    table.add_row("total error power", float(np.sum(simulated_map)),
                  float(np.sum(estimated_map)))
    table.add_row("low-frequency power fraction (central 25% box)",
                  round(sim_low, 4), round(est_low, 4))
    table.add_row("log-spectrum correlation (16x16 grid)",
                  round(correlation, 3), "")
    write_report(results_dir, "fig7_frequency_repartition.txt", table.render())
    import time
    start = time.perf_counter()
    codec.estimated_error_psd_2d(n_psd=64)
    estimation_seconds = time.perf_counter() - start
    write_bench(results_dir, "fig7_frequency_repartition",
                workload={"fractional_bits": bits, "images": len(images),
                          "log_spectrum_correlation": correlation},
                seconds={"psd_map_estimation": estimation_seconds},
                tags=("accuracy",))

    assert correlation > 0.5, \
        "estimated error spectrum must correlate with the simulated one"
    assert 0.5 < est_low / max(sim_low, 1e-12) < 2.0, \
        "low-frequency power fraction must agree within a factor of two"
    assert 0.3 < float(np.sum(estimated_map)) / float(np.sum(simulated_map)) < 3.0

    # The speed argument of Fig. 7: the estimated map is produced in
    # milliseconds; benchmark it.
    benchmark(lambda: codec.estimated_error_psd_2d(n_psd=64))
