"""Structured trace spans: wall-time records with nesting and attributes.

A :class:`Span` is one timed region — name, start (epoch seconds), and
duration — plus its nesting depth and free-form attributes.  Start
timestamps deliberately come from ``time.time()`` so spans recorded in
ProcessPool workers land on the same clock as the driver's and merge
into one coherent Chrome trace; durations come from
``time.perf_counter()`` for resolution.

This module is standalone (no imports from the session state) — the
gated ``span(...)`` entry point that most code calls lives in
`repro.obs.state`, where the enabled/disabled decision is made.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field


@dataclass
class Span:
    """One completed timed region."""

    name: str
    ts: float            # epoch seconds at entry (time.time())
    dur: float           # seconds (perf_counter delta)
    depth: int = 0       # nesting depth within its thread, 0 = top level
    pid: int = 0
    tid: int = 0
    attrs: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "ts": self.ts,
            "dur": self.dur,
            "depth": self.depth,
            "pid": self.pid,
            "tid": self.tid,
            "attrs": self.attrs,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Span":
        return cls(
            name=payload["name"],
            ts=payload["ts"],
            dur=payload["dur"],
            depth=payload.get("depth", 0),
            pid=payload.get("pid", 0),
            tid=payload.get("tid", 0),
            attrs=dict(payload.get("attrs", {})),
        )


class TraceCollector:
    """Accumulates completed spans and tracks per-thread nesting depth."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._local = threading.local()
        self.spans: list[Span] = []

    def current_depth(self) -> int:
        return getattr(self._local, "depth", 0)

    def push(self) -> int:
        depth = getattr(self._local, "depth", 0)
        self._local.depth = depth + 1
        return depth

    def pop(self) -> None:
        self._local.depth = max(0, getattr(self._local, "depth", 1) - 1)

    def add(self, span: Span) -> None:
        with self._lock:
            self.spans.append(span)

    def record(self, name: str, ts: float, dur: float, depth: int | None = None,
               **attrs: object) -> None:
        """Append an externally-timed span (e.g. a per-job share of a
        batched worker computation) without entering a context manager."""

        self.add(Span(
            name=name,
            ts=ts,
            dur=dur,
            depth=self.current_depth() if depth is None else depth,
            pid=os.getpid(),
            tid=threading.get_ident(),
            attrs=dict(attrs),
        ))

    def ingest(self, payloads: list[dict]) -> None:
        """Merge serialized spans from another process."""

        spans = [Span.from_dict(payload) for payload in payloads]
        with self._lock:
            self.spans.extend(spans)

    def snapshot(self) -> list[dict]:
        with self._lock:
            return [span.to_dict() for span in self.spans]


class LiveSpan:
    """Context manager that records one span into a collector.

    Only constructed when observability is enabled — the disabled path
    returns the shared no-op below and never allocates.
    """

    __slots__ = ("_collector", "_name", "_attrs", "_ts", "_t0")

    def __init__(self, collector: TraceCollector, name: str, attrs: dict):
        self._collector = collector
        self._name = name
        self._attrs = attrs

    def __enter__(self) -> "LiveSpan":
        self._collector.push()
        self._ts = time.time()
        self._t0 = time.perf_counter()
        return self

    def set(self, **attrs: object) -> None:
        """Attach attributes discovered while the span is open."""

        self._attrs.update(attrs)

    def __exit__(self, exc_type, exc, tb) -> None:
        dur = time.perf_counter() - self._t0
        self._collector.pop()
        self._collector.add(Span(
            name=self._name,
            ts=self._ts,
            dur=dur,
            depth=self._collector.current_depth(),
            pid=os.getpid(),
            tid=threading.get_ident(),
            attrs=self._attrs,
        ))


class NoopSpan:
    """Shared do-nothing span returned whenever observability is off."""

    __slots__ = ()

    def __enter__(self) -> "NoopSpan":
        return self

    def set(self, **attrs: object) -> None:
        pass

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


NOOP_SPAN = NoopSpan()
