"""The process-wide observability session and its gated entry points.

Everything here is built around one module-global pointer: when it is
``None`` (the default), every helper is a near-free no-op — ``span()``
returns a shared do-nothing context manager and the ``metric_*``
helpers return after a single ``is None`` test.  Instrumented library
code therefore calls these unconditionally at architectural boundaries
and never below them; hot inner loops (the IIR recursion, the fused
tape kernel) stay uninstrumented by rule, not by gating.

``observe()`` is the CLI-facing way to enable collection for the span
of one command; ProcessPool campaign workers call ``enable()`` /
``disable()`` around one payload and ship the resulting snapshots back
to the driver for merging.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator, Mapping

from repro.obs.registry import MetricsRegistry
from repro.obs.trace import NOOP_SPAN, LiveSpan, NoopSpan, TraceCollector


class ObsSession:
    """One enabled observability window: a registry plus (optionally) a
    trace collector and the epoch origin traces are normalised to."""

    __slots__ = ("metrics", "trace", "origin")

    def __init__(self, trace: bool = True):
        self.metrics = MetricsRegistry()
        self.trace = TraceCollector() if trace else None
        self.origin = time.time()


_SESSION: ObsSession | None = None


def current() -> ObsSession | None:
    return _SESSION


def enabled() -> bool:
    return _SESSION is not None


def tracing() -> bool:
    return _SESSION is not None and _SESSION.trace is not None


def enable(trace: bool = True) -> ObsSession:
    """Install a fresh session (replacing any active one)."""

    global _SESSION
    _SESSION = ObsSession(trace=trace)
    return _SESSION


def disable() -> ObsSession | None:
    """Tear down the active session and return it for export."""

    global _SESSION
    session, _SESSION = _SESSION, None
    return session


@contextmanager
def observe(trace: bool = True) -> Iterator[ObsSession]:
    """Enable observability for a ``with`` block, restoring the previous
    session (usually none) on exit."""

    global _SESSION
    previous = _SESSION
    session = ObsSession(trace=trace)
    _SESSION = session
    try:
        yield session
    finally:
        _SESSION = previous


def span(name: str, **attrs: object):
    """Open a trace span; a shared no-op when tracing is disabled."""

    session = _SESSION
    if session is None or session.trace is None:
        return NOOP_SPAN
    return LiveSpan(session.trace, name, attrs)


def record_span(name: str, ts: float, dur: float, depth_offset: int = 0,
                **attrs: object) -> None:
    """Record an externally-timed span (no-op when tracing is off).

    ``depth_offset`` nests the span below the currently open ones — per-job
    shares of a batched computation sit one level under their method span.
    """

    session = _SESSION
    if session is None or session.trace is None:
        return
    collector = session.trace
    collector.record(name, ts, dur,
                     depth=collector.current_depth() + depth_offset, **attrs)


def metric_inc(name: str, amount: int = 1, **labels: object) -> None:
    session = _SESSION
    if session is None:
        return
    session.metrics.counter(name, **labels).inc(amount)


def metric_set(name: str, value: float, **labels: object) -> None:
    session = _SESSION
    if session is None:
        return
    session.metrics.gauge(name, **labels).set(value)


def metric_observe(name: str, value: float, **labels: object) -> None:
    session = _SESSION
    if session is None:
        return
    session.metrics.histogram(name, **labels).record(value)


def publish_metrics(snapshot: Mapping[str, list]) -> None:
    """Merge a local registry snapshot into the session registry.

    Subsystems with always-on private registries (campaign runner,
    ResultCache) call this at their finish line so the global picture
    includes their exact counts without double bookkeeping on the way.
    """

    session = _SESSION
    if session is None:
        return
    session.metrics.merge(snapshot)


def ingest_spans(payloads: list[dict]) -> None:
    """Merge serialized worker spans (no-op when tracing is off)."""

    session = _SESSION
    if session is None or session.trace is None:
        return
    session.trace.ingest(payloads)
