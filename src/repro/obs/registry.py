"""Process-wide metrics registry: counters, gauges, histograms with labels.

The registry is dependency-free and always functional when instantiated
directly — subsystems that need exact, always-on accounting (NoiseMemo,
ResultCache, the campaign runner) own a private ``MetricsRegistry`` and
expose their legacy result-dict surfaces as thin views over it.  The
*global* registry lives on the observability session (`repro.obs.state`)
and only exists while observability is enabled, so the disabled path
allocates nothing.

Instruments are identified by ``(name, labels)``; labels are keyword
arguments canonicalised into a sorted tuple, so
``registry.counter("tape.executions", backend="codegen")`` always
resolves to the same instrument.  Snapshots are plain JSON-able dicts
and can be merged back into another registry — that is how ProcessPool
campaign workers ship their measurements to the driver.
"""

from __future__ import annotations

import threading
from typing import Iterable, Mapping


def _canonical_labels(labels: Mapping[str, object]) -> tuple[tuple[str, str], ...]:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def format_metric_name(name: str, labels: Iterable[tuple[str, str]]) -> str:
    """Render ``name{k=v,...}`` for human-facing tables and flat exports."""

    label_items = tuple(labels)
    if not label_items:
        return name
    body = ",".join(f"{key}={value}" for key, value in label_items)
    return f"{name}{{{body}}}"


class Counter:
    """Monotonically increasing count of events."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: tuple[tuple[str, str], ...] = ()):
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only move forward; use a gauge instead")
        self.value += amount


class Gauge:
    """Last-observed value of a quantity (set, not accumulated)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: tuple[tuple[str, str], ...] = ()):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Streaming summary (count/total/min/max) of observed values.

    Bucket boundaries are deliberately omitted: every consumer in this
    repo wants totals and means (span durations, job times), and a
    four-field summary merges across processes without bucket-alignment
    headaches.
    """

    __slots__ = ("name", "labels", "count", "total", "minimum", "maximum")

    def __init__(self, name: str, labels: tuple[tuple[str, str], ...] = ()):
        self.name = name
        self.labels = labels
        self.count = 0
        self.total = 0.0
        self.minimum = float("inf")
        self.maximum = float("-inf")

    def record(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class MetricsRegistry:
    """A keyed collection of counters, gauges, and histograms."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[tuple, Counter] = {}
        self._gauges: dict[tuple, Gauge] = {}
        self._histograms: dict[tuple, Histogram] = {}

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)

    def counter(self, name: str, **labels: object) -> Counter:
        key = (name, _canonical_labels(labels))
        instrument = self._counters.get(key)
        if instrument is None:
            with self._lock:
                instrument = self._counters.setdefault(key, Counter(name, key[1]))
        return instrument

    def gauge(self, name: str, **labels: object) -> Gauge:
        key = (name, _canonical_labels(labels))
        instrument = self._gauges.get(key)
        if instrument is None:
            with self._lock:
                instrument = self._gauges.setdefault(key, Gauge(name, key[1]))
        return instrument

    def histogram(self, name: str, **labels: object) -> Histogram:
        key = (name, _canonical_labels(labels))
        instrument = self._histograms.get(key)
        if instrument is None:
            with self._lock:
                instrument = self._histograms.setdefault(key, Histogram(name, key[1]))
        return instrument

    def count_of(self, name: str, **labels: object) -> int:
        """Current value of a counter, 0 when it was never incremented."""

        key = (name, _canonical_labels(labels))
        instrument = self._counters.get(key)
        return instrument.value if instrument is not None else 0

    def snapshot(self) -> dict:
        """JSON-able structured dump of every instrument."""

        with self._lock:
            counters = [
                {"name": c.name, "labels": dict(c.labels), "value": c.value}
                for c in self._counters.values()
            ]
            gauges = [
                {"name": g.name, "labels": dict(g.labels), "value": g.value}
                for g in self._gauges.values()
            ]
            histograms = [
                {
                    "name": h.name,
                    "labels": dict(h.labels),
                    "count": h.count,
                    "total": h.total,
                    "min": h.minimum if h.count else None,
                    "max": h.maximum if h.count else None,
                }
                for h in self._histograms.values()
            ]
        return {"counters": counters, "gauges": gauges, "histograms": histograms}

    def merge(self, snapshot: Mapping[str, list]) -> None:
        """Fold a :meth:`snapshot` from another registry into this one.

        Counters and histograms accumulate; gauges take the incoming
        value (last write wins), matching what a worker hand-off means.
        """

        for entry in snapshot.get("counters", ()):
            self.counter(entry["name"], **entry["labels"]).inc(entry["value"])
        for entry in snapshot.get("gauges", ()):
            self.gauge(entry["name"], **entry["labels"]).set(entry["value"])
        for entry in snapshot.get("histograms", ()):
            histogram = self.histogram(entry["name"], **entry["labels"])
            if not entry["count"]:
                continue
            histogram.count += entry["count"]
            histogram.total += entry["total"]
            if entry["min"] is not None and entry["min"] < histogram.minimum:
                histogram.minimum = entry["min"]
            if entry["max"] is not None and entry["max"] > histogram.maximum:
                histogram.maximum = entry["max"]

    def flattened(self) -> dict[str, object]:
        """Flat ``{"name{k=v}": value}`` view used by exporters."""

        snapshot = self.snapshot()
        flat: dict[str, object] = {}
        for entry in snapshot["counters"]:
            flat[format_metric_name(entry["name"], sorted(entry["labels"].items()))] = entry["value"]
        for entry in snapshot["gauges"]:
            flat[format_metric_name(entry["name"], sorted(entry["labels"].items()))] = entry["value"]
        for entry in snapshot["histograms"]:
            key = format_metric_name(entry["name"], sorted(entry["labels"].items()))
            flat[key] = {
                "count": entry["count"],
                "total": entry["total"],
                "min": entry["min"],
                "max": entry["max"],
            }
        return dict(sorted(flat.items()))
