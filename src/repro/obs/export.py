"""Exporters: text summary tables, metrics JSON, and Chrome trace JSON.

The Chrome exporter emits the trace-event format (complete events,
``ph: "X"``) that ``chrome://tracing`` and Perfetto load directly; span
start times are normalised to the session origin so a trace starts at
t=0 regardless of wall-clock epoch, and pid/tid are preserved so
ProcessPool workers show up as their own rows.
"""

from __future__ import annotations

import json
from typing import Iterable

TRACE_SCHEMA = 1
METRICS_SCHEMA = 1


# ---------------------------------------------------------------------------
# Chrome trace-event format


def chrome_trace(spans: Iterable[dict], origin: float) -> dict:
    """Build a ``chrome://tracing``-loadable document from span dicts."""

    events = []
    for span in spans:
        args = {"depth": span.get("depth", 0)}
        args.update(span.get("attrs", {}))
        events.append({
            "name": span["name"],
            "ph": "X",
            "ts": (span["ts"] - origin) * 1e6,   # microseconds since origin
            "dur": span["dur"] * 1e6,
            "pid": span.get("pid", 0),
            "tid": span.get("tid", 0),
            "args": args,
        })
    events.sort(key=lambda event: event["ts"])
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"schema": TRACE_SCHEMA, "origin": origin},
    }


def write_trace(path: str, session) -> dict:
    """Serialize a session's spans as Chrome trace JSON; returns the doc."""

    spans = session.trace.snapshot() if session.trace is not None else []
    document = chrome_trace(spans, session.origin)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return document


def load_trace(path: str) -> dict:
    with open(path, encoding="utf-8") as handle:
        document = json.load(handle)
    if "traceEvents" not in document:
        raise ValueError(f"{path}: not a Chrome trace-event file "
                         "(missing 'traceEvents')")
    return document


# ---------------------------------------------------------------------------
# Metrics JSON


def write_metrics(path: str, session) -> dict:
    """Serialize a session's metrics registry as machine-readable JSON."""

    document = {
        "schema": METRICS_SCHEMA,
        "metrics": session.metrics.flattened(),
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return document


def load_metrics(path: str) -> dict:
    with open(path, encoding="utf-8") as handle:
        document = json.load(handle)
    if "metrics" not in document:
        raise ValueError(f"{path}: not a metrics snapshot (missing 'metrics')")
    return document


# ---------------------------------------------------------------------------
# Text summaries


def _format_table(headers: list[str], rows: list[list[str]]) -> str:
    widths = [len(header) for header in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [
        "  ".join(header.ljust(widths[i]) for i, header in enumerate(headers)),
        "  ".join("-" * width for width in widths),
    ]
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def metrics_table(flattened: dict) -> str:
    """Human-readable table of a flattened metrics snapshot."""

    rows = []
    for name, value in flattened.items():
        if isinstance(value, dict):
            rendered = (f"count={value['count']} total={value['total']:.6g}"
                        f" min={value['min']} max={value['max']}")
        elif isinstance(value, float):
            rendered = f"{value:.6g}"
        else:
            rendered = str(value)
        rows.append([name, rendered])
    if not rows:
        return "(no metrics recorded)"
    return _format_table(["metric", "value"], rows)


def summarize_trace(document: dict, top: int = 0) -> str:
    """Aggregate a Chrome trace per span name: count, total, mean, max.

    Also reports the trace extent, the share of wall time covered by
    top-level (depth-0) spans, and — when campaign job spans are present
    — the cache-hit ratio, which is what the CI obs-smoke job asserts.
    """

    events = [event for event in document.get("traceEvents", [])
              if event.get("ph") == "X"]
    if not events:
        return "(empty trace)"

    by_name: dict[str, dict] = {}
    for event in events:
        entry = by_name.setdefault(event["name"], {
            "count": 0, "total": 0.0, "max": 0.0,
        })
        entry["count"] += 1
        entry["total"] += event["dur"]
        entry["max"] = max(entry["max"], event["dur"])

    ordered = sorted(by_name.items(), key=lambda item: -item[1]["total"])
    if top:
        ordered = ordered[:top]
    rows = []
    for name, entry in ordered:
        mean = entry["total"] / entry["count"]
        rows.append([
            name,
            str(entry["count"]),
            f"{entry['total'] / 1e3:.3f}",
            f"{mean / 1e3:.3f}",
            f"{entry['max'] / 1e3:.3f}",
        ])
    table = _format_table(
        ["span", "count", "total_ms", "mean_ms", "max_ms"], rows)

    start = min(event["ts"] for event in events)
    end = max(event["ts"] + event["dur"] for event in events)
    extent = end - start
    top_level = sum(event["dur"] for event in events
                    if event.get("args", {}).get("depth", 0) == 0)
    coverage = (top_level / extent) if extent > 0 else 1.0

    lines = [table, "",
             f"spans: {len(events)}  extent: {extent / 1e3:.3f} ms  "
             f"top-level coverage: {100 * coverage:.1f}%"]

    jobs = [event for event in events if event["name"] == "campaign.job"]
    if jobs:
        cached = sum(1 for event in jobs
                     if event.get("args", {}).get("cached"))
        lines.append(
            f"campaign jobs: {len(jobs)}  cached: {cached} "
            f"({100 * cached / len(jobs):.1f}%)")
    return "\n".join(lines)


def trace_coverage(document: dict) -> float:
    """Fraction of the trace extent covered by top-level spans."""

    events = [event for event in document.get("traceEvents", [])
              if event.get("ph") == "X"]
    if not events:
        return 0.0
    start = min(event["ts"] for event in events)
    end = max(event["ts"] + event["dur"] for event in events)
    extent = end - start
    if extent <= 0:
        return 1.0
    top_level = sum(event["dur"] for event in events
                    if event.get("args", {}).get("depth", 0) == 0)
    return top_level / extent
