"""repro.obs — unified observability: metrics registry, trace spans, exporters.

Disabled by default; ``observe()`` (or ``enable()``/``disable()``)
installs a process-wide session that the gated helpers below write to.
See ARCHITECTURE.md § Observability for the data flow and the
instrumentation-boundary rules.
"""

from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    format_metric_name,
)
from repro.obs.state import (
    ObsSession,
    current,
    disable,
    enable,
    enabled,
    ingest_spans,
    metric_inc,
    metric_observe,
    metric_set,
    observe,
    publish_metrics,
    record_span,
    span,
    tracing,
)
from repro.obs.trace import Span, TraceCollector

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ObsSession",
    "Span",
    "TraceCollector",
    "current",
    "disable",
    "enable",
    "enabled",
    "format_metric_name",
    "ingest_spans",
    "metric_inc",
    "metric_observe",
    "metric_set",
    "observe",
    "publish_metrics",
    "record_span",
    "span",
    "tracing",
]
