"""The FIR / IIR filter bank of the paper's first experiment (Table I).

The paper evaluates the proposed estimator on 147 FIR filters (16 to 128
taps, low-pass / high-pass / band-pass) and 147 IIR filters (orders 2 to
10, same functionalities).  Each filter is wrapped in the smallest
possible fixed-point system — quantized input, filter block, quantized
output — and the deviation ``Ed`` between the simulated and the estimated
output noise power is collected over the whole bank.

This module generates an equivalent parameterized bank (the paper does not
list its exact 147 + 147 designs, so the bank is spanned systematically
over the same ranges), builds the per-filter signal-flow graphs and runs
the Table-I evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.evaluator import AccuracyEvaluator
from repro.data.signals import SignalGenerator
from repro.fixedpoint.quantizer import RoundingMode
from repro.lti.fir_design import (
    design_fir_bandpass,
    design_fir_highpass,
    design_fir_lowpass,
)
from repro.lti.iir_design import design_iir_filter
from repro.sfg.builder import SfgBuilder
from repro.sfg.graph import SignalFlowGraph

_FIR_KINDS = ("lowpass", "highpass", "bandpass")
_IIR_KINDS = ("lowpass", "highpass", "bandpass")


@dataclass(frozen=True)
class FilterBankEntry:
    """One filter of the bank.

    Attributes
    ----------
    name:
        Unique identifier (kind, size and cutoff encoded in the string).
    kind:
        ``lowpass``, ``highpass`` or ``bandpass``.
    is_fir:
        Whether the filter is FIR (otherwise IIR).
    b, a:
        Filter coefficients (``a == (1,)`` for FIR entries).
    """

    name: str
    kind: str
    is_fir: bool
    b: tuple
    a: tuple

    @property
    def order(self) -> int:
        """Filter order (taps - 1 for FIR)."""
        return max(len(self.b), len(self.a)) - 1


def generate_fir_bank(count: int = 147, seed: int = 0) -> list[FilterBankEntry]:
    """Generate ``count`` FIR designs spanning the paper's ranges.

    Designs cycle through the three functionalities, tap counts from 16 to
    128 and a grid of cutoff frequencies; ``seed`` only affects the cutoff
    jitter used to avoid duplicated designs.
    """
    rng = np.random.default_rng(seed)
    tap_choices = [16, 24, 32, 48, 64, 80, 96, 112, 128]
    entries: list[FilterBankEntry] = []
    index = 0
    while len(entries) < count:
        kind = _FIR_KINDS[index % len(_FIR_KINDS)]
        taps = tap_choices[(index // len(_FIR_KINDS)) % len(tap_choices)]
        base_cutoff = 0.15 + 0.6 * ((index * 37) % 97) / 97.0
        jitter = float(rng.uniform(-0.02, 0.02))
        cutoff = float(np.clip(base_cutoff + jitter, 0.05, 0.9))
        if kind == "lowpass":
            coefficients = design_fir_lowpass(taps, cutoff)
        elif kind == "highpass":
            coefficients = design_fir_highpass(taps, cutoff)
        else:
            low = max(0.05, cutoff - 0.15)
            high = min(0.95, cutoff + 0.15)
            coefficients = design_fir_bandpass(taps, low, high)
        entries.append(FilterBankEntry(
            name=f"fir-{kind}-{taps}taps-{index:03d}",
            kind=kind,
            is_fir=True,
            b=tuple(float(c) for c in coefficients),
            a=(1.0,),
        ))
        index += 1
    return entries


def generate_iir_bank(count: int = 147, seed: int = 0) -> list[FilterBankEntry]:
    """Generate ``count`` stable IIR designs spanning the paper's ranges.

    Orders 2 to 10 (band-pass prototypes are halved so the digital order
    stays within 10), Butterworth and Chebyshev-I families, cutoffs spread
    over the band.  Unstable or ill-conditioned designs are skipped.
    """
    rng = np.random.default_rng(seed + 1)
    orders = [2, 3, 4, 5, 6, 7, 8, 9, 10]
    families = ["butterworth", "chebyshev1"]
    entries: list[FilterBankEntry] = []
    index = 0
    while len(entries) < count:
        kind = _IIR_KINDS[index % len(_IIR_KINDS)]
        order = orders[(index // len(_IIR_KINDS)) % len(orders)]
        family = families[(index // (len(_IIR_KINDS) * len(orders))) % len(families)]
        base_cutoff = 0.2 + 0.5 * ((index * 53) % 89) / 89.0
        jitter = float(rng.uniform(-0.02, 0.02))
        cutoff = float(np.clip(base_cutoff + jitter, 0.08, 0.85))
        index += 1
        try:
            if kind == "bandpass":
                prototype_order = max(1, order // 2)
                low = max(0.05, cutoff - 0.12)
                high = min(0.92, cutoff + 0.12)
                b, a = design_iir_filter(prototype_order, (low, high),
                                         kind="bandpass", family=family)
            else:
                b, a = design_iir_filter(order, cutoff, kind=kind,
                                         family=family)
        except ValueError:
            continue
        poles = np.roots(a) if len(a) > 1 else np.array([])
        if len(poles) and np.max(np.abs(poles)) > 0.999:
            continue
        entries.append(FilterBankEntry(
            name=f"iir-{family}-{kind}-order{order}-{index:03d}",
            kind=kind,
            is_fir=False,
            b=tuple(float(c) for c in b),
            a=tuple(float(c) for c in a),
        ))
    return entries


def build_filter_graph(entry: FilterBankEntry, fractional_bits: int,
                       rounding: RoundingMode | str = RoundingMode.ROUND
                       ) -> SignalFlowGraph:
    """Wrap one filter into the Table-I fixed-point system.

    The graph quantizes the (continuous-amplitude) input to
    ``fractional_bits`` bits and re-quantizes the filter output to the same
    precision, i.e. two noise sources: the input source and the filter's
    internal (accumulator) source.
    """
    builder = SfgBuilder(entry.name)
    x = builder.input("x", fractional_bits=fractional_bits, rounding=rounding)
    if entry.is_fir:
        node = builder.fir("filter", list(entry.b), x,
                           fractional_bits=fractional_bits, rounding=rounding)
    else:
        node = builder.iir("filter", list(entry.b), list(entry.a), x,
                           fractional_bits=fractional_bits, rounding=rounding)
    builder.output("y", node)
    return builder.build()


@dataclass
class FilterBankResult:
    """Per-filter ``Ed`` values and their Table-I statistics."""

    ed_values: dict[str, float] = field(default_factory=dict)

    def add(self, name: str, ed: float) -> None:
        """Record the ``Ed`` of one filter."""
        self.ed_values[name] = ed

    @property
    def count(self) -> int:
        """Number of evaluated filters."""
        return len(self.ed_values)

    @property
    def min_ed(self) -> float:
        """Minimum ``Ed`` over the bank (fraction)."""
        return min(self.ed_values.values())

    @property
    def max_ed(self) -> float:
        """Maximum ``Ed`` over the bank (fraction)."""
        return max(self.ed_values.values())

    @property
    def mean_abs_ed(self) -> float:
        """Mean absolute ``Ed`` over the bank (fraction)."""
        return float(np.mean([abs(v) for v in self.ed_values.values()]))

    def summary_row(self) -> tuple[float, float, float]:
        """Table-I row: ``(min, max, mean(|Ed|))`` in percent."""
        return (100.0 * self.min_ed, 100.0 * self.max_ed,
                100.0 * self.mean_abs_ed)


def evaluate_filter_bank(entries: list[FilterBankEntry],
                         fractional_bits: int = 16,
                         num_samples: int = 20_000,
                         n_psd: int = 1024,
                         method: str = "psd",
                         stimulus_kind: str = "white",
                         rounding: RoundingMode | str = RoundingMode.ROUND,
                         seed: int = 0) -> FilterBankResult:
    """Run the Table-I experiment over a bank of filters.

    For every filter the output error power is measured by simulation and
    estimated with ``method``; the per-filter ``Ed`` values are collected
    into a :class:`FilterBankResult`.

    Parameters
    ----------
    entries:
        Filters to evaluate (from :func:`generate_fir_bank` /
        :func:`generate_iir_bank`).
    fractional_bits:
        Uniform fractional word length of all signals.
    num_samples:
        Simulation length per filter (the paper uses 10^6; the default is
        smaller so the full bank runs in minutes on a laptop).
    n_psd:
        PSD bins used by the estimator.
    method:
        Estimation method passed to the evaluator.
    stimulus_kind:
        Stimulus family (see :class:`repro.data.signals.SignalGenerator`).
    """
    generator = SignalGenerator(seed=seed)
    result = FilterBankResult()
    for entry in entries:
        graph = build_filter_graph(entry, fractional_bits, rounding)
        evaluator = AccuracyEvaluator(graph, n_psd=n_psd, name=entry.name)
        stimulus = generator.generate(stimulus_kind, num_samples)
        transient = min(4 * entry.order + 16, num_samples // 4)
        comparison = evaluator.compare(
            stimulus, methods=(method,), n_psd=n_psd,
            discard_transient=transient,
            metadata={"fractional_bits": fractional_bits})
        result.add(entry.name, comparison.reports[method].ed)
    return result
