"""Seeded random signal-flow-graph generator.

The hand-built systems (Table-I banks, the DWT 9/7 codec, the scenario
families of :mod:`repro.systems.families`) cover a handful of fixed
topologies; the differential fuzzing harness (:mod:`repro.verify`) wants
*arbitrary* ones.  This module grows random — but guaranteed-valid —
fixed-point systems from a single integer seed:

* **valid wiring by construction**: the generator only ever extends a set
  of live signal endpoints through :class:`~repro.sfg.builder.SfgBuilder`
  operations, so every input port ends up driven and the graph is acyclic;
* **rate discipline**: every endpoint lives at the input rate.  Multirate
  structure is emitted as an atomic *segment* (decimate → low-rate filter
  → expand → image filter) that returns to the input rate, plus an
  optional final output decimator — adders therefore always merge
  same-rate signals and the PSD walk always sees compatible bin counts;
* **stability-constrained, level-preserving coefficients**: IIR sections
  are built from explicitly placed poles (radius ≤ 0.85) and every random
  filter is normalized to unit noise gain (``sum |h|^2 = 1``), so a white
  signal keeps its variance through arbitrary cascades — neither blowing
  up nor decaying below the quantization steps, which would leave the
  validity domain of the PQN noise model the estimators rest on;
* **seeded word lengths**: every arithmetic node draws its fractional
  word length (and rounding mode) from the same seeded stream.

Everything is derived from one :class:`numpy.random.Generator` seeded
with the graph seed, so the same seed reproduces the same graph —
bit-for-bit, including its canonical fingerprint — in any process.
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from repro.lti.fir_design import design_fir_lowpass
from repro.lti.transfer_function import TransferFunction
from repro.sfg.builder import SfgBuilder
from repro.sfg.graph import SignalFlowGraph
from repro.sfg.nodes import OutputNode

#: Default factors a multirate segment may decimate/expand by.  ``n_psd``
#: values used on random graphs must be divisible by each (see
#: :data:`COMPATIBLE_N_PSD`).
SEGMENT_FACTORS = (2, 3)

#: A PSD bin count divisible by every segment factor (and by the optional
#: final output decimator), safe for any generated graph.
COMPATIBLE_N_PSD = 192


def _random_fir_taps(rng: np.random.Generator) -> list[float]:
    """Random FIR taps with unit noise gain (``sum h^2 = 1``)."""
    count = int(rng.integers(3, 12))
    taps = rng.uniform(-1.0, 1.0, count)
    while float(np.sum(taps * taps)) < 1e-6:  # essentially-zero redraw
        taps = rng.uniform(-1.0, 1.0, count)
    return [float(t) for t in taps / np.sqrt(np.sum(taps * taps))]


def _tap_correlation(first, second) -> float:
    """Zero-lag correlation of two unit-noise-gain tap vectors."""
    length = max(len(first), len(second))
    padded_first = np.zeros(length)
    padded_first[:len(first)] = first
    padded_second = np.zeros(length)
    padded_second[:len(second)] = second
    return float(np.dot(padded_first, padded_second))


def _random_iir_coefficients(rng: np.random.Generator):
    """Stability-constrained (b, a): poles placed inside radius 0.85,
    numerator scaled to unit noise gain (``integral |H|^2 = 1``)."""
    if rng.random() < 0.35:  # first-order section
        pole = float(rng.uniform(-0.85, 0.85))
        a = [1.0, -pole]
    else:  # conjugate-pair biquad
        radius = float(rng.uniform(0.3, 0.85))
        angle = float(rng.uniform(0.05, 0.95)) * np.pi
        a = [1.0, -2.0 * radius * np.cos(angle), radius * radius]
    b = rng.uniform(-1.0, 1.0, int(rng.integers(1, 4)))
    while float(np.max(np.abs(b))) < 0.05:
        b = rng.uniform(-1.0, 1.0, b.size)
    energy = float(TransferFunction(b, a).energy())
    return [float(c) for c in b / np.sqrt(energy)], [float(c) for c in a]


class _RandomSfgGrower:
    """Stateful helper growing one graph from one seeded stream."""

    def __init__(self, rng: np.random.Generator, builder: SfgBuilder,
                 min_bits: int, max_bits: int,
                 factors: tuple = SEGMENT_FACTORS):
        self.rng = rng
        self.builder = builder
        self.min_bits = min_bits
        self.max_bits = max_bits
        self.factors = tuple(factors)
        self.endpoints: list[str] = []
        self._counts: dict[str, int] = {}

    def name(self, kind: str) -> str:
        index = self._counts.get(kind, 0)
        self._counts[kind] = index + 1
        return f"{kind}{index}"

    def bits(self) -> int:
        return int(self.rng.integers(self.min_bits, self.max_bits + 1))

    def rounding(self) -> str:
        return "truncate" if self.rng.random() < 0.25 else "round"

    def take(self) -> str:
        """Remove and return a random live endpoint."""
        return self.endpoints.pop(int(self.rng.integers(len(self.endpoints))))

    # -- elementary growth operations ----------------------------------
    def grow_fir(self, source: str) -> str:
        return self.builder.fir(self.name("fir"), _random_fir_taps(self.rng),
                                source, fractional_bits=self.bits(),
                                rounding=self.rounding())

    def grow_fork(self, source: str) -> tuple[str, str]:
        """Fan ``source`` out into two independently-filtered branches.

        The PSD engine treats reconvergent paths as uncorrelated (Eq. 14
        of the paper), so the generator must stay inside that modeling
        assumption: both copies get their own random FIR, redrawn until
        the two tap vectors are nearly orthogonal, so noise shared by the
        branches can neither cancel nor coherently add when they merge.
        """
        first_taps = _random_fir_taps(self.rng)
        second_taps = _random_fir_taps(self.rng)
        while abs(_tap_correlation(first_taps, second_taps)) > 0.5:
            second_taps = _random_fir_taps(self.rng)
        first = self.builder.fir(self.name("fir"), first_taps, source,
                                 fractional_bits=self.bits(),
                                 rounding=self.rounding())
        second = self.builder.fir(self.name("fir"), second_taps, source,
                                  fractional_bits=self.bits(),
                                  rounding=self.rounding())
        return first, second

    def grow_iir(self, source: str) -> str:
        b, a = _random_iir_coefficients(self.rng)
        return self.builder.iir(self.name("iir"), b, a, source,
                                fractional_bits=self.bits(),
                                rounding=self.rounding())

    def grow_gain(self, source: str) -> str:
        # Bounded away from zero: heavy attenuation would push downstream
        # signals below the quantization steps (PQN validity, see module
        # docstring).
        value = float(self.rng.uniform(0.35, 1.3))
        if self.rng.random() < 0.5:
            value = -value
        return self.builder.gain(self.name("gain"), value, source,
                                 fractional_bits=self.bits(),
                                 rounding=self.rounding())

    def grow_delay(self, source: str) -> str:
        return self.builder.delay(self.name("delay"), source,
                                  samples=int(self.rng.integers(1, 9)))

    def grow_add(self, sources: list[str]) -> str:
        signs = [1.0] + [-1.0 if self.rng.random() < 0.4 else 1.0
                         for _ in sources[1:]]
        return self.builder.add(self.name("add"), sources, signs=signs,
                                fractional_bits=self.bits(),
                                rounding=self.rounding())

    def grow_segment(self, source: str) -> str:
        """Decimate → low-rate filter → expand → image filter; the segment
        returns to the input rate, so endpoint rates stay uniform."""
        factor = int(self.rng.choice(self.factors))
        index = self._counts.get("segment", 0)
        self._counts["segment"] = index + 1
        low_rate = self.builder.downsample(f"seg{index}_down", source, factor)
        inner = (self.grow_iir(low_rate) if self.rng.random() < 0.4
                 else self.grow_fir(low_rate))
        expanded = self.builder.upsample(f"seg{index}_up", inner, factor)
        image = factor * design_fir_lowpass(int(self.rng.integers(7, 16)),
                                            0.8 / factor)
        return self.builder.fir(f"seg{index}_img", list(image), expanded,
                                fractional_bits=self.bits(),
                                rounding=self.rounding())


def build_random_graph(seed: int, blocks: int = 8, multirate: bool = True,
                       min_bits: int = 8, max_bits: int = 14,
                       factors: tuple = SEGMENT_FACTORS,
                       name: str | None = None) -> SignalFlowGraph:
    """Grow one random, valid, stable fixed-point signal-flow graph.

    Parameters
    ----------
    seed:
        The single source of randomness; the same seed always rebuilds the
        same graph (identical canonical fingerprint).
    blocks:
        Number of growth operations applied after the inputs — the
        knob the fuzz shrinker minimizes.
    multirate:
        Whether decimator/expander segments (and a final output
        decimator) may appear.  When they do, PSD-based evaluations must
        use a bin count divisible by every ``factors`` entry
        (:data:`COMPATIBLE_N_PSD` always works for the defaults).
    min_bits, max_bits:
        Range of the per-node seeded fractional word lengths.
    factors:
        Factors a multirate segment may pick from (the campaign scenario
        restricts this to ``(2,)`` so power-of-two ``n_psd`` values stay
        compatible).
    """
    if blocks < 0:
        raise ValueError(f"blocks must be non-negative, got {blocks}")
    if not 1 <= min_bits <= max_bits:
        raise ValueError(
            f"need 1 <= min_bits <= max_bits, got [{min_bits}, {max_bits}]")
    if multirate and not factors:
        raise ValueError("multirate graphs need at least one segment factor")
    rng = np.random.default_rng(seed)
    builder = SfgBuilder(name or f"random-sfg-seed{seed}")
    grower = _RandomSfgGrower(rng, builder, min_bits, max_bits,
                              factors=factors if multirate else ())

    num_inputs = 2 if blocks >= 4 and rng.random() < 0.3 else 1
    for index in range(num_inputs):
        grower.endpoints.append(builder.input(
            f"x{index}", fractional_bits=grower.bits(),
            rounding=grower.rounding()))

    operations = ["fir", "iir", "gain", "delay", "fork", "add"]
    weights = [0.24, 0.17, 0.14, 0.10, 0.12, 0.23]
    if multirate:
        operations.append("segment")
        weights.append(0.16)
    probabilities = np.asarray(weights) / np.sum(weights)

    for _ in range(blocks):
        operation = str(rng.choice(operations, p=probabilities))
        if operation == "add" and len(grower.endpoints) < 2:
            operation = "fir"
        if operation == "add":
            first, second = grower.take(), grower.take()
            grower.endpoints.append(grower.grow_add([first, second]))
        elif operation == "fork":
            grower.endpoints.extend(grower.grow_fork(grower.take()))
        elif operation == "segment":
            grower.endpoints.append(grower.grow_segment(grower.take()))
        else:
            grow = getattr(grower, f"grow_{operation}")
            grower.endpoints.append(grow(grower.take()))

    # Merge the surviving endpoints (all at the input rate) into one
    # signal, optionally decimate it, and terminate the graph.
    while len(grower.endpoints) > 1:
        first, second = grower.take(), grower.take()
        grower.endpoints.append(grower.grow_add([first, second]))
    (tail,) = grower.endpoints
    if multirate and rng.random() < 0.25:
        # The smallest declared segment factor, so an n_psd divisible by
        # every ``factors`` entry can always fold the output PSD too.
        tail = builder.downsample("final_down", tail, min(grower.factors))
    builder.output("y", tail)
    return builder.build()


def random_assignments(graph: SignalFlowGraph, seed: int, count: int,
                       min_bits: int = 6, max_bits: int = 16,
                       edges: bool = False) -> list[dict]:
    """Seeded stack of word-length assignments over a graph's quantized
    nodes (the configuration axis of the batched evaluators).

    Each assignment redraws every quantized node's fractional bits; with
    a small probability a node is disabled (``None``) so the
    no-quantization path of the batch machinery gets fuzzed too.

    With ``edges=True`` the vocabulary also covers per-fanout-branch
    ``"source->target"`` keys: a random subset of the unambiguous edges
    with quantized sources is drawn *once* per stack, and every
    assignment then sets each drawn key to either ``None`` (no tap) or a
    random width.  Naming the same edge keys in every assignment keeps
    batched evaluation and one-by-one sequential replay equivalent —
    a key present in one assignment but absent from the next would
    leave a stale tap behind in the sequential replay.  The edge draws
    use an independent RNG stream, so for a given seed the node-level
    draws are bitwise identical with and without ``edges``.
    """
    if count < 1:
        raise ValueError(f"count must be positive, got {count}")
    rng = np.random.default_rng(seed)
    quantized = [node_name for node_name, node in graph.nodes.items()
                 if node.quantization.enabled]
    tapped: list[str] = []
    edge_rng = None
    if edges:
        edge_rng = np.random.default_rng([seed, 2_654_435_769])
        pair_counts = Counter((edge.source, edge.target)
                              for edge in graph.edges)
        eligible = []
        for edge in graph.edges:
            key = f"{edge.source}->{edge.target}"
            if (key in eligible
                    or pair_counts[edge.source, edge.target] != 1
                    or not graph.nodes[edge.source].quantization.enabled
                    or isinstance(graph.nodes[edge.target], OutputNode)):
                continue
            eligible.append(key)
        tapped = [key for key in eligible if edge_rng.random() < 0.25]
    stack = []
    for _ in range(count):
        assignment: dict[str, int | None] = {}
        for node_name in quantized:
            if rng.random() < 0.08:
                assignment[node_name] = None
            else:
                assignment[node_name] = int(rng.integers(min_bits,
                                                         max_bits + 1))
        for key in tapped:
            if edge_rng.random() < 0.25:
                assignment[key] = None
            else:
                assignment[key] = int(edge_rng.integers(min_bits,
                                                        max_bits + 1))
        stack.append(assignment)
    return stack
