"""Cost-vs-noise Pareto exploration built on the batched optimizer.

The paper's motivation for fast accuracy evaluation is the word-length
*design space*: a designer does not want the optimum for one noise budget
but the whole cost-versus-accuracy trade-off curve.  This module sweeps a
range of noise budgets through :class:`~repro.systems.wordlength.
WordLengthOptimizer` — one compiled plan, one frequency-response cache and
one per-plan noise memo shared across the entire sweep, so consecutive
budgets re-evaluate only the dirty cones of the nodes the greedy search
actually moves — and collects the resulting ``(total bits, noise power)``
points into a Pareto front.

Each front point can optionally be cross-validated against the
Monte-Carlo reference; the validation runs through
:meth:`~repro.analysis.simulation_method.SimulationEvaluator.
evaluate_batch`, which shares the double-precision reference run between
every front point with the same effective coefficient precisions.

Exposed on the command line as ``python -m repro.cli sweep``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.analysis.metrics import ed_deviation
from repro.analysis.simulation_method import SimulationEvaluator
from repro.data.signals import uniform_white_noise
from repro.obs import span
from repro.sfg.graph import SignalFlowGraph
from repro.sfg.plan import compile_plan
from repro.systems.wordlength import WordLengthOptimizer
from repro.utils.tables import TextTable


@dataclass(frozen=True)
class ParetoPoint:
    """One optimized configuration of the cost-vs-noise trade-off.

    Attributes
    ----------
    budget:
        Noise-power budget the optimizer was asked to meet.
    total_bits:
        Cost of the optimized assignment (sum of fractional bits).
    noise_power:
        Estimated output noise power of the assignment.
    assignment:
        The optimized per-node word lengths.
    evaluations:
        Analytical evaluations the optimizer spent on this budget.
    simulated_power:
        Monte-Carlo cross-validation of ``noise_power`` (``None`` unless
        the sweep was asked to validate).
    full_walks, cone_recomputes:
        Work split of the evaluations (see
        :class:`~repro.systems.wordlength.WordLengthResult`): budgets
        after the first reuse the sweep-wide noise memo, so later points
        are served almost entirely by cone recomputes.
    """

    budget: float
    total_bits: int
    noise_power: float
    assignment: dict = field(hash=False)
    evaluations: int
    simulated_power: float | None = None
    full_walks: int = 0
    cone_recomputes: int = 0

    @property
    def ed(self) -> float | None:
        """Deviation ``Ed`` of the estimate vs the validation run."""
        if self.simulated_power is None:
            return None
        return ed_deviation(self.simulated_power, self.noise_power)


@dataclass
class ParetoFront:
    """Result of one budget sweep.

    ``points`` holds one entry per requested budget (sorted by budget,
    loosest first); :meth:`pareto_points` filters them down to the
    non-dominated subset.
    """

    system: str
    method: str
    points: list = field(default_factory=list)

    def pareto_points(self) -> list:
        """Non-dominated points: no other point is cheaper *and* quieter."""
        optimal = []
        for point in self.points:
            dominated = any(
                (other.total_bits <= point.total_bits
                 and other.noise_power <= point.noise_power
                 and (other.total_bits < point.total_bits
                      or other.noise_power < point.noise_power))
                for other in self.points)
            if not dominated:
                optimal.append(point)
        return sorted(optimal, key=lambda p: p.total_bits)

    @property
    def total_evaluations(self) -> int:
        """Analytical evaluations spent over the whole sweep."""
        return sum(point.evaluations for point in self.points)

    @property
    def total_full_walks(self) -> int:
        """Whole-graph walks spent over the sweep (memo cold builds)."""
        return sum(point.full_walks for point in self.points)

    @property
    def total_cone_recomputes(self) -> int:
        """Evaluations served as dirty-cone deltas over the sweep."""
        return sum(point.cone_recomputes for point in self.points)

    def describe(self) -> str:
        """Render the front as the text table printed by the CLI."""
        validated = any(p.simulated_power is not None for p in self.points)
        headers = ["budget", "total bits", "est. power", "evals"]
        if validated:
            headers += ["sim. power", "Ed [%]"]
        on_front = {id(p) for p in self.pareto_points()}
        table = TextTable(
            headers + ["on front?"],
            title=(f"{self.system}: cost-vs-noise sweep ({self.method}, "
                   f"{len(self.points)} budgets, "
                   f"{self.total_evaluations} evaluations)"))
        for point in self.points:
            row = [f"{point.budget:.3e}", point.total_bits,
                   f"{point.noise_power:.3e}", point.evaluations]
            if validated:
                if point.simulated_power is None:
                    row += ["-", "-"]
                else:
                    row += [f"{point.simulated_power:.3e}",
                            round(100.0 * point.ed, 2)]
            row.append("yes" if id(point) in on_front else "no")
            table.add_row(*row)
        return table.render()


def budget_range(loosest: float, tightest: float, count: int) -> np.ndarray:
    """Geometrically spaced noise budgets from ``loosest`` to ``tightest``.

    Always returns a well-formed, loosest-first (descending) sequence:

    * ``count == 0`` yields an empty range (and :func:`sweep_noise_budgets`
      then returns an empty front rather than failing);
    * ``count == 1`` yields the single loosest budget;
    * swapped endpoints (``loosest < tightest``) are reordered — a budget
      of ``1e-8`` is *tighter* than ``1e-4`` no matter the argument
      order;
    * equal endpoints collapse to ``count`` copies of the same budget.
    """
    # NaN compares False against everything, so `<= 0` alone would wave
    # a NaN endpoint through and geomspace would emit a NaN ladder.
    if not (math.isfinite(loosest) and math.isfinite(tightest)):
        raise ValueError(
            f"noise budgets must be finite, got ({loosest!r}, {tightest!r})")
    if loosest <= 0 or tightest <= 0:
        raise ValueError("noise budgets must be positive")
    if count < 0:
        raise ValueError(f"budget count must be non-negative, got {count}")
    if count == 0:
        return np.empty(0)
    loosest, tightest = float(loosest), float(tightest)
    if loosest < tightest:
        loosest, tightest = tightest, loosest
    if count == 1:
        return np.array([loosest])
    return np.geomspace(loosest, tightest, count)


def sweep_noise_budgets(system: SignalFlowGraph, budgets,
                        method: str = "psd", n_psd: int = 256,
                        min_bits: int = 4, max_bits: int = 24,
                        batch: bool | None = None,
                        mode: str | None = None,
                        granularity: str = "node",
                        validate_samples: int = 0,
                        seed: int = 0) -> ParetoFront:
    """Sweep noise budgets into a cost-vs-noise Pareto front.

    Parameters
    ----------
    system:
        Graph to optimize.  Its quantization specs are mutated during the
        sweep and left at the tightest budget's optimum.
    budgets:
        Noise-power budgets to sweep (see :func:`budget_range`).  Budgets
        that cannot be met even at ``max_bits`` are skipped (recorded
        nowhere — the front only holds feasible points).  An empty budget
        sequence yields a well-formed empty front; duplicate budgets are
        collapsed.
    method, n_psd, min_bits, max_bits, batch, mode, granularity:
        Forwarded to :class:`WordLengthOptimizer`; one optimizer (hence
        one compiled plan, one response cache and — in the default
        incremental mode — one noise memo) serves every budget: each
        point after the first starts from the previous optimum's memo
        and pays only dirty-cone deltas.
    validate_samples:
        When positive, cross-validate every swept point by a Monte-Carlo
        run of that many samples (batched, reference runs shared).
    seed:
        Seed of the validation stimulus.

    Returns
    -------
    ParetoFront
        One point per feasible budget, sorted loosest first.
    """
    budgets = {float(b) for b in budgets}
    # Validate before sorting: NaN both defeats the `<= 0` check and
    # makes the sort order (hence the "tightest budget" break below)
    # meaningless.
    bad = [b for b in budgets if not math.isfinite(b) or b <= 0]
    if bad:
        raise ValueError(
            f"noise budgets must be positive and finite, got {sorted(bad)}")
    budgets = sorted(budgets, reverse=True)
    if not budgets:
        # An empty sweep (e.g. budget_range(..., 0)) is a well-formed,
        # empty front — not an error.
        return ParetoFront(system=system.name, method=method)
    optimizer = WordLengthOptimizer(system, method=method, n_psd=n_psd,
                                    min_bits=min_bits, max_bits=max_bits,
                                    batch=batch, mode=mode,
                                    granularity=granularity)
    front = ParetoFront(system=system.name, method=method)
    for budget in budgets:
        try:
            with span("pareto.budget", budget=budget, system=system.name):
                result = optimizer.optimize(budget)
        except ValueError:
            # Budget unreachable even at max_bits: tighter ones are too.
            break
        front.points.append(ParetoPoint(
            budget=budget,
            total_bits=result.total_bits,
            noise_power=result.noise_power,
            assignment=dict(result.assignment),
            evaluations=result.evaluations,
            full_walks=result.full_walks,
            cone_recomputes=result.cone_recomputes,
        ))

    if validate_samples > 0 and front.points:
        plan = compile_plan(system)
        stimulus = {name: uniform_white_noise(validate_samples, 0.9,
                                              seed + index)
                    for index, name in enumerate(plan.input_names)}
        evaluator = SimulationEvaluator(plan)
        with span("pareto.validate", points=len(front.points),
                  samples=validate_samples):
            measurements = evaluator.evaluate_batch(
                [point.assignment for point in front.points], stimulus)
        front.points = [
            ParetoPoint(
                budget=point.budget,
                total_bits=point.total_bits,
                noise_power=point.noise_power,
                assignment=point.assignment,
                evaluations=point.evaluations,
                simulated_power=measurement.error_power,
                full_walks=point.full_walks,
                cone_recomputes=point.cone_recomputes,
            )
            for point, measurement in zip(front.points, measurements)]
    return front
