"""Separable two-dimensional 9/7 analysis / synthesis.

Following Fig. 3 of the paper, one analysis level filters and decimates
the *rows* first (horizontal direction, axis 1) and the *columns* second
(vertical direction, axis 0), producing the ``LL``, ``LH``, ``HL`` and
``HH`` sub-bands; synthesis reverses the order (columns first, then
rows).  A multi-level transform recurses on the ``LL`` band.

Sub-band pyramids are represented as dictionaries::

    {
        "levels": [
            {"lh": ..., "hl": ..., "hh": ...},   # level 1 (finest)
            {"lh": ..., "hl": ..., "hh": ...},   # level 2
            ...
        ],
        "ll": ...,                                # coarsest approximation
    }
"""

from __future__ import annotations

import numpy as np

from repro.fixedpoint.quantizer import Quantizer
from repro.systems.dwt.daubechies97 import WaveletFilters
from repro.systems.dwt.dwt1d import analyze_1d, synthesize_1d

_ROW_AXIS = 1   # filtering "on rows" runs along each row (horizontal axis)
_COLUMN_AXIS = 0


def analyze_2d(image: np.ndarray, filters: WaveletFilters,
               quantizer: Quantizer | None = None
               ) -> dict[str, np.ndarray]:
    """One level of 2-D analysis: returns the four sub-bands."""
    image = np.asarray(image, dtype=float)
    _check_even(image)
    low_rows, high_rows = analyze_1d(image, filters, axis=_ROW_AXIS,
                                     quantizer=quantizer)
    ll, lh = analyze_1d(low_rows, filters, axis=_COLUMN_AXIS,
                        quantizer=quantizer)
    hl, hh = analyze_1d(high_rows, filters, axis=_COLUMN_AXIS,
                        quantizer=quantizer)
    return {"ll": ll, "lh": lh, "hl": hl, "hh": hh}


def synthesize_2d(subbands: dict[str, np.ndarray], filters: WaveletFilters,
                  quantizer: Quantizer | None = None) -> np.ndarray:
    """One level of 2-D synthesis from the four sub-bands."""
    low_rows = synthesize_1d(subbands["ll"], subbands["lh"], filters,
                             axis=_COLUMN_AXIS, quantizer=quantizer)
    high_rows = synthesize_1d(subbands["hl"], subbands["hh"], filters,
                              axis=_COLUMN_AXIS, quantizer=quantizer)
    return synthesize_1d(low_rows, high_rows, filters, axis=_ROW_AXIS,
                         quantizer=quantizer)


def analyze_multilevel(image: np.ndarray, filters: WaveletFilters,
                       levels: int,
                       quantizer: Quantizer | None = None) -> dict:
    """Multi-level 2-D analysis (recursing on the ``LL`` band)."""
    if levels < 1:
        raise ValueError(f"levels must be at least 1, got {levels}")
    pyramid: dict = {"levels": []}
    current = np.asarray(image, dtype=float)
    for _ in range(levels):
        subbands = analyze_2d(current, filters, quantizer=quantizer)
        pyramid["levels"].append({"lh": subbands["lh"],
                                  "hl": subbands["hl"],
                                  "hh": subbands["hh"]})
        current = subbands["ll"]
    pyramid["ll"] = current
    return pyramid


def synthesize_multilevel(pyramid: dict, filters: WaveletFilters,
                          quantizer: Quantizer | None = None) -> np.ndarray:
    """Multi-level 2-D synthesis (inverse of :func:`analyze_multilevel`)."""
    current = np.asarray(pyramid["ll"], dtype=float)
    for detail in reversed(pyramid["levels"]):
        subbands = {"ll": current, "lh": detail["lh"],
                    "hl": detail["hl"], "hh": detail["hh"]}
        current = synthesize_2d(subbands, filters, quantizer=quantizer)
    return current


def _check_even(image: np.ndarray) -> None:
    if image.ndim != 2:
        raise ValueError("the 2-D transform expects a 2-D array")
    rows, cols = image.shape
    if rows % 2 or cols % 2:
        raise ValueError(
            f"image dimensions must be even for one analysis level, got "
            f"{image.shape}")
