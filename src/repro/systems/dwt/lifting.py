"""Lifting-scheme implementation of the 9/7 wavelet transform.

JPEG-2000 implementations rarely use the convolution filter bank of
Fig. 3 directly: the 9/7 transform is factored into four *lifting steps*
(predict / update passes) plus a scaling step, which halves the number of
multiplications and guarantees perfect reconstruction structurally — the
inverse simply replays the steps with opposite signs, whatever the
coefficient precision.

This module provides that alternative realization with the same optional
per-operation quantization hooks as the convolution engine, so the
fixed-point behaviour of the two realizations can be compared (see
``benchmarks/test_ablation_lifting_vs_convolution.py``): the lifting
structure injects one quantization-noise source per lifting step (four
steps plus two scalings per level and direction) instead of one per
filtering operation, and the measured output noise of both realizations
scales identically with the word length.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fixedpoint.quantizer import Quantizer


@dataclass(frozen=True)
class LiftingCoefficients:
    """Lifting constants of the CDF 9/7 factorization."""

    alpha: float = -1.586134342059924
    beta: float = -0.052980118572961
    gamma: float = 0.882911075530934
    delta: float = 0.443506852043971
    scale: float = 1.230174104914001


_DEFAULT = LiftingCoefficients()


def _maybe_quantize(values: np.ndarray, quantizer: Quantizer | None) -> np.ndarray:
    return values if quantizer is None else quantizer.quantize(values)


def _lift(evens: np.ndarray, odds: np.ndarray, coefficient: float,
          quantizer: Quantizer | None, axis: int) -> np.ndarray:
    """One predict/update pass: ``odds += coefficient * (evens + roll(evens))``.

    ``evens`` and ``odds`` are the even- and odd-indexed polyphase
    components along ``axis``; the neighbour of the last odd sample wraps
    around (periodic extension), matching the circular convolution
    convention of the filter-bank engine.
    """
    neighbour = np.roll(evens, -1, axis=axis)
    update = coefficient * (evens + neighbour)
    return _maybe_quantize(odds + update, quantizer)


def _split(x: np.ndarray, axis: int) -> tuple[np.ndarray, np.ndarray]:
    even_slice = [slice(None)] * x.ndim
    odd_slice = [slice(None)] * x.ndim
    even_slice[axis] = slice(0, None, 2)
    odd_slice[axis] = slice(1, None, 2)
    return x[tuple(even_slice)], x[tuple(odd_slice)]


def _merge(evens: np.ndarray, odds: np.ndarray, axis: int) -> np.ndarray:
    shape = list(evens.shape)
    shape[axis] = evens.shape[axis] + odds.shape[axis]
    merged = np.zeros(shape, dtype=float)
    even_slice = [slice(None)] * merged.ndim
    odd_slice = [slice(None)] * merged.ndim
    even_slice[axis] = slice(0, None, 2)
    odd_slice[axis] = slice(1, None, 2)
    merged[tuple(even_slice)] = evens
    merged[tuple(odd_slice)] = odds
    return merged


def lifting_analyze_1d(x: np.ndarray, axis: int = -1,
                       quantizer: Quantizer | None = None,
                       coefficients: LiftingCoefficients = _DEFAULT
                       ) -> tuple[np.ndarray, np.ndarray]:
    """One level of 9/7 analysis along ``axis`` using lifting.

    Returns ``(low_band, high_band)``, each half the length of the input
    along ``axis`` (the input length must be even).
    """
    x = np.asarray(x, dtype=float)
    if x.shape[axis] % 2:
        raise ValueError("the lifting transform needs an even length along "
                         f"axis {axis}, got {x.shape[axis]}")
    evens, odds = _split(x, axis)
    c = coefficients

    # Predict 1 / update 1 / predict 2 / update 2.
    odds = _lift(evens, odds, c.alpha, quantizer, axis)
    evens = _update_even(evens, odds, c.beta, quantizer, axis)
    odds = _lift(evens, odds, c.gamma, quantizer, axis)
    evens = _update_even(evens, odds, c.delta, quantizer, axis)

    low = _maybe_quantize(evens * c.scale, quantizer)
    high = _maybe_quantize(odds / c.scale, quantizer)
    return low, high


def _update_even(evens: np.ndarray, odds: np.ndarray, coefficient: float,
                 quantizer: Quantizer | None, axis: int) -> np.ndarray:
    """Update pass: ``evens += coefficient * (odds + roll(odds, +1))``."""
    neighbour = np.roll(odds, 1, axis=axis)
    return _maybe_quantize(evens + coefficient * (odds + neighbour), quantizer)


def lifting_synthesize_1d(low: np.ndarray, high: np.ndarray, axis: int = -1,
                          quantizer: Quantizer | None = None,
                          coefficients: LiftingCoefficients = _DEFAULT
                          ) -> np.ndarray:
    """Inverse of :func:`lifting_analyze_1d`."""
    c = coefficients
    evens = _maybe_quantize(np.asarray(low, dtype=float) / c.scale, quantizer)
    odds = _maybe_quantize(np.asarray(high, dtype=float) * c.scale, quantizer)

    # Undo the steps in reverse order with opposite signs.
    evens = _update_even(evens, odds, -c.delta, quantizer, axis)
    odds = _lift(evens, odds, -c.gamma, quantizer, axis)
    evens = _update_even(evens, odds, -c.beta, quantizer, axis)
    odds = _lift(evens, odds, -c.alpha, quantizer, axis)
    return _merge(evens, odds, axis)


def lifting_analyze_2d(image: np.ndarray,
                       quantizer: Quantizer | None = None,
                       coefficients: LiftingCoefficients = _DEFAULT
                       ) -> dict[str, np.ndarray]:
    """One level of separable 2-D lifting analysis (rows then columns)."""
    image = np.asarray(image, dtype=float)
    if image.ndim != 2:
        raise ValueError("expected a 2-D array")
    low_rows, high_rows = lifting_analyze_1d(image, axis=1,
                                             quantizer=quantizer,
                                             coefficients=coefficients)
    ll, lh = lifting_analyze_1d(low_rows, axis=0, quantizer=quantizer,
                                coefficients=coefficients)
    hl, hh = lifting_analyze_1d(high_rows, axis=0, quantizer=quantizer,
                                coefficients=coefficients)
    return {"ll": ll, "lh": lh, "hl": hl, "hh": hh}


def lifting_synthesize_2d(subbands: dict[str, np.ndarray],
                          quantizer: Quantizer | None = None,
                          coefficients: LiftingCoefficients = _DEFAULT
                          ) -> np.ndarray:
    """Inverse of :func:`lifting_analyze_2d`."""
    low_rows = lifting_synthesize_1d(subbands["ll"], subbands["lh"], axis=0,
                                     quantizer=quantizer,
                                     coefficients=coefficients)
    high_rows = lifting_synthesize_1d(subbands["hl"], subbands["hh"], axis=0,
                                      quantizer=quantizer,
                                      coefficients=coefficients)
    return lifting_synthesize_1d(low_rows, high_rows, axis=1,
                                 quantizer=quantizer,
                                 coefficients=coefficients)


class LiftingDwt97Codec:
    """Multi-level 2-D 9/7 codec realized with lifting steps.

    Mirrors the public interface of
    :class:`~repro.systems.dwt.codec.Dwt97Codec` (``run_reference``,
    ``run_fixed_point``, ``error_image``) so the two realizations can be
    compared under identical conditions.
    """

    def __init__(self, fractional_bits: int, levels: int = 2,
                 rounding="round", integer_bits: int = 7):
        from repro.fixedpoint.qformat import QFormat
        from repro.fixedpoint.quantizer import RoundingMode

        if levels < 1:
            raise ValueError(f"levels must be at least 1, got {levels}")
        self.fractional_bits = int(fractional_bits)
        self.levels = int(levels)
        self.rounding = RoundingMode(rounding)
        self.integer_bits = int(integer_bits)
        self._quantizer = Quantizer(QFormat(self.integer_bits,
                                            self.fractional_bits),
                                    rounding=self.rounding)

    def _transform(self, image: np.ndarray,
                   quantizer: Quantizer | None) -> np.ndarray:
        pyramid = []
        current = np.asarray(image, dtype=float)
        for _ in range(self.levels):
            subbands = lifting_analyze_2d(current, quantizer=quantizer)
            pyramid.append({k: subbands[k] for k in ("lh", "hl", "hh")})
            current = subbands["ll"]
        for detail in reversed(pyramid):
            subbands = {"ll": current, **detail}
            current = lifting_synthesize_2d(subbands, quantizer=quantizer)
        return current

    def run_reference(self, image: np.ndarray) -> np.ndarray:
        """Encode + decode in double precision."""
        return self._transform(image, None)

    def run_fixed_point(self, image: np.ndarray) -> np.ndarray:
        """Encode + decode with every lifting-step output quantized."""
        quantized = self._quantizer.quantize(np.asarray(image, dtype=float))
        return self._transform(quantized, self._quantizer)

    def error_image(self, image: np.ndarray) -> np.ndarray:
        """Output error of the fixed-point realization."""
        return self.run_fixed_point(image) - self.run_reference(image)
