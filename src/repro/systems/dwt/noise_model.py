"""Analytical noise representation for separable 2-D systems.

The 2-D DWT codec is a separable system: every operation filters,
decimates or expands the image along one axis at a time.  A white 2-D
quantization-noise source therefore keeps a *separable* power spectral
density along every path — the product of one profile per image axis —
and the total noise at any point of the codec is a **sum of separable
contributions** (one per noise source) plus a deterministic mean.

:class:`SeparableNoiseField` stores exactly that:

* ``contributions`` — a list of per-source pairs ``{axis 0 profile,
  axis 1 profile}`` where the power of the contribution is
  ``sum(profile0) * sum(profile1)``;
* ``mean`` — the signed deterministic mean of the noise.

The same class implements the **PSD-agnostic** variant (``mode =
"agnostic"``): profiles collapse to a single bin and LTI filtering
multiplies the power by the impulse-response energy (white-input
assumption) instead of shaping a spectrum — which is precisely the
approximation whose error the paper quantifies (610 % on the DWT in
Table II).

All transformation methods return new objects; fields are immutable from
the caller's point of view, which keeps the analytic codec code mirroring
the sample-domain codec line for line.
"""

from __future__ import annotations

import numpy as np

from repro.fixedpoint.noise_model import NoiseStats
from repro.lti.multirate import downsample_psd, upsample_psd

_MODES = ("psd", "agnostic")


def _magnitude_response(taps: np.ndarray, n_bins: int) -> np.ndarray:
    """Squared magnitude of an FIR filter on ``n_bins`` full-circle bins."""
    taps = np.asarray(taps, dtype=float)
    omega = 2.0 * np.pi * np.arange(n_bins) / n_bins
    k = np.arange(len(taps))
    response = np.exp(-1j * np.outer(omega, k)) @ taps
    return np.abs(response) ** 2


class SeparableNoiseField:
    """Sum-of-separable-contributions noise model for a 2-D signal."""

    __slots__ = ("mode", "bins", "contributions", "mean")

    def __init__(self, mode: str, bins: dict[int, int],
                 contributions: list[dict[int, np.ndarray]] | None = None,
                 mean: float = 0.0):
        if mode not in _MODES:
            raise ValueError(f"mode must be one of {_MODES}, got {mode!r}")
        self.mode = mode
        self.bins = {0: int(bins[0]), 1: int(bins[1])}
        self.contributions = contributions or []
        self.mean = float(mean)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def zero(cls, n_bins: int, mode: str = "psd") -> "SeparableNoiseField":
        """A noise-free field.

        ``n_bins`` is the per-axis PSD resolution in ``psd`` mode and is
        ignored (forced to one bin) in ``agnostic`` mode.
        """
        if mode == "agnostic":
            return cls(mode, {0: 1, 1: 1})
        if n_bins < 2:
            raise ValueError(f"n_bins must be at least 2, got {n_bins}")
        return cls(mode, {0: n_bins, 1: n_bins})

    def _copy(self, contributions=None, mean=None,
              bins=None) -> "SeparableNoiseField":
        return SeparableNoiseField(
            self.mode,
            bins if bins is not None else dict(self.bins),
            contributions if contributions is not None
            else [dict(c) for c in self.contributions],
            self.mean if mean is None else mean,
        )

    # ------------------------------------------------------------------
    # Injection
    # ------------------------------------------------------------------
    def injected(self, stats: NoiseStats) -> "SeparableNoiseField":
        """Field with one additional white noise source added at this point."""
        contributions = [dict(c) for c in self.contributions]
        if stats.variance > 0.0:
            profile0 = np.full(self.bins[0], stats.variance / self.bins[0])
            profile1 = np.full(self.bins[1], 1.0 / self.bins[1])
            if self.mode == "agnostic":
                profile0 = np.array([stats.variance])
                profile1 = np.array([1.0])
            contributions.append({0: profile0, 1: profile1})
        return self._copy(contributions=contributions,
                          mean=self.mean + stats.mean)

    # ------------------------------------------------------------------
    # Propagation
    # ------------------------------------------------------------------
    def filtered(self, taps: np.ndarray, axis: int) -> "SeparableNoiseField":
        """Field after LTI filtering along ``axis``."""
        taps = np.asarray(taps, dtype=float)
        dc_gain = float(np.sum(taps))
        contributions = []
        if self.mode == "psd":
            magnitude = _magnitude_response(taps, self.bins[axis])
            for contribution in self.contributions:
                updated = dict(contribution)
                updated[axis] = contribution[axis] * magnitude
                contributions.append(updated)
        else:
            energy = float(np.dot(taps, taps))
            for contribution in self.contributions:
                updated = dict(contribution)
                updated[axis] = contribution[axis] * energy
                contributions.append(updated)
        return self._copy(contributions=contributions,
                          mean=self.mean * dc_gain)

    def downsampled(self, axis: int, factor: int = 2) -> "SeparableNoiseField":
        """Field after decimation by ``factor`` along ``axis``."""
        if self.mode == "agnostic":
            return self._copy()
        bins = dict(self.bins)
        bins[axis] = bins[axis] // factor
        contributions = []
        for contribution in self.contributions:
            updated = dict(contribution)
            updated[axis] = downsample_psd(contribution[axis], factor)
            contributions.append(updated)
        return self._copy(contributions=contributions, bins=bins)

    def upsampled(self, axis: int, factor: int = 2) -> "SeparableNoiseField":
        """Field after zero-insertion expansion by ``factor`` along ``axis``."""
        if self.mode == "agnostic":
            contributions = []
            for contribution in self.contributions:
                updated = dict(contribution)
                updated[axis] = contribution[axis] / factor
                contributions.append(updated)
            return self._copy(contributions=contributions,
                              mean=self.mean / factor)
        bins = dict(self.bins)
        bins[axis] = bins[axis] * factor
        contributions = []
        for contribution in self.contributions:
            updated = dict(contribution)
            updated[axis] = upsample_psd(contribution[axis], factor)
            contributions.append(updated)
        return self._copy(contributions=contributions, bins=bins,
                          mean=self.mean / factor)

    def added(self, other: "SeparableNoiseField") -> "SeparableNoiseField":
        """Field at the output of an adder combining two signals (Eq. 14)."""
        if self.mode != other.mode:
            raise ValueError("cannot add fields with different modes")
        if self.bins != other.bins:
            raise ValueError(
                f"cannot add fields with bin counts {self.bins} and {other.bins}")
        contributions = ([dict(c) for c in self.contributions]
                         + [dict(c) for c in other.contributions])
        return self._copy(contributions=contributions,
                          mean=self.mean + other.mean)

    # ------------------------------------------------------------------
    # Summaries
    # ------------------------------------------------------------------
    @property
    def variance(self) -> float:
        """Variance (power of the zero-mean part) of the field."""
        return float(sum(np.sum(c[0]) * np.sum(c[1])
                         for c in self.contributions))

    @property
    def total_power(self) -> float:
        """Total noise power ``E[e^2] = mean^2 + variance``."""
        return self.mean ** 2 + self.variance

    def to_stats(self) -> NoiseStats:
        """Collapse to first two moments."""
        return NoiseStats(mean=self.mean, variance=self.variance)

    def to_psd_2d(self, fftshift: bool = True) -> np.ndarray:
        """Render the 2-D PSD map (for the Fig. 7 comparison).

        Returns an array of shape ``(bins[0], bins[1])`` whose entries sum
        to the total power; the DC bin carries the squared mean.  With
        ``fftshift=True`` (default) the zero-frequency bin is moved to the
        center, matching the paper's visualization.
        """
        if self.mode != "psd":
            raise ValueError("only PSD-mode fields can render a 2-D map")
        grid = np.zeros((self.bins[0], self.bins[1]))
        for contribution in self.contributions:
            grid += np.outer(contribution[0], contribution[1])
        grid[0, 0] += self.mean ** 2
        if fftshift:
            grid = np.fft.fftshift(grid)
        return grid

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"SeparableNoiseField(mode={self.mode!r}, bins={self.bins}, "
                f"sources={len(self.contributions)}, "
                f"power={self.total_power:.3e})")
