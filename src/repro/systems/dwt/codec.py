"""The 2-level Daubechies 9/7 DWT encoder / decoder system (Fig. 3).

:class:`Dwt97Codec` bundles the three views of the benchmark the
experiments need:

* **reference run** — encode + decode in double precision (with the same
  quantized coefficients as the fixed-point implementation, per the
  library-wide convention that coefficient quantization is a design
  parameter, not a roundoff noise source);
* **fixed-point run** — every filtering operation re-quantizes its output
  to the data word length ``d`` (and the input image is quantized to
  ``d`` as well);
* **analytical estimates** — the proposed PSD method and the PSD-agnostic
  method, both implemented by mirroring the codec structure on
  :class:`~repro.systems.dwt.noise_model.SeparableNoiseField` objects.

The output error is the difference between the fixed-point and the
reference reconstructions; thanks to perfect reconstruction the reference
equals the input image to within double-precision rounding, so this error
is purely the arithmetic quantization noise of the codec.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.metrics import ed_deviation, noise_power
from repro.fixedpoint.noise_model import NoiseStats, quantization_noise_stats
from repro.fixedpoint.quantizer import Quantizer, RoundingMode
from repro.fixedpoint.qformat import QFormat
from repro.psd.estimation import estimate_psd_2d
from repro.systems.dwt.daubechies97 import WaveletFilters, daubechies_9_7_filters
from repro.systems.dwt.dwt2d import analyze_multilevel, synthesize_multilevel
from repro.systems.dwt.noise_model import SeparableNoiseField

_ROW_AXIS = 1
_COLUMN_AXIS = 0


class Dwt97Codec:
    """Fixed-point 2-D Daubechies 9/7 encoder + decoder.

    Parameters
    ----------
    fractional_bits:
        Fractional word length ``d`` shared by every signal (as in the
        paper, where all fractional parts are set to the same value).
    levels:
        Number of decomposition levels (2 in the paper's experiments).
    rounding:
        Rounding mode of every data-path quantizer.
    coefficient_fractional_bits:
        Precision of the stored filter coefficients; defaults to the data
        precision.
    integer_bits:
        Integer bits of the data path (only used to build the quantizers;
        the experiments never overflow because images live in ``[0, 1)``).
    """

    def __init__(self, fractional_bits: int, levels: int = 2,
                 rounding: RoundingMode | str = RoundingMode.ROUND,
                 coefficient_fractional_bits: int | None = None,
                 integer_bits: int = 7):
        if levels < 1:
            raise ValueError(f"levels must be at least 1, got {levels}")
        self.fractional_bits = int(fractional_bits)
        self.levels = int(levels)
        self.rounding = RoundingMode(rounding)
        self.coefficient_fractional_bits = (
            self.fractional_bits if coefficient_fractional_bits is None
            else int(coefficient_fractional_bits))
        self.integer_bits = int(integer_bits)
        self.filters: WaveletFilters = daubechies_9_7_filters().quantized(
            self.coefficient_fractional_bits)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _data_quantizer(self) -> Quantizer:
        return Quantizer(QFormat(self.integer_bits, self.fractional_bits),
                         rounding=self.rounding)

    def run_reference(self, image: np.ndarray) -> np.ndarray:
        """Encode + decode in double precision."""
        image = np.asarray(image, dtype=float)
        pyramid = analyze_multilevel(image, self.filters, self.levels)
        return synthesize_multilevel(pyramid, self.filters)

    def run_fixed_point(self, image: np.ndarray) -> np.ndarray:
        """Encode + decode with every operation quantized to ``d`` bits."""
        quantizer = self._data_quantizer()
        image = quantizer.quantize(np.asarray(image, dtype=float))
        pyramid = analyze_multilevel(image, self.filters, self.levels,
                                     quantizer=quantizer)
        return synthesize_multilevel(pyramid, self.filters,
                                     quantizer=quantizer)

    def error_image(self, image: np.ndarray) -> np.ndarray:
        """Output error (fixed-point reconstruction minus reference)."""
        return self.run_fixed_point(image) - self.run_reference(image)

    def encode_fixed_point(self, image: np.ndarray) -> dict:
        """Fixed-point analysis only (sub-band pyramid), for the examples."""
        quantizer = self._data_quantizer()
        image = quantizer.quantize(np.asarray(image, dtype=float))
        return analyze_multilevel(image, self.filters, self.levels,
                                  quantizer=quantizer)

    # ------------------------------------------------------------------
    # Analytical model
    # ------------------------------------------------------------------
    def _source_stats(self) -> NoiseStats:
        """Moments of each elementary quantization-noise source."""
        return quantization_noise_stats(self.fractional_bits,
                                        rounding=self.rounding)

    def _analytic_analyze_2d(self, field: SeparableNoiseField,
                             stats: NoiseStats) -> dict[str, SeparableNoiseField]:
        """Mirror of :func:`~repro.systems.dwt.dwt2d.analyze_2d`."""
        f = self.filters
        low_rows = field.filtered(f.analysis_lowpass, _ROW_AXIS).injected(stats)
        high_rows = field.filtered(f.analysis_highpass, _ROW_AXIS).injected(stats)
        low_rows = low_rows.downsampled(_ROW_AXIS)
        high_rows = high_rows.downsampled(_ROW_AXIS)

        ll = (low_rows.filtered(f.analysis_lowpass, _COLUMN_AXIS)
              .injected(stats).downsampled(_COLUMN_AXIS))
        lh = (low_rows.filtered(f.analysis_highpass, _COLUMN_AXIS)
              .injected(stats).downsampled(_COLUMN_AXIS))
        hl = (high_rows.filtered(f.analysis_lowpass, _COLUMN_AXIS)
              .injected(stats).downsampled(_COLUMN_AXIS))
        hh = (high_rows.filtered(f.analysis_highpass, _COLUMN_AXIS)
              .injected(stats).downsampled(_COLUMN_AXIS))
        return {"ll": ll, "lh": lh, "hl": hl, "hh": hh}

    def _analytic_synthesize_1d(self, low: SeparableNoiseField,
                                high: SeparableNoiseField, axis: int,
                                stats: NoiseStats) -> SeparableNoiseField:
        """Mirror of :func:`~repro.systems.dwt.dwt1d.synthesize_1d`."""
        f = self.filters
        low_part = (low.upsampled(axis)
                    .filtered(f.synthesis_lowpass, axis).injected(stats))
        high_part = (high.upsampled(axis)
                     .filtered(f.synthesis_highpass, axis).injected(stats))
        return low_part.added(high_part)

    def _analytic_synthesize_2d(self, subbands: dict[str, SeparableNoiseField],
                                stats: NoiseStats) -> SeparableNoiseField:
        """Mirror of :func:`~repro.systems.dwt.dwt2d.synthesize_2d`."""
        low_rows = self._analytic_synthesize_1d(subbands["ll"], subbands["lh"],
                                                _COLUMN_AXIS, stats)
        high_rows = self._analytic_synthesize_1d(subbands["hl"], subbands["hh"],
                                                 _COLUMN_AXIS, stats)
        return self._analytic_synthesize_1d(low_rows, high_rows,
                                            _ROW_AXIS, stats)

    def estimate_output_noise(self, n_psd: int = 1024,
                              method: str = "psd") -> SeparableNoiseField:
        """Analytical estimate of the output-error noise field.

        Parameters
        ----------
        n_psd:
            Per-axis PSD resolution (``N_PSD``); ignored by the agnostic
            method.
        method:
            ``psd`` (proposed) or ``agnostic``.
        """
        if method not in ("psd", "agnostic"):
            raise ValueError(f"unknown method {method!r}")
        stats = self._source_stats()
        field = SeparableNoiseField.zero(n_psd, mode=method)
        # Input image quantization.
        field = field.injected(stats)

        # Analysis: recurse on the LL band, keeping the detail fields.
        detail_fields: list[dict[str, SeparableNoiseField]] = []
        current = field
        for _ in range(self.levels):
            subbands = self._analytic_analyze_2d(current, stats)
            detail_fields.append({"lh": subbands["lh"],
                                  "hl": subbands["hl"],
                                  "hh": subbands["hh"]})
            current = subbands["ll"]

        # Synthesis: mirror of synthesize_multilevel.
        for detail in reversed(detail_fields):
            subbands = {"ll": current, "lh": detail["lh"],
                        "hl": detail["hl"], "hh": detail["hh"]}
            current = self._analytic_synthesize_2d(subbands, stats)
        return current

    def estimate_error_power(self, n_psd: int = 1024,
                             method: str = "psd") -> float:
        """Scalar output-error power estimate."""
        return self.estimate_output_noise(n_psd, method).total_power

    def estimated_error_psd_2d(self, n_psd: int = 128) -> np.ndarray:
        """Estimated 2-D error spectrum (Fig. 7 right panel), fftshifted."""
        return self.estimate_output_noise(n_psd, "psd").to_psd_2d()

    # ------------------------------------------------------------------
    # Simulation helpers and comparison
    # ------------------------------------------------------------------
    def simulated_error_power(self, images: list[np.ndarray]) -> float:
        """Average output-error power measured over a set of images."""
        if not images:
            raise ValueError("at least one image is required")
        powers = [noise_power(self.error_image(image)) for image in images]
        return float(np.mean(powers))

    def simulated_error_psd_2d(self, images: list[np.ndarray]) -> np.ndarray:
        """Averaged 2-D periodogram of the output error (Fig. 7 left panel)."""
        if not images:
            raise ValueError("at least one image is required")
        accumulated = None
        for image in images:
            spectrum = estimate_psd_2d(self.error_image(image))
            accumulated = spectrum if accumulated is None else accumulated + spectrum
        return accumulated / len(images)

    def compare(self, images: list[np.ndarray], n_psd: int = 1024,
                methods=("psd", "agnostic")) -> dict:
        """Simulation-vs-estimation comparison over a set of images.

        Returns a dictionary with the simulated power, one entry per
        method containing the estimated power and the ``Ed`` deviation
        (as a fraction), and the experiment parameters.
        """
        simulated = self.simulated_error_power(images)
        result = {
            "system": "dwt97",
            "levels": self.levels,
            "fractional_bits": self.fractional_bits,
            "num_images": len(images),
            "simulated_power": simulated,
            "methods": {},
        }
        for method in methods:
            estimated = self.estimate_error_power(n_psd, method)
            result["methods"][method] = {
                "estimated_power": estimated,
                "ed": ed_deviation(simulated, estimated),
            }
        return result
