"""Daubechies (CDF) 9/7 discrete wavelet transform codec (Fig. 3).

The third benchmark of the paper is a 2-level two-dimensional Daubechies
9/7 DWT encoder / decoder, the transform at the heart of JPEG-2000.  The
subpackage provides:

* :mod:`~repro.systems.dwt.daubechies97` — the analysis / synthesis filter
  pairs (validated for perfect reconstruction);
* :mod:`~repro.systems.dwt.dwt1d` / :mod:`~repro.systems.dwt.dwt2d` — the
  separable transform engines with optional per-operation quantization;
* :mod:`~repro.systems.dwt.noise_model` — the analytical noise
  representation (sum of separable per-axis PSD profiles) used by the
  proposed PSD method and its PSD-agnostic counterpart;
* :mod:`~repro.systems.dwt.codec` — the :class:`Dwt97Codec` system tying
  everything together (reference run, fixed-point run, analytical
  estimates, 2-D error-spectrum maps for Fig. 7).
"""

from repro.systems.dwt.daubechies97 import WaveletFilters, daubechies_9_7_filters
from repro.systems.dwt.dwt1d import analyze_1d, circular_filter, synthesize_1d
from repro.systems.dwt.dwt2d import analyze_2d, synthesize_2d
from repro.systems.dwt.noise_model import SeparableNoiseField
from repro.systems.dwt.codec import Dwt97Codec
from repro.systems.dwt.lifting import (
    LiftingDwt97Codec,
    lifting_analyze_1d,
    lifting_analyze_2d,
    lifting_synthesize_1d,
    lifting_synthesize_2d,
)

__all__ = [
    "LiftingDwt97Codec",
    "lifting_analyze_1d",
    "lifting_analyze_2d",
    "lifting_synthesize_1d",
    "lifting_synthesize_2d",
    "WaveletFilters",
    "daubechies_9_7_filters",
    "circular_filter",
    "analyze_1d",
    "synthesize_1d",
    "analyze_2d",
    "synthesize_2d",
    "SeparableNoiseField",
    "Dwt97Codec",
]
