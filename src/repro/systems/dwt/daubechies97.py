"""CDF / Daubechies 9/7 biorthogonal wavelet filters.

The 9/7 pair is the irreversible transform of JPEG-2000 and the filter
bank drawn in Fig. 3 of the paper.  The coefficients below are the
standard published values; the sign / alignment convention of the
high-pass filters is chosen so that the two-channel filter bank

    analysis:  low  = (x * h0) downsampled by 2 (even phase)
               high = (x * h1) downsampled by 2 (even phase)
    synthesis: x'   = (upsample(low) * g0) + (upsample(high) * g1)

reconstructs the input exactly (up to double-precision rounding) when the
filters are applied as *centered* circular convolutions — see
:func:`repro.systems.dwt.dwt1d.circular_filter`.  Perfect reconstruction
is asserted by the unit tests, which protects the convention against
accidental changes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fixedpoint.quantizer import round_half_away

# Analysis low-pass (9 taps, symmetric, DC gain 1).
_ANALYSIS_LOWPASS = np.array([
    0.026748757410810,
    -0.016864118442875,
    -0.078223266528988,
    0.266864118442872,
    0.602949018236358,
    0.266864118442872,
    -0.078223266528988,
    -0.016864118442875,
    0.026748757410810,
])

# Synthesis low-pass (7 taps, symmetric, DC gain 2).
_SYNTHESIS_LOWPASS = np.array([
    -0.091271763114250,
    -0.057543526228500,
    0.591271763114247,
    1.115087052456994,
    0.591271763114247,
    -0.057543526228500,
    -0.091271763114250,
])


@dataclass(frozen=True)
class WaveletFilters:
    """A two-channel biorthogonal filter bank.

    Attributes
    ----------
    analysis_lowpass, analysis_highpass:
        Analysis filters ``h0`` and ``h1``.
    synthesis_lowpass, synthesis_highpass:
        Synthesis filters ``g0`` and ``g1``.
    analysis_lowpass_center, analysis_highpass_center,
    synthesis_lowpass_center, synthesis_highpass_center:
        Index of the tap aligned with the current sample when the filter
        is applied as a centered circular convolution; these alignments
        are part of the perfect-reconstruction convention.
    """

    analysis_lowpass: np.ndarray
    analysis_highpass: np.ndarray
    synthesis_lowpass: np.ndarray
    synthesis_highpass: np.ndarray
    analysis_lowpass_center: int
    analysis_highpass_center: int
    synthesis_lowpass_center: int
    synthesis_highpass_center: int

    def quantized(self, fractional_bits: int) -> "WaveletFilters":
        """Copy of the bank with all coefficients rounded to ``fractional_bits``."""
        step = 2.0 ** (-fractional_bits)

        def q(taps: np.ndarray) -> np.ndarray:
            return round_half_away(taps / step) * step

        return WaveletFilters(
            analysis_lowpass=q(self.analysis_lowpass),
            analysis_highpass=q(self.analysis_highpass),
            synthesis_lowpass=q(self.synthesis_lowpass),
            synthesis_highpass=q(self.synthesis_highpass),
            analysis_lowpass_center=self.analysis_lowpass_center,
            analysis_highpass_center=self.analysis_highpass_center,
            synthesis_lowpass_center=self.synthesis_lowpass_center,
            synthesis_highpass_center=self.synthesis_highpass_center,
        )


def daubechies_9_7_filters() -> WaveletFilters:
    """The CDF 9/7 filter bank in the library's perfect-reconstruction convention.

    The high-pass filters are obtained from the opposite-channel low-pass
    filters by frequency modulation (``(-1)^n``); the centers were chosen
    (and are locked in by the tests) so that analysis followed by synthesis
    is the identity.
    """
    h0 = _ANALYSIS_LOWPASS.copy()
    g0 = _SYNTHESIS_LOWPASS.copy()
    modulation_g0 = ((-1.0) ** np.arange(len(g0)))
    modulation_h0 = ((-1.0) ** np.arange(len(h0)))
    h1 = modulation_g0 * g0          # analysis high-pass (7 taps)
    g1 = -modulation_h0 * h0         # synthesis high-pass (9 taps)
    return WaveletFilters(
        analysis_lowpass=h0,
        analysis_highpass=h1,
        synthesis_lowpass=g0,
        synthesis_highpass=g1,
        analysis_lowpass_center=4,
        analysis_highpass_center=2,
        synthesis_lowpass_center=3,
        synthesis_highpass_center=5,
    )
