"""One-dimensional 9/7 analysis / synthesis with optional quantization.

Filtering is performed as *centered circular convolution*: tap ``k`` of a
filter with declared center ``c`` multiplies the sample ``x[n + (k - c)]``
(indices wrap around).  Circular extension keeps perfect reconstruction
exact without boundary bookkeeping and matches the frequency-domain view
used by the analytical noise model (a circular convolution is an exact
point-wise product of DFTs).

Every ``circular_filter`` call accumulates the products exactly in double
precision and, when a quantizer is supplied, re-quantizes the result —
i.e. one additive noise source per filtering operation, which is exactly
where the analytical model of :mod:`repro.systems.dwt.noise_model`
injects its white sources.
"""

from __future__ import annotations

import numpy as np

from repro.fixedpoint.quantizer import Quantizer
from repro.systems.dwt.daubechies97 import WaveletFilters


def circular_filter(x: np.ndarray, taps: np.ndarray, center: int,
                    axis: int = -1,
                    quantizer: Quantizer | None = None) -> np.ndarray:
    """Centered circular convolution along ``axis``.

    Parameters
    ----------
    x:
        Input array (1-D signal or 2-D image).
    taps:
        Filter coefficients.
    center:
        Index of the tap aligned with the current sample.
    axis:
        Axis along which to filter.
    quantizer:
        Optional quantizer applied to the (exactly accumulated) output.
    """
    x = np.asarray(x, dtype=float)
    taps = np.asarray(taps, dtype=float)
    result = np.zeros_like(x)
    for k, coefficient in enumerate(taps):
        offset = k - center
        result += coefficient * np.roll(x, -offset, axis=axis)
    if quantizer is not None:
        result = quantizer.quantize(result)
    return result


def analyze_1d(x: np.ndarray, filters: WaveletFilters, axis: int = -1,
               quantizer: Quantizer | None = None
               ) -> tuple[np.ndarray, np.ndarray]:
    """One level of 1-D analysis: returns ``(low_band, high_band)``.

    Both bands are decimated by two (even phase) along ``axis``.
    """
    low = circular_filter(x, filters.analysis_lowpass,
                          filters.analysis_lowpass_center, axis=axis,
                          quantizer=quantizer)
    high = circular_filter(x, filters.analysis_highpass,
                           filters.analysis_highpass_center, axis=axis,
                           quantizer=quantizer)
    return _decimate(low, axis), _decimate(high, axis)


def synthesize_1d(low: np.ndarray, high: np.ndarray, filters: WaveletFilters,
                  axis: int = -1,
                  quantizer: Quantizer | None = None) -> np.ndarray:
    """One level of 1-D synthesis from ``(low_band, high_band)``."""
    low_up = _expand(low, axis)
    high_up = _expand(high, axis)
    low_part = circular_filter(low_up, filters.synthesis_lowpass,
                               filters.synthesis_lowpass_center, axis=axis,
                               quantizer=quantizer)
    high_part = circular_filter(high_up, filters.synthesis_highpass,
                                filters.synthesis_highpass_center, axis=axis,
                                quantizer=quantizer)
    return low_part + high_part


def _decimate(x: np.ndarray, axis: int) -> np.ndarray:
    slicer = [slice(None)] * x.ndim
    slicer[axis] = slice(0, None, 2)
    return x[tuple(slicer)]


def _expand(x: np.ndarray, axis: int) -> np.ndarray:
    shape = list(x.shape)
    if shape[axis] == 0:
        raise ValueError("cannot expand an empty band")
    shape[axis] = shape[axis] * 2
    expanded = np.zeros(shape, dtype=float)
    slicer = [slice(None)] * x.ndim
    slicer[axis] = slice(0, None, 2)
    expanded[tuple(slicer)] = x
    return expanded
