"""Benchmark systems of the paper's evaluation section.

* :mod:`~repro.systems.filter_bank` — the 147-FIR / 147-IIR filter bank of
  Table I.
* :mod:`~repro.systems.freq_filter` — the frequency-domain band-pass
  filtering scheme of Fig. 2 (time-domain FIR + FFT / coefficient multiply
  / IFFT overlap-save stage).
* :mod:`~repro.systems.dwt` — the 2-level Daubechies 9/7 DWT encoder /
  decoder of Fig. 3.
* :mod:`~repro.systems.wordlength` — the word-length refinement use-case
  motivating the whole study (greedy optimization driven by any of the
  accuracy evaluators, with configuration-batched candidate rounds).
* :mod:`~repro.systems.pareto` — noise-budget sweeps turning the optimizer
  into a cost-vs-noise Pareto front (optionally cross-validated by
  simulation).
* :mod:`~repro.systems.families` — graph builders for system families
  beyond the paper's benchmarks (cascaded-SOS banks, polyphase
  decimators, interpolator chains, FFT butterfly networks), the raw
  material of the campaign scenario registry (:mod:`repro.campaign`).
* :mod:`~repro.systems.random_graphs` — the seeded random-SFG generator
  behind the differential fuzzing harness (:mod:`repro.verify`) and the
  ``random`` campaign scenario.
"""

from repro.systems.filter_bank import (
    FilterBankEntry,
    FilterBankResult,
    build_filter_graph,
    evaluate_filter_bank,
    generate_fir_bank,
    generate_iir_bank,
)
from repro.systems.freq_filter import (
    FrequencyDomainFilter,
    FrequencyDomainFirNode,
    build_frequency_filter_graph,
)
from repro.systems.dwt import Dwt97Codec, daubechies_9_7_filters
from repro.systems.families import (
    build_cascaded_sos_bank,
    build_dwt97_bank,
    build_fft_butterfly,
    build_interpolator_chain,
    build_polyphase_decimator,
    build_scalability_bank,
    build_scalability_chain,
)
from repro.systems.random_graphs import build_random_graph, random_assignments
from repro.systems.wordlength import WordLengthOptimizer, WordLengthResult
from repro.systems.pareto import (
    ParetoFront,
    ParetoPoint,
    budget_range,
    sweep_noise_budgets,
)

__all__ = [
    "FilterBankEntry",
    "FilterBankResult",
    "generate_fir_bank",
    "generate_iir_bank",
    "build_filter_graph",
    "evaluate_filter_bank",
    "FrequencyDomainFilter",
    "FrequencyDomainFirNode",
    "build_frequency_filter_graph",
    "Dwt97Codec",
    "daubechies_9_7_filters",
    "build_cascaded_sos_bank",
    "build_dwt97_bank",
    "build_fft_butterfly",
    "build_interpolator_chain",
    "build_polyphase_decimator",
    "build_scalability_bank",
    "build_scalability_chain",
    "build_random_graph",
    "random_assignments",
    "WordLengthOptimizer",
    "WordLengthResult",
    "ParetoFront",
    "ParetoPoint",
    "budget_range",
    "sweep_noise_budgets",
]
