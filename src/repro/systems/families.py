"""Graph builders for system families beyond the paper's two benchmarks.

The paper validates its estimator on the Table-I filter bank and the 9/7
DWT codec; the campaign layer (:mod:`repro.campaign`) explores a much
wider design space.  This module contributes the structural builders for
four additional families, each produced as a plain
:class:`~repro.sfg.graph.SignalFlowGraph` so that every evaluation engine
(bit-true simulation, the analytical walks, the batched configuration
stacks and the word-length optimizer) applies unchanged:

* :func:`build_cascaded_sos_bank` — a bank of band-pass channels, each
  realized as a cascade of second-order sections (Jackson's cascade noise
  model, one quantizer per biquad), summed into one output;
* :func:`build_polyphase_decimator` — an M-branch polyphase realization
  of an FIR decimator (delay / decimate / sub-filter / sum);
* :func:`build_interpolator_chain` — a chain of upsample-by-2 + half-band
  FIR interpolation stages;
* :func:`build_fft_butterfly` — the radix-2 decimation-in-time butterfly
  network of one DFT bin applied along the sample stream (decimate into
  even / odd phases, real twiddle gains, ± adders), the classical
  fixed-point FFT noise structure;
* :func:`build_dwt97_bank` — the one-level Daubechies 9/7 analysis +
  synthesis bank as a multirate SFG (the paper's DWT benchmark reduced
  to its filter-bank core);
* :func:`build_scalability_chain` / :func:`build_scalability_bank` — the
  deterministic scalability workloads shared by the ablation and
  incremental-re-evaluation benchmarks: an FIR cascade (deep graph, every
  edit's downstream cone is most of the graph) and a wide FIR bank merged
  by an unquantized binary adder tree (shallow cones — a one-branch edit
  touches only that branch plus its ``log2`` adder path, the structure
  the dirty-cone memoization is fastest on).

All builders share the convention of the Table-I systems: the input is
quantized to ``fractional_bits`` and every arithmetic block re-quantizes
its output to the same precision, so each block contributes one additive
noise source.
"""

from __future__ import annotations

import numpy as np

from repro.fixedpoint.quantizer import RoundingMode
from repro.lti.fir_design import design_fir_lowpass
from repro.lti.iir_design import design_iir_filter
from repro.lti.sos import tf_to_sos
from repro.sfg.builder import SfgBuilder
from repro.sfg.graph import SignalFlowGraph
from repro.systems.dwt.daubechies97 import daubechies_9_7_filters


def _append_sos_cascade(builder: SfgBuilder, prefix: str, b, a, source: str,
                        fractional_bits: int,
                        rounding: RoundingMode | str) -> str:
    """Append ``B(z)/A(z)`` as a chain of quantized biquads; returns the
    name of the last section."""
    previous = source
    for index, row in enumerate(tf_to_sos(b, a)):
        previous = builder.iir(f"{prefix}-biquad{index}", row[:3], row[3:],
                               previous, fractional_bits=fractional_bits,
                               rounding=rounding)
    return previous


def build_cascaded_sos_bank(channels: int = 3, order: int = 2,
                            fractional_bits: int = 12,
                            family: str = "butterworth",
                            rounding: RoundingMode | str = RoundingMode.ROUND,
                            name: str | None = None) -> SignalFlowGraph:
    """A bank of band-pass channels, each a cascade of biquad sections.

    Parameters
    ----------
    channels:
        Number of band-pass channels; their centre frequencies are spread
        evenly over the band.
    order:
        Prototype order of each band-pass design (the digital order is
        ``2 * order``, i.e. ``order`` biquads per channel).
    fractional_bits:
        Uniform fractional word length of every quantized signal.
    family:
        IIR design family (``butterworth`` or ``chebyshev1``).
    """
    if channels < 1:
        raise ValueError(f"need at least one channel, got {channels}")
    if order < 1:
        raise ValueError(f"prototype order must be at least 1, got {order}")
    builder = SfgBuilder(name or f"sos-bank-{channels}ch-order{order}")
    x = builder.input("x", fractional_bits=fractional_bits, rounding=rounding)
    channel_outputs = []
    for channel in range(channels):
        center = (0.45 if channels == 1
                  else 0.15 + 0.6 * channel / (channels - 1))
        low = max(0.05, center - 0.08)
        high = min(0.92, center + 0.08)
        b, a = design_iir_filter(order, (low, high), kind="bandpass",
                                 family=family)
        channel_outputs.append(_append_sos_cascade(
            builder, f"ch{channel}", b, a, x, fractional_bits, rounding))
    if len(channel_outputs) == 1:
        builder.output("y", channel_outputs[0])
    else:
        merged = builder.add("merge", channel_outputs,
                             fractional_bits=fractional_bits,
                             rounding=rounding)
        builder.output("y", merged)
    return builder.build()


def build_polyphase_decimator(taps: int = 32, factor: int = 4,
                              fractional_bits: int = 12,
                              cutoff: float | None = None,
                              rounding: RoundingMode | str = RoundingMode.ROUND,
                              name: str | None = None) -> SignalFlowGraph:
    """An M-branch polyphase FIR decimator.

    The prototype low-pass ``h`` is split into its ``factor`` polyphase
    components ``e_k = h[k::factor]``; branch ``k`` delays the input by
    ``k`` samples, decimates by ``factor`` and filters with ``e_k``, and
    the branches are summed.  The output stream equals the decimated
    output of the prototype filter while every sub-filter runs at the low
    rate — the standard efficient decimator structure, and (because each
    branch consumes a *disjoint* subset of the input samples) a multirate
    system whose branch noise sources really are uncorrelated.

    Parameters
    ----------
    taps:
        Prototype filter length (must be at least ``factor``).
    factor:
        Decimation factor M (number of polyphase branches).
    cutoff:
        Prototype cutoff; defaults to ``0.8 / factor`` (the anti-aliasing
        band edge).
    """
    if factor < 2:
        raise ValueError(f"decimation factor must be at least 2, got {factor}")
    if taps < factor:
        raise ValueError(f"need at least factor={factor} taps, got {taps}")
    prototype = design_fir_lowpass(taps, cutoff if cutoff is not None
                                   else 0.8 / factor)
    builder = SfgBuilder(name or f"polyphase-decimator-M{factor}-{taps}taps")
    x = builder.input("x", fractional_bits=fractional_bits, rounding=rounding)
    branches = []
    for k in range(factor):
        tapped = x if k == 0 else builder.delay(f"z{k}", x, samples=k)
        low_rate = builder.downsample(f"down{k}", tapped, factor)
        branches.append(builder.fir(
            f"e{k}", list(prototype[k::factor]), low_rate,
            fractional_bits=fractional_bits, rounding=rounding))
    merged = builder.add("merge", branches, fractional_bits=fractional_bits,
                         rounding=rounding)
    builder.output("y", merged)
    return builder.build()


def build_interpolator_chain(stages: int = 2, taps: int = 19,
                             fractional_bits: int = 12,
                             rounding: RoundingMode | str = RoundingMode.ROUND,
                             name: str | None = None) -> SignalFlowGraph:
    """A chain of upsample-by-2 + low-pass FIR interpolation stages.

    Each stage inserts zeros (doubling the rate) and filters with a
    half-band-style low-pass scaled by 2 to restore the passband gain.
    ``stages`` stages interpolate by ``2**stages`` overall; every image
    filter is a quantized FIR block, so the chain accumulates one noise
    source per stage shaped by all downstream stages.

    Parameters
    ----------
    stages:
        Number of upsample-by-2 stages.
    taps:
        Length of each stage's image-rejection filter.
    """
    if stages < 1:
        raise ValueError(f"need at least one stage, got {stages}")
    if taps < 3:
        raise ValueError(f"need at least 3 taps, got {taps}")
    image_filter = 2.0 * design_fir_lowpass(taps, 0.5)
    builder = SfgBuilder(name or f"interpolator-chain-{stages}x2")
    signal = builder.input("x", fractional_bits=fractional_bits,
                           rounding=rounding)
    for stage in range(stages):
        expanded = builder.upsample(f"up{stage}", signal, 2)
        signal = builder.fir(f"g{stage}", list(image_filter), expanded,
                             fractional_bits=fractional_bits,
                             rounding=rounding)
    builder.output("y", signal)
    return builder.build()


def build_fft_butterfly(stages: int = 3, bin_index: int = 1,
                        fractional_bits: int = 12,
                        rounding: RoundingMode | str = RoundingMode.ROUND,
                        name: str | None = None) -> SignalFlowGraph:
    """The radix-2 DIT butterfly network of one DFT bin, along the stream.

    A radix-2 decimation-in-time FFT computes bin ``k`` of an
    ``N = 2**stages``-point transform by recursively splitting the stream
    into even / odd sample phases and combining them with twiddle-weighted
    ± butterflies.  This builder instantiates that butterfly path as a
    multirate signal-flow graph: per stage one even-phase and one
    odd-phase decimator, a real twiddle gain on the odd phase — the
    dominant component of ``W = exp(-2j pi k / 2**(stage+1))``, i.e. the
    path into the bin's real or imaginary accumulator, whichever carries
    the larger weight — and a quantized ± adder (the sign is the
    corresponding bit of ``bin_index``).  The
    result is the classical fixed-point FFT noise structure — one
    quantization source per butterfly, decimated and recombined stage by
    stage — with every block real-valued.

    Parameters
    ----------
    stages:
        Number of butterfly stages (transform size ``2**stages``).
    bin_index:
        DFT bin whose butterfly path is built
        (``0 <= bin_index < 2**stages``); its bits choose the ± signs and
        the twiddle angles.
    """
    if stages < 1:
        raise ValueError(f"need at least one stage, got {stages}")
    size = 2 ** stages
    if not 0 <= bin_index < size:
        raise ValueError(
            f"bin_index must be in [0, {size}), got {bin_index}")
    builder = SfgBuilder(name or f"fft-butterfly-{size}pt-bin{bin_index}")
    signal = builder.input("x", fractional_bits=fractional_bits,
                           rounding=rounding)
    for stage in range(stages):
        even = builder.downsample(f"even{stage}", signal, 2, phase=0)
        odd = builder.downsample(f"odd{stage}", signal, 2, phase=1)
        angle = 2.0 * np.pi * (bin_index % (2 ** (stage + 1))) / (2 ** (stage + 1))
        cos_part, sin_part = float(np.cos(angle)), float(np.sin(angle))
        twiddle = cos_part if abs(cos_part) >= abs(sin_part) else sin_part
        twiddled = builder.gain(f"w{stage}", twiddle, odd,
                                fractional_bits=fractional_bits,
                                rounding=rounding)
        sign = -1.0 if (bin_index >> stage) & 1 else 1.0
        signal = builder.add(f"bfly{stage}", [even, twiddled],
                             signs=[1.0, sign],
                             fractional_bits=fractional_bits,
                             rounding=rounding)
    builder.output("y", signal)
    return builder.build()


def build_scalability_chain(num_blocks: int, taps_per_block: int = 33,
                            fractional_bits: int = 14,
                            name: str | None = None) -> SignalFlowGraph:
    """A cascade of ``num_blocks`` quantized FIR low-passes.

    The scalability ablation's chain workload: evaluation cost grows
    linearly with ``num_blocks``, and any single-node edit dirties every
    downstream block, making it the *worst* case for dirty-cone
    memoization (the cone of an early edit is almost the whole graph).
    Cutoffs cycle deterministically so consecutive blocks differ.
    """
    if num_blocks < 1:
        raise ValueError(f"need at least one block, got {num_blocks}")
    builder = SfgBuilder(name or f"chain-{num_blocks}")
    previous = builder.input("x", fractional_bits=fractional_bits)
    for index in range(num_blocks):
        cutoff = 0.3 + 0.4 * (index % 5) / 5.0
        previous = builder.fir(f"block{index}",
                               design_fir_lowpass(taps_per_block, cutoff),
                               previous, fractional_bits=fractional_bits)
    builder.output("y", previous)
    return builder.build()


def build_scalability_bank(branches: int = 64, taps: int = 17,
                           fractional_bits: int = 14,
                           name: str | None = None) -> SignalFlowGraph:
    """A wide bank of quantized FIR branches under a binary adder tree.

    The incremental-re-evaluation benchmark's workload: ``branches``
    parallel FIR filters (one noise source each, cutoffs cycled
    deterministically) merged by an *unquantized* binary adder tree, so a
    one-branch word-length edit dirties only that branch plus its
    ``log2(branches)``-deep adder path — the best case for dirty-cone
    memoization, and the shape of the word-length optimizer's greedy
    candidate loop.
    """
    if branches < 2:
        raise ValueError(f"need at least two branches, got {branches}")
    builder = SfgBuilder(name or f"scalability-bank-{branches}")
    x = builder.input("x", fractional_bits=fractional_bits)
    level = [builder.fir(f"branch{index}",
                         design_fir_lowpass(taps,
                                            0.2 + 0.6 * (index % 7) / 7.0),
                         x, fractional_bits=fractional_bits)
             for index in range(branches)]
    # Unquantized adders: they add no noise sources of their own, so the
    # bank has exactly one source per branch and the tree only routes.
    depth = 0
    while len(level) > 1:
        merged = []
        for pair in range(0, len(level) - 1, 2):
            merged.append(builder.add(f"merge{depth}_{pair // 2}",
                                      [level[pair], level[pair + 1]]))
        if len(level) % 2:
            merged.append(level[-1])
        level = merged
        depth += 1
    builder.output("y", level[0])
    return builder.build()


def build_dwt97_bank(fractional_bits: int = 11,
                     rounding: RoundingMode | str = RoundingMode.ROUND,
                     name: str = "dwt97-bank") -> SignalFlowGraph:
    """One-level Daubechies 9/7 analysis + synthesis bank (multirate).

    Analysis low/high filters, decimation by 2, expansion by 2 and the
    synthesis pair, merged into the reconstructed output — the paper's
    DWT benchmark reduced to its filter-bank core, with every filter and
    the merge adder quantized to ``fractional_bits``.
    """
    filters = daubechies_9_7_filters()
    builder = SfgBuilder(name)
    x = builder.input("x", fractional_bits=fractional_bits,
                      rounding=rounding)
    low = builder.fir("h0", filters.analysis_lowpass, x,
                      fractional_bits=fractional_bits, rounding=rounding)
    high = builder.fir("h1", filters.analysis_highpass, x,
                       fractional_bits=fractional_bits, rounding=rounding)
    low_d = builder.downsample("low_down", low, 2)
    high_d = builder.downsample("high_down", high, 2)
    low_u = builder.upsample("low_up", low_d, 2)
    high_u = builder.upsample("high_up", high_d, 2)
    low_s = builder.fir("g0", filters.synthesis_lowpass, low_u,
                        fractional_bits=fractional_bits, rounding=rounding)
    high_s = builder.fir("g1", filters.synthesis_highpass, high_u,
                         fractional_bits=fractional_bits, rounding=rounding)
    merged = builder.add("merge", [low_s, high_s],
                         fractional_bits=fractional_bits, rounding=rounding)
    builder.output("y", merged)
    return builder.build()
