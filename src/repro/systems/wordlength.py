"""Word-length optimization driven by the accuracy evaluators.

The introduction of the paper motivates fast accuracy evaluation by the
fixed-point *refinement* loop: choosing per-signal word lengths that meet
a quality constraint at minimum cost requires evaluating the output noise
power for very many candidate configurations, so the evaluator's speed
directly bounds the size of the explorable search space.

:class:`WordLengthOptimizer` implements the classical greedy refinement on
top of any analytical evaluator of this library:

1. find the smallest *uniform* fractional word length meeting the noise
   budget (binary search);
2. greedily remove one bit at a time from the node whose removal degrades
   the output noise the least, as long as the budget is still met
   (max-1 / min+1 style descent).

The cost model is the total number of fractional bits across all
quantized nodes, a standard proxy for datapath area / energy.

The optimizer compiles the graph into a
:class:`~repro.sfg.plan.CompiledPlan` once and re-quantizes it in place
across search iterations, so the topological schedule and the memoized
per-node frequency responses are shared by the (typically hundreds of)
candidate evaluations.  Three evaluation modes cover the cost/diagnosis
trade-offs, all bit-identical in their results:

* ``incremental`` (default) — each greedy candidate is a single-node
  delta against the incumbent :class:`~repro.analysis._engine.NoiseMemo`:
  the plan marks the edited node dirty and the evaluator re-walks only
  its downstream cone, O(depth) instead of O(nodes) per candidate.
* ``batch`` — every round's single-bit-decrement candidates run as one
  configuration-batched pass (``evaluate_*_batch``), the amortized
  cross-check of the incremental path.
* ``sequential`` — one *cold* full walk per candidate (the memo is
  disabled), the honest O(nodes) baseline the speed-up benchmarks
  measure against.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field

import numpy as np

from repro.analysis._engine import memoization_disabled, plan_memo
from repro.analysis.agnostic_method import (
    evaluate_agnostic,
    evaluate_agnostic_batch,
)
from repro.analysis.flat_method import evaluate_flat, evaluate_flat_batch
from repro.analysis.psd_method import evaluate_psd, evaluate_psd_batch
from repro.obs import metric_inc, span
from repro.sfg.graph import SignalFlowGraph
from repro.sfg.nodes import OutputNode
from repro.sfg.plan import compile_plan

_METHODS = ("psd", "flat", "agnostic")
_MODES = ("incremental", "batch", "sequential")
_GRANULARITIES = ("node", "edge")


@dataclass
class WordLengthResult:
    """Outcome of a word-length optimization run.

    Attributes
    ----------
    assignment:
        Mapping from node name (and, at ``granularity="edge"``, from
        ``"source->target"`` edge key) to its optimized fractional word
        length.
    noise_power:
        Estimated output noise power of the final assignment.
    budget:
        Noise-power budget that was enforced.
    total_bits:
        Cost of the assignment: the sum of fractional bits over all
        optimized nodes, plus — at edge granularity — the per-edge
        deltas ``min(edge bits, source bits) - source bits`` (a fanout
        tap narrower than its source saves datapath bits on that
        branch; a tap at or above the source width is a no-op and
        costs nothing).
    evaluations:
        Number of distinct candidate evaluations performed (batched
        candidates count individually), a direct measure of how much the
        evaluator's speed matters.  Powers that are already known — the
        uniform starting point and the final assignment — are reused, not
        re-evaluated.
    history:
        Sequence of ``(assignment cost, noise power)`` pairs recorded
        after every accepted move.
    full_walks:
        How many of the evaluations re-walked the whole graph: cold
        memo builds in ``incremental``/``batch`` mode, every evaluation
        in ``sequential`` mode.  Together with ``cone_recomputes`` this
        makes the work actually saved by incremental re-evaluation
        reportable, instead of hiding delta evaluations and full walks
        behind one number.
    cone_recomputes:
        How many evaluations were served as dirty-cone deltas against
        the incumbent :class:`~repro.analysis._engine.NoiseMemo`
        (always 0 in ``sequential`` mode; ``flat``-method savings show
        up as path-function cache hits instead of cone recomputes).
    """

    assignment: dict[str, int]
    noise_power: float
    budget: float
    total_bits: int
    evaluations: int
    history: list = field(default_factory=list)
    full_walks: int = 0
    cone_recomputes: int = 0


class WordLengthOptimizer:
    """Greedy word-length refinement on a signal-flow graph.

    Parameters
    ----------
    graph:
        Graph whose quantized nodes will be refined (their
        :class:`~repro.sfg.nodes.QuantizationSpec` objects are replaced in
        place by the optimizer).
    method:
        Analytical evaluator to drive the search: ``psd`` (default),
        ``flat`` or ``agnostic``.
    n_psd:
        PSD bins for the PSD-based evaluator.
    min_bits, max_bits:
        Search range for every node's fractional word length.
    mode:
        Candidate-evaluation strategy: ``"incremental"`` (default —
        per-candidate dirty-cone deltas against the plan's noise memo),
        ``"batch"`` (one configuration-batched pass per greedy round) or
        ``"sequential"`` (one cold full walk per candidate, memoization
        disabled).  All three return bit-identical assignments; the
        non-default modes exist as the cross-check and the honest
        timing baseline.
    batch:
        Back-compat alias: ``batch=True`` means ``mode="batch"``,
        ``batch=False`` means ``mode="sequential"``.  Leave both unset
        for the incremental default.
    granularity:
        ``"node"`` (default) tunes one fractional width per quantized
        node — the classical search.  ``"edge"`` additionally tunes a
        fractional width per fanout branch (every unambiguous
        ``source->target`` edge whose source is quantized and whose
        target is not an output), letting one consumer of a shared
        signal run narrower than the others.  Node-level assignments
        are the degenerate case: an edge at its source's width is a
        no-op tap with zero cost and zero noise.
    """

    def __init__(self, graph: SignalFlowGraph, method: str = "psd",
                 n_psd: int = 256, min_bits: int = 4, max_bits: int = 24,
                 batch: bool | None = None, mode: str | None = None,
                 granularity: str = "node"):
        if min_bits < 1 or max_bits < min_bits:
            raise ValueError(
                f"invalid bit range [{min_bits}, {max_bits}]")
        if method not in _METHODS:
            raise ValueError(
                f"unknown method {method!r}; expected one of {_METHODS}")
        if mode is None:
            mode = ("incremental" if batch is None
                    else "batch" if batch else "sequential")
        elif mode not in _MODES:
            raise ValueError(
                f"unknown mode {mode!r}; expected one of {_MODES}")
        elif batch is not None and mode != ("batch" if batch
                                            else "sequential"):
            raise ValueError(
                f"conflicting batch={batch!r} and mode={mode!r}; pass "
                "only mode (batch is the legacy alias)")
        if granularity not in _GRANULARITIES:
            raise ValueError(
                f"unknown granularity {granularity!r}; expected one of "
                f"{_GRANULARITIES}")
        self.graph = graph
        self.method = method
        self.n_psd = n_psd
        self.min_bits = min_bits
        self.max_bits = max_bits
        self.mode = mode
        self.batch = mode == "batch"
        self.granularity = granularity
        self._evaluations = 0
        # The graph is compiled once; the search re-quantizes the plan in
        # place, so the schedule and the memoized per-node frequency
        # responses are shared by every candidate evaluation.
        self._plan = compile_plan(graph)
        # Only nodes with an enabled spec are tuned: handing bits to an
        # unquantized node would trip requantize's allow_enable guard
        # (and silently changing the search space would be worse).
        self._tunable = [name for name, node in graph.nodes.items()
                         if node.quantization.enabled]
        if not self._tunable:
            raise ValueError("the graph has no quantized node to optimize")
        # Edge granularity adds one tunable per unambiguous fanout
        # branch whose source is quantized; multi-port (source, target)
        # pairs are skipped because a "source->target" key cannot name
        # one of them, and output taps are skipped because the output
        # node is a pure probe.
        self._edge_sources: dict[str, str] = {}
        if granularity == "edge":
            pair_counts = Counter((edge.source, edge.target)
                                  for edge in graph.edges)
            for edge in graph.edges:
                key = f"{edge.source}->{edge.target}"
                if (key in self._edge_sources
                        or pair_counts[edge.source, edge.target] != 1
                        or not graph.nodes[edge.source].quantization.enabled
                        or isinstance(graph.nodes[edge.target], OutputNode)):
                    continue
                self._edge_sources[key] = edge.source
            self._tunable.extend(self._edge_sources)

    # ------------------------------------------------------------------
    # Evaluation plumbing
    # ------------------------------------------------------------------
    def _apply(self, assignment: dict[str, int]) -> None:
        self._plan.requantize(assignment)

    def _noise_power(self, assignment: dict[str, int]) -> float:
        """Evaluate one assignment (requantizes the plan in place).

        In ``sequential`` mode the per-plan noise memo is disabled for
        the evaluation, so every candidate costs one cold full walk —
        the honest O(nodes) baseline.  The other modes pull from the
        memo: a one-node candidate edit recomputes only its dirty
        downstream cone.
        """
        self._apply(assignment)
        self._evaluations += 1
        metric_inc("optimizer.evaluations", mode=self.mode)
        with span("optimizer.candidate", mode=self.mode):
            if self.mode == "sequential":
                with memoization_disabled():
                    return self._evaluate_current()
            return self._evaluate_current()

    def _evaluate_current(self) -> float:
        if self.method == "psd":
            return evaluate_psd(self._plan, self.n_psd).total_power
        if self.method == "flat":
            return evaluate_flat(self._plan).power
        return evaluate_agnostic(self._plan).power

    def _noise_powers(self, candidates: list[dict]) -> np.ndarray:
        """Evaluate a whole candidate round (strategy per ``mode``)."""
        with span("optimizer.round", mode=self.mode,
                  candidates=len(candidates)):
            if self.mode != "batch":
                # incremental: each candidate is a single-node delta
                # against the incumbent memo; sequential: one cold walk
                # each.
                return np.array([self._noise_power(candidate)
                                 for candidate in candidates])
            self._evaluations += len(candidates)
            metric_inc("optimizer.evaluations", len(candidates),
                       mode=self.mode)
            if self.method == "psd":
                result = evaluate_psd_batch(self._plan, self.n_psd,
                                            candidates)
                return np.asarray(result.total_power, dtype=float)
            if self.method == "flat":
                result = evaluate_flat_batch(self._plan, candidates)
            else:
                result = evaluate_agnostic_batch(self._plan, candidates)
            return np.asarray(result.power, dtype=float)

    def assignment_cost(self, assignment: dict[str, int]) -> int:
        """Total fractional bits of an assignment (the search cost).

        Node keys contribute their width directly.  Edge keys
        contribute ``min(edge bits, source bits) - source bits``: a tap
        narrower than its source shrinks that branch's datapath, while
        a tap at or above the source width is a numerical no-op and
        costs nothing.  At node granularity this degenerates to
        ``sum(assignment.values())``.
        """
        total = 0
        for name, bits in assignment.items():
            source = self._edge_sources.get(name)
            if source is None:
                total += bits
            else:
                total += min(bits, assignment[source]) - assignment[source]
        return total

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------
    def uniform_search(self, budget: float) -> dict[str, int]:
        """Smallest uniform word length meeting the noise budget."""
        assignment, _ = self._uniform_search(budget)
        return assignment

    def _uniform_search(self, budget: float) -> tuple[dict[str, int], float]:
        """Uniform search returning the assignment *and* its known power.

        The binary search always ends on a word length it has already
        evaluated, so the caller never needs to re-measure the starting
        point.
        """
        budget = float(budget)
        if not math.isfinite(budget) or budget <= 0:
            raise ValueError(
                f"the noise budget must be positive and finite, got "
                f"{budget!r}")
        with span("optimizer.uniform_search", budget=budget):
            low, high = self.min_bits, self.max_bits
            powers: dict[int, float] = {}
            powers[high] = self._noise_power({n: high
                                              for n in self._tunable})
            if powers[high] > budget:
                raise ValueError(
                    f"the budget {budget:.3e} cannot be met even with "
                    f"{high} fractional bits everywhere")
            while low < high:
                middle = (low + high) // 2
                powers[middle] = self._noise_power(
                    {n: middle for n in self._tunable})
                if powers[middle] <= budget:
                    high = middle
                else:
                    low = middle + 1
            return {n: high for n in self._tunable}, powers[high]

    def optimize(self, budget: float) -> WordLengthResult:
        """Run the full greedy refinement under a noise-power budget."""
        with span("optimizer.optimize", budget=budget, mode=self.mode,
                  method=self.method):
            return self._optimize(budget)

    def _optimize(self, budget: float) -> WordLengthResult:
        self._evaluations = 0
        memo = (plan_memo(self._plan) if self.mode != "sequential"
                else None)
        counters_before = memo.counters() if memo is not None else None
        assignment, current_power = self._uniform_search(budget)
        history = [(self.assignment_cost(assignment), current_power)]

        base_cost = self.assignment_cost(assignment)
        improved = True
        while improved:
            improved = False
            candidates = []
            for name in self._tunable:
                source = self._edge_sources.get(name)
                # An edge tap wider than its source is a no-op, so the
                # first useful decrement starts from the *effective*
                # width min(edge, source), not the stored one.
                current = (assignment[name] if source is None
                           else min(assignment[name], assignment[source]))
                if current <= self.min_bits:
                    continue
                candidate = dict(assignment)
                candidate[name] = current - 1
                # Only strict cost improvements compete: narrowing a
                # node that already carries a narrower fanout tap can
                # be cost-neutral (the tapped branch stays at the tap
                # width), and accepting such a move would burn noise
                # slack without buying anything.
                if self.assignment_cost(candidate) >= base_cost:
                    continue
                candidates.append(candidate)
            if not candidates:
                break
            powers = self._noise_powers(candidates)
            best_index = None
            best_power = None
            for index, power in enumerate(powers):
                power = float(power)
                if power <= budget and (best_power is None
                                        or power < best_power):
                    best_index = index
                    best_power = power
            if best_index is not None:
                assignment = candidates[best_index]
                current_power = best_power
                base_cost = self.assignment_cost(assignment)
                history.append((base_cost, best_power))
                improved = True

        # The final power is already known from the round that accepted
        # the assignment (or from the uniform search) — re-quantize the
        # plan to the winner without paying another evaluation.
        self._apply(assignment)
        if memo is not None:
            counters = memo.counters()
            full_walks = (counters["full_walks"]
                          - counters_before["full_walks"])
            cone_recomputes = (counters["cone_recomputes"]
                               - counters_before["cone_recomputes"])
        else:
            # Sequential mode walks the whole graph once per evaluation
            # by construction.
            full_walks = self._evaluations
            cone_recomputes = 0
        return WordLengthResult(
            assignment=dict(assignment),
            noise_power=current_power,
            budget=budget,
            total_bits=self.assignment_cost(assignment),
            evaluations=self._evaluations,
            history=history,
            full_walks=full_walks,
            cone_recomputes=cone_recomputes,
        )
