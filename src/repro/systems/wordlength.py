"""Word-length optimization driven by the accuracy evaluators.

The introduction of the paper motivates fast accuracy evaluation by the
fixed-point *refinement* loop: choosing per-signal word lengths that meet
a quality constraint at minimum cost requires evaluating the output noise
power for very many candidate configurations, so the evaluator's speed
directly bounds the size of the explorable search space.

:class:`WordLengthOptimizer` implements the classical greedy refinement on
top of any analytical evaluator of this library:

1. find the smallest *uniform* fractional word length meeting the noise
   budget (binary search);
2. greedily remove one bit at a time from the node whose removal degrades
   the output noise the least, as long as the budget is still met
   (max-1 / min+1 style descent).

The cost model is the total number of fractional bits across all
quantized nodes, a standard proxy for datapath area / energy.

The optimizer compiles the graph into a
:class:`~repro.sfg.plan.CompiledPlan` once and re-quantizes it in place
across search iterations, so the topological schedule and the memoized
per-node frequency responses are shared by the (typically hundreds of)
candidate evaluations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.agnostic_method import evaluate_agnostic
from repro.analysis.flat_method import evaluate_flat
from repro.analysis.psd_method import evaluate_psd
from repro.sfg.graph import SignalFlowGraph
from repro.sfg.plan import compile_plan


@dataclass
class WordLengthResult:
    """Outcome of a word-length optimization run.

    Attributes
    ----------
    assignment:
        Mapping from node name to its optimized fractional word length.
    noise_power:
        Estimated output noise power of the final assignment.
    budget:
        Noise-power budget that was enforced.
    total_bits:
        Sum of fractional bits over all optimized nodes (the cost).
    evaluations:
        Number of analytical evaluations performed, a direct measure of
        how much the evaluator's speed matters.
    history:
        Sequence of ``(assignment cost, noise power)`` pairs recorded
        after every accepted move.
    """

    assignment: dict[str, int]
    noise_power: float
    budget: float
    total_bits: int
    evaluations: int
    history: list = field(default_factory=list)


class WordLengthOptimizer:
    """Greedy word-length refinement on a signal-flow graph.

    Parameters
    ----------
    graph:
        Graph whose quantized nodes will be refined (their
        :class:`~repro.sfg.nodes.QuantizationSpec` objects are replaced in
        place by the optimizer).
    method:
        Analytical evaluator to drive the search: ``psd`` (default),
        ``flat`` or ``agnostic``.
    n_psd:
        PSD bins for the PSD-based evaluator.
    min_bits, max_bits:
        Search range for every node's fractional word length.
    """

    def __init__(self, graph: SignalFlowGraph, method: str = "psd",
                 n_psd: int = 256, min_bits: int = 4, max_bits: int = 24):
        if min_bits < 1 or max_bits < min_bits:
            raise ValueError(
                f"invalid bit range [{min_bits}, {max_bits}]")
        self.graph = graph
        self.method = method
        self.n_psd = n_psd
        self.min_bits = min_bits
        self.max_bits = max_bits
        self._evaluations = 0
        # The graph is compiled once; the search re-quantizes the plan in
        # place, so the schedule and the memoized per-node frequency
        # responses are shared by every candidate evaluation.
        self._plan = compile_plan(graph)
        self._tunable = [name for name, node in graph.nodes.items()
                         if node.quantization.enabled]
        if not self._tunable:
            raise ValueError("the graph has no quantized node to optimize")

    # ------------------------------------------------------------------
    # Evaluation plumbing
    # ------------------------------------------------------------------
    def _apply(self, assignment: dict[str, int]) -> None:
        self._plan.requantize(assignment)

    def _noise_power(self, assignment: dict[str, int]) -> float:
        self._apply(assignment)
        self._evaluations += 1
        if self.method == "psd":
            return evaluate_psd(self._plan, self.n_psd).total_power
        if self.method == "flat":
            return evaluate_flat(self._plan).power
        if self.method == "agnostic":
            return evaluate_agnostic(self._plan).power
        raise ValueError(f"unknown method {self.method!r}")

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------
    def uniform_search(self, budget: float) -> dict[str, int]:
        """Smallest uniform word length meeting the noise budget."""
        if budget <= 0:
            raise ValueError("the noise budget must be positive")
        low, high = self.min_bits, self.max_bits
        if self._noise_power({n: high for n in self._tunable}) > budget:
            raise ValueError(
                f"the budget {budget:.3e} cannot be met even with "
                f"{high} fractional bits everywhere")
        while low < high:
            middle = (low + high) // 2
            power = self._noise_power({n: middle for n in self._tunable})
            if power <= budget:
                high = middle
            else:
                low = middle + 1
        return {n: high for n in self._tunable}

    def optimize(self, budget: float) -> WordLengthResult:
        """Run the full greedy refinement under a noise-power budget."""
        self._evaluations = 0
        assignment = self.uniform_search(budget)
        history = [(sum(assignment.values()),
                    self._noise_power(assignment))]

        improved = True
        while improved:
            improved = False
            best_candidate = None
            best_power = None
            for name in self._tunable:
                if assignment[name] <= self.min_bits:
                    continue
                candidate = dict(assignment)
                candidate[name] -= 1
                power = self._noise_power(candidate)
                if power <= budget and (best_power is None or power < best_power):
                    best_candidate = candidate
                    best_power = power
            if best_candidate is not None:
                assignment = best_candidate
                history.append((sum(assignment.values()), best_power))
                improved = True

        final_power = self._noise_power(assignment)
        self._apply(assignment)
        return WordLengthResult(
            assignment=dict(assignment),
            noise_power=final_power,
            budget=budget,
            total_bits=sum(assignment.values()),
            evaluations=self._evaluations,
            history=history,
        )
