"""Frequency-domain band-pass filtering system (Fig. 2 of the paper).

The system chains two frequency-selective stages:

1. a 16-tap time-domain low-pass FIR filter ``H_lp``;
2. a frequency-domain high-pass filter ``H_hp`` applied with the
   overlap-save method: buffer, ``N``-point FFT, point-wise multiplication
   by the filter's frequency-domain coefficients, inverse FFT, un-buffer.

Together they implement a band-pass response.  The interesting property
for accuracy evaluation is that the quantization noise entering stage 2 is
*not white* — it has been shaped by stage 1 — which is exactly the
situation where the PSD-agnostic hierarchical method fails (Table II of
the paper reports a 29.5 % error for it versus below 10 % for the PSD
method).

Substitutions versus the paper (documented in DESIGN.md): the paper uses a
16-tap frequency-domain filter with a 16-point FFT, a degenerate
overlap-save configuration (one new sample per transform).  Here the
frequency-domain filter has 9 taps by default so the 16-point overlap-save
produces 8 new samples per transform; the noise-analysis structure is
unchanged.

The frequency-domain stage is modelled as a single
:class:`FrequencyDomainFirNode`: seen from outside it is an LTI block with
the FIR transfer function of its coefficients, but its internal noise
source accounts for the quantization performed inside the FFT butterflies,
the coefficient multiplications and the inverse FFT (classical fixed-point
FFT noise model, one white injection per butterfly stage amplified by the
remaining stages).
"""

from __future__ import annotations

import numpy as np

from repro.fixedpoint.noise_model import NoiseStats
from repro.fixedpoint.quantizer import Quantizer, RoundingMode
from repro.fixedpoint.qformat import QFormat
from repro.lti.convolution import overlap_save
from repro.lti.fft import FixedPointFft
from repro.simkernel.backend import resolve_backend
from repro.simkernel.fft import overlap_save_assemble, overlap_save_blocks
from repro.lti.fir_design import design_fir_highpass, design_fir_lowpass
from repro.sfg.builder import SfgBuilder
from repro.sfg.executor import SfgExecutor
from repro.sfg.graph import SignalFlowGraph
from repro.sfg.nodes import FirNode, QuantizationSpec
from repro.analysis.evaluator import AccuracyEvaluator


class FrequencyDomainFirNode(FirNode):
    """FIR filter applied in the frequency domain with overlap-save.

    Parameters
    ----------
    name:
        Node name.
    taps:
        Impulse response of the applied filter (``len(taps) <= fft_size``).
    fft_size:
        Transform size of the overlap-save engine.
    quantization:
        Word-length specification of the whole stage (input buffer, FFT
        data path, coefficients and output share the same precision, as in
        the paper where all fractional word lengths are set to ``d``).
    """

    def __init__(self, name: str, taps, fft_size: int = 16,
                 quantization: QuantizationSpec | None = None):
        super().__init__(name, taps, quantization=quantization)
        if len(self.taps) > fft_size:
            raise ValueError(
                f"{len(self.taps)} taps do not fit in an FFT of size {fft_size}")
        self.fft_size = int(fft_size)

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------
    def simulate(self, inputs: list[np.ndarray]) -> np.ndarray:
        """Reference behaviour: exact overlap-save with the quantized taps.

        Leading axes of the stimulus are independent trials; every trial
        runs through the (vectorized) overlap-save engine in one pass.
        """
        (x,) = inputs
        x = np.asarray(x, dtype=float)
        taps = self._effective_transfer_function().b
        if resolve_backend() == "reference":
            # The streaming loop is 1-D; replay it per trial.
            return self._map_trials(
                lambda row: overlap_save(row, taps, self.fft_size), x)
        return overlap_save(x, taps, self.fft_size)

    def simulate_fixed(self, inputs: list[np.ndarray]) -> np.ndarray:
        """Bit-true behaviour: fixed-point FFT / multiply / IFFT pipeline.

        All overlap-save blocks (and all trials of a batched stimulus) go
        through the butterfly stages together; the ``reference`` backend
        replays the original streaming per-block loop instead.  Both are
        bitwise identical.
        """
        (x,) = inputs
        x = np.asarray(x, dtype=float)
        if not self.quantization.enabled:
            return self.simulate(inputs)
        if resolve_backend() == "reference":
            return self._map_trials(self._simulate_fixed_reference, x)

        data_quantizer, coeff_quantizer = self._pipeline_quantizers()
        taps, h_spectrum = self._quantized_spectrum(coeff_quantizer)
        engine = FixedPointFft(self.fft_size, self.quantization.fractional_bits,
                               rounding=self.quantization.rounding)
        blocks, hop = overlap_save_blocks(x, len(taps), self.fft_size)
        spectra = engine.forward(blocks)
        product = spectra * h_spectrum
        product = (data_quantizer.quantize(product.real)
                   + 1j * data_quantizer.quantize(product.imag))
        result = np.real(engine.inverse(product))
        output = overlap_save_assemble(result, len(taps), hop, x.shape[-1])
        return data_quantizer.quantize(output)

    # ------------------------------------------------------------------
    # Pipeline pieces
    # ------------------------------------------------------------------
    @staticmethod
    def _map_trials(function, x: np.ndarray) -> np.ndarray:
        """Apply a 1-D pipeline to every trial of a stacked stimulus."""
        if x.ndim == 1:
            return function(x)
        flat = x.reshape(-1, x.shape[-1])
        return np.stack([function(row) for row in flat]).reshape(x.shape)

    def _pipeline_quantizers(self) -> tuple[Quantizer, Quantizer]:
        data_quantizer = Quantizer(
            QFormat(15, self.quantization.fractional_bits),
            rounding=self.quantization.rounding)
        # Coefficients (time-domain taps and their spectrum) are design-time
        # constants shared with the reference path, hence round-to-nearest.
        coeff_quantizer = Quantizer(QFormat(15, self.quantization.coeff_bits),
                                    rounding=RoundingMode.ROUND)
        return data_quantizer, coeff_quantizer

    def _quantized_spectrum(self, coeff_quantizer: Quantizer):
        taps = coeff_quantizer.quantize(self.taps)
        n = self.fft_size
        h_padded = np.concatenate([taps, np.zeros(n - len(taps))])
        h_spectrum = np.fft.fft(h_padded)
        # The frequency-domain coefficients are stored constants, quantized
        # once to the coefficient precision.
        h_spectrum = (coeff_quantizer.quantize(h_spectrum.real)
                      + 1j * coeff_quantizer.quantize(h_spectrum.imag))
        return taps, h_spectrum

    def _simulate_fixed_reference(self, x: np.ndarray) -> np.ndarray:
        """The original streaming per-block pipeline (legacy ground truth)."""
        data_quantizer, coeff_quantizer = self._pipeline_quantizers()
        taps, h_spectrum = self._quantized_spectrum(coeff_quantizer)
        n = self.fft_size
        engine = FixedPointFft(n, self.quantization.fractional_bits,
                               rounding=self.quantization.rounding)
        hop = n - len(taps) + 1
        padded = np.concatenate([np.zeros(len(taps) - 1), x, np.zeros(n)])
        output = np.zeros(len(x) + n)
        position = 0
        out_position = 0
        while out_position < len(x):
            block = padded[position:position + n]
            spectrum = engine.forward(block)
            product = spectrum * h_spectrum
            product = (data_quantizer.quantize(product.real)
                       + 1j * data_quantizer.quantize(product.imag))
            result = np.real(engine.inverse(product))
            valid = result[len(taps) - 1:]
            output[out_position:out_position + hop] = valid[:hop]
            position += hop
            out_position += hop
        return data_quantizer.quantize(output[:len(x)])

    # ------------------------------------------------------------------
    # Noise model
    # ------------------------------------------------------------------
    def generated_noise(self) -> NoiseStats:
        """Internal roundoff noise of the FFT / multiply / IFFT pipeline.

        The classical fixed-point FFT noise model is used: every butterfly
        stage quantizes the real and imaginary parts of each sample
        (``2 * q^2 / 12`` of injected variance) and that noise is amplified
        by a factor 2 per remaining stage.  The frequency-domain noise is
        then scaled by the coefficient magnitudes, spread back to the time
        domain by the (1/N-scaled) inverse FFT and halved when the real
        part is taken; a final output quantization adds one more white
        source.
        """
        if not self.quantization.enabled:
            return NoiseStats(0.0, 0.0)
        d = self.quantization.fractional_bits
        q = 2.0 ** (-d)
        sigma_q2 = q * q / 12.0
        n = self.fft_size

        # Per-bin complex noise at the forward-FFT output.
        v_fft = 2.0 * sigma_q2 * (n - 1)
        # Coefficient-multiplication stage: scale by |H[k]|^2, add one
        # complex rounding per bin.
        taps = self._effective_transfer_function().b
        h_padded = np.concatenate([taps, np.zeros(n - len(taps))])
        h_mag2 = np.abs(np.fft.fft(h_padded)) ** 2
        v_mult_total = float(np.sum(v_fft * h_mag2)) + 2.0 * sigma_q2 * n
        # Inverse FFT: frequency-domain noise spreads over the block
        # (variance sum), internal butterflies add the same 2*sigma^2*(n-1),
        # the 1/N scaling divides the variance by N^2 and taking the real
        # part halves the circular complex noise.
        v_time = 0.5 * (v_mult_total + 2.0 * sigma_q2 * (n - 1)) / (n * n)
        # Final output quantization back to the data word length.
        v_output = sigma_q2
        variance = v_time + v_output

        if self.quantization.rounding is RoundingMode.TRUNCATE:
            mean = -q / 2.0
        else:
            mean = 0.0
        return NoiseStats(mean=mean, variance=variance)


def default_time_domain_taps(num_taps: int = 16) -> np.ndarray:
    """Default 16-tap low-pass response of the time-domain stage."""
    return design_fir_lowpass(num_taps, cutoff=0.5)


def default_frequency_domain_taps(num_taps: int = 9) -> np.ndarray:
    """Default high-pass response applied in the frequency domain."""
    return design_fir_highpass(num_taps, cutoff=0.25)


def build_frequency_filter_graph(fractional_bits: int,
                                 fft_size: int = 16,
                                 time_taps: np.ndarray | None = None,
                                 freq_taps: np.ndarray | None = None,
                                 rounding: RoundingMode | str = RoundingMode.ROUND
                                 ) -> SignalFlowGraph:
    """Assemble the Fig. 2 system as a signal-flow graph.

    Parameters
    ----------
    fractional_bits:
        Uniform fractional word length ``d`` of every signal.
    fft_size:
        Overlap-save transform size.
    time_taps, freq_taps:
        Impulse responses of the two stages; defaults reproduce the paper's
        16-tap low-pass followed by a frequency-domain high-pass.
    rounding:
        Rounding mode of every quantizer.
    """
    rounding = RoundingMode(rounding)
    if time_taps is None:
        time_taps = default_time_domain_taps()
    if freq_taps is None:
        freq_taps = default_frequency_domain_taps()

    builder = SfgBuilder("frequency-domain-filter")
    x = builder.input("x", fractional_bits=fractional_bits, rounding=rounding)
    lowpass = builder.fir("time_fir", list(time_taps), x,
                          fractional_bits=fractional_bits, rounding=rounding)
    node = FrequencyDomainFirNode(
        "freq_fir", freq_taps, fft_size=fft_size,
        quantization=QuantizationSpec(fractional_bits=fractional_bits,
                                      rounding=rounding))
    builder.graph.add_node(node)
    builder.graph.connect(lowpass, "freq_fir", 0)
    builder.output("y", "freq_fir")
    return builder.build()


class FrequencyDomainFilter:
    """Convenience wrapper bundling the Fig. 2 graph and its evaluator.

    Parameters
    ----------
    fractional_bits:
        Uniform fractional word length.
    fft_size, time_taps, freq_taps, rounding:
        Forwarded to :func:`build_frequency_filter_graph`.
    n_psd:
        Default PSD bin count of the analytical estimator.
    """

    def __init__(self, fractional_bits: int, fft_size: int = 16,
                 time_taps=None, freq_taps=None,
                 rounding: RoundingMode | str = RoundingMode.ROUND,
                 n_psd: int = 1024):
        self.fractional_bits = fractional_bits
        self.graph = build_frequency_filter_graph(
            fractional_bits, fft_size=fft_size, time_taps=time_taps,
            freq_taps=freq_taps, rounding=rounding)
        self.evaluator = AccuracyEvaluator(self.graph, n_psd=n_psd,
                                           name="frequency-domain-filter")
        self._executor = SfgExecutor(self.evaluator.plan)

    def run_reference(self, stimulus: np.ndarray) -> np.ndarray:
        """Double-precision output for ``stimulus``."""
        return self._executor.run({"x": stimulus}, mode="double").output("y")

    def run_fixed_point(self, stimulus: np.ndarray) -> np.ndarray:
        """Bit-true fixed-point output for ``stimulus``."""
        return self._executor.run({"x": stimulus}, mode="fixed").output("y")

    def compare(self, stimulus: np.ndarray, methods=("psd", "agnostic"),
                n_psd: int | None = None):
        """Simulation-vs-estimation comparison (see AccuracyEvaluator)."""
        return self.evaluator.compare(
            {"x": stimulus}, methods=methods, n_psd=n_psd,
            discard_transient=64,
            metadata={"fractional_bits": self.fractional_bits})
