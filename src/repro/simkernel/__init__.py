"""Fast bit-true simulation kernels.

This package is the performance layer of the bit-true simulation path:
scaled-integer-domain IIR recursion kernels (:mod:`repro.simkernel.iir`),
vectorized fixed-point FFT butterflies and overlap-save framing
(:mod:`repro.simkernel.fft`), the preserved legacy loops every kernel is
differentially verified against (:mod:`repro.simkernel.reference`), and
the backend selection machinery (:mod:`repro.simkernel.backend`):
``reference`` (legacy loops), ``numpy`` (always available, bitwise
identical to the reference by construction), ``numba`` (optional JIT,
auto-detected) and ``codegen`` (whole-plan fusion into a linear op tape,
:mod:`repro.simkernel.codegen`; JIT-compiled when numba is installed,
pure-NumPy tape interpretation otherwise).  Force a backend with
``REPRO_SIMD_BACKEND`` or :func:`use_backend`.
"""

from repro.simkernel.backend import (
    BACKEND_ENV,
    available_backends,
    default_backend,
    get_backend,
    numba_available,
    resolve_backend,
    set_backend,
    use_backend,
)
from repro.simkernel.iir import iir_df1_fixed

__all__ = [
    "BACKEND_ENV",
    "available_backends",
    "default_backend",
    "get_backend",
    "iir_df1_fixed",
    "numba_available",
    "resolve_backend",
    "set_backend",
    "use_backend",
]
