"""Reference (legacy) per-sample simulation loops.

These are the original bit-true implementations that predate the
vectorized kernel layer, preserved verbatim: every optimized kernel in
:mod:`repro.simkernel` is required to be **bitwise identical** to the
loops in this module, and the differential fuzz harness
(:mod:`repro.verify.differential`, ``backend_equality`` check) asserts
that equality on randomized graphs.  Selecting the ``reference`` backend
(``REPRO_SIMD_BACKEND=reference``) routes all execution through these
loops, which is also how the perf-regression benchmarks measure the
speedup of the optimized engine against an honest baseline.
"""

from __future__ import annotations

import numpy as np
from scipy.signal import lfilter

from repro.fixedpoint.quantizer import RoundingMode, round_half_away


def causal_fir_reference(x: np.ndarray, taps: np.ndarray) -> np.ndarray:
    """Causal FIR filtering truncated to the input length (legacy path)."""
    if x.ndim == 1:
        return np.convolve(x, taps)[:x.shape[-1]]
    return lfilter(taps, [1.0], x, axis=-1)


def iir_df1_reference(x: np.ndarray, b: np.ndarray, a: np.ndarray,
                      step: float, rounding: RoundingMode) -> np.ndarray:
    """Legacy direct-form-I fixed-point IIR recursion.

    ``b`` and ``a`` are the (already coefficient-quantized) filter
    coefficients with ``a[0] == 1``; ``step`` is the data-path
    quantization step.  The accumulator holds the exact sum of products;
    its output is quantized before entering the recursive delay line.
    This is the original per-sample loop with the rounding-mode branch
    *inside* the loop body, exactly as it shipped before the kernel
    layer existed.
    """
    x = np.asarray(x, dtype=float)
    feed_forward = causal_fir_reference(x, b)
    feedback_taps = a[1:]
    na = len(feedback_taps)
    floor = np.floor
    if x.ndim > 1:
        y = np.zeros_like(x)
        num_samples = x.shape[-1]
        for n in range(num_samples):
            acc = feed_forward[..., n].copy()
            history_start = max(0, n - na)
            history = y[..., history_start:n][..., ::-1]
            if history.shape[-1]:
                acc -= history @ feedback_taps[:history.shape[-1]]
            if rounding is RoundingMode.TRUNCATE:
                y[..., n] = floor(acc / step) * step
            elif rounding is RoundingMode.ROUND:
                y[..., n] = round_half_away(acc / step) * step
            else:
                y[..., n] = np.rint(acc / step) * step
        return y
    y = np.zeros(len(x))
    for n in range(len(x)):
        acc = feed_forward[n]
        history_start = max(0, n - na)
        history = y[history_start:n][::-1]
        if len(history):
            acc -= float(np.dot(feedback_taps[:len(history)], history))
        if rounding is RoundingMode.TRUNCATE:
            y[n] = floor(acc / step) * step
        elif rounding is RoundingMode.ROUND:
            y[n] = round_half_away(acc / step) * step
        else:
            y[n] = np.rint(acc / step) * step
    return y
