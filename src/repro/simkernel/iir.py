"""Scaled-integer-domain direct-form-I IIR kernels.

The bit-true IIR recursion quantizes each output sample before it enters
the recursive delay line, which forces a serial per-sample loop.  The
legacy loop (:mod:`repro.simkernel.reference`) performed a float
division, a rounding-mode branch and a ``* step`` rescale *per sample*.
These kernels instead run the whole recursion in the **scaled integer
domain**: with ``step`` the data-path quantization step (a power of
two),

* the feed-forward convolution is computed once with the numerator taps
  pre-divided by ``step``;
* the recursion state holds output *mantissas* ``Y[n] = y[n] / step``;
* the per-sample body is one multiply-accumulate against the feedback
  taps plus a single scalar rounding op, with the rounding-mode branch
  hoisted out of the loop into mode-specialized rounders;
* the final output is ``Y * step``.

Because ``step`` is a power of two, every one of those rescalings is
*exact* in binary floating point — scaling by a power of two multiplies
the significand grid uniformly, so it commutes with every IEEE-754
addition, multiplication and rounding the loop performs.  The kernels
are therefore bitwise identical to the legacy loop (asserted by
``tests/test_simkernel.py`` and by the fuzz harness's
``backend_equality`` check), while running ~3x faster single-stream in
pure NumPy and much faster again under the optional Numba backend.

The feedback dot product deliberately keeps the *same* ``np.dot`` /
``@`` call pattern (contiguous taps against a reversed history view) as
the legacy loop: BLAS may use FMA and unrolled accumulation internally,
so replicating the call — not re-deriving the sum — is what guarantees
bit-equality on every platform.
"""

from __future__ import annotations

import math

import numpy as np

from repro.fixedpoint.quantizer import RoundingMode
from repro.simkernel.backend import resolve_backend
from repro.simkernel.reference import causal_fir_reference as causal_fir


# ----------------------------------------------------------------------
# Mode-specialized rounding
# ----------------------------------------------------------------------
def _scalar_round(value: float) -> float:
    # round-half-away-from-zero (MATLAB round); identical to the
    # vectorized round_half_away for every double.
    return math.copysign(math.floor(abs(value) + 0.5), value)


def _scalar_convergent(value) -> float:
    # Python's round() is round-half-to-even, the same correctly-rounded
    # function as np.rint for every double.
    return round(float(value))


_SCALAR_ROUNDERS = {
    RoundingMode.TRUNCATE: math.floor,
    RoundingMode.ROUND: _scalar_round,
    RoundingMode.CONVERGENT: _scalar_convergent,
}

#: Integer codes shared with the Numba kernels.
ROUNDING_CODES = {
    RoundingMode.TRUNCATE: 0,
    RoundingMode.ROUND: 1,
    RoundingMode.CONVERGENT: 2,
}


def _round_array(rounding: RoundingMode, values: np.ndarray,
                 out: np.ndarray) -> None:
    """Round step mantissas elementwise into ``out`` (may alias a view)."""
    if rounding is RoundingMode.TRUNCATE:
        np.floor(values, out=out)
    elif rounding is RoundingMode.ROUND:
        magnitude = np.abs(values)
        magnitude += 0.5
        np.floor(magnitude, out=magnitude)
        np.copysign(magnitude, values, out=out)
    else:
        np.rint(values, out=out)


# ----------------------------------------------------------------------
# NumPy kernels
# ----------------------------------------------------------------------
def _iir_df1_numpy_1d(scaled_ff: np.ndarray, feedback_taps: np.ndarray,
                      rounding: RoundingMode) -> np.ndarray:
    mantissas = np.zeros(scaled_ff.shape[-1])
    values = scaled_ff.tolist()
    rounder = _SCALAR_ROUNDERS[rounding]
    dot = np.dot
    na = len(feedback_taps)
    warm = min(na, len(values))
    for n in range(warm):
        acc = values[n]
        if n:
            acc = acc - float(dot(feedback_taps[:n], mantissas[:n][::-1]))
        mantissas[n] = rounder(acc)
    for n in range(warm, len(values)):
        acc = values[n] - float(dot(feedback_taps,
                                    mantissas[n - na:n][::-1]))
        mantissas[n] = rounder(acc)
    return mantissas


def _iir_df1_numpy_batched(scaled_ff: np.ndarray, feedback_taps: np.ndarray,
                           rounding: RoundingMode) -> np.ndarray:
    mantissas = np.zeros_like(scaled_ff)
    na = len(feedback_taps)
    num_samples = scaled_ff.shape[-1]
    warm = min(na, num_samples)
    for n in range(warm):
        acc = scaled_ff[..., n].copy()
        if n:
            acc -= mantissas[..., :n][..., ::-1] @ feedback_taps[:n]
        _round_array(rounding, acc, mantissas[..., n])
    for n in range(warm, num_samples):
        acc = scaled_ff[..., n] - (mantissas[..., n - na:n][..., ::-1]
                                   @ feedback_taps)
        _round_array(rounding, acc, mantissas[..., n])
    return mantissas


# ----------------------------------------------------------------------
# Public entry point
# ----------------------------------------------------------------------
def iir_df1_fixed(x: np.ndarray, b: np.ndarray, a: np.ndarray, step: float,
                  rounding: RoundingMode,
                  backend: str | None = None) -> np.ndarray:
    """Bit-true direct-form-I IIR filtering.

    Parameters
    ----------
    x:
        Input samples; the last axis is time, leading axes are
        independent trials.
    b, a:
        Already coefficient-quantized numerator / denominator
        coefficients, ``a[0] == 1``.
    step:
        Data-path quantization step (a power of two).
    rounding:
        Rounding mode of the output quantizer inside the recursion.
    backend:
        Kernel backend override; defaults to the active backend of
        :mod:`repro.simkernel.backend`.
    """
    backend = resolve_backend(backend)
    if backend == "codegen":
        # Whole-plan fusion happens one level up (CompiledPlan.run); a
        # per-node call under the codegen backend means the plan could not
        # be lowered, so run the best per-node kernel instead.
        from repro.simkernel.backend import default_backend
        backend = default_backend()
    if backend == "reference":
        from repro.simkernel.reference import iir_df1_reference
        return iir_df1_reference(x, b, a, step, rounding)

    x = np.asarray(x, dtype=float)
    # Pre-dividing the numerator taps by the (power-of-two) step scales
    # the convolution exactly, so the recursion runs on output mantissas
    # and the per-sample division disappears.
    scaled_ff = causal_fir(x, b / step)
    feedback_taps = a[1:]
    if len(feedback_taps) == 0:
        # No recursion: the whole "loop" collapses to one vectorized
        # rounding pass over the feed-forward mantissas.
        mantissas = np.empty_like(scaled_ff)
        _round_array(rounding, scaled_ff, mantissas)
        return mantissas * step

    if backend == "numba":
        from repro.simkernel import _numba
        kernel = _numba.get_kernel()
        if kernel is not None:
            flat = scaled_ff.reshape(-1, scaled_ff.shape[-1])
            mantissas = kernel(np.ascontiguousarray(flat),
                               np.ascontiguousarray(feedback_taps),
                               ROUNDING_CODES[rounding])
            return mantissas.reshape(scaled_ff.shape) * step
        # JIT unavailable or failed to compile: numpy fallback below.

    try:
        if x.ndim == 1:
            mantissas = _iir_df1_numpy_1d(scaled_ff, feedback_taps, rounding)
        else:
            mantissas = _iir_df1_numpy_batched(scaled_ff, feedback_taps,
                                               rounding)
    except (OverflowError, ValueError):
        # The scalar math rounders raise on non-finite accumulators
        # (diverging filters) where the legacy numpy ufuncs silently
        # propagate NaN/inf; defer to the reference loop so both paths
        # keep identical behaviour on degenerate systems.
        from repro.simkernel.reference import iir_df1_reference
        return iir_df1_reference(x, b, a, step, rounding)
    return mantissas * step
