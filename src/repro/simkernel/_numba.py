"""Optional Numba JIT kernels for the serial IIR feedback recursion.

Numba is a *soft* dependency: this module compiles lazily on first use
and degrades to ``None`` (the caller then runs the NumPy kernels) when
numba is absent or compilation fails for any reason.  Nothing here is
imported at package import time.

The jitted recursion accumulates the feedback dot product as a plain
sequential scalar loop (individually rounded products, left-to-right
additions, no FMA contraction — numba does not enable fast-math by
default).  In the fixed-point regimes this library simulates, every
product and partial sum is an exact multiple of the common quantization
step that fits in a double's 53-bit significand, so the sum is *exact*
and therefore independent of accumulation order — which is why this
kernel is bitwise identical to the BLAS-backed NumPy kernel (the
``backend_equality`` differential check asserts exactly that on fuzzed
graphs).  The claim is conditional: outside that domain — diverging
filters or simultaneous deep data/coefficient words whose accumulators
leave the 53-bit-exact range while staying finite — accumulation order
matters again and the backends may differ in the last bit; that is
exactly what the differential check (and the benches' bitwise guard)
exist to catch empirically on any platform where numba runs.  See
ARCHITECTURE.md, "Simulation engine", for the word-length bound.
"""

from __future__ import annotations

_STATE: dict = {"kernel": None, "failed": False}


def _compile():
    import math

    import numba
    import numpy as np

    @numba.njit(cache=False)
    def iir_df1_scaled(scaled_ff, feedback_taps, mode):
        trials, num_samples = scaled_ff.shape
        na = feedback_taps.shape[0]
        mantissas = np.zeros((trials, num_samples))
        for t in range(trials):
            for n in range(num_samples):
                acc = scaled_ff[t, n]
                limit = na if n >= na else n
                for j in range(limit):
                    acc -= feedback_taps[j] * mantissas[t, n - 1 - j]
                if mode == 0:
                    value = math.floor(acc)
                elif mode == 1:
                    value = math.copysign(math.floor(abs(acc) + 0.5), acc)
                else:
                    # Round half to even, spelled out from floor: the
                    # fractional part x - floor(x) is exact for doubles.
                    low = math.floor(acc)
                    fraction = acc - low
                    if fraction > 0.5:
                        value = low + 1.0
                    elif fraction < 0.5:
                        value = low
                    elif low % 2.0 == 0.0:
                        value = low
                    else:
                        value = low + 1.0
                mantissas[t, n] = value
        return mantissas

    # Force compilation now so failures surface here, not mid-simulation.
    iir_df1_scaled(np.zeros((1, 4)), np.zeros(2), 1)
    return iir_df1_scaled


def get_kernel():
    """The jitted recursion kernel, or ``None`` when numba is unusable."""
    if _STATE["kernel"] is None and not _STATE["failed"]:
        try:
            _STATE["kernel"] = _compile()
        except Exception:  # noqa: BLE001 - soft dependency, never fatal
            _STATE["failed"] = True
    return _STATE["kernel"]
