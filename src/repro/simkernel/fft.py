"""Vectorized radix-2 FFT butterflies and overlap-save block framing.

The bit-true fixed-point FFT quantizes every butterfly stage, so it
cannot be delegated to an off-the-shelf FFT — but its *structure* is
fully data-parallel: within one stage every butterfly group applies the
same elementwise complex multiply/add to disjoint slices, and separate
blocks (and Monte-Carlo trials) are completely independent.  The kernels
here therefore run one stage as a single reshaped array operation over
``(..., groups, size)`` and accept arbitrary leading batch axes, turning
the legacy triple loop (blocks x stages x groups) into ``log2(n)`` array
passes.  Every operation is elementwise, so the results are bitwise
identical to the per-block loops (asserted in ``tests/test_simkernel.py``).

The framing helpers cut a signal into the overlapping blocks of the
overlap-save convolution scheme and reassemble the valid output region,
again over arbitrary leading trial axes.
"""

from __future__ import annotations

import numpy as np


def bit_reverse_permutation(n: int) -> np.ndarray:
    """Indices of the bit-reversal permutation of length ``n``."""
    bits = int(np.log2(n))
    indices = np.arange(n)
    reversed_indices = np.zeros(n, dtype=int)
    for bit in range(bits):
        reversed_indices |= ((indices >> bit) & 1) << (bits - 1 - bit)
    return reversed_indices


def fixed_fft_forward(x: np.ndarray, size: int, twiddles: dict,
                      quantize) -> np.ndarray:
    """Fixed-point forward FFT over the last axis of ``x``.

    Parameters
    ----------
    x:
        Blocks of shape ``(..., size)``; leading axes are independent
        transforms.
    size:
        Transform size (power of two).
    twiddles:
        Mapping from butterfly size to the quantized twiddle factors of
        that stage (as pre-built by the FFT engine).
    quantize:
        Callable quantizing a complex array elementwise (applied to the
        input and after every stage, as in the bit-true engine).
    """
    data = np.asarray(x, dtype=complex)[..., bit_reverse_permutation(size)]
    data = quantize(data)
    stage = 2
    while stage <= size:
        half = stage // 2
        grouped = data.reshape(data.shape[:-1] + (size // stage, stage))
        top = grouped[..., :half].copy()
        bottom = grouped[..., half:] * twiddles[stage]
        grouped[..., :half] = top + bottom
        grouped[..., half:] = top - bottom
        data = quantize(data)
        stage *= 2
    return data


def fixed_fft_inverse(x: np.ndarray, size: int, twiddles: dict,
                      quantize) -> np.ndarray:
    """Fixed-point inverse FFT (scaled by ``1/size``) over the last axis."""
    x = np.asarray(x, dtype=complex)
    result = np.conj(fixed_fft_forward(np.conj(x), size, twiddles,
                                       quantize)) / size
    return quantize(result)


# ----------------------------------------------------------------------
# Overlap-save framing
# ----------------------------------------------------------------------
def overlap_save_blocks(x: np.ndarray, taps_len: int,
                        fft_size: int) -> tuple[np.ndarray, int]:
    """Cut ``x`` into the overlapping blocks of the overlap-save scheme.

    Returns ``(blocks, hop)`` where ``blocks`` has shape
    ``(..., num_blocks, fft_size)`` — each block advanced by ``hop``
    samples, prefixed with the ``taps_len - 1`` history samples (zeros
    for the causal start) exactly as the streaming loop would see them.
    """
    x = np.asarray(x, dtype=float)
    hop = fft_size - taps_len + 1
    if hop < 1:
        raise ValueError(f"{taps_len} taps do not fit in an FFT of size "
                         f"{fft_size}")
    num_samples = x.shape[-1]
    num_blocks = -(-num_samples // hop)
    lead = x.shape[:-1]
    padded_len = taps_len - 1 + (num_blocks - 1) * hop + fft_size
    padded = np.zeros(lead + (padded_len,))
    padded[..., taps_len - 1:taps_len - 1 + num_samples] = x
    starts = np.arange(num_blocks) * hop
    index = starts[:, None] + np.arange(fft_size)[None, :]
    return padded[..., index], hop


def overlap_save_assemble(result: np.ndarray, taps_len: int, hop: int,
                          num_samples: int) -> np.ndarray:
    """Reassemble the valid region of per-block results into one stream.

    ``result`` has shape ``(..., num_blocks, fft_size)``; the aliased
    first ``taps_len - 1`` samples of each block are discarded and the
    ``hop`` new samples are concatenated, truncated to ``num_samples``.
    """
    valid = result[..., :, taps_len - 1:taps_len - 1 + hop]
    stream = valid.reshape(valid.shape[:-2] + (-1,))
    return np.ascontiguousarray(stream[..., :num_samples])
