"""Lowering of compiled plans into linear op tapes.

The codegen backend splits a :class:`~repro.sfg.plan.CompiledPlan` the
same way the plan itself splits the graph: an immutable *structure* — a
flat tuple of :class:`TapeOp` instructions (op code plus integer signal
slots, one per schedule step) — and rebindable *constants* — the
quantized coefficients, power-of-two quantization steps and rounding-mode
ids each op needs.  The structure is lowered once per plan and can never
change (a structural graph edit always produces a new plan); the
constants are rebuilt by :meth:`PlanTape.bind` whenever the plan's
quantization or coefficient signature moves, which is the word-length
optimizer's requantize loop.

Execution is delegated to two interpreters over the same tape:

* :mod:`repro.simkernel.codegen.interpreter` — the always-available
  NumPy/Python tape walker (per-op closures compiled at bind time, with a
  generated, coefficient-specialized recurrence for the serial IIR loop);
* :mod:`repro.simkernel.codegen._njit` — a single fused kernel over a
  packed integer/float encoding of the whole tape, JIT-compiled with
  numba when it is installed and self-validated against the NumPy
  interpreter before adoption.

Only the node vocabulary with closed-form tape semantics is lowerable:
inputs, outputs, adders, gains, delays, FIR/IIR blocks and the two
resamplers.  Plans containing anything else (generic ``LtiNode`` blocks,
the FFT-based frequency-domain FIR) raise :class:`UnsupportedPlanError`
and the plan silently falls back to the per-node schedule walk, where
``iir_df1_fixed`` maps the codegen backend to the per-node default.
"""

from __future__ import annotations

import logging

from repro.lti.filters import FixedPointFilterConfig
from repro.sfg.nodes import (
    AddNode,
    DelayNode,
    DownsampleNode,
    FirNode,
    GainNode,
    IirNode,
    InputNode,
    OutputNode,
    UpsampleNode,
)
from repro.obs import metric_inc, span
from repro.simkernel.backend import numba_available

logger = logging.getLogger("repro.simkernel.codegen")

#: Tape op codes (shared with the packed numba kernel).
OP_INPUT = 0
OP_COPY = 1
OP_ADD = 2
OP_GAIN = 3
OP_DELAY = 4
OP_FIR = 5
OP_IIR = 6
OP_DOWN = 7
OP_UP = 8

# Exact-type dispatch: FrequencyDomainFirNode subclasses FirNode but runs
# an FFT pipeline with its own internal quantizers, so subclasses must
# *not* inherit their base class's lowering.
_OPCODES = {
    InputNode: OP_INPUT,
    OutputNode: OP_COPY,
    AddNode: OP_ADD,
    GainNode: OP_GAIN,
    DelayNode: OP_DELAY,
    FirNode: OP_FIR,
    IirNode: OP_IIR,
    DownsampleNode: OP_DOWN,
    UpsampleNode: OP_UP,
}


class UnsupportedPlanError(ValueError):
    """The plan contains a node the op tape cannot express."""


class TapeOp:
    """One structural tape instruction: op code plus slot wiring.

    Constants (coefficients, steps, rounding modes) live in the tape's
    parallel constants tuple so that requantizing a plan rebinds them
    without touching the structure.
    """

    __slots__ = ("opcode", "dst", "srcs", "name")

    def __init__(self, opcode: int, dst: int, srcs: tuple[int, ...],
                 name: str):
        self.opcode = opcode
        self.dst = dst
        self.srcs = srcs
        self.name = name

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TapeOp({self.opcode}, dst={self.dst}, srcs={self.srcs})"


class TapeConstants:
    """Bound per-op constants (one instance per tape op).

    ``step`` is the data-path quantization step of the op's uniform
    output quantization; ``0.0`` disables it.  For IIR ops the step and
    rounding mode describe the quantizer *inside* the recursion instead
    (the recursion output is already on the grid, so no uniform pass
    runs).
    """

    __slots__ = ("step", "rounding", "signs", "gain", "delay", "factor",
                 "phase", "taps", "b", "a", "scaled_b", "feedback")

    def __init__(self):
        self.step = 0.0
        self.rounding = None
        self.signs = ()
        self.gain = 0.0
        self.delay = 0
        self.factor = 1
        self.phase = 0
        self.taps = None
        self.b = None
        self.a = None
        self.scaled_b = None
        self.feedback = None


def _bind_step(step) -> TapeConstants:
    """Extract one schedule step's constants, mirroring its node's
    ``simulate_fixed`` semantics exactly (same quantizer construction,
    same coefficient quantization)."""
    node = step.node
    spec = node.quantization
    constants = TapeConstants()
    if spec.enabled:
        constants.step = spec.quantizer().fmt.step
        constants.rounding = spec.rounding
    node_type = type(node)
    if node_type is AddNode:
        constants.signs = tuple(node.signs)
    elif node_type is GainNode:
        constants.gain = node._quantized_gain()
    elif node_type is DelayNode:
        constants.delay = node.delay
    elif node_type is DownsampleNode:
        constants.factor = node.factor
        constants.phase = node.phase
    elif node_type is UpsampleNode:
        constants.factor = node.factor
    elif node_type is FirNode:
        if spec.enabled:
            config = FixedPointFilterConfig(
                data_fractional_bits=spec.fractional_bits,
                coefficient_fractional_bits=spec.coeff_bits,
                rounding=spec.rounding)
            constants.taps = config.coefficient_quantizer().quantize(
                node.filter.taps)
            constants.step = config.data_quantizer().fmt.step
        else:
            constants.taps = node.filter.taps
    elif node_type is IirNode:
        if spec.enabled:
            config = FixedPointFilterConfig(
                data_fractional_bits=spec.fractional_bits,
                coefficient_fractional_bits=spec.coeff_bits,
                rounding=spec.rounding)
            coeff_quantizer = config.coefficient_quantizer()
            constants.b = coeff_quantizer.quantize(node.filter.b)
            constants.a = coeff_quantizer.quantize(node.filter.a)
            constants.step = config.data_quantizer().fmt.step
            # The recursion runs on output mantissas: pre-dividing the
            # numerator by the power-of-two step is exact (see
            # repro.simkernel.iir).
            constants.scaled_b = constants.b / constants.step
            constants.feedback = constants.a[1:]
        else:
            constants.b = node.filter.b
            constants.a = node.filter.a
    return constants


class PlanTape:
    """A lowered plan: immutable op structure + rebindable constants."""

    __slots__ = ("ops", "n_slots", "input_slots", "binding", "_consts",
                 "_program", "_packed", "_jit_state")

    def __init__(self, ops: tuple[TapeOp, ...],
                 input_slots: tuple[tuple[str, int], ...]):
        self.ops = ops
        self.n_slots = len(ops)
        self.input_slots = input_slots
        #: Monotonic counter identifying the current constant binding.
        self.binding = 0
        self._consts: tuple[TapeConstants, ...] | None = None
        self._program = None
        self._packed = None
        self._jit_state: str | None = None

    @property
    def constants(self) -> tuple[TapeConstants, ...]:
        return self._consts

    def bind(self, plan) -> None:
        """(Re)extract the per-op constants from the plan's live specs.

        Invalidates the compiled interpreter program and the packed JIT
        encoding — the op structure is untouched, which is what keeps the
        optimizer's requantize loop cheap.
        """
        self._consts = tuple(_bind_step(step) for step in plan.steps)
        self.binding += 1
        self._program = None
        self._packed = None
        self._jit_state = None

    def execute(self, stimulus: dict) -> list:
        """Run the tape on named stimulus arrays; returns per-slot signals.

        Prefers the fused numba kernel (when numba is installed, the tape
        is JIT-eligible and the kernel's probe run matched the NumPy
        interpreter bitwise); otherwise walks the tape with the NumPy
        interpreter.
        """
        from repro.simkernel.codegen import interpreter

        with span("tape.execute", ops=self.n_slots) as execute_span:
            if numba_available():
                from repro.simkernel.codegen import _njit
                signals = _njit.try_execute(self, stimulus)
                if signals is not None:
                    metric_inc("tape.executions", backend="codegen",
                               engine="njit")
                    execute_span.set(engine="njit")
                    return signals
            metric_inc("tape.executions", backend="codegen",
                       engine="interpreter")
            execute_span.set(engine="interpreter")
            return interpreter.run(self, stimulus)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PlanTape(ops={self.n_slots}, binding={self.binding})"


def lower_plan(plan) -> PlanTape:
    """Lower a compiled plan to a bound :class:`PlanTape`.

    Raises
    ------
    UnsupportedPlanError
        When some node has no tape semantics; the caller falls back to
        the per-node schedule walk.
    """
    ops = []
    for step in plan.steps:
        opcode = _OPCODES.get(type(step.node))
        if opcode is None:
            raise UnsupportedPlanError(
                f"node {step.name!r} of type {type(step.node).__name__} "
                "cannot be lowered to a tape op")
        if step.edge_taps is not None:
            raise UnsupportedPlanError(
                f"step {step.name!r} has per-edge fanout taps, which "
                "have no tape semantics yet; run the per-node schedule "
                "walk instead")
        ops.append(TapeOp(opcode, step.index, step.predecessors, step.name))
    input_slots = tuple((name, plan.index_of[name])
                        for name in plan.input_names)
    tape = PlanTape(tuple(ops), input_slots)
    tape.bind(plan)
    if not numba_available():
        logger.warning(
            "codegen backend: numba is not installed; op tapes will run "
            "through the pure-NumPy tape interpreter instead of the fused "
            "JIT kernel")
    return tape
