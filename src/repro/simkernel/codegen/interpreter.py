"""Tape-walking NumPy interpreter for lowered plans.

This is the always-available execution engine of the codegen backend: at
bind time every :class:`~repro.simkernel.codegen.lowering.TapeOp` is
compiled into one Python closure with its constants (quantization step,
rounding mode, quantized coefficients) captured as locals, so the run
loop is a bare ``for fn in program: fn(slots)`` — no node objects, no
isinstance dispatch, no quantizer construction per call.

Bit-exactness strategy: every closure re-issues *the same* vectorized
NumPy calls as the per-node path (``_causal_fir``/``np.convolve``,
``lfilter``, the ``apply_rounding`` mantissa pass), so those ops are
bitwise identical by construction.  The one place that diverges is the
serial 1-D IIR recursion: instead of the per-sample ``np.dot`` call of
the numpy backend it runs a *generated* pure-Python recurrence with the
feedback taps unrolled into the source as literals.  Inside the library's
fixed-point domain every feedback product and partial sum is an exact
multiple of the common quantization step within a double's 53-bit
significand, so the sum is exact and accumulation-order independent —
the same argument (and the same empirical ``backend_equality`` fuzz
guard) that makes the numba backend bitwise identical to BLAS
``np.dot``.  Removing the ~1 µs/sample ``np.dot`` call overhead is what
lifts the IIR workload past the 5x bench floor even without numba.
"""

from __future__ import annotations

import math

import numpy as np
from scipy.signal import lfilter

from repro.fixedpoint.quantizer import RoundingMode, apply_rounding
from repro.lti.filters import _causal_fir
from repro.lti.multirate import downsample, upsample
from repro.simkernel.codegen.lowering import (
    OP_ADD,
    OP_COPY,
    OP_DELAY,
    OP_DOWN,
    OP_FIR,
    OP_GAIN,
    OP_IIR,
    OP_INPUT,
    OP_UP,
)
from repro.simkernel.iir import iir_df1_fixed
from repro.simkernel.reference import iir_df1_reference


# ----------------------------------------------------------------------
# Generated 1-D IIR recurrences
# ----------------------------------------------------------------------
_RECURRENCE_CACHE: dict = {}

_ROUND_EXPR = {
    RoundingMode.TRUNCATE: "_floor(acc)",
    # round-half-away-from-zero, the same formula as the scalar rounder
    # of repro.simkernel.iir.
    RoundingMode.ROUND: "_copysign(_floor(_abs(acc) + 0.5), acc)",
    # Python round() is correctly-rounded half-to-even, same as np.rint.
    RoundingMode.CONVERGENT: "_round(acc)",
}


def _compile_recurrence(feedback_taps: np.ndarray, rounding: RoundingMode):
    """Source-generate the serial recursion for one tap set.

    The taps are closed over as individual locals and the feedback dot
    product is unrolled into one expression, so the per-sample body is a
    handful of float operations with no array indexing or function-call
    overhead.  Takes/returns plain Python lists of step mantissas.
    """
    key = (feedback_taps.tobytes(), rounding)
    kernel = _RECURRENCE_CACHE.get(key)
    if kernel is not None:
        return kernel
    order = len(feedback_taps)
    taps = ", ".join(f"t{j}" for j in range(order))
    dot = " + ".join(f"t{j} * y{j}" for j in range(order))
    lines = [
        f"def _make({taps}, _floor, _copysign, _abs, _round):",
        "    def _kernel(values):",
        "        " + " = ".join(f"y{j}" for j in range(order)) + " = 0.0",
        "        out = []",
        "        _append = out.append",
        "        for acc in values:",
        f"            acc = acc - ({dot})",
        f"            m = {_ROUND_EXPR[rounding]}",
        "            _append(m)",
    ]
    for j in range(order - 1, 0, -1):
        lines.append(f"            y{j} = y{j - 1}")
    lines += [
        "            y0 = m",
        "        return out",
        "    return _kernel",
    ]
    namespace: dict = {}
    exec("\n".join(lines), namespace)  # noqa: S102 - trusted generated source
    kernel = namespace["_make"](*(float(tap) for tap in feedback_taps),
                                math.floor, math.copysign, abs, round)
    _RECURRENCE_CACHE[key] = kernel
    return kernel


# ----------------------------------------------------------------------
# Per-op closure compilers
# ----------------------------------------------------------------------
def _quantize_fn(constants):
    """Output-quantization closure (None when the op does not quantize).

    Replicates ``Quantizer.quantize`` exactly: divide by the step, round
    the mantissas, multiply back (overflow mode NONE throughout the
    library).
    """
    if not constants.step:
        return None
    step = constants.step
    mode = constants.rounding

    def quantize(values):
        return apply_rounding(values / step, mode) * step

    return quantize


def _compile_input(op, constants):
    quantize = _quantize_fn(constants)
    if quantize is None:
        return None  # unquantized inputs pass through untouched
    dst = op.dst

    def fn(slots):
        slots[dst] = quantize(slots[dst])

    return fn


def _compile_copy(op, constants):
    quantize = _quantize_fn(constants)
    dst = op.dst
    (src,) = op.srcs

    def fn(slots):
        value = slots[src]
        slots[dst] = quantize(value) if quantize is not None else value

    return fn


def _compile_add(op, constants):
    quantize = _quantize_fn(constants)
    dst = op.dst
    srcs = op.srcs
    signs = constants.signs

    def fn(slots):
        arrays = [slots[index] for index in srcs]
        length = max(x.shape[-1] for x in arrays)
        leading = np.broadcast_shapes(*[x.shape[:-1] for x in arrays])
        output = np.zeros(leading + (length,))
        for sign, x in zip(signs, arrays):
            output[..., :x.shape[-1]] += sign * x
        slots[dst] = quantize(output) if quantize is not None else output

    return fn


def _compile_gain(op, constants):
    quantize = _quantize_fn(constants)
    dst = op.dst
    (src,) = op.srcs
    gain = constants.gain

    def fn(slots):
        output = slots[src] * gain
        slots[dst] = quantize(output) if quantize is not None else output

    return fn


def _compile_delay(op, constants):
    quantize = _quantize_fn(constants)
    dst = op.dst
    (src,) = op.srcs
    delay = constants.delay

    def fn(slots):
        x = slots[src]
        if delay == 0:
            output = x.copy()
        elif delay >= x.shape[-1]:
            output = np.zeros_like(x)
        else:
            pad = np.zeros(x.shape[:-1] + (delay,))
            output = np.concatenate([pad, x[..., :-delay]], axis=-1)
        slots[dst] = quantize(output) if quantize is not None else output

    return fn


def _compile_fir(op, constants):
    quantize = _quantize_fn(constants)
    dst = op.dst
    (src,) = op.srcs
    taps = constants.taps

    def fn(slots):
        exact = _causal_fir(slots[src], taps)
        slots[dst] = quantize(exact) if quantize is not None else exact

    return fn


def _compile_iir(op, constants):
    dst = op.dst
    (src,) = op.srcs
    if not constants.step:
        b, a = constants.b, constants.a

        def fn(slots):
            slots[dst] = lfilter(b, a, slots[src])

        return fn

    b, a = constants.b, constants.a
    step = constants.step
    mode = constants.rounding
    scaled_b = constants.scaled_b
    feedback = constants.feedback
    if len(feedback) == 0:
        # No recursion: the scaled-integer kernel is one vectorized pass.
        def fn(slots):
            slots[dst] = iir_df1_fixed(slots[src], b, a, step, mode)

        return fn

    recurrence = _compile_recurrence(feedback, mode)

    def fn(slots):
        x = slots[src]
        if x.ndim != 1:
            # Batched trials: the vectorized per-sample kernels (numba
            # when installed) already amortize dispatch across rows.
            slots[dst] = iir_df1_fixed(x, b, a, step, mode)
            return
        scaled_ff = np.convolve(x, scaled_b)[:len(x)]
        try:
            mantissas = recurrence(scaled_ff.tolist())
        except (OverflowError, ValueError):
            # Non-finite accumulators (diverging filters): defer to the
            # reference loop, mirroring repro.simkernel.iir.
            slots[dst] = iir_df1_reference(x, b, a, step, mode)
            return
        slots[dst] = np.array(mantissas, dtype=float) * step

    return fn


def _compile_down(op, constants):
    quantize = _quantize_fn(constants)
    dst = op.dst
    (src,) = op.srcs
    factor, phase = constants.factor, constants.phase

    def fn(slots):
        output = downsample(slots[src], factor, phase)
        slots[dst] = quantize(output) if quantize is not None else output

    return fn


def _compile_up(op, constants):
    quantize = _quantize_fn(constants)
    dst = op.dst
    (src,) = op.srcs
    factor = constants.factor

    def fn(slots):
        output = upsample(slots[src], factor)
        slots[dst] = quantize(output) if quantize is not None else output

    return fn


_COMPILERS = {
    OP_INPUT: _compile_input,
    OP_COPY: _compile_copy,
    OP_ADD: _compile_add,
    OP_GAIN: _compile_gain,
    OP_DELAY: _compile_delay,
    OP_FIR: _compile_fir,
    OP_IIR: _compile_iir,
    OP_DOWN: _compile_down,
    OP_UP: _compile_up,
}


def compile_program(tape) -> tuple:
    """Compile one constant binding of a tape into a closure program."""
    program = []
    for op, constants in zip(tape.ops, tape.constants):
        fn = _COMPILERS[op.opcode](op, constants)
        if fn is not None:
            program.append(fn)
    return tuple(program)


def run(tape, stimulus: dict) -> list:
    """Execute the tape on named stimulus arrays; returns per-slot signals."""
    if tape._program is None:
        tape._program = compile_program(tape)
    slots: list = [None] * tape.n_slots
    for name, index in tape.input_slots:
        slots[index] = stimulus[name]
    for fn in tape._program:
        fn(slots)
    return slots
