"""Plan-to-kernel codegen backend.

Lowers whole :class:`~repro.sfg.plan.CompiledPlan` schedules into linear
op tapes (:mod:`repro.simkernel.codegen.lowering`) executed either by a
single fused numba kernel (:mod:`repro.simkernel.codegen._njit`) or by
the always-available NumPy tape interpreter
(:mod:`repro.simkernel.codegen.interpreter`).  Activate with
``REPRO_SIMD_BACKEND=codegen`` or ``use_backend("codegen")``; see
ARCHITECTURE.md, "Codegen backend".
"""

from repro.simkernel.codegen.lowering import (
    PlanTape,
    TapeOp,
    UnsupportedPlanError,
    lower_plan,
)

__all__ = [
    "PlanTape",
    "TapeOp",
    "UnsupportedPlanError",
    "lower_plan",
]
