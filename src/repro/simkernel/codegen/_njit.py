"""Fused whole-tape JIT kernel for the codegen backend.

The tape is packed into flat typed arrays — an ``int64`` op table (op
code, destination slot, input-slot pool offsets, rounding-mode ids,
integer parameters, coefficient-pool offsets), a ``float64`` parameter
table (quantization steps, gains) and one shared coefficient pool — and
the *entire* schedule executes inside one ``@njit(cache=True)`` function
over a single ``(slots, trials, samples)`` float64 workspace.  One
compiled kernel serves every plan and every constant binding: the tape is
data, not code, so requantizing a plan never recompiles anything.

:func:`tape_kernel` is deliberately written as plain nopython-style
Python (explicit loops, no fancy indexing, no closures): numba compiles
it unchanged when installed, and the test suite calls the undecorated
function directly so its exact semantics are verified even on machines
without numba.  Two further guards keep the JIT path honest:

* **eligibility** — tapes whose FIR/IIR ops are not coefficient-quantized
  are never packed (their convolutions would have to match ``np.convolve``
  / ``lfilter`` outside the exact fixed-point domain, where accumulation
  order matters);
* **probe** — before a compiled kernel is adopted for a binding, it runs
  a small deterministic stimulus and must match the NumPy tape
  interpreter bitwise; any mismatch or compile failure silently pins the
  tape to the interpreter.
"""

from __future__ import annotations

import math

import numpy as np

from repro.simkernel.codegen.lowering import (
    OP_ADD,
    OP_COPY,
    OP_DELAY,
    OP_DOWN,
    OP_FIR,
    OP_GAIN,
    OP_IIR,
    OP_INPUT,
    OP_UP,
)
from repro.simkernel.iir import ROUNDING_CODES

#: Columns of the packed int64 op table.
_COL_OPCODE = 0
_COL_DST = 1
_COL_NIN = 2
_COL_IN_OFF = 3
_COL_MODE = 4      # uniform output-quantization rounding code, -1 = none
_COL_IPARAM_A = 5  # delay / resampling factor / IIR internal rounding code
_COL_IPARAM_B = 6  # downsampling phase
_COL_C_OFF = 7     # coefficient pool offset (signs / taps / scaled_b)
_COL_C_LEN = 8
_COL_C2_OFF = 9    # second coefficient array (IIR feedback taps)
_COL_C2_LEN = 10
_OP_COLS = 11

_STATE: dict = {"kernel": None, "failed": False}


def tape_kernel(ops, fparams, in_pool, coeff_pool, lengths, workspace):
    """Execute one packed tape over the whole workspace.

    ``workspace`` is ``(n_slots, trials, max_len)`` with the input slots
    pre-filled; ``lengths[slot]`` is the valid sample count of every slot
    (precomputed by :func:`slot_lengths`).  Runs unmodified under numba's
    nopython mode and as plain Python.
    """
    n_ops = ops.shape[0]
    trials = workspace.shape[1]
    for i in range(n_ops):
        opcode = ops[i, _COL_OPCODE]
        dst = ops[i, _COL_DST]
        n_in = ops[i, _COL_NIN]
        in_off = ops[i, _COL_IN_OFF]
        c_off = ops[i, _COL_C_OFF]
        c_len = ops[i, _COL_C_LEN]
        n = lengths[dst]
        if opcode == OP_INPUT:
            pass  # stimulus is pre-filled; only the uniform pass below runs
        elif opcode == OP_COPY:
            src = in_pool[in_off]
            for t in range(trials):
                for k in range(n):
                    workspace[dst, t, k] = workspace[src, t, k]
        elif opcode == OP_ADD:
            for t in range(trials):
                for k in range(n):
                    workspace[dst, t, k] = 0.0
            for j in range(n_in):
                src = in_pool[in_off + j]
                sign = coeff_pool[c_off + j]
                m = lengths[src]
                for t in range(trials):
                    for k in range(m):
                        workspace[dst, t, k] += sign * workspace[src, t, k]
        elif opcode == OP_GAIN:
            src = in_pool[in_off]
            gain = fparams[i, 1]
            for t in range(trials):
                for k in range(n):
                    workspace[dst, t, k] = workspace[src, t, k] * gain
        elif opcode == OP_DELAY:
            src = in_pool[in_off]
            delay = ops[i, _COL_IPARAM_A]
            for t in range(trials):
                for k in range(n):
                    if k < delay:
                        workspace[dst, t, k] = 0.0
                    else:
                        workspace[dst, t, k] = workspace[src, t, k - delay]
        elif opcode == OP_DOWN:
            src = in_pool[in_off]
            factor = ops[i, _COL_IPARAM_A]
            phase = ops[i, _COL_IPARAM_B]
            for t in range(trials):
                for k in range(n):
                    workspace[dst, t, k] = workspace[src, t, phase + k * factor]
        elif opcode == OP_UP:
            src = in_pool[in_off]
            factor = ops[i, _COL_IPARAM_A]
            for t in range(trials):
                for k in range(n):
                    workspace[dst, t, k] = 0.0
                for k in range(lengths[src]):
                    workspace[dst, t, k * factor] = workspace[src, t, k]
        elif opcode == OP_FIR:
            src = in_pool[in_off]
            for t in range(trials):
                for k in range(n):
                    acc = 0.0
                    limit = c_len if c_len <= k + 1 else k + 1
                    for j in range(limit):
                        acc += coeff_pool[c_off + j] * workspace[src, t, k - j]
                    workspace[dst, t, k] = acc
        elif opcode == OP_IIR:
            src = in_pool[in_off]
            mode = ops[i, _COL_IPARAM_A]
            step = fparams[i, 1]
            c2_off = ops[i, _COL_C2_OFF]
            c2_len = ops[i, _COL_C2_LEN]
            for t in range(trials):
                # Feed-forward convolution with the step-scaled numerator.
                for k in range(n):
                    acc = 0.0
                    limit = c_len if c_len <= k + 1 else k + 1
                    for j in range(limit):
                        acc += coeff_pool[c_off + j] * workspace[src, t, k - j]
                    workspace[dst, t, k] = acc
                # Serial recursion on output mantissas, quantized in-loop.
                for k in range(n):
                    acc = workspace[dst, t, k]
                    limit = c2_len if k >= c2_len else k
                    for j in range(limit):
                        acc -= coeff_pool[c2_off + j] * workspace[dst, t,
                                                                  k - 1 - j]
                    if mode == 0:
                        value = math.floor(acc)
                    elif mode == 1:
                        value = math.copysign(math.floor(abs(acc) + 0.5), acc)
                    else:
                        # Round half to even, spelled out from floor (the
                        # fractional part x - floor(x) is exact).
                        low = math.floor(acc)
                        fraction = acc - low
                        if fraction > 0.5:
                            value = low + 1.0
                        elif fraction < 0.5:
                            value = low
                        elif low % 2.0 == 0.0:
                            value = low
                        else:
                            value = low + 1.0
                    workspace[dst, t, k] = value
                for k in range(n):
                    workspace[dst, t, k] = workspace[dst, t, k] * step
        # Uniform output quantization (never set for IIR ops, whose
        # quantizer runs inside the recursion above).
        mode = ops[i, _COL_MODE]
        if mode >= 0:
            step = fparams[i, 0]
            for t in range(trials):
                for k in range(n):
                    acc = workspace[dst, t, k] / step
                    if mode == 0:
                        value = math.floor(acc)
                    elif mode == 1:
                        value = math.copysign(math.floor(abs(acc) + 0.5), acc)
                    else:
                        low = math.floor(acc)
                        fraction = acc - low
                        if fraction > 0.5:
                            value = low + 1.0
                        elif fraction < 0.5:
                            value = low
                        elif low % 2.0 == 0.0:
                            value = low
                        else:
                            value = low + 1.0
                    workspace[dst, t, k] = value * step
    return workspace


def get_kernel():
    """The jitted tape kernel, or ``None`` when numba is unusable."""
    if _STATE["kernel"] is None and not _STATE["failed"]:
        try:
            import numba

            kernel = numba.njit(cache=True)(tape_kernel)
            # Force compilation now on a one-op no-op tape so failures
            # surface here, not mid-simulation.
            ops = np.zeros((1, _OP_COLS), dtype=np.int64)
            ops[0, _COL_OPCODE] = OP_COPY
            ops[0, _COL_DST] = 1
            ops[0, _COL_NIN] = 1
            ops[0, _COL_MODE] = -1
            kernel(ops, np.zeros((1, 2)), np.zeros(1, dtype=np.int64),
                   np.zeros(1), np.array([2, 2], dtype=np.int64),
                   np.zeros((2, 1, 2)))
            _STATE["kernel"] = kernel
        except Exception:  # noqa: BLE001 - soft dependency, never fatal
            _STATE["failed"] = True
    return _STATE["kernel"]


# ----------------------------------------------------------------------
# Packing
# ----------------------------------------------------------------------
def pack(tape):
    """Encode one constant binding as flat typed arrays.

    Returns ``None`` when the tape is not JIT-eligible: FIR/IIR ops must
    be coefficient-quantized, otherwise their in-kernel sequential
    convolutions could differ from ``np.convolve`` / ``lfilter`` in the
    last bit (outside the exact fixed-point domain accumulation order
    matters).
    """
    n_ops = len(tape.ops)
    ops = np.zeros((n_ops, _OP_COLS), dtype=np.int64)
    fparams = np.zeros((n_ops, 2))
    in_pool: list[int] = []
    coeff_pool: list[float] = []
    for i, (op, constants) in enumerate(zip(tape.ops, tape.constants)):
        row = ops[i]
        row[_COL_OPCODE] = op.opcode
        row[_COL_DST] = op.dst
        row[_COL_NIN] = len(op.srcs)
        row[_COL_IN_OFF] = len(in_pool)
        in_pool.extend(op.srcs)
        if op.opcode == OP_IIR:
            if not constants.step:
                return None  # unquantized IIR runs through lfilter
            row[_COL_MODE] = -1
            row[_COL_IPARAM_A] = ROUNDING_CODES[constants.rounding]
            fparams[i, 1] = constants.step
            row[_COL_C_OFF] = len(coeff_pool)
            row[_COL_C_LEN] = len(constants.scaled_b)
            coeff_pool.extend(float(c) for c in constants.scaled_b)
            row[_COL_C2_OFF] = len(coeff_pool)
            row[_COL_C2_LEN] = len(constants.feedback)
            coeff_pool.extend(float(c) for c in constants.feedback)
            continue
        if constants.step:
            row[_COL_MODE] = ROUNDING_CODES[constants.rounding]
            fparams[i, 0] = constants.step
        else:
            row[_COL_MODE] = -1
        if op.opcode == OP_FIR:
            if not constants.step:
                return None  # unquantized convolution must match np.convolve
            row[_COL_C_OFF] = len(coeff_pool)
            row[_COL_C_LEN] = len(constants.taps)
            coeff_pool.extend(float(c) for c in constants.taps)
        elif op.opcode == OP_ADD:
            row[_COL_C_OFF] = len(coeff_pool)
            row[_COL_C_LEN] = len(constants.signs)
            coeff_pool.extend(float(s) for s in constants.signs)
        elif op.opcode == OP_GAIN:
            fparams[i, 1] = constants.gain
        elif op.opcode == OP_DELAY:
            row[_COL_IPARAM_A] = constants.delay
        elif op.opcode == OP_DOWN:
            row[_COL_IPARAM_A] = constants.factor
            row[_COL_IPARAM_B] = constants.phase
        elif op.opcode == OP_UP:
            row[_COL_IPARAM_A] = constants.factor
    return {
        "ops": ops,
        "fparams": fparams,
        "in_pool": np.asarray(in_pool if in_pool else [0], dtype=np.int64),
        "coeff_pool": np.asarray(coeff_pool if coeff_pool else [0.0],
                                 dtype=float),
    }


def slot_lengths(tape, input_lengths: dict) -> np.ndarray:
    """Sample count of every signal slot for given input lengths."""
    lengths = np.zeros(tape.n_slots, dtype=np.int64)
    for op, constants in zip(tape.ops, tape.constants):
        if op.opcode == OP_INPUT:
            lengths[op.dst] = input_lengths[op.name]
        elif op.opcode == OP_ADD:
            lengths[op.dst] = max(lengths[index] for index in op.srcs)
        elif op.opcode == OP_DOWN:
            available = lengths[op.srcs[0]] - constants.phase
            factor = constants.factor
            lengths[op.dst] = max(0, (available + factor - 1) // factor)
        elif op.opcode == OP_UP:
            lengths[op.dst] = lengths[op.srcs[0]] * constants.factor
        else:
            lengths[op.dst] = lengths[op.srcs[0]]
    return lengths


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------
def _run_packed(tape, packed, kernel, stimulus: dict):
    """One kernel invocation; returns per-slot signals or ``None``."""
    arrays = [np.asarray(stimulus[name], dtype=float)
              for name, _ in tape.input_slots]
    leadings = {a.shape[:-1] for a in arrays if a.ndim > 1}
    if len(leadings) > 1:
        return None  # disagreement is the plan's error to raise
    leading = leadings.pop() if leadings else ()
    trials = 1
    for dim in leading:
        trials *= int(dim)
    lengths = slot_lengths(tape, {
        name: array.shape[-1]
        for (name, _), array in zip(tape.input_slots, arrays)})
    max_len = int(lengths.max()) if tape.n_slots else 0
    if max_len == 0 or trials == 0:
        return None  # degenerate shapes: let the NumPy interpreter handle
    # NumPy broadcasting keeps a signal 1-D until it actually combines
    # with a batched one; track which slots any batched stimulus reaches
    # so the per-node path's output shapes are reproduced exactly.
    batched = [False] * tape.n_slots
    workspace = np.zeros((tape.n_slots, trials, max_len))
    for (name, index), array in zip(tape.input_slots, arrays):
        # 1-D stimuli broadcast across the trial rows, matching NumPy
        # broadcasting in the per-node path (all ops are row-independent).
        batched[index] = array.ndim > 1
        workspace[index, :, :array.shape[-1]] = (
            array.reshape(-1, array.shape[-1]) if array.ndim > 1 else array)
    for op in tape.ops:
        if op.srcs:
            batched[op.dst] = any(batched[index] for index in op.srcs)
    try:
        kernel(packed["ops"], packed["fparams"], packed["in_pool"],
               packed["coeff_pool"], lengths, workspace)
    except Exception:  # noqa: BLE001 - degrade, never break a simulation
        return None
    signals = []
    for index in range(tape.n_slots):
        block = workspace[index, :, :lengths[index]]
        if leading and batched[index]:
            signals.append(block.reshape(leading + (int(lengths[index]),)))
        else:
            signals.append(block[0].copy())
    return signals


def _probe(tape, packed, kernel) -> bool:
    """Compare kernel vs NumPy interpreter bitwise on a tiny stimulus."""
    from repro.simkernel.codegen import interpreter

    samples = 48
    ramp = (np.arange(samples, dtype=float) * 37.0 % 19.0 - 9.0) / 16.0
    stimulus = {name: ramp for name, _ in tape.input_slots}
    try:
        expected = interpreter.run(tape, dict(stimulus))
        produced = _run_packed(tape, packed, kernel, stimulus)
    except Exception:  # noqa: BLE001 - a failing probe only disables the JIT
        return False
    if produced is None:
        return False
    return all(np.array_equal(want, got)
               for want, got in zip(expected, produced))


def try_execute(tape, stimulus: dict):
    """Run the tape through the fused kernel, or ``None`` to degrade."""
    packed = tape._packed
    if packed is False:
        return None
    if packed is None:
        packed = pack(tape)
        tape._packed = packed if packed is not None else False
        if packed is None:
            return None
    kernel = get_kernel()
    if kernel is None:
        return None
    if tape._jit_state is None:
        tape._jit_state = "ok" if _probe(tape, packed, kernel) else "failed"
    if tape._jit_state != "ok":
        return None
    return _run_packed(tape, packed, kernel, stimulus)
