"""Backend selection for the simulation kernel layer.

Four backends implement the bit-true kernels:

* ``reference`` — the original per-sample / per-block Python loops,
  preserved verbatim (:mod:`repro.simkernel.reference` and the
  ``*_reference`` paths of the FFT and overlap-save engines).  Slow, but
  the ground truth every other backend is differentially verified
  against.
* ``numpy`` — vectorized scaled-integer-domain kernels.  Always
  available, bitwise identical to ``reference`` by construction (see
  ARCHITECTURE.md, "Simulation engine").
* ``numba`` — JIT-compiled scalar kernels for the inherently serial IIR
  feedback recursion.  A soft dependency: auto-detected at import time
  and silently unavailable when :mod:`numba` is not installed; the numpy
  kernels are the fallback for everything the JIT does not cover.
* ``codegen`` — whole-plan fusion: a :class:`~repro.sfg.plan.CompiledPlan`
  is lowered once into a linear op tape which then executes with zero
  per-node Python dispatch (:mod:`repro.simkernel.codegen`).  Always
  available; the tape runs through a JIT-compiled interpreter when numba
  is installed and degrades to a tape-walking NumPy/Python interpreter
  (with a one-time warning) when it is not.  Nodes a plan cannot lower
  fall back to the per-node default kernels.

The active backend is resolved, in priority order, from

1. an explicit :func:`set_backend` / :func:`use_backend` override,
2. the ``REPRO_SIMD_BACKEND`` environment variable,
3. the default: ``numba`` when importable, ``numpy`` otherwise.
"""

from __future__ import annotations

import importlib.util
import os
from contextlib import contextmanager

from repro.obs import metric_inc

#: Environment variable forcing a backend for the whole process.
BACKEND_ENV = "REPRO_SIMD_BACKEND"

#: Backends that are always implemented (numba is appended when found).
_ALWAYS_AVAILABLE = ("reference", "numpy")

_forced: str | None = None
_numba_available: bool | None = None


def numba_available() -> bool:
    """Whether the optional :mod:`numba` dependency is importable."""
    global _numba_available
    if _numba_available is None:
        _numba_available = importlib.util.find_spec("numba") is not None
    return _numba_available


def available_backends() -> tuple[str, ...]:
    """The backends usable in this process, reference first."""
    if numba_available():
        return _ALWAYS_AVAILABLE + ("numba", "codegen")
    return _ALWAYS_AVAILABLE + ("codegen",)


def default_backend() -> str:
    """The backend used when nothing forces a choice."""
    return "numba" if numba_available() else "numpy"


def _validate(name: str) -> str:
    name = str(name).lower()
    if name not in _ALWAYS_AVAILABLE + ("numba", "codegen"):
        raise ValueError(
            f"unknown simulation backend {name!r}; expected one of "
            f"{_ALWAYS_AVAILABLE + ('numba', 'codegen')}")
    if name == "numba" and not numba_available():
        raise ValueError(
            "the numba backend was requested but numba is not installed")
    return name


def get_backend() -> str:
    """Resolve the active backend (override > environment > default)."""
    if _forced is not None:
        name = _forced
    else:
        env = os.environ.get(BACKEND_ENV, "").strip()
        name = _validate(env) if env else default_backend()
    metric_inc("sim.backend_dispatch", backend=name)
    return name


def set_backend(name: str | None) -> None:
    """Force a backend for the process (``None`` restores auto-selection)."""
    global _forced
    _forced = None if name is None else _validate(name)


@contextmanager
def use_backend(name: str | None):
    """Context manager forcing a backend for the duration of a block."""
    global _forced
    saved = _forced
    _forced = None if name is None else _validate(name)
    try:
        yield
    finally:
        _forced = saved


def resolve_backend(name: str | None = None) -> str:
    """Validate an explicit backend name, or resolve the active one."""
    if name is None:
        return get_backend()
    return _validate(name)
