"""Machine-readable performance benchmarks and regression checking.

Two halves:

* **Schema + writer** — every benchmark (the pytest harnesses under
  ``benchmarks/`` and the CLI benches below) reports its measurement as
  one ``BENCH_<name>.json`` file: workload description, wall-clock
  seconds and derived speedup ratios.  The schema is deliberately tiny so
  CI jobs and the regression checker can consume any benchmark the same
  way.
* **Registry + checker** — a small set of quick, tagged benchmark
  functions runnable without pytest (the ``repro bench`` subcommand).
  Each times the *reference* backend (the preserved legacy loops of
  :mod:`repro.simkernel.reference`) against the optimized kernels on the
  same workload, asserts the outputs are bitwise identical, and reports
  the speedup.  ``repro bench --check`` then compares the measured
  speedups against the committed floors in
  ``benchmarks/bench_baseline.json`` and fails on regression.

Speedup *ratios* — not absolute seconds — are what the baseline pins:
both sides of each ratio run in the same process on the same machine, so
the check is robust to slow CI runners while still catching an engine
regression (the optimized path falling back to, or degrading towards,
the legacy loops).
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

#: Version tag written into every BENCH_*.json payload.
BENCH_SCHEMA = 1

#: Default location of the committed speedup floors.
DEFAULT_BASELINE = "benchmarks/bench_baseline.json"


# ----------------------------------------------------------------------
# Schema + writer
# ----------------------------------------------------------------------
def bench_payload(name: str, *, workload: dict, seconds: dict,
                  speedup: dict | None = None, tags=(),
                  mode: str | None = None,
                  warmup_s: dict | None = None) -> dict:
    """Assemble one benchmark measurement in the shared JSON schema.

    ``warmup_s`` records the untimed warm-up call of each measured
    configuration (JIT compilation, plan/tape lowering, cache priming) —
    kept separate so one-time compile cost never pollutes the speedup
    ratios the baseline floors pin.
    """
    return {
        "schema": BENCH_SCHEMA,
        "name": str(name),
        "tags": sorted(str(tag) for tag in tags),
        "mode": mode,
        "workload": dict(workload),
        "seconds": {key: float(value) for key, value in seconds.items()},
        "speedup": {key: float(value)
                    for key, value in (speedup or {}).items()},
        "warmup_s": {key: float(value)
                     for key, value in (warmup_s or {}).items()},
    }


def write_bench_json(results_dir, payload: dict) -> Path:
    """Persist one payload as ``BENCH_<name>.json`` under ``results_dir``."""
    results_dir = Path(results_dir)
    results_dir.mkdir(parents=True, exist_ok=True)
    path = results_dir / f"BENCH_{payload['name']}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def load_bench_json(path) -> dict:
    """Load one BENCH_*.json payload (validating the schema tag)."""
    payload = json.loads(Path(path).read_text())
    if payload.get("schema") != BENCH_SCHEMA:
        raise ValueError(f"{path}: unsupported bench schema "
                         f"{payload.get('schema')!r}")
    return payload


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BenchEntry:
    """One registered CLI benchmark."""

    name: str
    tags: tuple
    description: str
    function: object = field(repr=False)


_REGISTRY: dict[str, BenchEntry] = {}


def _registered(name: str, tags, description: str):
    def decorate(function):
        _REGISTRY[name] = BenchEntry(name, tuple(tags), description, function)
        return function
    return decorate


def bench_entries(tags=None, names=None) -> list[BenchEntry]:
    """Registered benches filtered by tags and/or explicit names."""
    entries = list(_REGISTRY.values())
    if names:
        unknown = sorted(set(names) - set(_REGISTRY))
        if unknown:
            raise ValueError(f"unknown benchmark(s) {unknown}; registered: "
                             f"{sorted(_REGISTRY)}")
        entries = [_REGISTRY[name] for name in names]
    if tags:
        wanted = set(tags)
        entries = [entry for entry in entries
                   if wanted & set(entry.tags)]
    return entries


def _timed(function, *args):
    start = time.perf_counter()
    result = function(*args)
    return result, time.perf_counter() - start


def _timed_warm(function, *args):
    """Time one call after one untimed warm-up call.

    JIT backends (numba, codegen) compile kernels and lower plans to op
    tapes on first use; the warm-up absorbs that one-time cost so the
    sampled seconds measure steady-state throughput.  Returns
    ``(result, seconds, warmup_seconds)`` — the warm-up duration is
    reported separately in the payload's ``warmup_s`` field.
    """
    _, warmup_seconds = _timed(function, *args)
    result, seconds = _timed(function, *args)
    return result, seconds, warmup_seconds


def _require_bitwise(label: str, reference, optimized) -> None:
    if not (np.shape(reference) == np.shape(optimized)
            and np.array_equal(reference, optimized)):
        raise RuntimeError(
            f"{label}: optimized output is not bitwise identical to the "
            "reference backend — refusing to report a speedup for a "
            "broken kernel")


# ----------------------------------------------------------------------
# The registered benches
# ----------------------------------------------------------------------
@_registered("sim_engine_ff", tags=("smoke", "sim"),
             description="Fig. 6 frequency-filter bit-true simulation: "
                         "legacy loops vs vectorized kernels")
def bench_sim_engine_ff(samples: int = 60_000, seed: int = 1) -> dict:
    """The Fig. 6 F.F. workload: dual-mode simulation of the Fig. 2 system."""
    from repro.analysis.simulation_method import SimulationEvaluator
    from repro.data.signals import uniform_white_noise
    from repro.simkernel import use_backend
    from repro.systems.freq_filter import FrequencyDomainFilter

    system = FrequencyDomainFilter(fractional_bits=12, n_psd=1024)
    evaluator = SimulationEvaluator(system.evaluator.plan)
    stimulus = {"x": uniform_white_noise(samples, seed=seed)}
    warmup: dict = {}
    with use_backend("reference"):
        reference, reference_seconds, warmup["reference"] = _timed_warm(
            evaluator.error_signal, stimulus)
    with use_backend("numpy"):
        optimized, numpy_seconds, warmup["numpy"] = _timed_warm(
            evaluator.error_signal, stimulus)
    _require_bitwise("sim_engine_ff", reference, optimized)
    return bench_payload(
        "sim_engine_ff",
        workload={"system": "frequency-domain-filter", "samples": samples,
                  "fractional_bits": 12},
        seconds={"reference": reference_seconds, "numpy": numpy_seconds},
        speedup={"bit_true_simulation": reference_seconds / numpy_seconds},
        warmup_s=warmup, tags=("smoke", "sim"))


@_registered("sim_engine_iir", tags=("smoke", "sim"),
             description="Direct-form IIR bit-true recursion: legacy "
                         "per-sample loop vs scaled-integer kernels")
def bench_sim_engine_iir(samples: int = 60_000, seed: int = 3) -> dict:
    """Single-stream and 64-trial batched IIR recursion."""
    from repro.analysis.simulation_method import SimulationEvaluator
    from repro.data.signals import uniform_white_noise
    from repro.simkernel import available_backends, use_backend
    from repro.systems.filter_bank import build_filter_graph, generate_iir_bank

    graph = build_filter_graph(generate_iir_bank(3)[2], fractional_bits=12)
    evaluator = SimulationEvaluator(graph)
    stimulus = {"x": uniform_white_noise(samples, seed=seed)}
    trials = 64
    batched = {"x": np.stack([
        uniform_white_noise(max(256, samples // trials), seed=seed + 1 + t)
        for t in range(trials)])}

    seconds: dict = {}
    outputs: dict = {}
    warmup: dict = {}
    for backend in available_backends():
        with use_backend(backend):
            outputs[backend], seconds[backend], warmup[backend] = _timed_warm(
                evaluator.error_signal, stimulus)
            _, seconds[f"{backend}_batched"] = _timed(
                evaluator.error_signal, batched)
    for backend in outputs:
        _require_bitwise(f"sim_engine_iir[{backend}]", outputs["reference"],
                         outputs[backend])
    speedup = {
        "single_stream": seconds["reference"] / seconds["numpy"],
        "batched_64": (seconds["reference_batched"]
                       / seconds["numpy_batched"]),
        "single_stream_codegen": (seconds["reference"]
                                  / seconds["codegen"]),
        "batched_64_codegen": (seconds["reference_batched"]
                               / seconds["codegen_batched"]),
    }
    if "numba" in seconds:
        speedup["single_stream_numba"] = (seconds["reference"]
                                          / seconds["numba"])
    return bench_payload(
        "sim_engine_iir",
        workload={"system": "table1-iir", "samples": samples,
                  "trials": trials, "fractional_bits": 12},
        seconds=seconds, speedup=speedup, warmup_s=warmup,
        tags=("smoke", "sim"))


@_registered("welch_psd", tags=("smoke", "psd"),
             description="Welch PSD estimation: per-segment loop vs "
                         "batched strided FFT")
def bench_welch_psd(samples: int = 400_000, seed: int = 5) -> dict:
    """Welch estimation: one long record, and a 64-trial stacked record."""
    from repro.data.signals import uniform_white_noise
    from repro.psd.estimation import _welch_reference, welch, welch_batched

    n_bins = 256
    record = uniform_white_noise(samples, seed=seed)
    warmup: dict = {}
    loop_psd, loop_seconds, warmup["reference"] = _timed_warm(
        _welch_reference, record, n_bins)
    fast_psd, fast_seconds, warmup["numpy"] = _timed_warm(
        welch, record, n_bins)
    _require_bitwise("welch_psd", loop_psd.ac, fast_psd.ac)
    if loop_psd.mean != fast_psd.mean:
        raise RuntimeError("welch_psd: mean drifted between implementations")

    trials = np.stack([
        uniform_white_noise(max(n_bins, samples // 64), seed=seed + 1 + t)
        for t in range(64)])
    loop_rows, rows_seconds = _timed(
        lambda: [_welch_reference(row, n_bins) for row in trials])
    fast_rows, batch_seconds = _timed(welch_batched, trials, n_bins)
    for loop_row, fast_row in zip(loop_rows, fast_rows):
        _require_bitwise("welch_psd[batched]", loop_row.ac, fast_row.ac)
    return bench_payload(
        "welch_psd",
        workload={"samples": samples, "n_bins": n_bins, "trials": 64},
        seconds={"reference": loop_seconds, "numpy": fast_seconds,
                 "reference_batched": rows_seconds,
                 "numpy_batched": batch_seconds},
        speedup={"welch": loop_seconds / fast_seconds,
                 "welch_batched": rows_seconds / batch_seconds},
        tags=("smoke", "psd"))


@_registered("incremental_reeval", tags=("smoke", "analysis"),
             description="Greedy-candidate PSD re-evaluation: cold full "
                         "walks vs memoized dirty-cone pulls")
def bench_incremental_reeval(samples: int | None = None, branches: int = 64,
                             candidates: int = 24, n_psd: int = 512,
                             seed: int = 7) -> dict:
    """Single-node requantize edits on the wide scalability bank.

    Replays the word-length optimizer's greedy candidate loop — one
    single-node edit, one evaluation — twice on the same edit sequence:
    once as cold full walks (memoization disabled, the pre-memo cost) and
    once as memoized dirty-cone pulls, asserting the per-candidate noise
    powers are bitwise identical before reporting the speedup.

    ``samples`` is accepted for CLI uniformity but ignored: the workload
    is graph-size-bound (``branches`` FIR branches under an unquantized
    binary adder tree), not stimulus-bound.
    """
    del samples, seed  # deterministic workload; kept for CLI uniformity
    from repro.analysis._engine import memoization_disabled, plan_memo
    from repro.analysis.psd_method import evaluate_psd
    from repro.sfg.plan import compile_plan
    from repro.systems.families import build_scalability_bank

    graph = build_scalability_bank(branches=branches)
    plan = compile_plan(graph)
    count = min(candidates, branches)
    edits = [(f"branch{index}", 13 - index % 2) for index in range(count)]

    def replay() -> list:
        powers = []
        with plan.preserve_quantization():
            for name, bits in edits:
                plan.requantize({name: bits})
                powers.append(evaluate_psd(plan, n_psd).total_power)
        return powers

    def replay_cold() -> list:
        with memoization_disabled():
            return replay()

    warmup: dict = {}
    cold_powers, cold_seconds, warmup["full_walks"] = _timed_warm(replay_cold)
    # Sync the memo on the restored baseline quantization so the timed
    # run measures steady-state cone pulls, not the initial cold build.
    evaluate_psd(plan, n_psd)
    warm_powers, warm_seconds, warmup["dirty_cones"] = _timed_warm(replay)
    _require_bitwise("incremental_reeval", cold_powers, warm_powers)
    counters = plan_memo(plan).counters()
    return bench_payload(
        "incremental_reeval",
        workload={"system": graph.name, "branches": branches,
                  "steps": len(plan.steps), "candidates": count,
                  "n_psd": n_psd,
                  "steps_recomputed": counters["steps_recomputed"],
                  "steps_reused": counters["steps_reused"]},
        seconds={"full_walks": cold_seconds, "dirty_cones": warm_seconds,
                 "full_per_candidate": cold_seconds / count,
                 "cone_per_candidate": warm_seconds / count},
        speedup={"per_candidate": cold_seconds / warm_seconds},
        warmup_s=warmup, tags=("smoke", "analysis"))


@_registered("fine_grained_search", tags=("smoke", "analysis"),
             description="Per-edge word-length search: dirty-cone tap "
                         "edits vs cold walks, edge- vs node-level "
                         "search cost at one budget")
def bench_fine_grained_search(samples: int | None = None, branches: int = 16,
                              candidates: int = 16, n_psd: int = 256,
                              budget_factor: float = 16.0,
                              seed: int = 9) -> dict:
    """Per-edge requantize edits and searches on the scalability bank.

    Two claims are measured on the same graph:

    * a single fanout-tap edit (``x->branch_i``) re-evaluates in its
      dirty downstream cone, not the whole graph — replayed cold
      (memoization disabled) vs warm, bitwise-identical powers required
      before the ``per_candidate`` speedup is reported;
    * at the same noise budget, the edge-granularity greedy search ends
      at strictly fewer total fractional bits than the node-level one
      (reported in the workload as ``node_total_bits`` /
      ``edge_total_bits``; the run fails if the edge search is not
      strictly cheaper).

    ``samples`` is accepted for CLI uniformity but ignored: the
    workload is graph-size-bound, not stimulus-bound.
    """
    del samples, seed  # deterministic workload; kept for CLI uniformity
    from repro.analysis._engine import memoization_disabled, plan_memo
    from repro.analysis.psd_method import evaluate_psd
    from repro.sfg.plan import compile_plan
    from repro.systems.families import build_scalability_bank
    from repro.systems.wordlength import WordLengthOptimizer

    graph = build_scalability_bank(branches=branches)
    plan = compile_plan(graph)
    budget = float(evaluate_psd(plan, n_psd).total_power) * budget_factor

    count = min(candidates, branches)
    edits = [(f"x->branch{index}", 12 - index % 2) for index in range(count)]

    def replay() -> list:
        powers = []
        with plan.preserve_quantization():
            for key, bits in edits:
                plan.requantize({key: bits})
                powers.append(evaluate_psd(plan, n_psd).total_power)
        return powers

    def replay_cold() -> list:
        with memoization_disabled():
            return replay()

    warmup: dict = {}
    cold_powers, cold_seconds, warmup["full_walks"] = _timed_warm(replay_cold)
    # Sync the memo on the restored (tap-free) quantization so the timed
    # run measures steady-state cone pulls, not the initial cold build.
    evaluate_psd(plan, n_psd)
    warm_powers, warm_seconds, warmup["dirty_cones"] = _timed_warm(replay)
    _require_bitwise("fine_grained_search", cold_powers, warm_powers)
    counters = plan_memo(plan).counters()

    node_result = WordLengthOptimizer(
        build_scalability_bank(branches=branches),
        n_psd=n_psd).optimize(budget)
    edge_result = WordLengthOptimizer(
        build_scalability_bank(branches=branches), n_psd=n_psd,
        granularity="edge").optimize(budget)
    if edge_result.total_bits >= node_result.total_bits:
        raise RuntimeError(
            f"fine_grained_search: edge-granularity search ended at "
            f"{edge_result.total_bits} total bits, not strictly below "
            f"the node-level {node_result.total_bits} at the same "
            f"budget {budget:.3e}")
    return bench_payload(
        "fine_grained_search",
        workload={"system": graph.name, "branches": branches,
                  "steps": len(plan.steps), "candidates": count,
                  "n_psd": n_psd, "budget_factor": budget_factor,
                  "node_total_bits": node_result.total_bits,
                  "edge_total_bits": edge_result.total_bits,
                  "node_evaluations": node_result.evaluations,
                  "edge_evaluations": edge_result.evaluations,
                  "steps_recomputed": counters["steps_recomputed"],
                  "steps_reused": counters["steps_reused"]},
        seconds={"full_walks": cold_seconds, "dirty_cones": warm_seconds,
                 "full_per_candidate": cold_seconds / count,
                 "cone_per_candidate": warm_seconds / count},
        speedup={"per_candidate": cold_seconds / warm_seconds},
        warmup_s=warmup, tags=("smoke", "analysis"))


def run_benches(entries, results_dir, samples: int | None = None) -> list[dict]:
    """Run benches, write their BENCH_*.json files, return the payloads."""
    from repro.obs import span

    payloads = []
    for entry in entries:
        with span("bench.run", bench=entry.name):
            payload = (entry.function(samples=samples) if samples
                       else entry.function())
        payload["mode"] = "cli"
        write_bench_json(results_dir, payload)
        payloads.append(payload)
    return payloads


# ----------------------------------------------------------------------
# Baseline comparison
# ----------------------------------------------------------------------
def load_baseline(path) -> dict:
    """Load the committed speedup floors."""
    baseline = json.loads(Path(path).read_text())
    if baseline.get("schema") != BENCH_SCHEMA:
        raise ValueError(f"{path}: unsupported baseline schema "
                         f"{baseline.get('schema')!r}")
    return baseline


def check_against_baseline(payloads: list[dict], baseline: dict) -> list[str]:
    """Compare measured speedups to the baseline floors.

    Returns a list of human-readable regression descriptions (empty when
    everything is at or above its floor).  Missing measurements for a
    floored key are regressions too — a silently skipped benchmark must
    not look like a pass.
    """
    measured = {payload["name"]: payload.get("speedup", {})
                for payload in payloads}
    regressions = []
    for name, floors in sorted(baseline.get("floors", {}).items()):
        if name not in measured:
            if name in _REGISTRY:
                continue  # registered, just outside the selected tags/names
            # A floor for a name the registry does not know means the
            # benchmark was renamed or unregistered: its floor would
            # otherwise never be evaluated again, silently.
            regressions.append(
                f"{name}: baseline floors reference an unknown benchmark "
                "(renamed or unregistered?)")
            continue
        for key, floor in sorted(floors.items()):
            value = measured[name].get(key)
            if value is None:
                if key.endswith("_numba"):
                    from repro.simkernel import numba_available
                    if not numba_available():
                        continue  # optional-backend floor, backend absent
                regressions.append(
                    f"{name}.{key}: no measurement (floor {floor:g}x)")
            elif value < float(floor):
                regressions.append(
                    f"{name}.{key}: speedup {value:.2f}x below the "
                    f"baseline floor {floor:g}x")
    return regressions


def required_floor(baseline: dict, name: str, key: str,
                   path=DEFAULT_BASELINE) -> float:
    """The committed floor for ``floors.<name>.<key>``.

    Raises a one-line :class:`ValueError` naming the baseline file and
    the missing key when the entry is absent — a harness gating on a
    floor must fail readably, not with a bare ``KeyError``.
    """
    entry = baseline.get("floors", {}).get(name)
    if entry is None or key not in entry:
        raise ValueError(
            f"{path}: no baseline entry floors.{name}.{key} — commit the "
            "speedup floor before gating on it")
    return float(entry[key])


def baseline_diff(payloads: list[dict], baseline: dict) -> list[dict]:
    """Measured-vs-floor rows for every floored key of the measured benches.

    One row per ``floors.<name>.<key>`` whose benchmark was measured:
    the committed floor, the measured speedup, the margin ratio
    (``measured / floor``) and a verdict.  Optional-backend floors (the
    ``*_numba`` keys) with the backend absent are reported as skipped
    rather than failed, matching :func:`check_against_baseline`.
    """
    measured = {payload["name"]: payload.get("speedup", {})
                for payload in payloads}
    rows = []
    for name, floors in sorted(baseline.get("floors", {}).items()):
        if name not in measured:
            continue
        for key, floor in sorted(floors.items()):
            floor = float(floor)
            value = measured[name].get(key)
            row = {"name": name, "key": key, "floor": floor,
                   "measured": value,
                   "margin": value / floor if value is not None else None,
                   "ok": value is not None and value >= floor}
            if value is None and key.endswith("_numba"):
                from repro.simkernel import numba_available
                if not numba_available():
                    row["ok"] = True
                    row["skipped"] = "numba backend unavailable"
            rows.append(row)
    return rows


def missing_baseline_entries(payloads: list[dict], baseline: dict) -> list[str]:
    """Names of measured benches reporting speedups without any committed
    floor — a new benchmark must not silently run ungated."""
    floors = baseline.get("floors", {})
    return sorted(payload["name"] for payload in payloads
                  if payload.get("speedup") and payload["name"] not in floors)
