"""repro — PSD-based scalable system-level accuracy evaluation.

Reproduction of B. Barrois, K. Parashar, O. Sentieys, *Leveraging Power
Spectral Density for Scalable System-Level Accuracy Evaluation*, DATE
2016.

The library is organized in layers:

* :mod:`repro.fixedpoint` — fixed-point data types, quantizers and the
  Widrow PQN noise model;
* :mod:`repro.lti` — filters, transfer functions, FFTs, multirate and
  block-convolution building blocks;
* :mod:`repro.sfg` — signal-flow-graph description and dual-mode
  (reference / fixed-point) execution;
* :mod:`repro.psd` — the discrete noise-PSD representation and its
  propagation rules;
* :mod:`repro.analysis` — the four accuracy-evaluation methods
  (simulation, flat analytical, PSD-agnostic hierarchical and the
  proposed PSD hierarchical method) behind one evaluator API;
* :mod:`repro.systems` — the paper's benchmark systems (filter bank,
  frequency-domain filter, Daubechies 9/7 DWT codec) and the word-length
  optimization use-case;
* :mod:`repro.data` — synthetic stimuli and surrogate images.

Quick start::

    from repro import quickstart_fir_graph, AccuracyEvaluator
    from repro.data import uniform_white_noise

    graph = quickstart_fir_graph(fractional_bits=12)
    evaluator = AccuracyEvaluator(graph, n_psd=256)
    comparison = evaluator.compare(uniform_white_noise(20_000, seed=1))
    print(comparison.describe())
"""

from repro.analysis import AccuracyEvaluator, SimulationEvaluator
from repro.analysis.psd_method import evaluate_psd
from repro.analysis.agnostic_method import evaluate_agnostic
from repro.analysis.flat_method import evaluate_flat
from repro.fixedpoint import QFormat, Quantizer, RoundingMode
from repro.psd import DiscretePsd
from repro.sfg import CompiledPlan, SfgBuilder, SignalFlowGraph, compile_plan

__version__ = "1.0.0"


def quickstart_fir_graph(fractional_bits: int = 12,
                         num_taps: int = 16) -> SignalFlowGraph:
    """Build a minimal single-FIR system used by the quick-start example.

    The graph quantizes its input to ``fractional_bits`` fractional bits,
    filters it with a low-pass FIR and re-quantizes the filter output —
    the smallest system exhibiting the colored-noise effect the paper
    exploits.
    """
    from repro.lti.fir_design import design_fir_lowpass

    builder = SfgBuilder("quickstart-fir")
    x = builder.input("x", fractional_bits=fractional_bits)
    taps = design_fir_lowpass(num_taps, 0.25)
    y = builder.fir("lowpass", taps, x, fractional_bits=fractional_bits)
    builder.output("out", y)
    return builder.build()


__all__ = [
    "AccuracyEvaluator",
    "SimulationEvaluator",
    "evaluate_psd",
    "evaluate_agnostic",
    "evaluate_flat",
    "QFormat",
    "Quantizer",
    "RoundingMode",
    "DiscretePsd",
    "SignalFlowGraph",
    "SfgBuilder",
    "CompiledPlan",
    "compile_plan",
    "quickstart_fir_graph",
    "__version__",
]
