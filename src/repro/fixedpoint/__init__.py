"""Fixed-point arithmetic substrate.

This subpackage provides everything the accuracy-evaluation engines need to
know about fixed-point data types:

* :class:`~repro.fixedpoint.qformat.QFormat` — a signed/unsigned Q-format
  description (integer bits, fractional bits) with its representable range
  and quantization step.
* :class:`~repro.fixedpoint.quantizer.Quantizer` — a vectorized quantizer
  supporting rounding, truncation and convergent rounding together with
  saturation / wrap-around overflow handling.
* :class:`~repro.fixedpoint.fxparray.FxpArray` — an integer-mantissa
  fixed-point array with exact add / multiply / re-quantize semantics.
* :mod:`~repro.fixedpoint.noise_model` — the Widrow pseudo-quantization-noise
  (PQN) model giving the mean and variance of the error introduced by a
  quantization, for both continuous-amplitude inputs and re-quantization of
  already-quantized signals (Section II of the paper).
"""

from repro.fixedpoint.qformat import QFormat
from repro.fixedpoint.quantizer import OverflowMode, Quantizer, RoundingMode, quantize
from repro.fixedpoint.fxparray import FxpArray
from repro.fixedpoint.noise_model import (
    NoiseStats,
    quantization_noise_stats,
    quantization_noise_psd,
)
# NOTE: repro.fixedpoint.range_analysis operates on signal-flow graphs and
# therefore sits *above* repro.sfg in the layering; import it explicitly
# (``from repro.fixedpoint.range_analysis import ...``) rather than from
# this package root to keep the package import acyclic.

__all__ = [
    "QFormat",
    "Quantizer",
    "RoundingMode",
    "OverflowMode",
    "quantize",
    "FxpArray",
    "NoiseStats",
    "quantization_noise_stats",
    "quantization_noise_psd",
]
