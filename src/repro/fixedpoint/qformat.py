"""Q-format (fixed-point data type) description.

A fixed-point number is described here in the classical ``Q(m, n)``
notation: *m* integer bits (excluding the sign bit when the format is
signed) and *n* fractional bits.  The value of a word with integer mantissa
``k`` is ``k * 2**-n``.

The accuracy-evaluation techniques of the paper only care about the
quantization *step* (``2**-n``) and, for overflow analysis, about the
representable range; both are exposed as properties.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class QFormat:
    """Description of a fixed-point data type.

    Parameters
    ----------
    integer_bits:
        Number of bits devoted to the integer part, *excluding* the sign
        bit for signed formats.  May be negative, which is occasionally
        useful for signals known to be much smaller than one.
    fractional_bits:
        Number of bits devoted to the fractional part.  The quantization
        step is ``2**-fractional_bits``.
    signed:
        Whether the format carries a sign bit (two's complement).

    Examples
    --------
    >>> fmt = QFormat(integer_bits=2, fractional_bits=5)
    >>> fmt.step
    0.03125
    >>> fmt.total_bits
    8
    >>> fmt.max_value
    3.96875
    >>> fmt.min_value
    -4.0
    """

    integer_bits: int
    fractional_bits: int
    signed: bool = True

    def __post_init__(self) -> None:
        if self.fractional_bits < 0:
            raise ValueError("fractional_bits must be non-negative, "
                             f"got {self.fractional_bits}")
        if self.total_bits <= 0:
            raise ValueError(
                "QFormat must contain at least one bit "
                f"(integer_bits={self.integer_bits}, "
                f"fractional_bits={self.fractional_bits}, signed={self.signed})")

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def total_bits(self) -> int:
        """Total word length, including the sign bit when signed."""
        return self.integer_bits + self.fractional_bits + (1 if self.signed else 0)

    @property
    def step(self) -> float:
        """Quantization step (weight of the least-significant bit)."""
        return 2.0 ** (-self.fractional_bits)

    @property
    def max_value(self) -> float:
        """Largest representable value."""
        return 2.0 ** self.integer_bits - self.step

    @property
    def min_value(self) -> float:
        """Smallest representable value (0 for unsigned formats)."""
        if self.signed:
            return -(2.0 ** self.integer_bits)
        return 0.0

    @property
    def max_mantissa(self) -> int:
        """Largest integer mantissa representable in this format."""
        return int(round(self.max_value / self.step))

    @property
    def min_mantissa(self) -> int:
        """Smallest integer mantissa representable in this format."""
        return int(round(self.min_value / self.step))

    # ------------------------------------------------------------------
    # Constructors and transformations
    # ------------------------------------------------------------------
    @classmethod
    def from_range(cls, low: float, high: float, fractional_bits: int,
                   signed: bool | None = None) -> "QFormat":
        """Build the narrowest format covering ``[low, high]``.

        Parameters
        ----------
        low, high:
            Range that must be representable.
        fractional_bits:
            Desired precision.
        signed:
            Force signedness; by default the format is signed whenever
            ``low`` is negative.
        """
        if high < low:
            raise ValueError(f"empty range [{low}, {high}]")
        if signed is None:
            signed = low < 0.0
        magnitude = max(abs(low), abs(high))
        step = 2.0 ** (-fractional_bits)
        integer_bits = 0
        # The largest representable positive value is 2**integer_bits - step,
        # so the loop must account for the step as well.
        while (2.0 ** integer_bits) - step < magnitude:
            integer_bits += 1
        if not signed and fractional_bits == 0 and integer_bits == 0:
            # Guarantee at least one bit of storage for the degenerate
            # all-zero range.
            integer_bits = 1
        return cls(integer_bits=integer_bits, fractional_bits=fractional_bits,
                   signed=signed)

    def with_fractional_bits(self, fractional_bits: int) -> "QFormat":
        """Return a copy of this format with a different precision."""
        return QFormat(self.integer_bits, fractional_bits, self.signed)

    def widen(self, extra_integer_bits: int = 0,
              extra_fractional_bits: int = 0) -> "QFormat":
        """Return a format widened by the given number of bits."""
        return QFormat(self.integer_bits + extra_integer_bits,
                       self.fractional_bits + extra_fractional_bits,
                       self.signed)

    # ------------------------------------------------------------------
    # Predicates
    # ------------------------------------------------------------------
    def contains(self, value: float) -> bool:
        """Whether ``value`` lies within the representable range."""
        return self.min_value <= value <= self.max_value

    def is_representable(self, value: float, tol: float = 1e-12) -> bool:
        """Whether ``value`` lies exactly on the quantization grid."""
        if not self.contains(value):
            return False
        mantissa = value / self.step
        return abs(mantissa - round(mantissa)) <= tol

    def __str__(self) -> str:  # pragma: no cover - trivial
        sign = "s" if self.signed else "u"
        return f"Q{sign}({self.integer_bits},{self.fractional_bits})"
