"""Widrow pseudo-quantization-noise (PQN) model.

Section II of the paper relies on the classical PQN model [Widrow &
Kollar, 2008]: under mild conditions on the signal distribution, the error
``e = Q(x) - x`` introduced by a quantizer behaves like an additive noise
that is

1. uncorrelated with the signal,
2. white (uncorrelated in time), and
3. uniformly distributed over one quantization step.

The first two moments of that noise depend on the rounding mode and on
whether the input is continuous-amplitude or already quantized on a finer
grid (re-quantization from ``d_in`` to ``d_out`` fractional bits).

With ``q_out = 2**-d_out`` the output step and ``q_in`` the input step
(``q_in = 0`` for a continuous-amplitude input):

================  =========================  ================================
mode              mean                        variance
================  =========================  ================================
truncation        ``-(q_out - q_in) / 2``    ``(q_out**2 - q_in**2) / 12``
round (MATLAB)    ``0``                      ``(q_out**2 + 2 q_in**2) / 12``
convergent        ``0``                      ``(q_out**2 - q_in**2) / 12``
================  =========================  ================================

These expressions are exact for a discrete input uniformly distributed on
its grid and symmetric about zero, and are the standard PQN approximations
otherwise.  ``ROUND`` is MATLAB ``round`` — ties away from zero, an *odd*
characteristic — so positive and negative tie errors (``±q_out/2``, hit
with probability ``q_in / q_out``) cancel in the mean but add the
``q_in**2 / 4`` tie term to the variance:
``(q_out**2 - q_in**2) / 12 + q_in**2 / 4 = (q_out**2 + 2 q_in**2) / 12``.
For a continuous input (``q_in = 0``) ties have probability zero and the
classical ``q_out**2 / 12`` is recovered.  (``CONVERGENT`` keeps the
standard continuous-input expression; its discrete-input tie term is
neglected, a documented approximation.)

The PSD of such a noise source, discretized over ``n_psd`` frequency bins
(Eq. 10 of the paper), spreads the variance uniformly over all bins and
adds the squared mean on the DC bin; it is produced by
:func:`quantization_noise_psd` and matches
:meth:`repro.psd.spectrum.DiscretePsd.values` bin for bin.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fixedpoint.quantizer import RoundingMode


@dataclass(frozen=True)
class NoiseStats:
    """First two moments of a quantization noise source.

    Attributes
    ----------
    mean:
        Expected value of the error ``Q(x) - x``.
    variance:
        Variance of the error.
    """

    mean: float
    variance: float

    @property
    def power(self) -> float:
        """Total noise power ``E[e^2] = mean**2 + variance``."""
        return self.mean ** 2 + self.variance

    def scaled(self, gain: float) -> "NoiseStats":
        """Moments of the noise after multiplication by a constant gain."""
        return NoiseStats(mean=self.mean * gain,
                          variance=self.variance * gain * gain)

    def __add__(self, other: "NoiseStats") -> "NoiseStats":
        """Moments of the sum of two *uncorrelated* noise sources."""
        if not isinstance(other, NoiseStats):
            return NotImplemented
        return NoiseStats(mean=self.mean + other.mean,
                          variance=self.variance + other.variance)


def quantization_step(fractional_bits: int | None) -> float:
    """Quantization step for ``fractional_bits`` bits (0 if ``None``).

    ``None`` denotes a continuous-amplitude (infinite precision) signal and
    maps to a step of zero, which makes the noise expressions below
    degenerate to the continuous-input case.
    """
    if fractional_bits is None:
        return 0.0
    if fractional_bits < 0:
        raise ValueError("fractional_bits must be non-negative or None")
    return 2.0 ** (-fractional_bits)


def quantization_noise_stats(
    output_fractional_bits: int,
    rounding: RoundingMode | str = RoundingMode.ROUND,
    input_fractional_bits: int | None = None,
) -> NoiseStats:
    """Mean and variance of a quantization-noise source.

    Parameters
    ----------
    output_fractional_bits:
        Precision of the quantizer output.
    rounding:
        Rounding mode of the quantizer.
    input_fractional_bits:
        Precision of the quantizer input; ``None`` (default) means the
        input has continuous amplitude.  When the input is already coarser
        than or equal to the output the quantizer is transparent and the
        noise is exactly zero.

    Returns
    -------
    NoiseStats
        The PQN-model moments of the error signal.
    """
    rounding = RoundingMode(rounding)
    q_out = quantization_step(output_fractional_bits)
    q_in = quantization_step(input_fractional_bits)

    if q_in >= q_out and input_fractional_bits is not None:
        # Input grid is coarser than (or equal to) the output grid: the
        # quantization is lossless.
        return NoiseStats(mean=0.0, variance=0.0)

    variance = (q_out ** 2 - q_in ** 2) / 12.0
    if rounding is RoundingMode.TRUNCATE:
        mean = -(q_out - q_in) / 2.0
    elif rounding is RoundingMode.ROUND:
        # Ties away from zero (MATLAB round) has an odd characteristic:
        # the ±q_out/2 tie errors cancel in the mean for a sign-symmetric
        # input but contribute q_in**2 / 4 of extra variance.
        mean = 0.0
        variance += q_in ** 2 / 4.0
    else:  # convergent rounding is unbiased
        mean = 0.0
    return NoiseStats(mean=mean, variance=variance)


def quantization_noise_psd(
    stats: NoiseStats,
    n_psd: int,
) -> np.ndarray:
    """Discrete PSD of a white quantization-noise source (Eq. 10).

    The convention used throughout this library is that the ``n_psd`` bins
    of a discrete PSD *sum* to the total signal power ``E[x^2]``, with the
    variance spread uniformly over **all** bins (DC included) and the
    squared mean added on the DC bin.  For a white noise of moments
    ``(mu, sigma^2)`` this yields

    * ``sigma^2 / n_psd`` on every non-DC bin, and
    * ``mu^2 + sigma^2 / n_psd`` on the DC bin,

    so that the sum over all bins equals ``mu^2 + sigma^2``.  This is
    exactly :meth:`repro.psd.spectrum.DiscretePsd.values` of
    ``DiscretePsd.white(stats, n_psd)`` and bin-by-bin identical to what
    :meth:`repro.psd.propagation.TrackedSpectrum.to_psd` produces for a
    single white source, so all engines share one normalization.

    Parameters
    ----------
    stats:
        Moments of the noise source.
    n_psd:
        Number of frequency bins (must be at least 2).

    Returns
    -------
    numpy.ndarray
        Array of length ``n_psd``; bin 0 is the DC bin.
    """
    if n_psd < 2:
        raise ValueError(f"n_psd must be at least 2, got {n_psd}")
    psd = np.full(n_psd, stats.variance / n_psd, dtype=float)
    psd[0] += stats.mean ** 2
    return psd


def equivalent_bits(power_ratio: float) -> float:
    """Number of bits equivalent to a noise-power ratio.

    Halving the fractional word length multiplies the noise power by 4
    (one bit is ``10*log10(4) ~ 6 dB``).  This helper converts a power
    ratio into its equivalent bit count, which is how the paper defines the
    "sub-one-bit accuracy" objective: with ``Ed = (sim - est) / sim``, a
    relative deviation within ``(-300 %, +75 %)`` corresponds to less than
    one bit (see :func:`repro.analysis.metrics.is_sub_one_bit`).
    """
    if power_ratio <= 0:
        raise ValueError("power_ratio must be positive")
    return 0.5 * np.log2(power_ratio)
