"""Vectorized quantization of floating-point signals to a fixed-point grid.

The quantizer is the elementary error source of the whole study: every
fixed-point operation in a signal-flow graph is modelled as the exact
(infinite-precision) operation followed by a quantizer on its output.  The
fixed-point *simulation* method applies these quantizers sample by sample;
the analytical methods replace each of them by an additive noise source
whose first two moments (and PSD) are given by
:mod:`repro.fixedpoint.noise_model`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.fixedpoint.qformat import QFormat


class RoundingMode(str, enum.Enum):
    """Supported rounding modes.

    * ``ROUND`` — round to nearest, ties away from zero (MATLAB ``round``
      semantics, the mode used in the paper's experiments).  The rounding
      characteristic is odd — ``round(-x) == -round(x)`` — so ties on the
      negative axis go towards minus infinity.
    * ``TRUNCATE`` — truncation towards minus infinity (two's-complement
      truncation, i.e. ``floor``).
    * ``CONVERGENT`` — round to nearest, ties to even (unbiased).
    """

    ROUND = "round"
    TRUNCATE = "truncate"
    CONVERGENT = "convergent"


class OverflowMode(str, enum.Enum):
    """Supported overflow handling modes.

    * ``SATURATE`` — clip to the representable range.
    * ``WRAP`` — two's-complement wrap-around.
    * ``NONE`` — assume range analysis already guarantees no overflow
      (values outside the range are left untouched).  This is the mode
      used throughout the paper, which focuses purely on precision
      (fractional) errors.
    """

    SATURATE = "saturate"
    WRAP = "wrap"
    NONE = "none"


def round_half_away(mantissa: np.ndarray) -> np.ndarray:
    """Round to nearest integer with ties going away from zero.

    This is MATLAB's ``round``: an odd characteristic, so ``-0.5`` maps to
    ``-1`` (not ``0`` as the asymmetric ``floor(x + 0.5)`` would give).
    Shared by every data-path and coefficient rounding site of the library
    so that all ``RoundingMode.ROUND`` quantizations agree bit for bit.
    """
    mantissa = np.asarray(mantissa)
    return np.copysign(np.floor(np.abs(mantissa) + 0.5), mantissa)


def _round_convergent(mantissa: np.ndarray) -> np.ndarray:
    """Round to nearest integer with ties going to the even integer."""
    return np.rint(mantissa)


def apply_rounding(mantissa: np.ndarray, mode: RoundingMode) -> np.ndarray:
    """Apply one :class:`RoundingMode` to an array of step mantissas."""
    if mode is RoundingMode.ROUND:
        return round_half_away(mantissa)
    if mode is RoundingMode.TRUNCATE:
        return np.floor(mantissa)
    if mode is RoundingMode.CONVERGENT:
        return _round_convergent(mantissa)
    raise ValueError(f"unknown rounding mode {mode!r}")


def _apply_overflow(mantissa: np.ndarray, fmt: QFormat,
                    mode: OverflowMode) -> np.ndarray:
    if mode is OverflowMode.NONE:
        return mantissa
    lo = fmt.min_mantissa
    hi = fmt.max_mantissa
    if mode is OverflowMode.SATURATE:
        return np.clip(mantissa, lo, hi)
    if mode is OverflowMode.WRAP:
        span = hi - lo + 1
        return lo + np.mod(mantissa - lo, span)
    raise ValueError(f"unknown overflow mode {mode!r}")


@dataclass(frozen=True)
class Quantizer:
    """A quantizer mapping real values onto a :class:`QFormat` grid.

    Parameters
    ----------
    fmt:
        Target fixed-point format.
    rounding:
        Rounding mode applied to the fractional part.
    overflow:
        Overflow handling applied to the integer part.

    Examples
    --------
    >>> import numpy as np
    >>> q = Quantizer(QFormat(2, 3), rounding=RoundingMode.TRUNCATE)
    >>> q(np.array([0.3, -0.3]))
    array([ 0.25 , -0.375])
    """

    fmt: QFormat
    rounding: RoundingMode = RoundingMode.ROUND
    overflow: OverflowMode = OverflowMode.NONE

    def __call__(self, values: np.ndarray) -> np.ndarray:
        return self.quantize(values)

    def quantize(self, values: np.ndarray) -> np.ndarray:
        """Quantize ``values`` and return the result as floating point."""
        values = np.asarray(values, dtype=float)
        mantissa = values / self.fmt.step
        mantissa = apply_rounding(mantissa, self.rounding)
        mantissa = _apply_overflow(mantissa, self.fmt, self.overflow)
        return mantissa * self.fmt.step

    def error(self, values: np.ndarray) -> np.ndarray:
        """Quantization error ``quantize(values) - values``."""
        values = np.asarray(values, dtype=float)
        return self.quantize(values) - values

    @property
    def step(self) -> float:
        """Quantization step of the target format."""
        return self.fmt.step


def quantize(values: np.ndarray, fractional_bits: int,
             rounding: RoundingMode | str = RoundingMode.ROUND,
             overflow: OverflowMode | str = OverflowMode.NONE,
             integer_bits: int = 15, signed: bool = True) -> np.ndarray:
    """Convenience one-shot quantization.

    Parameters
    ----------
    values:
        Input samples (any shape).
    fractional_bits:
        Number of fractional bits of the target format.
    rounding, overflow:
        Quantization behaviour, see :class:`RoundingMode` and
        :class:`OverflowMode`.
    integer_bits, signed:
        Integer part of the target format; only relevant when overflow
        handling is enabled.
    """
    quantizer = Quantizer(
        QFormat(integer_bits, fractional_bits, signed),
        rounding=RoundingMode(rounding),
        overflow=OverflowMode(overflow),
    )
    return quantizer.quantize(values)
