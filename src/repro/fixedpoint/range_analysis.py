"""Dynamic-range analysis: interval and affine arithmetic over an SFG.

The paper separates the two halves of fixed-point refinement: the *integer*
part of each word is sized from the signal's dynamic range (using interval
arithmetic, affine arithmetic or statistical range analysis — Section I),
while the *fractional* part is sized from the accuracy analysis that the
rest of this library implements.  This module supplies the range half so
that a complete word-length (integer + fractional bits) can be derived for
every node of a signal-flow graph:

* :class:`Interval` — classical interval arithmetic (fast, conservative,
  loses correlation between re-convergent paths);
* :class:`AffineForm` — affine arithmetic: ranges are expressed as a
  central value plus a linear combination of noise symbols, so perfectly
  correlated contributions can cancel (``x - x = 0``), which tightens the
  bounds of adder trees considerably;
* :func:`analyze_ranges` — propagation of either representation through an
  acyclic SFG.  LTI blocks use the worst-case (L1-norm) gain of their
  impulse response, which is exact for adversarial inputs; adders and
  constant gains use the interval / affine rules directly.
* :func:`integer_bits_for_range` / :func:`assign_integer_bits` — convert
  ranges into the integer bit counts needed to avoid overflow.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

import numpy as np

from repro.sfg.graph import SignalFlowGraph
from repro.sfg.nodes import (
    AddNode,
    DelayNode,
    DownsampleNode,
    GainNode,
    InputNode,
    Node,
    OutputNode,
    UpsampleNode,
    _LtiMixin,
)


# ----------------------------------------------------------------------
# Interval arithmetic
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Interval:
    """A closed interval ``[low, high]``."""

    low: float
    high: float

    def __post_init__(self) -> None:
        if self.high < self.low:
            raise ValueError(f"empty interval [{self.low}, {self.high}]")

    @classmethod
    def point(cls, value: float) -> "Interval":
        """The degenerate interval containing a single value."""
        return cls(value, value)

    @classmethod
    def symmetric(cls, magnitude: float) -> "Interval":
        """The interval ``[-magnitude, +magnitude]``."""
        magnitude = abs(magnitude)
        return cls(-magnitude, magnitude)

    @property
    def width(self) -> float:
        """Length of the interval."""
        return self.high - self.low

    @property
    def magnitude(self) -> float:
        """Largest absolute value contained in the interval."""
        return max(abs(self.low), abs(self.high))

    def __add__(self, other: "Interval") -> "Interval":
        if not isinstance(other, Interval):
            return NotImplemented
        return Interval(self.low + other.low, self.high + other.high)

    def __sub__(self, other: "Interval") -> "Interval":
        if not isinstance(other, Interval):
            return NotImplemented
        return Interval(self.low - other.high, self.high - other.low)

    def __neg__(self) -> "Interval":
        return Interval(-self.high, -self.low)

    def scaled(self, gain: float) -> "Interval":
        """The interval multiplied by a constant."""
        a, b = self.low * gain, self.high * gain
        return Interval(min(a, b), max(a, b))

    def __mul__(self, other):
        if np.isscalar(other):
            return self.scaled(float(other))
        if isinstance(other, Interval):
            candidates = [self.low * other.low, self.low * other.high,
                          self.high * other.low, self.high * other.high]
            return Interval(min(candidates), max(candidates))
        return NotImplemented

    __rmul__ = __mul__

    def hull(self, other: "Interval") -> "Interval":
        """Smallest interval containing both operands."""
        return Interval(min(self.low, other.low), max(self.high, other.high))

    def contains(self, value: float) -> bool:
        """Whether ``value`` lies in the interval."""
        return self.low <= value <= self.high

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Interval({self.low:.6g}, {self.high:.6g})"


# ----------------------------------------------------------------------
# Affine arithmetic
# ----------------------------------------------------------------------
_symbol_counter = itertools.count(1)


def fresh_symbol() -> int:
    """Allocate a new affine noise-symbol identifier."""
    return next(_symbol_counter)


@dataclass(frozen=True)
class AffineForm:
    """An affine form ``x0 + sum_i x_i * eps_i`` with ``eps_i in [-1, 1]``.

    Attributes
    ----------
    center:
        Central value ``x0``.
    terms:
        Mapping from symbol identifier to partial deviation ``x_i``.
    """

    center: float
    terms: dict = field(default_factory=dict)

    @classmethod
    def from_interval(cls, interval: Interval,
                      symbol: int | None = None) -> "AffineForm":
        """Affine form spanning an interval with one fresh symbol."""
        if symbol is None:
            symbol = fresh_symbol()
        center = (interval.low + interval.high) / 2.0
        radius = interval.width / 2.0
        terms = {symbol: radius} if radius > 0.0 else {}
        return cls(center=center, terms=terms)

    @classmethod
    def constant(cls, value: float) -> "AffineForm":
        """An exactly known value."""
        return cls(center=float(value), terms={})

    @property
    def radius(self) -> float:
        """Total deviation ``sum_i |x_i|``."""
        return float(sum(abs(v) for v in self.terms.values()))

    def to_interval(self) -> Interval:
        """Enclosing interval of the affine form."""
        return Interval(self.center - self.radius, self.center + self.radius)

    def __add__(self, other: "AffineForm") -> "AffineForm":
        if not isinstance(other, AffineForm):
            return NotImplemented
        terms = dict(self.terms)
        for symbol, value in other.terms.items():
            terms[symbol] = terms.get(symbol, 0.0) + value
        terms = {s: v for s, v in terms.items() if v != 0.0}
        return AffineForm(self.center + other.center, terms)

    def __sub__(self, other: "AffineForm") -> "AffineForm":
        if not isinstance(other, AffineForm):
            return NotImplemented
        return self + other.scaled(-1.0)

    def scaled(self, gain: float) -> "AffineForm":
        """The affine form multiplied by a constant."""
        return AffineForm(self.center * gain,
                          {s: v * gain for s, v in self.terms.items()})

    def widened(self, extra_radius: float) -> "AffineForm":
        """Add an independent deviation of the given radius (new symbol)."""
        if extra_radius == 0.0:
            return self
        terms = dict(self.terms)
        terms[fresh_symbol()] = abs(extra_radius)
        return AffineForm(self.center, terms)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"AffineForm(center={self.center:.6g}, "
                f"radius={self.radius:.6g}, symbols={len(self.terms)})")


# ----------------------------------------------------------------------
# Propagation through a signal-flow graph
# ----------------------------------------------------------------------
def _l1_gain(node: Node) -> float:
    """Worst-case (L1-norm) gain of an LTI node's impulse response."""
    impulse = node._effective_transfer_function().impulse_response()
    return float(np.sum(np.abs(impulse)))


def _propagate_interval(node: Node, inputs: list[Interval]) -> Interval:
    if isinstance(node, OutputNode):
        return inputs[0]
    if isinstance(node, AddNode):
        total = Interval.point(0.0)
        for sign, value in zip(node.signs, inputs):
            total = total + value.scaled(sign)
        return total
    if isinstance(node, GainNode):
        return inputs[0].scaled(node._quantized_gain())
    if isinstance(node, (DelayNode, DownsampleNode, UpsampleNode)):
        if isinstance(node, UpsampleNode):
            return inputs[0].hull(Interval.point(0.0))
        return inputs[0]
    if isinstance(node, _LtiMixin):
        magnitude = inputs[0].magnitude * _l1_gain(node)
        return Interval.symmetric(magnitude)
    raise NotImplementedError(
        f"range analysis does not support node type {type(node).__name__}")


def _propagate_affine(node: Node, inputs: list[AffineForm]) -> AffineForm:
    if isinstance(node, OutputNode):
        return inputs[0]
    if isinstance(node, AddNode):
        total = AffineForm.constant(0.0)
        for sign, value in zip(node.signs, inputs):
            total = total + value.scaled(sign)
        return total
    if isinstance(node, GainNode):
        return inputs[0].scaled(node._quantized_gain())
    if isinstance(node, (DelayNode, DownsampleNode, UpsampleNode)):
        if isinstance(node, UpsampleNode):
            # The zero samples pull the range towards zero; keep the hull.
            interval = inputs[0].to_interval().hull(Interval.point(0.0))
            return AffineForm.from_interval(interval)
        return inputs[0]
    if isinstance(node, _LtiMixin):
        # A filter mixes samples from different times: temporal correlation
        # is not representable by instantaneous affine symbols, so the
        # worst-case L1 bound is applied and the result gets a fresh symbol.
        magnitude = inputs[0].to_interval().magnitude * _l1_gain(node)
        return AffineForm.from_interval(Interval.symmetric(magnitude))
    raise NotImplementedError(
        f"range analysis does not support node type {type(node).__name__}")


def analyze_ranges(graph: SignalFlowGraph, input_ranges: dict,
                   method: str = "interval") -> dict:
    """Propagate value ranges from the inputs to every node of the graph.

    Parameters
    ----------
    graph:
        Validated acyclic signal-flow graph.
    input_ranges:
        Mapping from input-node name to an :class:`Interval` (or a
        ``(low, high)`` tuple) describing the input's dynamic range.
    method:
        ``interval`` (default) or ``affine``.

    Returns
    -------
    dict
        Mapping from node name to its :class:`Interval` range (affine forms
        are collapsed to their enclosing interval in the result).
    """
    if method not in ("interval", "affine"):
        raise ValueError(f"unknown range-analysis method {method!r}")
    graph.validate()
    missing = set(graph.input_names()) - set(input_ranges)
    if missing:
        raise ValueError(f"missing range for input node(s) {sorted(missing)}")

    normalized = {}
    for name, value in input_ranges.items():
        normalized[name] = value if isinstance(value, Interval) \
            else Interval(float(value[0]), float(value[1]))

    values: dict[str, object] = {}
    for name in graph.topological_order():
        node = graph.node(name)
        if isinstance(node, InputNode):
            interval = normalized[name]
            values[name] = (interval if method == "interval"
                            else AffineForm.from_interval(interval))
            continue
        inputs = [values[edge.source] for edge in graph.predecessors(name)]
        if method == "interval":
            values[name] = _propagate_interval(node, inputs)
        else:
            values[name] = _propagate_affine(node, inputs)

    result: dict[str, Interval] = {}
    for name, value in values.items():
        result[name] = value if isinstance(value, Interval) else value.to_interval()
    return result


# ----------------------------------------------------------------------
# Integer word-length assignment
# ----------------------------------------------------------------------
def integer_bits_for_range(interval: Interval, signed: bool = True) -> int:
    """Number of integer bits needed to represent ``interval`` without overflow."""
    magnitude = interval.magnitude
    if magnitude == 0.0:
        return 0
    bits = 0
    while (2.0 ** bits) < magnitude or \
            (not signed and (2.0 ** bits) == magnitude):
        bits += 1
    if signed and (2.0 ** bits) == magnitude and interval.high >= magnitude:
        # +2^k itself is not representable in a signed format with k
        # integer bits (max is 2^k - step); round up.
        bits += 1
    return bits


def assign_integer_bits(graph: SignalFlowGraph, input_ranges: dict,
                        method: str = "interval",
                        margin_bits: int = 0,
                        signed: bool = True) -> dict:
    """Integer bit counts for every node, derived from range analysis.

    Parameters
    ----------
    graph, input_ranges, method:
        Forwarded to :func:`analyze_ranges`.
    margin_bits:
        Extra guard bits added to every node (defensive headroom).
    signed:
        Forwarded to :func:`integer_bits_for_range`.  Pass ``False``
        for unsigned datapaths: the negative boundary ``-2**k`` that a
        signed format represents for free is then unavailable, so
        power-of-two magnitudes cost one more integer bit.
    """
    ranges = analyze_ranges(graph, input_ranges, method=method)
    return {name: integer_bits_for_range(interval, signed=signed)
            + margin_bits
            for name, interval in ranges.items()}


def apply_integer_bits(graph: SignalFlowGraph, integer_bits: dict) -> None:
    """Pin per-signal integer widths onto the graph's quantization specs.

    ``integer_bits`` is typically the output of
    :func:`assign_integer_bits`; names that are not quantized nodes of
    ``graph`` are ignored (range analysis also reports inputs and
    outputs, which carry no quantizer).  The plan layer folds the pinned
    widths into its quantization signature, so a recompiled or refreshed
    plan picks them up like any other spec change.
    """
    for name, bits in integer_bits.items():
        node = graph.nodes.get(name)
        if node is None or not hasattr(node, "quantization"):
            continue
        node.quantization = node.quantization.with_integer_bits(int(bits))


def simulate_ranges(graph: SignalFlowGraph, stimulus: dict,
                    mode: str = "double") -> dict:
    """Measured per-node ranges for a concrete stimulus (for comparison).

    Range analysis is conservative by construction; this helper runs the
    executor once and reports the observed min/max of every node signal so
    that tests and examples can quantify the pessimism.
    """
    from repro.sfg.executor import SfgExecutor

    result = SfgExecutor(graph).run(stimulus, mode=mode, keep_signals=True)
    return {name: Interval(float(np.min(signal)), float(np.max(signal)))
            for name, signal in result.signals.items()}
