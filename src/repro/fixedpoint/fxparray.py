"""Integer-mantissa fixed-point arrays.

:class:`FxpArray` stores samples as integer mantissas together with their
:class:`~repro.fixedpoint.qformat.QFormat`.  Arithmetic follows the usual
fixed-point hardware semantics:

* addition aligns the operands on the finer grid and adds mantissas
  exactly;
* multiplication produces the full-precision product (fractional bits add
  up);
* :meth:`FxpArray.requantize` reduces the precision with an explicit
  rounding / overflow behaviour, which is where quantization error is
  introduced.

The simulation engine of :mod:`repro.analysis` mostly works on plain float
arrays (quantized values are exactly representable in doubles for the word
lengths of interest), but :class:`FxpArray` provides bit-exact semantics
for unit tests, for the examples, and as a reference implementation of the
fixed-point operators.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fixedpoint.qformat import QFormat
from repro.fixedpoint.quantizer import (
    OverflowMode,
    Quantizer,
    RoundingMode,
    round_half_away,
)


@dataclass(frozen=True)
class FxpArray:
    """A fixed-point array with integer mantissa storage.

    Attributes
    ----------
    mantissa:
        Integer mantissas (``numpy.int64``).
    fmt:
        Fixed-point format shared by every element.
    """

    mantissa: np.ndarray
    fmt: QFormat

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_float(cls, values: np.ndarray, fmt: QFormat,
                   rounding: RoundingMode = RoundingMode.ROUND,
                   overflow: OverflowMode = OverflowMode.SATURATE) -> "FxpArray":
        """Quantize floating-point ``values`` into the given format."""
        quantizer = Quantizer(fmt, rounding=rounding, overflow=overflow)
        quantized = quantizer.quantize(np.asarray(values, dtype=float))
        mantissa = np.round(quantized / fmt.step).astype(np.int64)
        return cls(mantissa=mantissa, fmt=fmt)

    @classmethod
    def zeros(cls, shape, fmt: QFormat) -> "FxpArray":
        """An all-zero fixed-point array of the given shape and format."""
        return cls(mantissa=np.zeros(shape, dtype=np.int64), fmt=fmt)

    # ------------------------------------------------------------------
    # Conversion
    # ------------------------------------------------------------------
    def to_float(self) -> np.ndarray:
        """Return the represented values as ``float64``."""
        return self.mantissa.astype(float) * self.fmt.step

    @property
    def shape(self):
        """Shape of the underlying array."""
        return self.mantissa.shape

    def __len__(self) -> int:
        return len(self.mantissa)

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def _aligned(self, other: "FxpArray") -> tuple[np.ndarray, np.ndarray, QFormat]:
        """Align two arrays on the format able to hold their exact sum."""
        frac = max(self.fmt.fractional_bits, other.fmt.fractional_bits)
        integer = max(self.fmt.integer_bits, other.fmt.integer_bits) + 1
        signed = self.fmt.signed or other.fmt.signed
        out_fmt = QFormat(integer, frac, signed)
        self_mant = self.mantissa.astype(np.int64) << (frac - self.fmt.fractional_bits)
        other_mant = other.mantissa.astype(np.int64) << (frac - other.fmt.fractional_bits)
        return self_mant, other_mant, out_fmt

    def __add__(self, other: "FxpArray") -> "FxpArray":
        if not isinstance(other, FxpArray):
            return NotImplemented
        a, b, fmt = self._aligned(other)
        return FxpArray(mantissa=a + b, fmt=fmt)

    def __sub__(self, other: "FxpArray") -> "FxpArray":
        if not isinstance(other, FxpArray):
            return NotImplemented
        a, b, fmt = self._aligned(other)
        return FxpArray(mantissa=a - b, fmt=fmt)

    def __neg__(self) -> "FxpArray":
        fmt = QFormat(self.fmt.integer_bits + (0 if self.fmt.signed else 1),
                      self.fmt.fractional_bits, True)
        return FxpArray(mantissa=-self.mantissa, fmt=fmt)

    def __mul__(self, other: "FxpArray") -> "FxpArray":
        if not isinstance(other, FxpArray):
            return NotImplemented
        fmt = QFormat(self.fmt.integer_bits + other.fmt.integer_bits + 1,
                      self.fmt.fractional_bits + other.fmt.fractional_bits,
                      self.fmt.signed or other.fmt.signed)
        return FxpArray(mantissa=self.mantissa * other.mantissa, fmt=fmt)

    def scale_by_constant(self, constant: float, constant_fmt: QFormat,
                          rounding: RoundingMode = RoundingMode.ROUND) -> "FxpArray":
        """Multiply by a quantized constant (full-precision product)."""
        const = FxpArray.from_float(np.array([constant]), constant_fmt,
                                    rounding=rounding)
        fmt = QFormat(self.fmt.integer_bits + constant_fmt.integer_bits + 1,
                      self.fmt.fractional_bits + constant_fmt.fractional_bits,
                      True)
        return FxpArray(mantissa=self.mantissa * int(const.mantissa[0]), fmt=fmt)

    # ------------------------------------------------------------------
    # Precision management
    # ------------------------------------------------------------------
    def requantize(self, fmt: QFormat,
                   rounding: RoundingMode = RoundingMode.ROUND,
                   overflow: OverflowMode = OverflowMode.NONE) -> "FxpArray":
        """Re-quantize into a (typically narrower) target format."""
        shift = self.fmt.fractional_bits - fmt.fractional_bits
        if shift <= 0:
            # Precision increases (or stays the same): exact.
            mantissa = self.mantissa.astype(np.int64) << (-shift)
        else:
            scaled = self.mantissa.astype(float) / (2 ** shift)
            if rounding is RoundingMode.TRUNCATE:
                mantissa = np.floor(scaled)
            elif rounding is RoundingMode.ROUND:
                mantissa = round_half_away(scaled)
            else:
                mantissa = np.rint(scaled)
            mantissa = mantissa.astype(np.int64)
        if overflow is not OverflowMode.NONE:
            lo, hi = fmt.min_mantissa, fmt.max_mantissa
            if overflow is OverflowMode.SATURATE:
                mantissa = np.clip(mantissa, lo, hi)
            else:
                span = hi - lo + 1
                mantissa = lo + np.mod(mantissa - lo, span)
        return FxpArray(mantissa=mantissa, fmt=fmt)

    # ------------------------------------------------------------------
    # Comparisons / diagnostics
    # ------------------------------------------------------------------
    def error_vs(self, reference: np.ndarray) -> np.ndarray:
        """Difference between this array and a floating-point reference."""
        return self.to_float() - np.asarray(reference, dtype=float)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FxpArray(shape={self.mantissa.shape}, fmt={self.fmt})"
