"""Result containers and textual reports for accuracy evaluations.

These dataclasses carry the outcome of one estimation (or one
simulation-vs-estimation comparison) and know how to render themselves as
the plain-text rows used by the benchmark harnesses to regenerate the
paper's tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.metrics import ed_deviation, equivalent_bit_error, is_sub_one_bit


@dataclass
class EstimateResult:
    """Outcome of one analytical estimation.

    Attributes
    ----------
    method:
        Name of the estimation method (``psd``, ``psd_tracked``, ``flat``,
        ``agnostic``).
    power:
        Estimated output noise power ``E[e^2]``.
    mean:
        Estimated output noise mean.
    variance:
        Estimated output noise variance.
    n_psd:
        Number of PSD bins used (``None`` for moment-only methods).
    elapsed_seconds:
        Wall-clock time of the estimation, when measured.
    """

    method: str
    power: float
    mean: float
    variance: float
    n_psd: int | None = None
    elapsed_seconds: float | None = None


@dataclass
class AccuracyReport:
    """Comparison of one estimate against the simulation reference.

    Attributes
    ----------
    system:
        Human-readable name of the system under evaluation.
    simulated_power:
        Ground-truth output error power from simulation.
    estimate:
        The analytical estimate being compared.
    metadata:
        Free-form experiment parameters (word lengths, sample counts, ...).
    """

    system: str
    simulated_power: float
    estimate: EstimateResult
    metadata: dict = field(default_factory=dict)

    @property
    def ed(self) -> float:
        """MSE deviation ``Ed`` (Eq. 15), as a fraction."""
        return ed_deviation(self.simulated_power, self.estimate.power)

    @property
    def ed_percent(self) -> float:
        """``Ed`` in percent, the unit used in the paper's tables."""
        return 100.0 * self.ed

    @property
    def equivalent_bits(self) -> float:
        """Estimation error expressed in equivalent bits."""
        return equivalent_bit_error(self.simulated_power, self.estimate.power)

    @property
    def sub_one_bit(self) -> bool:
        """Whether the estimate meets the paper's sub-one-bit objective."""
        return is_sub_one_bit(self.ed)

    def describe(self) -> str:
        """One-line textual summary."""
        return (f"{self.system}: method={self.estimate.method} "
                f"sim={self.simulated_power:.4e} est={self.estimate.power:.4e} "
                f"Ed={self.ed_percent:+.2f}% "
                f"({'sub-one-bit' if self.sub_one_bit else 'OVER one bit'})")
