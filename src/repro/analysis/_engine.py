"""Shared graph-walking machinery of the analytical evaluation engines.

All three analytical methods traverse the acyclic signal-flow graph in
topological order, maintaining one noise representation per node output
(moments, PSD, or per-source tracked spectra) and injecting each node's own
quantization-noise source at its output.  The only thing that changes
between methods is the *representation* and its propagation rules, which
are already encapsulated in the node classes; this module factors the
traversal itself.
"""

from __future__ import annotations

from typing import Callable

from repro.fixedpoint.noise_model import NoiseStats
from repro.psd.spectrum import DiscretePsd
from repro.psd.propagation import TrackedSpectrum
from repro.sfg.graph import SignalFlowGraph
from repro.sfg.nodes import IirNode, InputNode, Node


def node_noise_sources(graph: SignalFlowGraph) -> dict[str, NoiseStats]:
    """Moments of the noise source generated at each node (if any)."""
    sources: dict[str, NoiseStats] = {}
    for name, node in graph.nodes.items():
        stats = node.generated_noise()
        if stats.variance > 0.0 or stats.mean != 0.0:
            sources[name] = stats
    return sources


def shaped_own_noise_psd(node: Node, stats: NoiseStats,
                         n_bins: int) -> DiscretePsd:
    """PSD of a node's own noise source as seen at the node output.

    For most nodes the quantizer sits directly at the output, so the noise
    is white there.  For IIR blocks the quantizer is inside the recursion
    and its noise is shaped by ``1 / A(z)`` before reaching the output.
    """
    psd = DiscretePsd.white(stats, n_bins)
    if isinstance(node, IirNode):
        response = node.noise_shaping_function().frequency_response(n_bins)
        psd = psd.filtered(response)
    return psd


def shaped_own_noise_stats(node: Node, stats: NoiseStats) -> NoiseStats:
    """Moments of a node's own noise source as seen at the node output.

    The PSD-agnostic rule: the white source is propagated through the
    shaping function using only the impulse-response energy and the DC
    gain.
    """
    if isinstance(node, IirNode):
        shaping = node.noise_shaping_function()
        return NoiseStats(mean=stats.mean * shaping.coefficient_sum(),
                          variance=stats.variance * shaping.energy())
    return stats


def shaped_own_noise_tracked(node: Node, stats: NoiseStats,
                             n_bins: int) -> TrackedSpectrum:
    """Tracked spectrum of a node's own noise source at the node output."""
    tracked = TrackedSpectrum.from_source(node.name, stats, n_bins)
    if isinstance(node, IirNode):
        response = node.noise_shaping_function().frequency_response(n_bins)
        tracked = tracked.filtered(response)
    return tracked


def walk(graph: SignalFlowGraph, n_bins: int,
         zero: Callable[[Node], object],
         propagate: Callable[[Node, list], object],
         inject: Callable[[Node, NoiseStats, object], object],
         ) -> dict[str, object]:
    """Generic noise-propagation traversal.

    Parameters
    ----------
    graph:
        Validated acyclic signal-flow graph.
    n_bins:
        Number of PSD bins (unused by moment-only representations but part
        of the shared signature).
    zero:
        ``zero(node)`` returns the representation of "no noise" for a node
        with no predecessors.
    propagate:
        ``propagate(node, input_representations)`` applies the node's
        propagation rule.
    inject:
        ``inject(node, stats, representation)`` adds the node's own noise
        source (already known to be non-trivial) to the representation at
        the node output.

    Returns
    -------
    dict
        Mapping from node name to the noise representation at its output.
    """
    graph.validate()
    order = graph.topological_order()
    results: dict[str, object] = {}
    for name in order:
        node = graph.node(name)
        if isinstance(node, InputNode) or node.num_inputs == 0:
            representation = zero(node)
        else:
            inputs = [results[edge.source] for edge in graph.predecessors(name)]
            representation = propagate(node, inputs)
        own = node.generated_noise()
        if own.variance > 0.0 or own.mean != 0.0:
            representation = inject(node, own, representation)
        results[name] = representation
    return results
