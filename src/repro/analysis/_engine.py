"""Shared graph-walking machinery of the analytical evaluation engines.

All three analytical methods traverse the acyclic signal-flow graph in
topological order, maintaining one noise representation per node output
(moments, PSD, or per-source tracked spectra) and injecting each node's own
quantization-noise source at its output.  The only thing that changes
between methods is the *representation* and its propagation rules, which
are already encapsulated in the node classes; this module factors the
traversal itself.

The traversal runs over a :class:`~repro.sfg.plan.CompiledPlan`:
validation, topological ordering and noise-source discovery happen once at
plan compilation, and each walk simply replays the index-based schedule.
Per-node frequency responses (block responses and IIR noise-shaping
responses) come from the plan's memoized cache, so repeated evaluations of
the same graph — the word-length optimizer's inner loop, the execution-time
benchmark — skip every FFT-sized computation after the first call.

Incremental re-evaluation
-------------------------
On top of the response cache, each plan carries one :class:`NoiseMemo`: a
pull-based cache of the *propagated* per-node representations themselves,
one channel per ``(representation, n_bins)``.  A pull first folds pending
spec/coefficient mutations into the plan (``plan.refresh()``, which stamps
the edited steps with a new plan epoch), then recomputes only the
downstream cone of the steps dirtied since the channel last synced,
reusing every other node's cached value as-is.  Because a cone recompute
replays exactly the same operations the full walk would, on bit-identical
cached inputs, the result is bit-identical to a cold walk — the
``incremental`` check of :func:`repro.verify.differential.verify_graph`
fuzzes that equivalence, and ``ARCHITECTURE.md`` spells out the exactness
argument.  This is what turns the word-length optimizer's one-node
candidate edits from O(nodes) walks into O(depth) cone updates.

The batched walks pull the scalar memo as their baseline: only the steps
whose stacked word lengths deviate from the plan's live configuration —
plus their downstream cone — are recomputed with the vectorized rules;
every other step broadcasts its cached scalar value across the config
axis (bit-identical by the batched-walk row contract pinned in
``tests/test_analysis_batch.py``).

Memoization is on by default and exact, so there is normally no reason to
turn it off; :func:`memoization_disabled` exists for honest cold-cache
baselines (timing harnesses, the differential check's reference side) and
restores the previous state on exit.  The generic :func:`walk` with
user-supplied callbacks is never memoized: arbitrary callbacks are opaque,
so there is no sound cache key for them.

Returned representations are shared with the memo: treat them as
immutable (which every representation class already is by convention).
"""

from __future__ import annotations

from collections import OrderedDict
from contextlib import contextmanager
from functools import partial
from typing import Callable

import numpy as np

from repro.fixedpoint.noise_model import NoiseStats
from repro.obs import MetricsRegistry, metric_inc, span
from repro.psd.batch import PsdStack
from repro.psd.spectrum import DiscretePsd
from repro.psd.propagation import TrackedSpectrum
from repro.sfg.graph import SignalFlowGraph
from repro.sfg.nodes import (
    AddNode,
    DownsampleNode,
    IirNode,
    Node,
    OutputNode,
    UpsampleNode,
    _LtiMixin,
)
from repro.sfg.plan import CompiledPlan, ConfigStack, compile_plan, walk_plan


def node_noise_sources(system: SignalFlowGraph | CompiledPlan
                       ) -> dict[str, NoiseStats]:
    """Moments of the noise source generated at each node (if any)."""
    plan = compile_plan(system)
    return {step.name: step.noise for step in plan.noise_steps}


# ----------------------------------------------------------------------
# Memoization switch
# ----------------------------------------------------------------------
# A stack rather than a flag so disabled regions nest; the top entry is
# the current state.
_MEMO_STATE: list[bool] = [True]


def memoization_enabled() -> bool:
    """Whether walks may pull from (and update) the per-plan NoiseMemo."""
    return _MEMO_STATE[-1]


@contextmanager
def memoization_disabled():
    """Force full cold walks for the duration of the block.

    Used by the honest baselines: the differential ``incremental`` check's
    reference side, the timing harnesses that must not measure cache hits,
    and the optimizer's ``sequential`` mode.  Results are bit-identical
    either way; only the amount of recomputation differs.
    """
    _MEMO_STATE.append(False)
    try:
        yield
    finally:
        _MEMO_STATE.pop()


# ----------------------------------------------------------------------
# Per-step evaluation rules (shared by cold walks and memo pulls)
# ----------------------------------------------------------------------
def _psd_inputs(step, values) -> list:
    """Predecessor PSDs of a step, with fanout-tap noise injected.

    A tapped edge re-quantizes the value it carries, so its white PQN
    noise enters *before* the node's propagation rule — an IIR target
    shapes it with the full block transfer function, not the internal
    noise-shaping response.  No-op taps (``tap.noise is None``) are
    skipped entirely, keeping tap-free plans bitwise untouched.
    """
    inputs = [values[i] for i in step.predecessors]
    taps = step.edge_taps
    if taps is not None:
        for port, tap in enumerate(taps):
            if tap is not None and tap.noise is not None:
                psd = inputs[port]
                inputs[port] = psd + DiscretePsd.white(tap.noise, psd.n_bins)
    return inputs


def _psd_step(plan: CompiledPlan, n_psd: int, step, values) -> DiscretePsd:
    node = step.node
    if step.is_source:
        acc = DiscretePsd.zero(n_psd)
    elif isinstance(node, _LtiMixin):
        # Same rule as Node.propagate_psd, but the block response is
        # sampled once per (node, bins) and memoized on the plan.  The
        # input PSD may live on fewer bins than n_psd when the signal
        # was decimated upstream.
        (psd,) = _psd_inputs(step, values)
        acc = psd.filtered(plan.block_response(step, psd.n_bins))
    else:
        acc = node.propagate_psd(_psd_inputs(step, values), n_psd)
    if step.noise is not None:
        acc = acc + plan.shaped_noise_psd(step, acc.n_bins)
    return acc


def _stats_inputs(step, values) -> list:
    inputs = [values[i] for i in step.predecessors]
    taps = step.edge_taps
    if taps is not None:
        for port, tap in enumerate(taps):
            if tap is not None and tap.noise is not None:
                inputs[port] = inputs[port] + tap.noise
    return inputs


def _stats_step(plan: CompiledPlan, step, values) -> NoiseStats:
    node = step.node
    if step.is_source:
        acc = NoiseStats(0.0, 0.0)
    elif isinstance(node, _LtiMixin):
        (stats,) = _stats_inputs(step, values)
        energy, dc = plan.block_gains(step)
        acc = NoiseStats(mean=stats.mean * dc,
                         variance=stats.variance * energy)
    else:
        acc = node.propagate_stats(_stats_inputs(step, values))
    if step.noise is not None:
        acc = acc + plan.shaped_noise_stats(step)
    return acc


def _tracked_inputs(step, values, n_psd: int) -> list:
    inputs = [values[i] for i in step.predecessors]
    taps = step.edge_taps
    if taps is not None:
        for port, tap in enumerate(taps):
            if tap is not None and tap.noise is not None:
                inputs[port] = inputs[port] + TrackedSpectrum.from_source(
                    tap.key, tap.noise, n_psd)
    return inputs


def _tracked_step(plan: CompiledPlan, n_psd: int, step,
                  values) -> TrackedSpectrum:
    node = step.node
    if step.is_source:
        acc = TrackedSpectrum.zero(n_psd)
    elif isinstance(node, _LtiMixin):
        (tracked,) = _tracked_inputs(step, values, n_psd)
        acc = tracked.filtered(plan.block_response(step, n_psd))
    else:
        acc = node.propagate_tracked(_tracked_inputs(step, values, n_psd),
                                     n_psd)
    if step.noise is not None:
        acc = acc + plan.shaped_noise_tracked(step, n_psd)
    return acc


def _full_walk(plan: CompiledPlan, compute_step) -> list:
    """Cold walk: evaluate every step, no cache involved."""
    plan.refresh()
    with span("analysis.walk", kind="uncached", steps=len(plan.steps)):
        values: list = [None] * len(plan.steps)
        for step in plan.steps:
            values[step.index] = compute_step(step, values)
    return values


# ----------------------------------------------------------------------
# The per-plan memo
# ----------------------------------------------------------------------
class _Channel:
    """One representation's cached per-step values and their sync epoch."""

    __slots__ = ("values", "epoch")

    def __init__(self, values: list, epoch: int):
        self.values = values
        self.epoch = epoch


class NoiseMemo:
    """Pull-based cache of propagated per-node noise representations.

    One memo lives on each plan (see :func:`plan_memo`); channels are
    keyed by representation and bin count, e.g. ``("psd", 512)``.  The
    counters make the work split observable: ``full_walks`` counts cold
    channel builds, ``cone_recomputes`` counts pulls that re-evaluated a
    dirty cone, and ``steps_recomputed`` / ``steps_reused`` count the
    per-step work either way — the word-length optimizer surfaces their
    deltas in :class:`~repro.systems.wordlength.WordLengthResult`.

    The counters are backed by a private (always-on) metrics registry;
    the attribute names remain the public surface as read-only views,
    and every increment is mirrored into the process-wide observability
    session (`repro.obs`) under ``memo.*`` when one is enabled.
    """

    #: Bound on the flat method's path-function entries (one entry per
    #: distinct (output, sources, coefficient fingerprint) seen).
    PATH_CACHE_LIMIT = 32

    def __init__(self, plan: CompiledPlan):
        self.plan = plan
        self._channels: dict[tuple, _Channel] = {}
        # Symbolic path functions of the flat method, LRU-bounded: they
        # depend only on the plan's coefficient fingerprint, not on the
        # data-path word lengths, so the optimizer's requantize loop hits
        # one entry over and over.
        self.path_functions: "OrderedDict[tuple, dict]" = OrderedDict()
        self.metrics = MetricsRegistry()
        self._full_walks = self.metrics.counter("memo.full_walks")
        self._cone_recomputes = self.metrics.counter("memo.cone_recomputes")
        self._steps_recomputed = self.metrics.counter("memo.steps_recomputed")
        self._steps_reused = self.metrics.counter("memo.steps_reused")

    @property
    def full_walks(self) -> int:
        return self._full_walks.value

    @property
    def cone_recomputes(self) -> int:
        return self._cone_recomputes.value

    @property
    def steps_recomputed(self) -> int:
        return self._steps_recomputed.value

    @property
    def steps_reused(self) -> int:
        return self._steps_reused.value

    def counters(self) -> dict[str, int]:
        """Snapshot of the work counters (cheap, copy-safe)."""
        return {"full_walks": self.full_walks,
                "cone_recomputes": self.cone_recomputes,
                "steps_recomputed": self.steps_recomputed,
                "steps_reused": self.steps_reused}

    def _pull(self, key: tuple, compute_step) -> list:
        """Per-step values of one channel, recomputing only dirty cones.

        Exception-safe: values are computed into a private list and
        committed (together with the sync epoch) only when the whole
        cone succeeded, so a failing walk — e.g. a multirate graph
        rejecting tracked propagation — never half-updates the channel.
        """
        plan = self.plan
        plan.refresh()
        channel = self._channels.get(key)
        if channel is None:
            with span("analysis.walk", kind="cold", channel=key[0],
                      steps=len(plan.steps)):
                values: list = [None] * len(plan.steps)
                for step in plan.steps:
                    values[step.index] = compute_step(step, values)
            self._channels[key] = _Channel(values, plan.epoch)
            self._full_walks.inc()
            self._steps_recomputed.inc(len(plan.steps))
            metric_inc("memo.full_walks")
            metric_inc("memo.steps_recomputed", len(plan.steps))
            return values
        dirty = plan.steps_dirty_since(channel.epoch)
        if len(dirty):
            cone = plan.downstream_cone(dirty)
            with span("analysis.cone_pull", channel=key[0], cone=len(cone),
                      steps=len(plan.steps)):
                values = list(channel.values)
                for index in cone:
                    values[index] = compute_step(plan.steps[index], values)
            channel.values = values
            self._cone_recomputes.inc()
            self._steps_recomputed.inc(len(cone))
            self._steps_reused.inc(len(plan.steps) - len(cone))
            metric_inc("memo.cone_recomputes")
            metric_inc("memo.steps_recomputed", len(cone))
            metric_inc("memo.steps_reused", len(plan.steps) - len(cone))
        channel.epoch = plan.epoch
        return channel.values

    def psd(self, n_psd: int) -> list:
        """Per-step :class:`DiscretePsd` values (index-aligned)."""
        return self._pull(("psd", n_psd), partial(_psd_step, self.plan, n_psd))

    def stats(self) -> list:
        """Per-step :class:`NoiseStats` values (index-aligned)."""
        return self._pull(("stats",), partial(_stats_step, self.plan))

    def tracked(self, n_psd: int) -> list:
        """Per-step :class:`TrackedSpectrum` values (index-aligned)."""
        return self._pull(("tracked", n_psd),
                          partial(_tracked_step, self.plan, n_psd))


_MEMO_ATTRIBUTE = "_noise_memo"


def plan_memo(system: SignalFlowGraph | CompiledPlan) -> NoiseMemo:
    """The (per-plan, lazily created) :class:`NoiseMemo` of a system.

    The memo lives on the plan object, so everything evaluating the same
    graph — optimizer rounds, Pareto budgets, campaign jobs — shares one
    cache, and it is reclaimed together with the plan.
    """
    plan = compile_plan(system)
    memo = getattr(plan, _MEMO_ATTRIBUTE, None)
    if memo is None or memo.plan is not plan:
        memo = NoiseMemo(plan)
        setattr(plan, _MEMO_ATTRIBUTE, memo)
    return memo


def walk(system: SignalFlowGraph | CompiledPlan, n_bins: int,
         zero: Callable[[Node], object],
         propagate: Callable[[Node, list], object],
         inject: Callable[[Node, NoiseStats, object], object],
         ) -> dict[str, object]:
    """Generic noise-propagation traversal (node-level callbacks).

    Never memoized: the callbacks are opaque, so no sound cache key
    exists.  The typed walks below are the memoized fast paths.

    Parameters
    ----------
    system:
        Acyclic signal-flow graph, or a plan compiled from one; a bare
        graph is compiled (and the compiled plan cached per graph), so
        validation happens once per structure, not once per walk.
    n_bins:
        Number of PSD bins (unused by moment-only representations but part
        of the shared signature).
    zero:
        ``zero(node)`` returns the representation of "no noise" for a node
        with no predecessors.
    propagate:
        ``propagate(node, input_representations)`` applies the node's
        propagation rule.
    inject:
        ``inject(node, stats, representation)`` adds the node's own noise
        source (already known to be non-trivial) to the representation at
        the node output.

    Returns
    -------
    dict
        Mapping from node name to the noise representation at its output.
    """
    plan = compile_plan(system)
    return walk_plan(
        plan,
        zero=lambda step: zero(step.node),
        propagate=lambda step, inputs: propagate(step.node, inputs),
        inject=lambda step, acc: inject(step.node, step.noise, acc),
    )


# ----------------------------------------------------------------------
# Cached plan walks, one per noise representation
# ----------------------------------------------------------------------
def walk_psd(plan: CompiledPlan, n_psd: int) -> dict[str, DiscretePsd]:
    """PSD propagation over a compiled plan, incremental when memoized."""
    if memoization_enabled():
        values = plan_memo(plan).psd(n_psd)
    else:
        values = _full_walk(plan, partial(_psd_step, plan, n_psd))
    return {step.name: values[step.index] for step in plan.steps}


def walk_stats(plan: CompiledPlan) -> dict[str, NoiseStats]:
    """Moment propagation over a compiled plan, incremental when memoized."""
    if memoization_enabled():
        values = plan_memo(plan).stats()
    else:
        values = _full_walk(plan, partial(_stats_step, plan))
    return {step.name: values[step.index] for step in plan.steps}


def walk_tracked(plan: CompiledPlan, n_psd: int) -> dict[str, TrackedSpectrum]:
    """Per-source tracked propagation, incremental when memoized."""
    if memoization_enabled():
        values = plan_memo(plan).tracked(n_psd)
    else:
        values = _full_walk(plan, partial(_tracked_step, plan, n_psd))
    return {step.name: values[step.index] for step in plan.steps}


# ----------------------------------------------------------------------
# Batched plan walks (one pass per configuration stack)
# ----------------------------------------------------------------------
def _psd_batch_inputs(stack: ConfigStack, step, slots) -> list:
    """Predecessor PSD stacks with per-config fanout-tap noise injected.

    Mirrors :func:`_psd_inputs` row by row: a port is injected when *any*
    config taps it (silent configs add exact zeros, the same contract as
    the own-noise injection below).
    """
    inputs = [slots[i] for i in step.predecessors]
    noise = stack.edge_noise(step)
    if noise:
        for port, (means, variances) in noise.items():
            psd = inputs[port]
            inputs[port] = psd + PsdStack.white(means, variances, psd.n_bins)
    return inputs


def _psd_batch_step(plan: CompiledPlan, n_psd: int, stack: ConfigStack,
                    step, slots) -> PsdStack:
    node = step.node
    if step.is_source:
        acc = PsdStack.zero(stack.size, n_psd)
    elif isinstance(node, _LtiMixin):
        (psd,) = _psd_batch_inputs(stack, step, slots)
        acc = psd.filtered(stack.block_response(step, psd.n_bins))
    elif isinstance(node, AddNode):
        inputs = _psd_batch_inputs(stack, step, slots)
        acc = PsdStack.zero(stack.size, inputs[0].n_bins)
        for sign, psd in zip(node.signs, inputs):
            acc = acc + psd.scaled(sign)
    elif isinstance(node, OutputNode):
        (psd,) = _psd_batch_inputs(stack, step, slots)
        acc = psd.copy()
    elif isinstance(node, DownsampleNode):
        (psd,) = _psd_batch_inputs(stack, step, slots)
        acc = psd.downsampled(node.factor)
    elif isinstance(node, UpsampleNode):
        (psd,) = _psd_batch_inputs(stack, step, slots)
        acc = psd.upsampled(node.factor)
    else:
        raise NotImplementedError(
            f"batched PSD propagation does not support node type "
            f"{type(node).__name__}")
    noise = stack.noise(step)
    if noise is not None:
        means, variances = noise
        own = PsdStack.white(means, variances, acc.n_bins)
        if isinstance(node, IirNode):
            own = own.filtered(stack.shaping_response(step, acc.n_bins))
        acc = acc + own
    return acc


def _stats_batch_inputs(stack: ConfigStack, step, slots) -> list:
    inputs = [slots[i] for i in step.predecessors]
    noise = stack.edge_noise(step)
    if noise:
        for port, (means, variances) in noise.items():
            inputs[port] = inputs[port] + NoiseStats(mean=means,
                                                     variance=variances)
    return inputs


def _stats_batch_step(plan: CompiledPlan, stack: ConfigStack, step,
                      slots) -> NoiseStats:
    node = step.node
    if step.is_source:
        zeros = np.zeros(stack.size)
        acc = NoiseStats(mean=zeros, variance=zeros)
    elif isinstance(node, _LtiMixin):
        (stats,) = _stats_batch_inputs(stack, step, slots)
        energy, dc = stack.block_gains(step)
        acc = NoiseStats(mean=stats.mean * dc,
                         variance=stats.variance * energy)
    else:
        acc = node.propagate_stats(_stats_batch_inputs(stack, step, slots))
    noise = stack.noise(step)
    if noise is not None:
        means, variances = noise
        if isinstance(node, IirNode):
            energy, dc = stack.shaping_gains(step)
            own = NoiseStats(mean=means * dc, variance=variances * energy)
        else:
            own = NoiseStats(mean=means, variance=variances)
        acc = acc + own
    return acc


def _deviant_cone(plan: CompiledPlan, stack: ConfigStack) -> set[int]:
    """Steps the batched walk must actually vectorize.

    A step is *deviant* when some config of the stack gives it a word
    length — its own, or a tap on one of its incoming edges — other than
    the plan's live one; outside the downstream cone of the deviant
    steps, every config's row provably equals the scalar walk of the
    live configuration, so the cached scalar value can be broadcast
    instead of recomputed.
    """
    deviant = []
    for step in plan.steps:
        if any(b != step.node.quantization.fractional_bits
               for b in stack.bits(step)):
            deviant.append(step.index)
            continue
        edge_bits = stack.edge_bits(step)
        if edge_bits:
            taps = step.edge_taps
            for port, bits in edge_bits.items():
                live = None
                if taps is not None and taps[port] is not None:
                    live = taps[port].bits
                if any(b != live for b in bits):
                    deviant.append(step.index)
                    break
    return set(plan.downstream_cone(deviant)) if deviant else set()


def _broadcast_psd(psd: DiscretePsd, size: int) -> PsdStack:
    # broadcast_to keeps the scalar bins as a read-only view: every
    # downstream PsdStack operation allocates fresh arrays, so sharing is
    # safe and the boundary injection costs O(1) memory per step.
    return PsdStack(np.broadcast_to(psd.ac, (size, psd.ac.shape[0])),
                    np.full(size, psd.mean))


def _broadcast_stats(stats: NoiseStats, size: int) -> NoiseStats:
    return NoiseStats(mean=np.full(size, stats.mean),
                      variance=np.full(size, stats.variance))


def walk_psd_batch(plan: CompiledPlan, n_psd: int,
                   stack: ConfigStack) -> dict[str, PsdStack]:
    """PSD propagation of a whole configuration stack in one pass.

    Row ``k`` of every returned :class:`PsdStack` is bit-identical to the
    scalar :func:`walk_psd` of configuration ``k``: each operation applies
    the same operand pairs in the same order, only vectorized along the
    leading config axis, and the per-node responses come from the same
    plan cache the scalar walk uses.  When memoization is enabled, only
    the deviant cone of the stack (see :func:`_deviant_cone`) is
    vectorized; every other step broadcasts the scalar memo's cached
    value.  The stack must have been resolved against the plan's current
    spec state (every in-repo caller constructs it immediately before
    walking).
    """
    if memoization_enabled():
        base = plan_memo(plan).psd(n_psd)
        cone = _deviant_cone(plan, stack)
    else:
        base, cone = None, set(range(len(plan.steps)))
    with span("analysis.walk_batch", representation="psd",
              configs=stack.size, cone=len(cone)):
        slots: list = [None] * len(plan.steps)
        for step in plan.steps:
            if step.index in cone:
                slots[step.index] = _psd_batch_step(plan, n_psd, stack, step,
                                                    slots)
            else:
                slots[step.index] = _broadcast_psd(base[step.index],
                                                   stack.size)
    return {step.name: slots[step.index] for step in plan.steps}


def walk_stats_batch(plan: CompiledPlan,
                     stack: ConfigStack) -> dict[str, NoiseStats]:
    """Moment propagation of a whole configuration stack in one pass.

    Returns :class:`NoiseStats` objects whose ``mean`` / ``variance``
    fields are ``(K,)`` arrays (the dataclass arithmetic is elementwise,
    so every propagation rule applies unchanged).  Entry ``k`` is
    bit-identical to the scalar :func:`walk_stats` of configuration ``k``.
    Deviant-cone reuse mirrors :func:`walk_psd_batch`.
    """
    if memoization_enabled():
        base = plan_memo(plan).stats()
        cone = _deviant_cone(plan, stack)
    else:
        base, cone = None, set(range(len(plan.steps)))
    with span("analysis.walk_batch", representation="stats",
              configs=stack.size, cone=len(cone)):
        slots: list = [None] * len(plan.steps)
        for step in plan.steps:
            if step.index in cone:
                slots[step.index] = _stats_batch_step(plan, stack, step,
                                                      slots)
            else:
                slots[step.index] = _broadcast_stats(base[step.index],
                                                     stack.size)
    return {step.name: slots[step.index] for step in plan.steps}
