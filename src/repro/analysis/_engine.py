"""Shared graph-walking machinery of the analytical evaluation engines.

All three analytical methods traverse the acyclic signal-flow graph in
topological order, maintaining one noise representation per node output
(moments, PSD, or per-source tracked spectra) and injecting each node's own
quantization-noise source at its output.  The only thing that changes
between methods is the *representation* and its propagation rules, which
are already encapsulated in the node classes; this module factors the
traversal itself.

The traversal runs over a :class:`~repro.sfg.plan.CompiledPlan`:
validation, topological ordering and noise-source discovery happen once at
plan compilation, and each walk simply replays the index-based schedule.
Per-node frequency responses (block responses and IIR noise-shaping
responses) come from the plan's memoized cache, so repeated evaluations of
the same graph — the word-length optimizer's inner loop, the execution-time
benchmark — skip every FFT-sized computation after the first call.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.fixedpoint.noise_model import NoiseStats
from repro.psd.batch import PsdStack
from repro.psd.spectrum import DiscretePsd
from repro.psd.propagation import TrackedSpectrum
from repro.sfg.graph import SignalFlowGraph
from repro.sfg.nodes import (
    AddNode,
    DownsampleNode,
    IirNode,
    Node,
    OutputNode,
    UpsampleNode,
    _LtiMixin,
)
from repro.sfg.plan import CompiledPlan, ConfigStack, compile_plan, walk_plan


def node_noise_sources(system: SignalFlowGraph | CompiledPlan
                       ) -> dict[str, NoiseStats]:
    """Moments of the noise source generated at each node (if any)."""
    plan = compile_plan(system)
    return {step.name: step.noise for step in plan.noise_steps}


def walk(system: SignalFlowGraph | CompiledPlan, n_bins: int,
         zero: Callable[[Node], object],
         propagate: Callable[[Node, list], object],
         inject: Callable[[Node, NoiseStats, object], object],
         ) -> dict[str, object]:
    """Generic noise-propagation traversal (node-level callbacks).

    Parameters
    ----------
    system:
        Acyclic signal-flow graph, or a plan compiled from one; a bare
        graph is compiled (and the compiled plan cached per graph), so
        validation happens once per structure, not once per walk.
    n_bins:
        Number of PSD bins (unused by moment-only representations but part
        of the shared signature).
    zero:
        ``zero(node)`` returns the representation of "no noise" for a node
        with no predecessors.
    propagate:
        ``propagate(node, input_representations)`` applies the node's
        propagation rule.
    inject:
        ``inject(node, stats, representation)`` adds the node's own noise
        source (already known to be non-trivial) to the representation at
        the node output.

    Returns
    -------
    dict
        Mapping from node name to the noise representation at its output.
    """
    plan = compile_plan(system)
    return walk_plan(
        plan,
        zero=lambda step: zero(step.node),
        propagate=lambda step, inputs: propagate(step.node, inputs),
        inject=lambda step, acc: inject(step.node, step.noise, acc),
    )


# ----------------------------------------------------------------------
# Cached plan walks, one per noise representation
# ----------------------------------------------------------------------
def walk_psd(plan: CompiledPlan, n_psd: int) -> dict[str, DiscretePsd]:
    """PSD propagation over a compiled plan, with cached block responses."""
    def propagate(step, inputs):
        node = step.node
        if isinstance(node, _LtiMixin):
            # Same rule as Node.propagate_psd, but the block response is
            # sampled once per (node, bins) and memoized on the plan.  The
            # input PSD may live on fewer bins than n_psd when the signal
            # was decimated upstream.
            (psd,) = inputs
            return psd.filtered(plan.block_response(step, psd.n_bins))
        return node.propagate_psd(inputs, n_psd)

    return walk_plan(
        plan,
        zero=lambda step: DiscretePsd.zero(n_psd),
        propagate=propagate,
        inject=lambda step, acc: acc + plan.shaped_noise_psd(step, acc.n_bins),
    )


def walk_stats(plan: CompiledPlan) -> dict[str, NoiseStats]:
    """Moment propagation over a compiled plan, with cached block gains."""
    def propagate(step, inputs):
        node = step.node
        if isinstance(node, _LtiMixin):
            (stats,) = inputs
            energy, dc = plan.block_gains(step)
            return NoiseStats(mean=stats.mean * dc,
                              variance=stats.variance * energy)
        return node.propagate_stats(inputs)

    return walk_plan(
        plan,
        zero=lambda step: NoiseStats(0.0, 0.0),
        propagate=propagate,
        inject=lambda step, acc: acc + plan.shaped_noise_stats(step),
    )


def walk_tracked(plan: CompiledPlan, n_psd: int) -> dict[str, TrackedSpectrum]:
    """Per-source tracked propagation with cached complex responses."""
    def propagate(step, inputs):
        node = step.node
        if isinstance(node, _LtiMixin):
            (tracked,) = inputs
            return tracked.filtered(plan.block_response(step, n_psd))
        return node.propagate_tracked(inputs, n_psd)

    return walk_plan(
        plan,
        zero=lambda step: TrackedSpectrum.zero(n_psd),
        propagate=propagate,
        inject=lambda step, acc: acc + plan.shaped_noise_tracked(step, n_psd),
    )


# ----------------------------------------------------------------------
# Batched plan walks (one pass per configuration stack)
# ----------------------------------------------------------------------
def walk_psd_batch(plan: CompiledPlan, n_psd: int,
                   stack: ConfigStack) -> dict[str, PsdStack]:
    """PSD propagation of a whole configuration stack in one pass.

    Row ``k`` of every returned :class:`PsdStack` is bit-identical to the
    scalar :func:`walk_psd` of configuration ``k``: each operation applies
    the same operand pairs in the same order, only vectorized along the
    leading config axis, and the per-node responses come from the same
    plan cache the scalar walk uses.
    """
    slots: list = [None] * len(plan.steps)
    for step in plan.steps:
        node = step.node
        if step.is_source:
            acc = PsdStack.zero(stack.size, n_psd)
        elif isinstance(node, _LtiMixin):
            (psd,) = (slots[i] for i in step.predecessors)
            acc = psd.filtered(stack.block_response(step, psd.n_bins))
        elif isinstance(node, AddNode):
            inputs = [slots[i] for i in step.predecessors]
            acc = PsdStack.zero(stack.size, inputs[0].n_bins)
            for sign, psd in zip(node.signs, inputs):
                acc = acc + psd.scaled(sign)
        elif isinstance(node, OutputNode):
            (psd,) = (slots[i] for i in step.predecessors)
            acc = psd.copy()
        elif isinstance(node, DownsampleNode):
            (psd,) = (slots[i] for i in step.predecessors)
            acc = psd.downsampled(node.factor)
        elif isinstance(node, UpsampleNode):
            (psd,) = (slots[i] for i in step.predecessors)
            acc = psd.upsampled(node.factor)
        else:
            raise NotImplementedError(
                f"batched PSD propagation does not support node type "
                f"{type(node).__name__}")
        noise = stack.noise(step)
        if noise is not None:
            means, variances = noise
            own = PsdStack.white(means, variances, acc.n_bins)
            if isinstance(node, IirNode):
                own = own.filtered(stack.shaping_response(step, acc.n_bins))
            acc = acc + own
        slots[step.index] = acc
    return {step.name: slots[step.index] for step in plan.steps}


def walk_stats_batch(plan: CompiledPlan,
                     stack: ConfigStack) -> dict[str, NoiseStats]:
    """Moment propagation of a whole configuration stack in one pass.

    Returns :class:`NoiseStats` objects whose ``mean`` / ``variance``
    fields are ``(K,)`` arrays (the dataclass arithmetic is elementwise,
    so every propagation rule applies unchanged).  Entry ``k`` is
    bit-identical to the scalar :func:`walk_stats` of configuration ``k``.
    """
    zeros = np.zeros(stack.size)
    slots: list = [None] * len(plan.steps)
    for step in plan.steps:
        node = step.node
        if step.is_source:
            acc = NoiseStats(mean=zeros, variance=zeros)
        elif isinstance(node, _LtiMixin):
            (stats,) = (slots[i] for i in step.predecessors)
            energy, dc = stack.block_gains(step)
            acc = NoiseStats(mean=stats.mean * dc,
                             variance=stats.variance * energy)
        else:
            acc = node.propagate_stats([slots[i] for i in step.predecessors])
        noise = stack.noise(step)
        if noise is not None:
            means, variances = noise
            if isinstance(node, IirNode):
                energy, dc = stack.shaping_gains(step)
                own = NoiseStats(mean=means * dc, variance=variances * energy)
            else:
                own = NoiseStats(mean=means, variance=variances)
            acc = acc + own
        slots[step.index] = acc
    return {step.name: slots[step.index] for step in plan.steps}
