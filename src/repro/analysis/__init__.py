"""Accuracy-evaluation engines (the paper's core contribution).

Four evaluation methods are provided, all answering the same question —
"what is the quantization-noise power at the output of this fixed-point
system?" — with different cost/accuracy trade-offs:

* :class:`~repro.analysis.simulation_method.SimulationEvaluator` — the
  Monte-Carlo reference: run the system in double precision and in fixed
  point, subtract, and measure.
* :func:`~repro.analysis.flat_method.evaluate_flat` — the classical flat
  analytical method (Eq. 4): one path function per noise source across the
  *flattened* graph.
* :func:`~repro.analysis.agnostic_method.evaluate_agnostic` — the
  hierarchical, PSD-agnostic method: only ``(mu, sigma^2)`` cross block
  boundaries.
* :func:`~repro.analysis.psd_method.evaluate_psd` — the proposed method:
  a sampled PSD (plus signed mean) crosses block boundaries (Eqs. 10–14).

:class:`~repro.analysis.evaluator.AccuracyEvaluator` wraps all four behind
one interface and computes the comparison metric ``Ed`` (Eq. 15) used in
every experiment of the paper.
"""

from repro.analysis.metrics import (
    ed_deviation,
    equivalent_bit_error,
    is_sub_one_bit,
    mse,
    noise_power,
    sqnr_db,
)
from repro.analysis.simulation_method import SimulationEvaluator, SimulationResult
from repro.analysis.flat_method import evaluate_flat, evaluate_flat_batch
from repro.analysis.agnostic_method import (
    evaluate_agnostic,
    evaluate_agnostic_batch,
)
from repro.analysis.psd_method import (
    evaluate_psd,
    evaluate_psd_batch,
    evaluate_psd_tracked,
)
from repro.analysis.evaluator import AccuracyEvaluator, MethodComparison
from repro.analysis.report import AccuracyReport, EstimateResult

__all__ = [
    "ed_deviation",
    "noise_power",
    "mse",
    "sqnr_db",
    "equivalent_bit_error",
    "is_sub_one_bit",
    "SimulationEvaluator",
    "SimulationResult",
    "evaluate_flat",
    "evaluate_flat_batch",
    "evaluate_agnostic",
    "evaluate_agnostic_batch",
    "evaluate_psd",
    "evaluate_psd_batch",
    "evaluate_psd_tracked",
    "AccuracyEvaluator",
    "MethodComparison",
    "AccuracyReport",
    "EstimateResult",
]
