"""Hierarchical, PSD-agnostic accuracy evaluation.

This is the state-of-the-art baseline the paper compares against
(Section II, Fig. 1.b "blind propagation of mu, sigma^2"): the system is
cut at block boundaries and only the first two moments of the quantization
noise cross each boundary.  Inside a block the propagation rule treats the
incoming noise as *white*:

* LTI block ``h``:      ``sigma_out^2 = sigma_in^2 * sum_k h(k)^2``,
  ``mu_out = mu_in * sum_k h(k)``;
* adder:                moments add;
* constant gain ``g``:  ``sigma^2 *= g^2``, ``mu *= g``;
* decimator:            per-sample moments unchanged;
* expander (by L):      ``sigma^2 /= L``, ``mu /= L``.

The method is exact when the noise entering every block really is white
(single-block systems) and exhibits the large errors reported in Table II
of the paper whenever an upstream block has colored the noise.
"""

from __future__ import annotations

from repro.analysis._engine import walk_stats, walk_stats_batch
from repro.fixedpoint.noise_model import NoiseStats
from repro.sfg.graph import SignalFlowGraph
from repro.sfg.plan import CompiledPlan, compile_plan


def evaluate_agnostic(system: SignalFlowGraph | CompiledPlan,
                      output: str | None = None) -> NoiseStats:
    """Estimate the output-noise moments with the PSD-agnostic method.

    Parameters
    ----------
    system:
        Acyclic signal-flow graph with per-node
        :class:`~repro.sfg.nodes.QuantizationSpec` assignments, or a
        :class:`CompiledPlan` compiled from one.
    output:
        Name of the output node to evaluate; may be omitted when the graph
        has exactly one output.

    Returns
    -------
    NoiseStats
        Estimated mean and variance of the output quantization noise.  The
        estimated noise power is ``result.power``.
    """
    plan = compile_plan(system)
    results = walk_stats(plan)
    return results[plan.resolve_output(output)]


def evaluate_agnostic_all(system: SignalFlowGraph | CompiledPlan
                          ) -> dict[str, NoiseStats]:
    """Per-node noise moments (useful for word-length refinement loops)."""
    return walk_stats(compile_plan(system))


def evaluate_agnostic_batch(system: SignalFlowGraph | CompiledPlan,
                            assignments,
                            output: str | None = None) -> NoiseStats:
    """Estimate the output moments of a stack of word-length assignments.

    One graph walk evaluates every configuration.  The returned
    :class:`NoiseStats` carries ``(K,)`` arrays in its ``mean`` /
    ``variance`` fields (``result.power`` is the per-config power array);
    entry ``k`` is bit-identical to ``evaluate_agnostic(plan)`` after
    ``plan.requantize(assignments[k])``.
    """
    plan = compile_plan(system)
    stack = plan.config_stack(assignments)
    results = walk_stats_batch(plan, stack)
    return results[plan.resolve_output(output)]
