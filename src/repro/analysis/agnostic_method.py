"""Hierarchical, PSD-agnostic accuracy evaluation.

This is the state-of-the-art baseline the paper compares against
(Section II, Fig. 1.b "blind propagation of mu, sigma^2"): the system is
cut at block boundaries and only the first two moments of the quantization
noise cross each boundary.  Inside a block the propagation rule treats the
incoming noise as *white*:

* LTI block ``h``:      ``sigma_out^2 = sigma_in^2 * sum_k h(k)^2``,
  ``mu_out = mu_in * sum_k h(k)``;
* adder:                moments add;
* constant gain ``g``:  ``sigma^2 *= g^2``, ``mu *= g``;
* decimator:            per-sample moments unchanged;
* expander (by L):      ``sigma^2 /= L``, ``mu /= L``.

The method is exact when the noise entering every block really is white
(single-block systems) and exhibits the large errors reported in Table II
of the paper whenever an upstream block has colored the noise.
"""

from __future__ import annotations

from repro.analysis._engine import shaped_own_noise_stats, walk
from repro.fixedpoint.noise_model import NoiseStats
from repro.sfg.graph import SignalFlowGraph


def evaluate_agnostic(graph: SignalFlowGraph,
                      output: str | None = None) -> NoiseStats:
    """Estimate the output-noise moments with the PSD-agnostic method.

    Parameters
    ----------
    graph:
        Acyclic signal-flow graph with per-node
        :class:`~repro.sfg.nodes.QuantizationSpec` assignments.
    output:
        Name of the output node to evaluate; may be omitted when the graph
        has exactly one output.

    Returns
    -------
    NoiseStats
        Estimated mean and variance of the output quantization noise.  The
        estimated noise power is ``result.power``.
    """
    results = walk(
        graph,
        n_bins=0,
        zero=lambda node: NoiseStats(0.0, 0.0),
        propagate=lambda node, inputs: node.propagate_stats(inputs),
        inject=lambda node, stats, acc: acc + shaped_own_noise_stats(node, stats),
    )
    return results[_resolve_output(graph, output)]


def evaluate_agnostic_all(graph: SignalFlowGraph) -> dict[str, NoiseStats]:
    """Per-node noise moments (useful for word-length refinement loops)."""
    return walk(
        graph,
        n_bins=0,
        zero=lambda node: NoiseStats(0.0, 0.0),
        propagate=lambda node, inputs: node.propagate_stats(inputs),
        inject=lambda node, stats, acc: acc + shaped_own_noise_stats(node, stats),
    )


def _resolve_output(graph: SignalFlowGraph, output: str | None) -> str:
    outputs = graph.output_names()
    if output is not None:
        if output not in outputs:
            raise ValueError(f"{output!r} is not an output node of the graph")
        return output
    if len(outputs) != 1:
        raise ValueError(
            f"graph has {len(outputs)} outputs; specify which one to evaluate")
    return outputs[0]
