"""Simulation-based (Monte-Carlo) accuracy evaluation.

This is the reference method of the paper: the system is executed twice on
the same stimulus — once in IEEE double precision (standing in for infinite
precision) and once in bit-true fixed point — and the output quantization
noise is the difference of the two runs.  Its power is the ground truth
``E[err_sim^2]`` of the deviation metric ``Ed`` (Eq. 15), and its Welch
spectrum is the ground truth for the frequency-repartition comparison of
Fig. 7.

The evaluator accepts either

* a :class:`~repro.sfg.graph.SignalFlowGraph` or a pre-compiled
  :class:`~repro.sfg.plan.CompiledPlan` (executed with
  :class:`~repro.sfg.executor.SfgExecutor`, both precision modes in one
  traversal), or
* any object implementing the :class:`FixedPointSystem` protocol —
  ``run_reference(stimulus)`` and ``run_fixed_point(stimulus)`` — which is
  how the frequency-domain filter and the DWT codec plug in.

For SFG systems the stimulus may be a 2-D array of shape ``(trials,
samples)``: the whole Monte-Carlo batch then runs as one vectorized pass
and the measured moments aggregate over all trials.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import Protocol, runtime_checkable

import numpy as np

from repro.analysis._engine import memoization_enabled
from repro.analysis.metrics import noise_power
from repro.obs import metric_inc, span
from repro.psd.estimation import estimate_psd, estimate_psd_batch
from repro.psd.spectrum import DiscretePsd
from repro.sfg.executor import SfgExecutor
from repro.sfg.graph import SignalFlowGraph
from repro.sfg.plan import CompiledPlan


# ----------------------------------------------------------------------
# Reference-run memo
# ----------------------------------------------------------------------
# The double-precision reference run only depends on the plan's
# coefficient fingerprint and the stimulus content — not on the data-path
# word lengths the optimizer actually searches over — so it is cached on
# the plan (shared by every evaluator of the same plan) and the memoized
# error measurement reruns only the bit-true pass.  ``run_pair``'s two
# legs execute exactly the per-mode operations of ``run``, so mixing a
# cached reference with a fresh fixed run is bit-identical to a fresh
# pair.  Bounded LRU: reference records are sample-sized arrays.
_REFERENCE_MEMO_ATTRIBUTE = "_reference_memo"
REFERENCE_MEMO_LIMIT = 8


def _reference_memo(plan: CompiledPlan) -> OrderedDict:
    memo = getattr(plan, _REFERENCE_MEMO_ATTRIBUTE, None)
    if memo is None:
        memo = OrderedDict()
        setattr(plan, _REFERENCE_MEMO_ATTRIBUTE, memo)
    return memo


def _stimulus_digest(stimulus: dict) -> str:
    """Content digest of a normalized stimulus mapping."""
    digest = hashlib.sha1()
    for name in sorted(stimulus):
        value = np.ascontiguousarray(np.asarray(stimulus[name], dtype=float))
        digest.update(name.encode())
        digest.update(repr(value.shape).encode())
        digest.update(value.tobytes())
    return digest.hexdigest()


def _memo_store(memo: OrderedDict, key: tuple, reference) -> None:
    memo[key] = reference
    while len(memo) > REFERENCE_MEMO_LIMIT:
        memo.popitem(last=False)


@runtime_checkable
class FixedPointSystem(Protocol):
    """Protocol for systems that can be simulated in both precisions."""

    def run_reference(self, stimulus):
        """Execute the system in double precision."""

    def run_fixed_point(self, stimulus):
        """Execute the system in bit-true fixed point."""


@dataclass
class SimulationResult:
    """Outcome of one simulation-based evaluation.

    Attributes
    ----------
    error_power:
        Measured output quantization-noise power ``E[e^2]``.
    error_mean:
        Measured mean of the output error.
    error_psd:
        Welch estimate of the error PSD (``None`` unless requested).
    num_samples:
        Number of output samples used for the measurement (summed over
        trials for batched runs).
    """

    error_power: float
    error_mean: float
    error_psd: DiscretePsd | None
    num_samples: int

    @property
    def error_variance(self) -> float:
        """Variance of the output error."""
        return self.error_power - self.error_mean ** 2


class SimulationEvaluator:
    """Monte-Carlo evaluation of the output quantization noise."""

    def __init__(self, system):
        """``system`` is a :class:`SignalFlowGraph`, a
        :class:`CompiledPlan` or a :class:`FixedPointSystem`."""
        if isinstance(system, (SignalFlowGraph, CompiledPlan)):
            self._executor = SfgExecutor(system)
            self._system = None
        elif isinstance(system, FixedPointSystem):
            self._executor = None
            self._system = system
        else:
            raise TypeError(
                "system must be a SignalFlowGraph, a CompiledPlan or "
                "implement run_reference / run_fixed_point")

    # ------------------------------------------------------------------
    # Error signal
    # ------------------------------------------------------------------
    def error_signal(self, stimulus, output: str | None = None) -> np.ndarray:
        """Output error record (fixed-point output minus reference output).

        Parameters
        ----------
        stimulus:
            For SFG systems, a mapping from input-node name to its sample
            vector (a bare array is accepted for single-input graphs); 2-D
            arrays of shape ``(trials, samples)`` run the whole batch in
            one pass and produce a 2-D error record.
            For protocol systems, whatever their ``run_*`` methods expect.
        output:
            Output-node name for multi-output SFGs.
        """
        if self._executor is not None:
            stimulus = self._normalize_stimulus(stimulus)
            plan = self._executor.plan
            memo = key = reference = None
            if memoization_enabled():
                plan.refresh()
                memo = _reference_memo(plan)
                key = (plan.coefficient_fingerprint(),
                       _stimulus_digest(stimulus), output)
                reference = memo.get(key)
            with span("sim.error_signal", output=output or "") as sim_span:
                if reference is not None:
                    # Reference hit: only the bit-true pass reruns.
                    memo.move_to_end(key)
                    metric_inc("sim.reference_memo.hits")
                    sim_span.set(reference_cached=True)
                    fixed = plan.run(stimulus, mode="fixed").output(output)
                else:
                    metric_inc("sim.reference_memo.misses")
                    sim_span.set(reference_cached=False)
                    pair = self._executor.run_pair(stimulus)
                    reference = pair[0].output(output)
                    fixed = pair[1].output(output)
                    if memo is not None:
                        _memo_store(memo, key, reference)
        else:
            reference = np.asarray(self._system.run_reference(stimulus), dtype=float)
            fixed = np.asarray(self._system.run_fixed_point(stimulus), dtype=float)
        if reference.shape != fixed.shape:
            raise ValueError(
                "reference and fixed-point outputs have different shapes: "
                f"{reference.shape} vs {fixed.shape}")
        error = fixed - reference
        if self._executor is not None and error.ndim > 1:
            return error
        return error.ravel()

    def evaluate(self, stimulus, output: str | None = None,
                 n_psd: int | None = None,
                 discard_transient: int = 0) -> SimulationResult:
        """Measure the output quantization noise on one stimulus.

        Parameters
        ----------
        stimulus:
            Input samples (see :meth:`error_signal`).
        output:
            Output-node name for multi-output SFGs.
        n_psd:
            When given, also estimate the error PSD on that many bins
            (averaged over trials for batched runs).
        discard_transient:
            Number of leading output samples to drop before measuring
            (filters have a start-up transient during which the noise is
            not yet stationary); applied per trial for batched runs.
        """
        error = self.error_signal(stimulus, output=output)
        return self._measure(error, n_psd, discard_transient)

    def evaluate_batch(self, assignments, stimulus,
                       output: str | None = None,
                       n_psd: int | None = None,
                       discard_transient: int = 0) -> list[SimulationResult]:
        """Measure a stack of word-length assignments on one stimulus.

        The configuration axis of the analytical engines, for the
        Monte-Carlo reference: the stack is grouped by effective
        coefficient precision and the double-precision reference is run
        *once per group* (the reference only depends on the quantized
        coefficients), so ``K`` configs sharing coefficients cost
        ``1 + K`` traversals instead of ``2 K``.  The plan's quantization
        state is restored afterwards.

        Parameters
        ----------
        assignments:
            Sequence of ``{node name: fractional bits}`` mappings, as for
            the batched analytical evaluations.
        stimulus, output, n_psd, discard_transient:
            As for :meth:`evaluate`.

        Returns
        -------
        list of SimulationResult
            One measurement per assignment, in order.
        """
        if self._executor is None:
            raise TypeError(
                "evaluate_batch requires an SFG-backed evaluator; protocol "
                "systems have no word-length assignment to re-quantize")
        plan = self._executor.plan
        stack = plan.config_stack(assignments)
        stimulus = self._normalize_stimulus(stimulus)

        digest = (_stimulus_digest(stimulus)
                  if memoization_enabled() else None)
        results: list[SimulationResult | None] = [None] * stack.size
        with span("sim.evaluate_batch", configs=stack.size,
                  output=output or ""), plan.preserve_quantization():
            for members in stack.coefficient_groups():
                plan.requantize(stack.resolved(members[0]),
                                allow_enable=True)
                memo = key = reference = None
                if digest is not None:
                    memo = _reference_memo(plan)
                    key = (plan.coefficient_fingerprint(), digest, output)
                    reference = memo.get(key)
                if reference is not None:
                    memo.move_to_end(key)
                    metric_inc("sim.reference_memo.hits")
                else:
                    metric_inc("sim.reference_memo.misses")
                    reference = plan.run(stimulus,
                                         mode="double").output(output)
                    if memo is not None:
                        _memo_store(memo, key, reference)
                for k in members:
                    plan.requantize(stack.resolved(k), allow_enable=True)
                    fixed = plan.run(stimulus, mode="fixed").output(output)
                    if reference.shape != fixed.shape:
                        raise ValueError(
                            "reference and fixed-point outputs have "
                            f"different shapes: {reference.shape} vs "
                            f"{fixed.shape}")
                    error = fixed - reference
                    results[k] = self._measure(error, n_psd,
                                               discard_transient)
        return results

    def _measure(self, error: np.ndarray, n_psd: int | None,
                 discard_transient: int) -> SimulationResult:
        if discard_transient:
            if discard_transient >= error.shape[-1]:
                raise ValueError(
                    f"cannot discard {discard_transient} samples from a "
                    f"record of length {error.shape[-1]}")
            error = error[..., discard_transient:]
        psd = self._error_psd(error, n_psd) if n_psd else None
        return SimulationResult(
            error_power=noise_power(error),
            error_mean=float(np.mean(error)),
            error_psd=psd,
            num_samples=error.size,
        )

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _error_psd(error: np.ndarray, n_psd: int) -> DiscretePsd:
        if error.ndim == 1:
            return estimate_psd(error, n_psd)
        # Batched record: average the per-trial Welch estimates (all
        # trials share one batched FFT pass).
        trials = estimate_psd_batch(error, n_psd)
        ac = np.mean([psd.ac for psd in trials], axis=0)
        mean = float(np.mean([psd.mean for psd in trials]))
        return DiscretePsd(ac, mean)

    def _normalize_stimulus(self, stimulus) -> dict:
        if isinstance(stimulus, dict):
            return stimulus
        input_names = self._executor.graph.input_names()
        if len(input_names) != 1:
            raise ValueError(
                "a bare stimulus array is only accepted for single-input "
                f"graphs; this graph has inputs {input_names}")
        return {input_names[0]: stimulus}
