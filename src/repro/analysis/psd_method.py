"""Proposed PSD-based accuracy evaluation (Section III of the paper).

The system is traversed block by block exactly like the PSD-agnostic
method, but the quantity crossing each block boundary is a sampled power
spectral density (``N_PSD`` bins) plus the signed mean of the noise:

* a quantization noise source is white (Eq. 10);
* an LTI block shapes the PSD by its squared magnitude response (Eq. 11);
* an adder sums PSDs (Eq. 14 — the uncorrelated assumption of the
  hierarchical method);
* decimators fold the PSD (aliasing) and expanders image it.

The cost of one evaluation is linear in ``N_PSD`` and in the number of
blocks; the block magnitude responses are computed once (``O(N log N)``)
and can be reused for any number of word-length configurations.  That
reuse is realised through :class:`~repro.sfg.plan.CompiledPlan`: every
function here accepts either a graph or a compiled plan, and the plan
memoizes the per-block frequency responses across calls.  Repeated
evaluations of the same plan additionally pull from its
:class:`~repro.analysis._engine.NoiseMemo`: after a requantize edit only
the edited nodes' downstream cone is re-propagated, so one-node edits
(the optimizer's inner loop) cost O(depth), not O(nodes), per call —
bit-identical to a cold walk.

:func:`evaluate_psd_tracked` additionally keeps, for every noise source,
the complex response of the path to the output, which makes re-convergent
(correlated) paths exact (Eqs. 12–13) at the cost of one spectrum per
source — this is the frequency-domain equivalent of the flat method and
is used in the correlation ablation.
"""

from __future__ import annotations

from repro.analysis._engine import walk_psd, walk_psd_batch, walk_tracked
from repro.psd.batch import PsdStack
from repro.psd.spectrum import DiscretePsd
from repro.sfg.graph import SignalFlowGraph
from repro.sfg.nodes import DownsampleNode, UpsampleNode
from repro.sfg.plan import CompiledPlan, compile_plan


def evaluate_psd(system: SignalFlowGraph | CompiledPlan, n_psd: int,
                 output: str | None = None) -> DiscretePsd:
    """Estimate the output-noise PSD with the proposed method.

    Parameters
    ----------
    system:
        Acyclic signal-flow graph with per-node quantization specs, or a
        :class:`CompiledPlan` compiled from one (pass the plan when the
        same system is evaluated repeatedly).
    n_psd:
        Number of PSD bins (``N_PSD`` in the paper).  Accuracy improves and
        cost grows linearly with this number (Figs. 5 and 6).
    output:
        Output node to evaluate; optional when the graph has exactly one.

    Returns
    -------
    DiscretePsd
        Estimated PSD of the output quantization noise.  The estimated
        noise power is ``result.total_power``.
    """
    _check_bins(n_psd)
    plan = compile_plan(system)
    results = walk_psd(plan, n_psd)
    return results[plan.resolve_output(output)]


def evaluate_psd_all(system: SignalFlowGraph | CompiledPlan,
                     n_psd: int) -> dict[str, DiscretePsd]:
    """Per-node noise PSDs (useful for refinement and for Fig. 7-style maps)."""
    _check_bins(n_psd)
    return walk_psd(compile_plan(system), n_psd)


def evaluate_psd_batch(system: SignalFlowGraph | CompiledPlan, n_psd: int,
                       assignments, output: str | None = None) -> PsdStack:
    """Estimate the output PSDs of a stack of word-length assignments.

    One graph walk evaluates every configuration: noise-source moments
    carry a leading config axis and the per-block frequency responses are
    shared across the stack (per effective coefficient precision).  Row
    ``k`` of the result is bit-identical to
    ``evaluate_psd(plan, n_psd)`` after ``plan.requantize(assignments[k])``.

    Parameters
    ----------
    system:
        Graph or compiled plan.
    n_psd:
        Number of PSD bins shared by the whole stack.
    assignments:
        Sequence of ``{node name: fractional bits}`` mappings (``None``
        disables quantization; unnamed nodes keep their current word
        length).
    output:
        Output node to evaluate; optional when the graph has exactly one.

    Returns
    -------
    PsdStack
        Per-config output-noise PSDs; the per-config powers are
        ``result.total_power`` (a ``(K,)`` array).
    """
    _check_bins(n_psd)
    plan = compile_plan(system)
    stack = plan.config_stack(assignments)
    results = walk_psd_batch(plan, n_psd, stack)
    return results[plan.resolve_output(output)]


def evaluate_psd_tracked(system: SignalFlowGraph | CompiledPlan, n_psd: int,
                         output: str | None = None) -> DiscretePsd:
    """Correlation-exact variant: per-source complex path responses.

    Only defined for single-rate (LTI + adder) graphs; multirate nodes
    raise ``NotImplementedError`` because decimation is not time-invariant
    at the sample level.
    """
    _check_bins(n_psd)
    plan = compile_plan(system)
    _reject_multirate(plan.graph, "evaluate_psd_tracked")
    results = walk_tracked(plan, n_psd)
    tracked = results[plan.resolve_output(output)]
    return tracked.to_psd()


def _reject_multirate(graph: SignalFlowGraph, caller: str) -> None:
    for name, node in graph.nodes.items():
        if isinstance(node, (DownsampleNode, UpsampleNode)):
            raise NotImplementedError(
                f"{caller} does not support multirate node {name!r}; use "
                "evaluate_psd instead")


def _check_bins(n_psd: int) -> None:
    if n_psd < 2:
        raise ValueError(f"n_psd must be at least 2, got {n_psd}")
