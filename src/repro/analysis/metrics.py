"""Accuracy metrics.

The paper compares estimators with the *MSE deviation* ``Ed`` (Eq. 15)::

    Ed = (E[err_sim^2] - E[err_est^2]) / E[err_sim^2]

and states that an estimate within one bit of the simulated value
corresponds to ``Ed`` in an open interval (one bit of word length is a
factor of 4 in noise power).  With this sign convention the band is
``(-300 %, +75 %)``: an estimate one bit *above* the simulation
(``est = 4 * sim``) gives ``Ed = -300 %`` and one bit *below*
(``est = sim / 4``) gives ``Ed = +75 %``.  The helpers below implement
that metric, the usual quality metrics (noise power, MSE, SQNR) and the
one-bit-equivalence check.
"""

from __future__ import annotations

import numpy as np


def noise_power(error: np.ndarray) -> float:
    """Mean-square value ``E[e^2]`` of an error record."""
    error = np.asarray(error, dtype=float)
    if error.size == 0:
        raise ValueError("cannot measure the power of an empty record")
    return float(np.mean(error ** 2))


def mse(reference: np.ndarray, approximation: np.ndarray) -> float:
    """Mean-square error between two records of equal length."""
    reference = np.asarray(reference, dtype=float)
    approximation = np.asarray(approximation, dtype=float)
    if reference.shape != approximation.shape:
        raise ValueError(
            f"shape mismatch: {reference.shape} vs {approximation.shape}")
    return noise_power(approximation - reference)


def sqnr_db(signal_power: float, quantization_noise_power: float) -> float:
    """Signal-to-quantization-noise ratio in decibels."""
    if signal_power <= 0:
        raise ValueError("signal power must be positive")
    if quantization_noise_power <= 0:
        raise ValueError("noise power must be positive")
    return 10.0 * np.log10(signal_power / quantization_noise_power)


def ed_deviation(simulated_power: float, estimated_power: float) -> float:
    """MSE deviation ``Ed`` between simulation and estimation (Eq. 15).

    Expressed as a fraction (0.05 = 5 %).  Positive values mean the
    estimator under-estimates the simulated error power.
    """
    if simulated_power <= 0:
        raise ValueError("simulated error power must be positive")
    return (simulated_power - estimated_power) / simulated_power


def equivalent_bit_error(simulated_power: float, estimated_power: float) -> float:
    """Estimation error expressed in equivalent bits.

    One bit of fractional word length corresponds to a factor of 4 in
    noise power, so the equivalent-bit error is
    ``0.5 * log2(estimated / simulated)`` in magnitude.
    """
    if simulated_power <= 0 or estimated_power <= 0:
        raise ValueError("powers must be positive")
    return abs(0.5 * np.log2(estimated_power / simulated_power))


def is_sub_one_bit(ed: float) -> bool:
    """Whether an ``Ed`` value corresponds to a sub-one-bit estimate.

    The band follows from the factor-of-4 power ratio between two
    successive word lengths and from ``Ed = (sim - est) / sim``: the
    estimate is within one bit of the simulation iff
    ``sim / 4 < est < 4 * sim``, i.e. ``Ed`` in the open interval
    ``(-300 %, +75 %)`` — ``est = 4 * sim`` maps to ``Ed = -3.0`` and
    ``est = sim / 4`` to ``Ed = +0.75``, both excluded.
    """
    return -3.0 < ed < 0.75


def ed_from_records(simulated_error: np.ndarray, estimated_power: float) -> float:
    """Convenience: ``Ed`` directly from an error record and an estimate."""
    return ed_deviation(noise_power(simulated_error), estimated_power)
