"""Unified accuracy-evaluation front end.

:class:`AccuracyEvaluator` exposes every estimation method behind one
interface and builds the simulation-vs-estimation comparisons used by all
the experiments:

* ``estimate(method=...)`` — run one analytical method on the graph;
* ``simulate(stimulus)`` — run the Monte-Carlo reference;
* ``compare(stimulus, methods=...)`` — produce one
  :class:`~repro.analysis.report.AccuracyReport` per method, which is what
  the benchmark harnesses print as table rows.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.analysis.agnostic_method import evaluate_agnostic
from repro.analysis.flat_method import evaluate_flat
from repro.analysis.psd_method import evaluate_psd, evaluate_psd_tracked
from repro.analysis.report import AccuracyReport, EstimateResult
from repro.analysis.simulation_method import SimulationEvaluator, SimulationResult
from repro.sfg.graph import SignalFlowGraph
from repro.sfg.plan import compile_plan

_ANALYTICAL_METHODS = ("psd", "psd_tracked", "flat", "agnostic")


@dataclass
class MethodComparison:
    """Simulation reference plus one report per analytical method."""

    simulation: SimulationResult
    reports: dict[str, AccuracyReport] = field(default_factory=dict)

    def ed_percent(self, method: str) -> float:
        """``Ed`` of a given method, in percent."""
        return self.reports[method].ed_percent

    def describe(self) -> str:
        """Multi-line textual summary."""
        lines = [f"simulated error power: {self.simulation.error_power:.4e} "
                 f"({self.simulation.num_samples} samples)"]
        lines.extend(report.describe() for report in self.reports.values())
        return "\n".join(lines)


class AccuracyEvaluator:
    """Evaluate the output quantization noise of a signal-flow graph.

    Parameters
    ----------
    graph:
        Acyclic :class:`SignalFlowGraph` with per-node quantization specs.
    n_psd:
        Default number of PSD bins for the PSD-based methods.
    name:
        Human-readable system name used in reports.
    """

    def __init__(self, graph: SignalFlowGraph, n_psd: int = 1024,
                 name: str | None = None):
        self.graph = graph
        self.n_psd = n_psd
        self.name = name or graph.name
        # The graph is compiled once; every estimate / simulation call then
        # replays the plan (validation, ordering, wiring and the
        # frequency-response cache are all reused across calls).
        # Analytical estimates additionally share the plan's NoiseMemo
        # (see repro.analysis._engine): repeated estimates after
        # requantize edits re-propagate only the dirty downstream cone,
        # and simulation calls reuse cached double-precision reference
        # runs when only data-path word lengths changed.
        self.plan = compile_plan(graph)
        self._simulator = SimulationEvaluator(self.plan)

    def _resolve_plan(self):
        """Current plan for the graph, tracking structural changes.

        compile_plan is a cheap signature check when nothing changed; when
        the graph was rewired since the last call, the simulator is
        rebuilt alongside the plan so estimates and simulations always
        describe the same system.
        """
        plan = compile_plan(self.graph)
        if plan is not self.plan:
            self.plan = plan
            self._simulator = SimulationEvaluator(plan)
        return plan

    # ------------------------------------------------------------------
    # Individual methods
    # ------------------------------------------------------------------
    def estimate(self, method: str = "psd", n_psd: int | None = None,
                 output: str | None = None) -> EstimateResult:
        """Run one analytical estimation method.

        Parameters
        ----------
        method:
            ``psd`` (proposed), ``psd_tracked`` (correlation-exact
            variant), ``flat`` (Eq. 4) or ``agnostic`` (moments only).
        n_psd:
            PSD bin count override for the PSD-based methods.
        output:
            Output node for multi-output graphs.
        """
        if method not in _ANALYTICAL_METHODS:
            raise ValueError(
                f"unknown method {method!r}; expected one of {_ANALYTICAL_METHODS}")
        bins = n_psd or self.n_psd
        # Re-resolving picks up in-place quantization / coefficient changes
        # and structural rewires made since the last call.
        plan = self._resolve_plan()
        start = time.perf_counter()
        if method == "psd":
            psd = evaluate_psd(plan, bins, output=output)
            power, mean, variance = psd.total_power, psd.mean, psd.variance
            used_bins = bins
        elif method == "psd_tracked":
            psd = evaluate_psd_tracked(plan, bins, output=output)
            power, mean, variance = psd.total_power, psd.mean, psd.variance
            used_bins = bins
        elif method == "flat":
            stats = evaluate_flat(plan, output=output)
            power, mean, variance = stats.power, stats.mean, stats.variance
            used_bins = None
        else:  # agnostic
            stats = evaluate_agnostic(plan, output=output)
            power, mean, variance = stats.power, stats.mean, stats.variance
            used_bins = None
        elapsed = time.perf_counter() - start
        return EstimateResult(method=method, power=power, mean=mean,
                              variance=variance, n_psd=used_bins,
                              elapsed_seconds=elapsed)

    def simulate(self, stimulus, output: str | None = None,
                 n_psd: int | None = None,
                 discard_transient: int = 0) -> SimulationResult:
        """Run the Monte-Carlo reference on one stimulus.

        A 2-D ``(trials, samples)`` stimulus runs the whole batch in one
        vectorized pass.
        """
        self._resolve_plan()
        return self._simulator.evaluate(stimulus, output=output,
                                        n_psd=n_psd,
                                        discard_transient=discard_transient)

    # ------------------------------------------------------------------
    # Comparison
    # ------------------------------------------------------------------
    def compare(self, stimulus, methods=("psd", "agnostic"),
                n_psd: int | None = None, output: str | None = None,
                discard_transient: int = 0,
                metadata: dict | None = None) -> MethodComparison:
        """Compare analytical estimates against the simulation reference."""
        simulation = self.simulate(stimulus, output=output,
                                   n_psd=n_psd or self.n_psd,
                                   discard_transient=discard_transient)
        reports: dict[str, AccuracyReport] = {}
        for method in methods:
            estimate = self.estimate(method, n_psd=n_psd, output=output)
            reports[method] = AccuracyReport(
                system=self.name,
                simulated_power=simulation.error_power,
                estimate=estimate,
                metadata=dict(metadata or {}),
            )
        return MethodComparison(simulation=simulation, reports=reports)
