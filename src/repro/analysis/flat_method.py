"""Classical flat analytical accuracy evaluation (Eq. 4 of the paper).

The flat method considers the *flattened* system: for every quantization
noise source ``b_i`` it derives the path transfer function ``h_i`` from
the source to the output and evaluates

    ``E[b_y^2] = sum_i K_i sigma_i^2  +  sum_i sum_j L_ij mu_i mu_j``

with ``K_i = sum_k h_i(k)^2`` (Eq. 5) and
``L_ij = (sum_k h_i(k)) (sum_l h_j(l))`` (Eq. 6, time-invariant case).

The implementation composes symbolic :class:`TransferFunction` objects
along every source-to-output path by dynamic programming over the
topological order, so re-convergent paths are combined exactly (parallel
addition of transfer functions) — this is the "accurate but expensive"
reference analytical method whose preprocessing the hierarchical methods
try to avoid.  Only single-rate LTI graphs are supported, as in the paper.
"""

from __future__ import annotations

import numpy as np

from repro.analysis._engine import (
    NoiseMemo,
    memoization_enabled,
    plan_memo,
)
from repro.fixedpoint.noise_model import NoiseStats
from repro.lti.transfer_function import TransferFunction
from repro.sfg.graph import SignalFlowGraph
from repro.sfg.nodes import (
    AddNode,
    DownsampleNode,
    IirNode,
    Node,
    OutputNode,
    UpsampleNode,
    _LtiMixin,
)
from repro.sfg.plan import CompiledPlan, compile_plan, parse_edge_key


def source_path_functions(system: SignalFlowGraph | CompiledPlan,
                          output: str | None = None,
                          sources=None) -> dict[str, TransferFunction]:
    """Path transfer function from every noise source to the output.

    Returns a mapping ``{source name: h_i}``.  A node generates a source
    when its quantization spec is enabled; for IIR nodes the source is
    pre-shaped by ``1 / A(z)`` (the quantizer lives inside the
    recursion).  A source may also be a ``"source->target"`` edge key: a
    fanout tap's noise enters at the *target's* input port, so its path
    function starts as the identity there and is shaped by the target's
    full block transfer function (not an IIR's internal noise-shaping
    response).

    Parameters
    ----------
    system, output:
        Graph (or plan) and the output node to reach.
    sources:
        Optional explicit set of source names (node names and/or edge
        keys).  The default — the plan's current noise-generating steps
        plus its noise-injecting fanout taps — is what
        :func:`evaluate_flat` needs; the batched evaluation passes the
        union of the stack's noisy sources instead.
    """
    plan = compile_plan(system)
    output_name = plan.resolve_output(output)
    if sources is None:
        sources = ({step.name for step in plan.noise_steps}
                   | {tap.key for _, _, tap in plan.active_edge_taps()})
    cache = key = None
    if memoization_enabled():
        # Path functions depend only on the coefficient fingerprint (the
        # transfer behaviour), not on the data-path word lengths, so the
        # optimizer's requantize loop keeps hitting one entry.
        cache = plan_memo(plan).path_functions
        key = (output_name, frozenset(sources),
               plan.coefficient_fingerprint())
        cached = cache.get(key)
        if cached is not None:
            cache.move_to_end(key)
            return dict(cached)

    # Edge sources inject an identity path function at their target's
    # input port; resolved up front so the DP below stays a plain walk.
    # Injection is driven by the requested source set, not the plan's
    # live tap state, so batch groups can request a stack-wide union.
    edge_injections: dict[int, dict[int, str]] = {}
    for name in sources:
        if name in plan.index_of:
            continue
        target_index, port = plan._resolve_edge(*parse_edge_key(name))
        edge_injections.setdefault(target_index, {})[port] = name

    # paths[index] maps source name -> transfer function from the source to
    # this node's output.
    paths: list[dict[str, TransferFunction]] = [None] * len(plan.steps)
    for step in plan.steps:
        node = step.node
        _reject_multirate(node)
        if step.is_source:
            accumulated: dict[str, TransferFunction] = {}
        else:
            input_maps = [paths[i] for i in step.predecessors]
            injections = edge_injections.get(step.index)
            if injections:
                input_maps = list(input_maps)
                for port, source_key in injections.items():
                    tapped = dict(input_maps[port])
                    tapped[source_key] = TransferFunction.identity()
                    input_maps[port] = tapped
            accumulated = _propagate_paths(node, input_maps, plan, step)
        if step.name in sources:
            shaping = (plan.shaping_tf(step)
                       if isinstance(node, IirNode)
                       else TransferFunction.identity())
            if step.name in accumulated:
                accumulated[step.name] = accumulated[step.name].parallel(shaping)
            else:
                accumulated[step.name] = shaping
        paths[step.index] = accumulated
    result = paths[plan.index_of[output_name]]
    if cache is not None:
        cache[key] = dict(result)
        while len(cache) > NoiseMemo.PATH_CACHE_LIMIT:
            cache.popitem(last=False)
    return result


def evaluate_flat(system: SignalFlowGraph | CompiledPlan,
                  output: str | None = None) -> NoiseStats:
    """Estimate the output-noise moments with the flat method (Eq. 4)."""
    plan = compile_plan(system)
    path_functions = source_path_functions(plan, output)
    sources = {step.name: step.noise for step in plan.noise_steps}
    for _, _, tap in plan.active_edge_taps():
        sources[tap.key] = tap.noise

    total_variance = 0.0
    mean_contributions = []
    for name, tf in path_functions.items():
        stats = sources[name]
        total_variance += stats.variance * tf.energy()        # K_i sigma_i^2
        mean_contributions.append(stats.mean * tf.coefficient_sum())

    # The double sum over L_ij mu_i mu_j is exactly the square of the sum
    # of the propagated means (Eq. 6 with time-invariant paths).
    total_mean = float(np.sum(mean_contributions))
    return NoiseStats(mean=total_mean, variance=total_variance)


def evaluate_flat_batch(system: SignalFlowGraph | CompiledPlan,
                        assignments,
                        output: str | None = None) -> NoiseStats:
    """Estimate the output moments of a stack of word-length assignments.

    The path transfer functions only depend on the effective coefficient
    precisions, so the stack is grouped by coefficient signature: within a
    group the (expensive) symbolic path composition runs once and only the
    cheap per-source moment sums are repeated per config.  When the graph
    pins ``coefficient_fractional_bits`` the whole stack forms one group.

    Returns a :class:`NoiseStats` whose ``mean`` / ``variance`` fields are
    ``(K,)`` arrays; entry ``k`` is bit-identical to
    ``evaluate_flat(plan)`` after ``plan.requantize(assignments[k])``.
    """
    plan = compile_plan(system)
    stack = plan.config_stack(assignments)
    means = np.zeros(stack.size)
    variances = np.zeros(stack.size)
    noise_by_name = {step.name: stack.noise(step)
                     for step in plan.steps
                     if stack.noise(step) is not None}
    noise_by_name.update(stack.edge_noise_sources())

    with plan.preserve_quantization():
        for members in stack.coefficient_groups():
            # The representative config fixes every coefficient precision
            # of the group; path functions are computed once under it.
            # allow_enable: a stack config may legitimately enable a
            # node the live plan leaves unquantized.
            plan.requantize(stack.resolved(members[0]), allow_enable=True)
            noisy_names = _group_noisy_names(plan, stack, members)
            path_functions = source_path_functions(plan, output,
                                                   sources=noisy_names)
            energies = {name: tf.energy()
                        for name, tf in path_functions.items()}
            dc_sums = {name: tf.coefficient_sum()
                       for name, tf in path_functions.items()}
            for k in members:
                # Same accumulation order (schedule order over this
                # config's own noisy sources) as the scalar evaluation.
                total_variance = 0.0
                mean_contributions = []
                for name in path_functions:
                    source_means, source_variances = noise_by_name[name]
                    if (source_variances[k] == 0.0
                            and source_means[k] == 0.0):
                        continue
                    total_variance += source_variances[k] * energies[name]
                    mean_contributions.append(source_means[k] * dc_sums[name])
                means[k] = float(np.sum(mean_contributions))
                variances[k] = total_variance
    return NoiseStats(mean=means, variance=variances)


def _group_noisy_names(plan: CompiledPlan, stack, members) -> set[str]:
    """Sources (steps and fanout taps) noisy for some group member."""
    names = set()
    for step in plan.steps:
        noise = stack.noise(step)
        if noise is None:
            continue
        source_means, source_variances = noise
        if any(source_variances[k] != 0.0 or source_means[k] != 0.0
               for k in members):
            names.add(step.name)
    for key, (source_means, source_variances) in \
            stack.edge_noise_sources().items():
        if any(source_variances[k] != 0.0 or source_means[k] != 0.0
               for k in members):
            names.add(key)
    return names


def _propagate_paths(node: Node,
                     input_maps: list[dict[str, TransferFunction]],
                     plan: CompiledPlan, step) -> dict[str, TransferFunction]:
    """Apply a node's transfer behaviour to per-source path functions."""
    if isinstance(node, OutputNode):
        (single,) = input_maps
        return dict(single)
    if isinstance(node, AddNode):
        merged: dict[str, TransferFunction] = {}
        for sign, source_map in zip(node.signs, input_maps):
            for source, tf in source_map.items():
                contribution = tf.scaled(sign)
                if source in merged:
                    merged[source] = merged[source].parallel(contribution)
                else:
                    merged[source] = contribution
        return merged
    if isinstance(node, _LtiMixin):
        (single,) = input_maps
        block_tf = plan.block_tf(step)
        return {source: tf.cascade(block_tf) for source, tf in single.items()}
    raise NotImplementedError(
        f"flat method cannot propagate through node type "
        f"{type(node).__name__}")


def _reject_multirate(node: Node) -> None:
    if isinstance(node, (DownsampleNode, UpsampleNode)):
        raise NotImplementedError(
            "the flat analytical method only supports single-rate LTI "
            f"graphs; found multirate node {node.name!r}")
