"""Classical flat analytical accuracy evaluation (Eq. 4 of the paper).

The flat method considers the *flattened* system: for every quantization
noise source ``b_i`` it derives the path transfer function ``h_i`` from
the source to the output and evaluates

    ``E[b_y^2] = sum_i K_i sigma_i^2  +  sum_i sum_j L_ij mu_i mu_j``

with ``K_i = sum_k h_i(k)^2`` (Eq. 5) and
``L_ij = (sum_k h_i(k)) (sum_l h_j(l))`` (Eq. 6, time-invariant case).

The implementation composes symbolic :class:`TransferFunction` objects
along every source-to-output path by dynamic programming over the
topological order, so re-convergent paths are combined exactly (parallel
addition of transfer functions) — this is the "accurate but expensive"
reference analytical method whose preprocessing the hierarchical methods
try to avoid.  Only single-rate LTI graphs are supported, as in the paper.
"""

from __future__ import annotations

import numpy as np

from repro.fixedpoint.noise_model import NoiseStats
from repro.lti.transfer_function import TransferFunction
from repro.sfg.graph import SignalFlowGraph
from repro.sfg.nodes import (
    AddNode,
    DownsampleNode,
    IirNode,
    Node,
    OutputNode,
    UpsampleNode,
    _LtiMixin,
)
from repro.sfg.plan import CompiledPlan, compile_plan


def source_path_functions(system: SignalFlowGraph | CompiledPlan,
                          output: str | None = None
                          ) -> dict[str, TransferFunction]:
    """Path transfer function from every noise source to the output.

    Returns a mapping ``{source node name: h_i}``.  A node generates a
    source when its quantization spec is enabled; for IIR nodes the source
    is pre-shaped by ``1 / A(z)`` (the quantizer lives inside the
    recursion).
    """
    plan = compile_plan(system)
    output_name = plan.resolve_output(output)

    # paths[index] maps source name -> transfer function from the source to
    # this node's output.
    paths: list[dict[str, TransferFunction]] = [None] * len(plan.steps)
    for step in plan.steps:
        node = step.node
        _reject_multirate(node)
        if step.is_source:
            accumulated: dict[str, TransferFunction] = {}
        else:
            input_maps = [paths[i] for i in step.predecessors]
            accumulated = _propagate_paths(node, input_maps, plan, step)
        if step.noise is not None:
            shaping = (plan.shaping_tf(step)
                       if isinstance(node, IirNode)
                       else TransferFunction.identity())
            if step.name in accumulated:
                accumulated[step.name] = accumulated[step.name].parallel(shaping)
            else:
                accumulated[step.name] = shaping
        paths[step.index] = accumulated
    return paths[plan.index_of[output_name]]


def evaluate_flat(system: SignalFlowGraph | CompiledPlan,
                  output: str | None = None) -> NoiseStats:
    """Estimate the output-noise moments with the flat method (Eq. 4)."""
    plan = compile_plan(system)
    path_functions = source_path_functions(plan, output)
    sources = {step.name: step.noise for step in plan.noise_steps}

    total_variance = 0.0
    mean_contributions = []
    for name, tf in path_functions.items():
        stats = sources[name]
        total_variance += stats.variance * tf.energy()        # K_i sigma_i^2
        mean_contributions.append(stats.mean * tf.coefficient_sum())

    # The double sum over L_ij mu_i mu_j is exactly the square of the sum
    # of the propagated means (Eq. 6 with time-invariant paths).
    total_mean = float(np.sum(mean_contributions))
    return NoiseStats(mean=total_mean, variance=total_variance)


def _propagate_paths(node: Node,
                     input_maps: list[dict[str, TransferFunction]],
                     plan: CompiledPlan, step) -> dict[str, TransferFunction]:
    """Apply a node's transfer behaviour to per-source path functions."""
    if isinstance(node, OutputNode):
        (single,) = input_maps
        return dict(single)
    if isinstance(node, AddNode):
        merged: dict[str, TransferFunction] = {}
        for sign, source_map in zip(node.signs, input_maps):
            for source, tf in source_map.items():
                contribution = tf.scaled(sign)
                if source in merged:
                    merged[source] = merged[source].parallel(contribution)
                else:
                    merged[source] = contribution
        return merged
    if isinstance(node, _LtiMixin):
        (single,) = input_maps
        block_tf = plan.block_tf(step)
        return {source: tf.cascade(block_tf) for source, tf in single.items()}
    raise NotImplementedError(
        f"flat method cannot propagate through node type "
        f"{type(node).__name__}")


def _reject_multirate(node: Node) -> None:
    if isinstance(node, (DownsampleNode, UpsampleNode)):
        raise NotImplementedError(
            "the flat analytical method only supports single-rate LTI "
            f"graphs; found multirate node {node.name!r}")
