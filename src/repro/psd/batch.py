"""Batched discrete PSDs — one spectrum per word-length configuration.

:class:`PsdStack` is the configuration-batched counterpart of
:class:`~repro.psd.spectrum.DiscretePsd`: the AC part is a ``(K, n_bins)``
array and the signed mean a ``(K,)`` array, one row per configuration of a
:class:`~repro.sfg.plan.ConfigStack`.  Every operation mirrors the scalar
class element for element — same operand pairs, same operation order — so
row ``k`` of a batched walk is bit-identical to the scalar walk of
configuration ``k``; ``tests/test_analysis_batch.py`` pins that down.

The scalar class validates and clips its bins on construction; the stack
skips that on the hot path because every producing operation here
(white construction, squared-magnitude filtering, signed addition of
non-negative bins, spectral folding/imaging) preserves non-negativity.
"""

from __future__ import annotations

import numpy as np

from repro.psd.spectrum import DiscretePsd


class PsdStack:
    """A stack of discrete PSDs with a leading configuration axis.

    Parameters
    ----------
    ac:
        ``(K, n_bins)`` array, per-config per-bin power of the zero-mean
        part of the signal.
    mean:
        ``(K,)`` array, per-config signed mean.
    """

    __slots__ = ("ac", "mean")

    def __init__(self, ac: np.ndarray, mean: np.ndarray):
        ac = np.asarray(ac, dtype=float)
        mean = np.asarray(mean, dtype=float)
        if ac.ndim != 2:
            raise ValueError(
                f"ac must be a (configs, bins) array, got shape {ac.shape}")
        if mean.shape != (ac.shape[0],):
            raise ValueError(
                f"mean must have shape ({ac.shape[0]},), got {mean.shape}")
        self.ac = ac
        self.mean = mean

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def zero(cls, size: int, n_bins: int) -> "PsdStack":
        """The stack of ``size`` identically-zero PSDs."""
        if size < 1 or n_bins < 1:
            raise ValueError(
                f"need at least one config and one bin, got ({size}, {n_bins})")
        return cls(np.zeros((size, n_bins)), np.zeros(size))

    @classmethod
    def white(cls, means: np.ndarray, variances: np.ndarray,
              n_bins: int) -> "PsdStack":
        """White PSDs from per-config moments (Eq. 10, batched).

        Mirrors :meth:`DiscretePsd.white`: each row spreads its variance
        uniformly over all bins and keeps its mean signed and separate.
        """
        means = np.asarray(means, dtype=float)
        variances = np.asarray(variances, dtype=float)
        ac = np.broadcast_to((variances / n_bins)[:, None],
                             (len(variances), n_bins)).copy()
        return cls(ac, means.copy())

    # ------------------------------------------------------------------
    # Scalar summaries
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of stacked configurations."""
        return self.ac.shape[0]

    @property
    def n_bins(self) -> int:
        """Number of frequency bins."""
        return self.ac.shape[1]

    @property
    def variance(self) -> np.ndarray:
        """Per-config variance (power of the zero-mean part), shape ``(K,)``."""
        return np.sum(self.ac, axis=-1)

    @property
    def total_power(self) -> np.ndarray:
        """Per-config total power ``E[x^2]``, shape ``(K,)``."""
        return self.mean ** 2 + self.variance

    def select(self, config: int) -> DiscretePsd:
        """Extract one configuration as a scalar :class:`DiscretePsd`."""
        return DiscretePsd(self.ac[config].copy(), float(self.mean[config]))

    # ------------------------------------------------------------------
    # Algebra (mirrors DiscretePsd operation for operation)
    # ------------------------------------------------------------------
    def copy(self) -> "PsdStack":
        """An independent copy."""
        return PsdStack(self.ac.copy(), self.mean.copy())

    def __add__(self, other: "PsdStack") -> "PsdStack":
        """Per-config sum of two uncorrelated noise stacks (Eq. 14)."""
        if not isinstance(other, PsdStack):
            return NotImplemented
        if other.n_bins != self.n_bins or other.size != self.size:
            raise ValueError(
                f"cannot add stacks of shapes {self.ac.shape} and "
                f"{other.ac.shape}")
        return PsdStack(self.ac + other.ac, self.mean + other.mean)

    def scaled(self, gain: float) -> "PsdStack":
        """PSDs after multiplication of the signal by a constant gain."""
        return PsdStack(self.ac * gain * gain, self.mean * gain)

    def filtered(self, frequency_response: np.ndarray) -> "PsdStack":
        """PSDs after an LTI block (Eq. 11), shared or per-config response.

        ``frequency_response`` is either a single ``(n_bins,)`` response
        applied to every config or a ``(K, n_bins)`` array with one
        response row per config (the coefficient-precision-tracking case).
        """
        response = np.asarray(frequency_response)
        if response.shape[-1] != self.n_bins:
            raise ValueError(
                f"frequency response has {response.shape[-1]} points, "
                f"expected {self.n_bins}")
        if response.ndim == 2 and response.shape[0] != self.size:
            raise ValueError(
                f"response stack has {response.shape[0]} rows, expected "
                f"{self.size}")
        magnitude_sq = np.abs(response) ** 2
        dc_gain = np.real(response[..., 0])
        return PsdStack(self.ac * magnitude_sq, self.mean * dc_gain)

    # ------------------------------------------------------------------
    # Multirate transformations
    # ------------------------------------------------------------------
    def downsampled(self, factor: int = 2) -> "PsdStack":
        """PSDs after down-sampling (per-config spectral folding)."""
        from repro.lti.multirate import downsample_psd
        return PsdStack(downsample_psd(self.ac, factor), self.mean.copy())

    def upsampled(self, factor: int = 2) -> "PsdStack":
        """PSDs after zero-insertion up-sampling (per-config imaging)."""
        from repro.lti.multirate import upsample_psd
        return PsdStack(upsample_psd(self.ac, factor), self.mean / factor)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PsdStack(size={self.size}, n_bins={self.n_bins})"
