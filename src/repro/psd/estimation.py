"""Estimation of a :class:`~repro.psd.spectrum.DiscretePsd` from samples.

The simulation-based reference of the paper measures the output error
signal and, for Fig. 7, its spectral repartition.  These estimators turn a
sample record into the same discrete-PSD representation used by the
analytical engine so that both can be compared bin by bin.

Both a raw periodogram and Welch's averaged, windowed periodogram are
provided.  All estimates are normalized so that the bins of the returned
PSD sum to the sample variance (library-wide convention) and the mean is
the sample mean.
"""

from __future__ import annotations

import numpy as np

from repro.lti.windows import get_window
from repro.psd.spectrum import DiscretePsd


def periodogram(x: np.ndarray, n_bins: int) -> DiscretePsd:
    """Single-segment periodogram estimate.

    Parameters
    ----------
    x:
        Sample record (1-D).  If longer than ``n_bins`` only full segments
        are used and averaged (rectangular window, no overlap), which makes
        this a Bartlett estimate; if shorter, the record is zero-padded.
    n_bins:
        Number of frequency bins of the estimate.
    """
    return welch(x, n_bins, window="rectangular", overlap=0.0)


def welch(x: np.ndarray, n_bins: int, window: str = "hann",
          overlap: float = 0.5) -> DiscretePsd:
    """Welch's averaged periodogram estimate.

    Parameters
    ----------
    x:
        Sample record (1-D).
    n_bins:
        Segment length and number of frequency bins of the estimate.
    window:
        Window applied to each segment (see :mod:`repro.lti.windows`).
    overlap:
        Fractional overlap between consecutive segments, in ``[0, 1)``.

    Returns
    -------
    DiscretePsd
        Estimate whose bins sum to the sample variance and whose mean is
        the sample mean.
    """
    x = np.asarray(x, dtype=float).ravel()
    if len(x) == 0:
        raise ValueError("cannot estimate the PSD of an empty record")
    if not 0.0 <= overlap < 1.0:
        raise ValueError(f"overlap must be in [0, 1), got {overlap}")

    mean = float(np.mean(x))
    centered = x - mean
    variance = float(np.mean(centered ** 2))
    if variance == 0.0:
        return DiscretePsd(np.zeros(n_bins), mean)

    if len(centered) < n_bins:
        centered = np.concatenate([centered, np.zeros(n_bins - len(centered))])

    win = get_window(window, n_bins)
    window_power = float(np.mean(win ** 2))
    hop = max(1, int(round(n_bins * (1.0 - overlap))))

    accumulated = np.zeros(n_bins)
    count = 0
    start = 0
    while start + n_bins <= len(centered):
        segment = centered[start:start + n_bins] * win
        spectrum = np.fft.fft(segment)
        accumulated += (np.abs(spectrum) ** 2) / (n_bins * n_bins * window_power)
        count += 1
        start += hop
    if count == 0:
        segment = centered[:n_bins] * win
        spectrum = np.fft.fft(segment)
        accumulated = (np.abs(spectrum) ** 2) / (n_bins * n_bins * window_power)
        count = 1
    ac = accumulated / count

    # Renormalize so that the bins sum exactly to the sample variance;
    # windowing and segmentation only introduce a small bias that this
    # correction removes, keeping the scalar power information exact.
    total = float(np.sum(ac))
    if total > 0.0:
        ac *= variance / total
    return DiscretePsd(ac, mean)


def estimate_psd(x: np.ndarray, n_bins: int, method: str = "welch",
                 window: str = "hann", overlap: float = 0.5) -> DiscretePsd:
    """Estimate the discrete PSD of a sample record.

    Parameters
    ----------
    x:
        Sample record.
    n_bins:
        Number of frequency bins.
    method:
        ``welch`` (default) or ``periodogram``.
    window, overlap:
        Parameters forwarded to :func:`welch`.
    """
    method = method.lower()
    if method == "welch":
        return welch(x, n_bins, window=window, overlap=overlap)
    if method == "periodogram":
        return periodogram(x, n_bins)
    raise ValueError(f"unknown PSD estimation method {method!r}")


def estimate_psd_2d(image_error: np.ndarray) -> np.ndarray:
    """Two-dimensional periodogram of an error image (for Fig. 7).

    Parameters
    ----------
    image_error:
        2-D array of error samples.

    Returns
    -------
    numpy.ndarray
        2-D array of the same shape whose entries sum to the per-pixel
        error power ``E[e^2]``, with the zero-frequency bin at the center
        (``fftshift`` layout, matching the paper's visualization where the
        image center is DC).
    """
    image_error = np.asarray(image_error, dtype=float)
    if image_error.ndim != 2:
        raise ValueError("image_error must be two-dimensional")
    rows, cols = image_error.shape
    spectrum = np.fft.fft2(image_error)
    power = (np.abs(spectrum) ** 2) / (rows * rows * cols * cols)
    return np.fft.fftshift(power)
