"""Estimation of a :class:`~repro.psd.spectrum.DiscretePsd` from samples.

The simulation-based reference of the paper measures the output error
signal and, for Fig. 7, its spectral repartition.  These estimators turn a
sample record into the same discrete-PSD representation used by the
analytical engine so that both can be compared bin by bin.

Both a raw periodogram and Welch's averaged, windowed periodogram are
provided.  All estimates are normalized so that the bins of the returned
PSD sum to the sample variance (library-wide convention) and the mean is
the sample mean.

The Welch estimator is fully vectorized: the overlapping segments are
extracted as one strided view and transformed with a single batched FFT,
for one record or for a whole stack of Monte-Carlo trials at once
(:func:`welch_batched`).  The results are bitwise identical to the
historical per-segment loop, which is preserved as
:func:`_welch_reference` and asserted against in the tests.  (A real-input
``rfft`` would halve the transform work but is *not* bitwise identical to
the complex FFT the loop used, so the full transform is kept.)
"""

from __future__ import annotations

import numpy as np

from repro.lti.windows import get_window
from repro.obs import span
from repro.psd.spectrum import DiscretePsd


#: Segment-matrix size above which the vectorized Welch core switches
#: from one batched FFT to per-segment accumulation (same bits, bounded
#: memory).  2^23 doubles keep the transient complex spectra well under
#: a gigabyte.
_MAX_ONE_SHOT_ELEMENTS = 1 << 23


def periodogram(x: np.ndarray, n_bins: int) -> DiscretePsd:
    """Single-segment periodogram estimate.

    Parameters
    ----------
    x:
        Sample record (1-D).  If longer than ``n_bins`` only full segments
        are used and averaged (rectangular window, no overlap), which makes
        this a Bartlett estimate; if shorter, the record is zero-padded.
    n_bins:
        Number of frequency bins of the estimate.
    """
    return welch(x, n_bins, window="rectangular", overlap=0.0)


def _welch_stack(records: np.ndarray, n_bins: int, window: str,
                 overlap: float) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized Welch core over a stack of records.

    ``records`` has shape ``(trials, samples)``; returns ``(ac, means)``
    of shapes ``(trials, n_bins)`` and ``(trials,)``.  Every per-record
    quantity reproduces the legacy loop bit for bit: the strided segment
    view holds the same values as the sliced segments, the batched FFT
    matches the per-segment transforms, and summing the per-segment
    periodograms along the segment axis accumulates in the same order as
    the sequential ``+=``.
    """
    if records.shape[-1] == 0:
        raise ValueError("cannot estimate the PSD of an empty record")
    if not 0.0 <= overlap < 1.0:
        raise ValueError(f"overlap must be in [0, 1), got {overlap}")

    means = np.mean(records, axis=-1)
    centered = records - means[..., None]
    variances = np.mean(centered ** 2, axis=-1)

    if centered.shape[-1] < n_bins:
        pad = n_bins - centered.shape[-1]
        centered = np.concatenate(
            [centered, np.zeros(centered.shape[:-1] + (pad,))], axis=-1)

    win = get_window(window, n_bins)
    window_power = float(np.mean(win ** 2))
    hop = max(1, int(round(n_bins * (1.0 - overlap))))

    # One strided view per record: (trials, segments, n_bins), every
    # segment starting hop samples after the previous one.
    segments = np.lib.stride_tricks.sliding_window_view(
        centered, n_bins, axis=-1)[..., ::hop, :]
    count = segments.shape[-2]
    scale = n_bins * n_bins * window_power
    if segments.size <= _MAX_ONE_SHOT_ELEMENTS:
        spectra = np.fft.fft(segments * win, axis=-1)
        ac = np.sum((np.abs(spectra) ** 2) / scale, axis=-2) / count
    else:
        # Extreme-overlap regimes (hop clamped towards 1) produce nearly
        # one segment per sample; materializing them all would need
        # orders of magnitude more memory than the record itself.  Fall
        # back to per-segment accumulation over the same strided view —
        # the reference loop's order, so still bitwise identical.
        ac = np.empty(centered.shape[:-1] + (n_bins,))
        for index in np.ndindex(segments.shape[:-2]):
            accumulated = np.zeros(n_bins)
            for segment in segments[index]:
                spectrum = np.fft.fft(segment * win)
                accumulated += (np.abs(spectrum) ** 2) / scale
            ac[index] = accumulated / count

    # Renormalize so that the bins sum exactly to the sample variance;
    # windowing and segmentation only introduce a small bias that this
    # correction removes, keeping the scalar power information exact.
    totals = np.sum(ac, axis=-1)
    live = (variances > 0.0) & (totals > 0.0)
    ac[~live] = 0.0
    ac[live] *= (variances[live] / totals[live])[..., None]
    return ac, means


def welch(x: np.ndarray, n_bins: int, window: str = "hann",
          overlap: float = 0.5) -> DiscretePsd:
    """Welch's averaged periodogram estimate.

    Parameters
    ----------
    x:
        Sample record (flattened to 1-D).
    n_bins:
        Segment length and number of frequency bins of the estimate.
    window:
        Window applied to each segment (see :mod:`repro.lti.windows`).
    overlap:
        Fractional overlap between consecutive segments, in ``[0, 1)``.

    Returns
    -------
    DiscretePsd
        Estimate whose bins sum to the sample variance and whose mean is
        the sample mean.
    """
    x = np.asarray(x, dtype=float).ravel()
    with span("psd.welch", samples=x.shape[0], n_bins=n_bins):
        ac, means = _welch_stack(x[None, :], n_bins, window, overlap)
    return DiscretePsd(ac[0], float(means[0]))


def welch_batched(x: np.ndarray, n_bins: int, window: str = "hann",
                  overlap: float = 0.5) -> list[DiscretePsd]:
    """Per-trial Welch estimates of a stacked record, in one pass.

    ``x`` has shape ``(..., samples)``; leading axes are independent
    records.  Equivalent to calling :func:`welch` on every row (bitwise —
    the rows share one batched FFT), returned in row order.
    """
    x = np.asarray(x, dtype=float)
    records = x.reshape(-1, x.shape[-1]) if x.ndim > 1 else x[None, :]
    with span("psd.welch", samples=records.shape[-1], n_bins=n_bins,
              records=records.shape[0]):
        ac, means = _welch_stack(records, n_bins, window, overlap)
    return [DiscretePsd(ac[row], float(means[row]))
            for row in range(records.shape[0])]


def _welch_reference(x: np.ndarray, n_bins: int, window: str = "hann",
                     overlap: float = 0.5) -> DiscretePsd:
    """The historical per-segment Welch loop (kept as the ground truth).

    The vectorized :func:`welch` must match this loop bit for bit; the
    equality is asserted in ``tests/test_simkernel.py`` and the loop is
    the baseline of the PSD-estimation benchmark.
    """
    x = np.asarray(x, dtype=float).ravel()
    if len(x) == 0:
        raise ValueError("cannot estimate the PSD of an empty record")
    if not 0.0 <= overlap < 1.0:
        raise ValueError(f"overlap must be in [0, 1), got {overlap}")

    mean = float(np.mean(x))
    centered = x - mean
    variance = float(np.mean(centered ** 2))
    if variance == 0.0:
        return DiscretePsd(np.zeros(n_bins), mean)

    if len(centered) < n_bins:
        centered = np.concatenate([centered, np.zeros(n_bins - len(centered))])

    win = get_window(window, n_bins)
    window_power = float(np.mean(win ** 2))
    hop = max(1, int(round(n_bins * (1.0 - overlap))))

    accumulated = np.zeros(n_bins)
    count = 0
    start = 0
    while start + n_bins <= len(centered):
        segment = centered[start:start + n_bins] * win
        spectrum = np.fft.fft(segment)
        accumulated += (np.abs(spectrum) ** 2) / (n_bins * n_bins * window_power)
        count += 1
        start += hop
    ac = accumulated / count

    total = float(np.sum(ac))
    if total > 0.0:
        ac *= variance / total
    return DiscretePsd(ac, mean)


def estimate_psd(x: np.ndarray, n_bins: int, method: str = "welch",
                 window: str = "hann", overlap: float = 0.5) -> DiscretePsd:
    """Estimate the discrete PSD of a sample record.

    Parameters
    ----------
    x:
        Sample record.
    n_bins:
        Number of frequency bins.
    method:
        ``welch`` (default) or ``periodogram``.
    window, overlap:
        Parameters forwarded to :func:`welch`.
    """
    method = method.lower()
    if method == "welch":
        return welch(x, n_bins, window=window, overlap=overlap)
    if method == "periodogram":
        return periodogram(x, n_bins)
    raise ValueError(f"unknown PSD estimation method {method!r}")


def estimate_psd_batch(x: np.ndarray, n_bins: int, method: str = "welch",
                       window: str = "hann",
                       overlap: float = 0.5) -> list[DiscretePsd]:
    """Per-trial PSD estimates of a stacked record, in one batched pass."""
    method = method.lower()
    if method == "welch":
        return welch_batched(x, n_bins, window=window, overlap=overlap)
    if method == "periodogram":
        return welch_batched(x, n_bins, window="rectangular", overlap=0.0)
    raise ValueError(f"unknown PSD estimation method {method!r}")


def estimate_psd_2d(image_error: np.ndarray) -> np.ndarray:
    """Two-dimensional periodogram of an error image (for Fig. 7).

    Parameters
    ----------
    image_error:
        2-D array of error samples.

    Returns
    -------
    numpy.ndarray
        2-D array of the same shape whose entries sum to the per-pixel
        error power ``E[e^2]``, with the zero-frequency bin at the center
        (``fftshift`` layout, matching the paper's visualization where the
        image center is DC).
    """
    image_error = np.asarray(image_error, dtype=float)
    if image_error.ndim != 2:
        raise ValueError("image_error must be two-dimensional")
    rows, cols = image_error.shape
    spectrum = np.fft.fft2(image_error)
    power = (np.abs(spectrum) ** 2) / (rows * rows * cols * cols)
    return np.fft.fftshift(power)
